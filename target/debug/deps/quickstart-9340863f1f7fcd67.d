/root/repo/target/debug/deps/quickstart-9340863f1f7fcd67.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-9340863f1f7fcd67.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
