/root/repo/target/debug/deps/scaling-6f76c389666adfd2.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/scaling-6f76c389666adfd2: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
