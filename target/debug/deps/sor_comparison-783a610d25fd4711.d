/root/repo/target/debug/deps/sor_comparison-783a610d25fd4711.d: examples/sor_comparison.rs

/root/repo/target/debug/deps/libsor_comparison-783a610d25fd4711.rmeta: examples/sor_comparison.rs

examples/sor_comparison.rs:
