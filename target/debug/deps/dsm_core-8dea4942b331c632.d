/root/repo/target/debug/deps/dsm_core-8dea4942b331c632.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/context.rs crates/core/src/ec.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/ids.rs crates/core/src/local.rs crates/core/src/lrc.rs crates/core/src/runtime.rs crates/core/src/scalar.rs crates/core/src/sync.rs Cargo.toml

/root/repo/target/debug/deps/libdsm_core-8dea4942b331c632.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/context.rs crates/core/src/ec.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/ids.rs crates/core/src/local.rs crates/core/src/lrc.rs crates/core/src/runtime.rs crates/core/src/scalar.rs crates/core/src/sync.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/context.rs:
crates/core/src/ec.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/ids.rs:
crates/core/src/local.rs:
crates/core/src/lrc.rs:
crates/core/src/runtime.rs:
crates/core/src/scalar.rs:
crates/core/src/sync.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
