/root/repo/target/debug/deps/task_farm-5a52a4b3669db09f.d: examples/task_farm.rs Cargo.toml

/root/repo/target/debug/deps/libtask_farm-5a52a4b3669db09f.rmeta: examples/task_farm.rs Cargo.toml

examples/task_farm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
