/root/repo/target/debug/deps/sharded_engine-3b0d7946ee363035.d: tests/tests/sharded_engine.rs Cargo.toml

/root/repo/target/debug/deps/libsharded_engine-3b0d7946ee363035.rmeta: tests/tests/sharded_engine.rs Cargo.toml

tests/tests/sharded_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
