/root/repo/target/debug/deps/all_apps_all_impls-13a22e60e3b1797b.d: tests/tests/all_apps_all_impls.rs Cargo.toml

/root/repo/target/debug/deps/liball_apps_all_impls-13a22e60e3b1797b.rmeta: tests/tests/all_apps_all_impls.rs Cargo.toml

tests/tests/all_apps_all_impls.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
