/root/repo/target/debug/deps/ablation_small_objects-d5b574b3ad96baf6.d: crates/bench/src/bin/ablation_small_objects.rs Cargo.toml

/root/repo/target/debug/deps/libablation_small_objects-d5b574b3ad96baf6.rmeta: crates/bench/src/bin/ablation_small_objects.rs Cargo.toml

crates/bench/src/bin/ablation_small_objects.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
