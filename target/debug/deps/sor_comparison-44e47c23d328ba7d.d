/root/repo/target/debug/deps/sor_comparison-44e47c23d328ba7d.d: examples/sor_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libsor_comparison-44e47c23d328ba7d.rmeta: examples/sor_comparison.rs Cargo.toml

examples/sor_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
