/root/repo/target/debug/deps/ablation_small_objects-a63a588874c466e1.d: crates/bench/src/bin/ablation_small_objects.rs

/root/repo/target/debug/deps/libablation_small_objects-a63a588874c466e1.rmeta: crates/bench/src/bin/ablation_small_objects.rs

crates/bench/src/bin/ablation_small_objects.rs:
