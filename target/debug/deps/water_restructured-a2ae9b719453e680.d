/root/repo/target/debug/deps/water_restructured-a2ae9b719453e680.d: crates/bench/src/bin/water_restructured.rs

/root/repo/target/debug/deps/water_restructured-a2ae9b719453e680: crates/bench/src/bin/water_restructured.rs

crates/bench/src/bin/water_restructured.rs:
