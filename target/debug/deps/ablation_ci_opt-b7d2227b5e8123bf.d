/root/repo/target/debug/deps/ablation_ci_opt-b7d2227b5e8123bf.d: crates/bench/src/bin/ablation_ci_opt.rs

/root/repo/target/debug/deps/libablation_ci_opt-b7d2227b5e8123bf.rmeta: crates/bench/src/bin/ablation_ci_opt.rs

crates/bench/src/bin/ablation_ci_opt.rs:
