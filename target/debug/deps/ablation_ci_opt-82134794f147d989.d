/root/repo/target/debug/deps/ablation_ci_opt-82134794f147d989.d: crates/bench/src/bin/ablation_ci_opt.rs

/root/repo/target/debug/deps/libablation_ci_opt-82134794f147d989.rmeta: crates/bench/src/bin/ablation_ci_opt.rs

crates/bench/src/bin/ablation_ci_opt.rs:
