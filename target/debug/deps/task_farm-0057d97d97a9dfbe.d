/root/repo/target/debug/deps/task_farm-0057d97d97a9dfbe.d: examples/task_farm.rs

/root/repo/target/debug/deps/task_farm-0057d97d97a9dfbe: examples/task_farm.rs

examples/task_farm.rs:
