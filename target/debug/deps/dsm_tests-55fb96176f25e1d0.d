/root/repo/target/debug/deps/dsm_tests-55fb96176f25e1d0.d: tests/src/lib.rs

/root/repo/target/debug/deps/dsm_tests-55fb96176f25e1d0: tests/src/lib.rs

tests/src/lib.rs:
