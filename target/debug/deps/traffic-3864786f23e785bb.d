/root/repo/target/debug/deps/traffic-3864786f23e785bb.d: crates/bench/src/bin/traffic.rs

/root/repo/target/debug/deps/traffic-3864786f23e785bb: crates/bench/src/bin/traffic.rs

crates/bench/src/bin/traffic.rs:
