/root/repo/target/debug/deps/table3-6b6bce03fcc529f7.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-6b6bce03fcc529f7: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
