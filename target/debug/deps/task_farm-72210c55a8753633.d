/root/repo/target/debug/deps/task_farm-72210c55a8753633.d: examples/task_farm.rs Cargo.toml

/root/repo/target/debug/deps/libtask_farm-72210c55a8753633.rmeta: examples/task_farm.rs Cargo.toml

examples/task_farm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
