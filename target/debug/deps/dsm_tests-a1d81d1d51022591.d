/root/repo/target/debug/deps/dsm_tests-a1d81d1d51022591.d: tests/src/lib.rs

/root/repo/target/debug/deps/libdsm_tests-a1d81d1d51022591.rmeta: tests/src/lib.rs

tests/src/lib.rs:
