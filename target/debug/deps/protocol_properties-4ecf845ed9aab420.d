/root/repo/target/debug/deps/protocol_properties-4ecf845ed9aab420.d: tests/tests/protocol_properties.rs

/root/repo/target/debug/deps/libprotocol_properties-4ecf845ed9aab420.rmeta: tests/tests/protocol_properties.rs

tests/tests/protocol_properties.rs:
