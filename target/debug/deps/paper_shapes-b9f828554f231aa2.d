/root/repo/target/debug/deps/paper_shapes-b9f828554f231aa2.d: tests/tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-b9f828554f231aa2: tests/tests/paper_shapes.rs

tests/tests/paper_shapes.rs:
