/root/repo/target/debug/deps/table4-00e710e173870a86.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-00e710e173870a86: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
