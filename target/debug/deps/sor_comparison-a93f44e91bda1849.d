/root/repo/target/debug/deps/sor_comparison-a93f44e91bda1849.d: examples/sor_comparison.rs

/root/repo/target/debug/deps/sor_comparison-a93f44e91bda1849: examples/sor_comparison.rs

examples/sor_comparison.rs:
