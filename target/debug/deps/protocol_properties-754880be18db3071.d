/root/repo/target/debug/deps/protocol_properties-754880be18db3071.d: tests/tests/protocol_properties.rs

/root/repo/target/debug/deps/protocol_properties-754880be18db3071: tests/tests/protocol_properties.rs

tests/tests/protocol_properties.rs:
