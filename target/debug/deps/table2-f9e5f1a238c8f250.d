/root/repo/target/debug/deps/table2-f9e5f1a238c8f250.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-f9e5f1a238c8f250.rmeta: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
