/root/repo/target/debug/deps/dsm_bench-a733d81028da10da.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdsm_bench-a733d81028da10da.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
