/root/repo/target/debug/deps/dsm_mem-620fedcf8c01912f.d: crates/mem/src/lib.rs crates/mem/src/bitset.rs crates/mem/src/diff.rs crates/mem/src/granularity.rs crates/mem/src/interval.rs crates/mem/src/merge.rs crates/mem/src/page.rs crates/mem/src/region.rs crates/mem/src/testutil.rs crates/mem/src/vclock.rs

/root/repo/target/debug/deps/dsm_mem-620fedcf8c01912f: crates/mem/src/lib.rs crates/mem/src/bitset.rs crates/mem/src/diff.rs crates/mem/src/granularity.rs crates/mem/src/interval.rs crates/mem/src/merge.rs crates/mem/src/page.rs crates/mem/src/region.rs crates/mem/src/testutil.rs crates/mem/src/vclock.rs

crates/mem/src/lib.rs:
crates/mem/src/bitset.rs:
crates/mem/src/diff.rs:
crates/mem/src/granularity.rs:
crates/mem/src/interval.rs:
crates/mem/src/merge.rs:
crates/mem/src/page.rs:
crates/mem/src/region.rs:
crates/mem/src/testutil.rs:
crates/mem/src/vclock.rs:
