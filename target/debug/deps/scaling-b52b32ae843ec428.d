/root/repo/target/debug/deps/scaling-b52b32ae843ec428.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/libscaling-b52b32ae843ec428.rmeta: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
