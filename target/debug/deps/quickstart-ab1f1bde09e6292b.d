/root/repo/target/debug/deps/quickstart-ab1f1bde09e6292b.d: examples/quickstart.rs

/root/repo/target/debug/deps/libquickstart-ab1f1bde09e6292b.rmeta: examples/quickstart.rs

examples/quickstart.rs:
