/root/repo/target/debug/deps/dsm_sim-c40aa89aed4fce72.d: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/cost.rs crates/sim/src/msg.rs crates/sim/src/node.rs crates/sim/src/stats.rs crates/sim/src/work.rs

/root/repo/target/debug/deps/libdsm_sim-c40aa89aed4fce72.rmeta: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/cost.rs crates/sim/src/msg.rs crates/sim/src/node.rs crates/sim/src/stats.rs crates/sim/src/work.rs

crates/sim/src/lib.rs:
crates/sim/src/clock.rs:
crates/sim/src/cost.rs:
crates/sim/src/msg.rs:
crates/sim/src/node.rs:
crates/sim/src/stats.rs:
crates/sim/src/work.rs:
