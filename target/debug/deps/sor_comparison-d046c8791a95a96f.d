/root/repo/target/debug/deps/sor_comparison-d046c8791a95a96f.d: examples/sor_comparison.rs

/root/repo/target/debug/deps/sor_comparison-d046c8791a95a96f: examples/sor_comparison.rs

examples/sor_comparison.rs:
