/root/repo/target/debug/deps/dsm_tests-e46e996f59e0cf4a.d: tests/src/lib.rs

/root/repo/target/debug/deps/libdsm_tests-e46e996f59e0cf4a.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libdsm_tests-e46e996f59e0cf4a.rmeta: tests/src/lib.rs

tests/src/lib.rs:
