/root/repo/target/debug/deps/dsm_apps-3b9472461a0a9454.d: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/fft.rs crates/apps/src/is.rs crates/apps/src/params.rs crates/apps/src/quicksort.rs crates/apps/src/runner.rs crates/apps/src/sor.rs crates/apps/src/water.rs Cargo.toml

/root/repo/target/debug/deps/libdsm_apps-3b9472461a0a9454.rmeta: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/fft.rs crates/apps/src/is.rs crates/apps/src/params.rs crates/apps/src/quicksort.rs crates/apps/src/runner.rs crates/apps/src/sor.rs crates/apps/src/water.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/barnes_hut.rs:
crates/apps/src/fft.rs:
crates/apps/src/is.rs:
crates/apps/src/params.rs:
crates/apps/src/quicksort.rs:
crates/apps/src/runner.rs:
crates/apps/src/sor.rs:
crates/apps/src/water.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
