/root/repo/target/debug/deps/water_restructured-a8ade9e187a3f4eb.d: crates/bench/src/bin/water_restructured.rs Cargo.toml

/root/repo/target/debug/deps/libwater_restructured-a8ade9e187a3f4eb.rmeta: crates/bench/src/bin/water_restructured.rs Cargo.toml

crates/bench/src/bin/water_restructured.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
