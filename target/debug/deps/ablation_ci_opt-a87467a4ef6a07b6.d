/root/repo/target/debug/deps/ablation_ci_opt-a87467a4ef6a07b6.d: crates/bench/src/bin/ablation_ci_opt.rs

/root/repo/target/debug/deps/ablation_ci_opt-a87467a4ef6a07b6: crates/bench/src/bin/ablation_ci_opt.rs

crates/bench/src/bin/ablation_ci_opt.rs:
