/root/repo/target/debug/deps/ablation_small_objects-91b93f019058b816.d: crates/bench/src/bin/ablation_small_objects.rs Cargo.toml

/root/repo/target/debug/deps/libablation_small_objects-91b93f019058b816.rmeta: crates/bench/src/bin/ablation_small_objects.rs Cargo.toml

crates/bench/src/bin/ablation_small_objects.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
