/root/repo/target/debug/deps/table4-bf6b8221b7f9a152.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-bf6b8221b7f9a152: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
