/root/repo/target/debug/deps/dsm_apps-0a5b5797f37a631c.d: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/fft.rs crates/apps/src/is.rs crates/apps/src/params.rs crates/apps/src/quicksort.rs crates/apps/src/runner.rs crates/apps/src/sor.rs crates/apps/src/water.rs

/root/repo/target/debug/deps/libdsm_apps-0a5b5797f37a631c.rlib: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/fft.rs crates/apps/src/is.rs crates/apps/src/params.rs crates/apps/src/quicksort.rs crates/apps/src/runner.rs crates/apps/src/sor.rs crates/apps/src/water.rs

/root/repo/target/debug/deps/libdsm_apps-0a5b5797f37a631c.rmeta: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/fft.rs crates/apps/src/is.rs crates/apps/src/params.rs crates/apps/src/quicksort.rs crates/apps/src/runner.rs crates/apps/src/sor.rs crates/apps/src/water.rs

crates/apps/src/lib.rs:
crates/apps/src/barnes_hut.rs:
crates/apps/src/fft.rs:
crates/apps/src/is.rs:
crates/apps/src/params.rs:
crates/apps/src/quicksort.rs:
crates/apps/src/runner.rs:
crates/apps/src/sor.rs:
crates/apps/src/water.rs:
