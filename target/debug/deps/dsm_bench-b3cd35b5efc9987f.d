/root/repo/target/debug/deps/dsm_bench-b3cd35b5efc9987f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdsm_bench-b3cd35b5efc9987f.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdsm_bench-b3cd35b5efc9987f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
