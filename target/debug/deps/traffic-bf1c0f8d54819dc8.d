/root/repo/target/debug/deps/traffic-bf1c0f8d54819dc8.d: crates/bench/src/bin/traffic.rs Cargo.toml

/root/repo/target/debug/deps/libtraffic-bf1c0f8d54819dc8.rmeta: crates/bench/src/bin/traffic.rs Cargo.toml

crates/bench/src/bin/traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
