/root/repo/target/debug/deps/table1-45b3bf2b3d3cf309.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-45b3bf2b3d3cf309.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
