/root/repo/target/debug/deps/properties-b1ec2cebc92c81fe.d: crates/mem/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-b1ec2cebc92c81fe.rmeta: crates/mem/tests/properties.rs Cargo.toml

crates/mem/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
