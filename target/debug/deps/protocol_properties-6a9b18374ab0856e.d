/root/repo/target/debug/deps/protocol_properties-6a9b18374ab0856e.d: tests/tests/protocol_properties.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_properties-6a9b18374ab0856e.rmeta: tests/tests/protocol_properties.rs Cargo.toml

tests/tests/protocol_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
