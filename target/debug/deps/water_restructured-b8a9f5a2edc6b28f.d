/root/repo/target/debug/deps/water_restructured-b8a9f5a2edc6b28f.d: crates/bench/src/bin/water_restructured.rs Cargo.toml

/root/repo/target/debug/deps/libwater_restructured-b8a9f5a2edc6b28f.rmeta: crates/bench/src/bin/water_restructured.rs Cargo.toml

crates/bench/src/bin/water_restructured.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
