/root/repo/target/debug/deps/scaling-4145cca9c9b82de2.d: crates/bench/src/bin/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libscaling-4145cca9c9b82de2.rmeta: crates/bench/src/bin/scaling.rs Cargo.toml

crates/bench/src/bin/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
