/root/repo/target/debug/deps/table5-ae49ebbedcd225c6.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-ae49ebbedcd225c6: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
