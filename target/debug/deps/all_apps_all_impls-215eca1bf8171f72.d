/root/repo/target/debug/deps/all_apps_all_impls-215eca1bf8171f72.d: tests/tests/all_apps_all_impls.rs

/root/repo/target/debug/deps/liball_apps_all_impls-215eca1bf8171f72.rmeta: tests/tests/all_apps_all_impls.rs

tests/tests/all_apps_all_impls.rs:
