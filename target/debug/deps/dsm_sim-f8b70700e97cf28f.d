/root/repo/target/debug/deps/dsm_sim-f8b70700e97cf28f.d: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/cost.rs crates/sim/src/msg.rs crates/sim/src/node.rs crates/sim/src/stats.rs crates/sim/src/work.rs Cargo.toml

/root/repo/target/debug/deps/libdsm_sim-f8b70700e97cf28f.rmeta: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/cost.rs crates/sim/src/msg.rs crates/sim/src/node.rs crates/sim/src/stats.rs crates/sim/src/work.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/clock.rs:
crates/sim/src/cost.rs:
crates/sim/src/msg.rs:
crates/sim/src/node.rs:
crates/sim/src/stats.rs:
crates/sim/src/work.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
