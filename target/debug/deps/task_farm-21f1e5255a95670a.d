/root/repo/target/debug/deps/task_farm-21f1e5255a95670a.d: examples/task_farm.rs

/root/repo/target/debug/deps/libtask_farm-21f1e5255a95670a.rmeta: examples/task_farm.rs

examples/task_farm.rs:
