/root/repo/target/debug/deps/table1-cef42be7655de6ff.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-cef42be7655de6ff.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
