/root/repo/target/debug/deps/properties-e567dde7ab5e8bb9.d: crates/mem/tests/properties.rs

/root/repo/target/debug/deps/properties-e567dde7ab5e8bb9: crates/mem/tests/properties.rs

crates/mem/tests/properties.rs:
