/root/repo/target/debug/deps/sharded_engine-e0b22371afa85a78.d: tests/tests/sharded_engine.rs

/root/repo/target/debug/deps/libsharded_engine-e0b22371afa85a78.rmeta: tests/tests/sharded_engine.rs

tests/tests/sharded_engine.rs:
