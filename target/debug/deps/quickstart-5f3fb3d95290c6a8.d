/root/repo/target/debug/deps/quickstart-5f3fb3d95290c6a8.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-5f3fb3d95290c6a8: examples/quickstart.rs

examples/quickstart.rs:
