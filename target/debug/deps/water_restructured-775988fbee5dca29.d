/root/repo/target/debug/deps/water_restructured-775988fbee5dca29.d: crates/bench/src/bin/water_restructured.rs

/root/repo/target/debug/deps/libwater_restructured-775988fbee5dca29.rmeta: crates/bench/src/bin/water_restructured.rs

crates/bench/src/bin/water_restructured.rs:
