/root/repo/target/debug/deps/ablation_ci_opt-a6a0f9c7510d2ef9.d: crates/bench/src/bin/ablation_ci_opt.rs Cargo.toml

/root/repo/target/debug/deps/libablation_ci_opt-a6a0f9c7510d2ef9.rmeta: crates/bench/src/bin/ablation_ci_opt.rs Cargo.toml

crates/bench/src/bin/ablation_ci_opt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
