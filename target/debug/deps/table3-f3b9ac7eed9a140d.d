/root/repo/target/debug/deps/table3-f3b9ac7eed9a140d.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/libtable3-f3b9ac7eed9a140d.rmeta: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
