/root/repo/target/debug/deps/dsm_sim-ba317b9a30aec30f.d: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/cost.rs crates/sim/src/msg.rs crates/sim/src/node.rs crates/sim/src/stats.rs crates/sim/src/work.rs

/root/repo/target/debug/deps/libdsm_sim-ba317b9a30aec30f.rlib: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/cost.rs crates/sim/src/msg.rs crates/sim/src/node.rs crates/sim/src/stats.rs crates/sim/src/work.rs

/root/repo/target/debug/deps/libdsm_sim-ba317b9a30aec30f.rmeta: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/cost.rs crates/sim/src/msg.rs crates/sim/src/node.rs crates/sim/src/stats.rs crates/sim/src/work.rs

crates/sim/src/lib.rs:
crates/sim/src/clock.rs:
crates/sim/src/cost.rs:
crates/sim/src/msg.rs:
crates/sim/src/node.rs:
crates/sim/src/stats.rs:
crates/sim/src/work.rs:
