/root/repo/target/debug/deps/dsm_apps-a836680438126ce9.d: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/fft.rs crates/apps/src/is.rs crates/apps/src/params.rs crates/apps/src/quicksort.rs crates/apps/src/runner.rs crates/apps/src/sor.rs crates/apps/src/water.rs

/root/repo/target/debug/deps/dsm_apps-a836680438126ce9: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/fft.rs crates/apps/src/is.rs crates/apps/src/params.rs crates/apps/src/quicksort.rs crates/apps/src/runner.rs crates/apps/src/sor.rs crates/apps/src/water.rs

crates/apps/src/lib.rs:
crates/apps/src/barnes_hut.rs:
crates/apps/src/fft.rs:
crates/apps/src/is.rs:
crates/apps/src/params.rs:
crates/apps/src/quicksort.rs:
crates/apps/src/runner.rs:
crates/apps/src/sor.rs:
crates/apps/src/water.rs:
