/root/repo/target/debug/deps/dsm_tests-9b6c112ddc88dfbe.d: tests/src/lib.rs

/root/repo/target/debug/deps/libdsm_tests-9b6c112ddc88dfbe.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libdsm_tests-9b6c112ddc88dfbe.rmeta: tests/src/lib.rs

tests/src/lib.rs:
