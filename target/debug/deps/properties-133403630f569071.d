/root/repo/target/debug/deps/properties-133403630f569071.d: crates/mem/tests/properties.rs

/root/repo/target/debug/deps/libproperties-133403630f569071.rmeta: crates/mem/tests/properties.rs

crates/mem/tests/properties.rs:
