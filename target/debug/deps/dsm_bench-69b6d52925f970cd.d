/root/repo/target/debug/deps/dsm_bench-69b6d52925f970cd.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/dsm_bench-69b6d52925f970cd: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
