/root/repo/target/debug/deps/dsm_apps-670c8ef2bf5bc063.d: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/fft.rs crates/apps/src/is.rs crates/apps/src/params.rs crates/apps/src/quicksort.rs crates/apps/src/runner.rs crates/apps/src/sor.rs crates/apps/src/water.rs

/root/repo/target/debug/deps/libdsm_apps-670c8ef2bf5bc063.rmeta: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/fft.rs crates/apps/src/is.rs crates/apps/src/params.rs crates/apps/src/quicksort.rs crates/apps/src/runner.rs crates/apps/src/sor.rs crates/apps/src/water.rs

crates/apps/src/lib.rs:
crates/apps/src/barnes_hut.rs:
crates/apps/src/fft.rs:
crates/apps/src/is.rs:
crates/apps/src/params.rs:
crates/apps/src/quicksort.rs:
crates/apps/src/runner.rs:
crates/apps/src/sor.rs:
crates/apps/src/water.rs:
