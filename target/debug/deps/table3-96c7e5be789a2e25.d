/root/repo/target/debug/deps/table3-96c7e5be789a2e25.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-96c7e5be789a2e25.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
