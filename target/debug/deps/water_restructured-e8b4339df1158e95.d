/root/repo/target/debug/deps/water_restructured-e8b4339df1158e95.d: crates/bench/src/bin/water_restructured.rs

/root/repo/target/debug/deps/water_restructured-e8b4339df1158e95: crates/bench/src/bin/water_restructured.rs

crates/bench/src/bin/water_restructured.rs:
