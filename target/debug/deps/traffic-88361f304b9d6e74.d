/root/repo/target/debug/deps/traffic-88361f304b9d6e74.d: crates/bench/src/bin/traffic.rs

/root/repo/target/debug/deps/traffic-88361f304b9d6e74: crates/bench/src/bin/traffic.rs

crates/bench/src/bin/traffic.rs:
