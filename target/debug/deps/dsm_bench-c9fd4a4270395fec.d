/root/repo/target/debug/deps/dsm_bench-c9fd4a4270395fec.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdsm_bench-c9fd4a4270395fec.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdsm_bench-c9fd4a4270395fec.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
