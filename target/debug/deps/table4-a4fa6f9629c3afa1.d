/root/repo/target/debug/deps/table4-a4fa6f9629c3afa1.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/libtable4-a4fa6f9629c3afa1.rmeta: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
