/root/repo/target/debug/deps/tables-86042326c1ac4bc0.d: crates/bench/benches/tables.rs

/root/repo/target/debug/deps/libtables-86042326c1ac4bc0.rmeta: crates/bench/benches/tables.rs

crates/bench/benches/tables.rs:
