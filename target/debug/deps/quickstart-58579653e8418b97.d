/root/repo/target/debug/deps/quickstart-58579653e8418b97.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-58579653e8418b97: examples/quickstart.rs

examples/quickstart.rs:
