/root/repo/target/debug/deps/table5-6a4e5c037c34c17f.d: crates/bench/src/bin/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-6a4e5c037c34c17f.rmeta: crates/bench/src/bin/table5.rs Cargo.toml

crates/bench/src/bin/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
