/root/repo/target/debug/deps/ablation_ci_opt-2a8c375e76bd25eb.d: crates/bench/src/bin/ablation_ci_opt.rs

/root/repo/target/debug/deps/ablation_ci_opt-2a8c375e76bd25eb: crates/bench/src/bin/ablation_ci_opt.rs

crates/bench/src/bin/ablation_ci_opt.rs:
