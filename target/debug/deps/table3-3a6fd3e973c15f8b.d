/root/repo/target/debug/deps/table3-3a6fd3e973c15f8b.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/libtable3-3a6fd3e973c15f8b.rmeta: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
