/root/repo/target/debug/deps/dsm_bench-3023396ccaa4115a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdsm_bench-3023396ccaa4115a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
