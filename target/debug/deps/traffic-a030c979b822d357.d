/root/repo/target/debug/deps/traffic-a030c979b822d357.d: crates/bench/src/bin/traffic.rs Cargo.toml

/root/repo/target/debug/deps/libtraffic-a030c979b822d357.rmeta: crates/bench/src/bin/traffic.rs Cargo.toml

crates/bench/src/bin/traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
