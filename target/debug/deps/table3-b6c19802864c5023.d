/root/repo/target/debug/deps/table3-b6c19802864c5023.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-b6c19802864c5023: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
