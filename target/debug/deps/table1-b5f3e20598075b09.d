/root/repo/target/debug/deps/table1-b5f3e20598075b09.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-b5f3e20598075b09: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
