/root/repo/target/debug/deps/table2-968d04210705fd9c.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-968d04210705fd9c: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
