/root/repo/target/debug/deps/sharded_engine-9b9a2f373d9ac283.d: tests/tests/sharded_engine.rs

/root/repo/target/debug/deps/sharded_engine-9b9a2f373d9ac283: tests/tests/sharded_engine.rs

tests/tests/sharded_engine.rs:
