/root/repo/target/debug/deps/traffic-dec09342f5c2f204.d: crates/bench/src/bin/traffic.rs

/root/repo/target/debug/deps/libtraffic-dec09342f5c2f204.rmeta: crates/bench/src/bin/traffic.rs

crates/bench/src/bin/traffic.rs:
