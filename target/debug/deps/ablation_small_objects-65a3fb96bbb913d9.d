/root/repo/target/debug/deps/ablation_small_objects-65a3fb96bbb913d9.d: crates/bench/src/bin/ablation_small_objects.rs

/root/repo/target/debug/deps/ablation_small_objects-65a3fb96bbb913d9: crates/bench/src/bin/ablation_small_objects.rs

crates/bench/src/bin/ablation_small_objects.rs:
