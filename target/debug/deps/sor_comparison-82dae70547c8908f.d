/root/repo/target/debug/deps/sor_comparison-82dae70547c8908f.d: examples/sor_comparison.rs

/root/repo/target/debug/deps/libsor_comparison-82dae70547c8908f.rmeta: examples/sor_comparison.rs

examples/sor_comparison.rs:
