/root/repo/target/debug/deps/dsm_tests-ae50d726cf3ed78e.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdsm_tests-ae50d726cf3ed78e.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
