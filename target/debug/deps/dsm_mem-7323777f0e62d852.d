/root/repo/target/debug/deps/dsm_mem-7323777f0e62d852.d: crates/mem/src/lib.rs crates/mem/src/bitset.rs crates/mem/src/diff.rs crates/mem/src/granularity.rs crates/mem/src/interval.rs crates/mem/src/merge.rs crates/mem/src/page.rs crates/mem/src/region.rs crates/mem/src/testutil.rs crates/mem/src/vclock.rs Cargo.toml

/root/repo/target/debug/deps/libdsm_mem-7323777f0e62d852.rmeta: crates/mem/src/lib.rs crates/mem/src/bitset.rs crates/mem/src/diff.rs crates/mem/src/granularity.rs crates/mem/src/interval.rs crates/mem/src/merge.rs crates/mem/src/page.rs crates/mem/src/region.rs crates/mem/src/testutil.rs crates/mem/src/vclock.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/bitset.rs:
crates/mem/src/diff.rs:
crates/mem/src/granularity.rs:
crates/mem/src/interval.rs:
crates/mem/src/merge.rs:
crates/mem/src/page.rs:
crates/mem/src/region.rs:
crates/mem/src/testutil.rs:
crates/mem/src/vclock.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
