/root/repo/target/debug/deps/table5-54e452afc04684a6.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-54e452afc04684a6: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
