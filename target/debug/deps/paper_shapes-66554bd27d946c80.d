/root/repo/target/debug/deps/paper_shapes-66554bd27d946c80.d: tests/tests/paper_shapes.rs

/root/repo/target/debug/deps/libpaper_shapes-66554bd27d946c80.rmeta: tests/tests/paper_shapes.rs

tests/tests/paper_shapes.rs:
