/root/repo/target/debug/deps/scaling-60c55dead7be621a.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/libscaling-60c55dead7be621a.rmeta: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
