/root/repo/target/debug/deps/ablation_small_objects-658d45b2ae629d67.d: crates/bench/src/bin/ablation_small_objects.rs

/root/repo/target/debug/deps/libablation_small_objects-658d45b2ae629d67.rmeta: crates/bench/src/bin/ablation_small_objects.rs

crates/bench/src/bin/ablation_small_objects.rs:
