/root/repo/target/debug/deps/table4-e8c5d067042f4281.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/libtable4-e8c5d067042f4281.rmeta: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
