/root/repo/target/debug/deps/table1-0216e868ac11b945.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-0216e868ac11b945: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
