/root/repo/target/debug/deps/traffic-4f8a88c8057840cc.d: crates/bench/src/bin/traffic.rs

/root/repo/target/debug/deps/libtraffic-4f8a88c8057840cc.rmeta: crates/bench/src/bin/traffic.rs

crates/bench/src/bin/traffic.rs:
