/root/repo/target/debug/deps/scaling-490242cddecfcadc.d: crates/bench/src/bin/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libscaling-490242cddecfcadc.rmeta: crates/bench/src/bin/scaling.rs Cargo.toml

crates/bench/src/bin/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
