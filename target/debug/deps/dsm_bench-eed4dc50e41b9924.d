/root/repo/target/debug/deps/dsm_bench-eed4dc50e41b9924.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdsm_bench-eed4dc50e41b9924.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
