/root/repo/target/debug/deps/water_restructured-c5d9d8a00c38c504.d: crates/bench/src/bin/water_restructured.rs

/root/repo/target/debug/deps/libwater_restructured-c5d9d8a00c38c504.rmeta: crates/bench/src/bin/water_restructured.rs

crates/bench/src/bin/water_restructured.rs:
