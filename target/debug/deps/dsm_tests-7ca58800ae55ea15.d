/root/repo/target/debug/deps/dsm_tests-7ca58800ae55ea15.d: tests/src/lib.rs

/root/repo/target/debug/deps/libdsm_tests-7ca58800ae55ea15.rmeta: tests/src/lib.rs

tests/src/lib.rs:
