/root/repo/target/debug/deps/table2-16e07a71c11eda46.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-16e07a71c11eda46: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
