/root/repo/target/debug/deps/table5-23bf0d96f98797e9.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/libtable5-23bf0d96f98797e9.rmeta: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
