/root/repo/target/debug/deps/dsm_sim-eb1d778a2bfb57cb.d: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/cost.rs crates/sim/src/msg.rs crates/sim/src/node.rs crates/sim/src/stats.rs crates/sim/src/work.rs

/root/repo/target/debug/deps/dsm_sim-eb1d778a2bfb57cb: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/cost.rs crates/sim/src/msg.rs crates/sim/src/node.rs crates/sim/src/stats.rs crates/sim/src/work.rs

crates/sim/src/lib.rs:
crates/sim/src/clock.rs:
crates/sim/src/cost.rs:
crates/sim/src/msg.rs:
crates/sim/src/node.rs:
crates/sim/src/stats.rs:
crates/sim/src/work.rs:
