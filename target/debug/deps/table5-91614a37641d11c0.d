/root/repo/target/debug/deps/table5-91614a37641d11c0.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/libtable5-91614a37641d11c0.rmeta: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
