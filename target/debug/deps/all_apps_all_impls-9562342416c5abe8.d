/root/repo/target/debug/deps/all_apps_all_impls-9562342416c5abe8.d: tests/tests/all_apps_all_impls.rs

/root/repo/target/debug/deps/all_apps_all_impls-9562342416c5abe8: tests/tests/all_apps_all_impls.rs

tests/tests/all_apps_all_impls.rs:
