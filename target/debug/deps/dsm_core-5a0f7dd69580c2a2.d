/root/repo/target/debug/deps/dsm_core-5a0f7dd69580c2a2.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/context.rs crates/core/src/ec.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/ids.rs crates/core/src/local.rs crates/core/src/lrc.rs crates/core/src/runtime.rs crates/core/src/scalar.rs crates/core/src/sync.rs

/root/repo/target/debug/deps/libdsm_core-5a0f7dd69580c2a2.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/context.rs crates/core/src/ec.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/ids.rs crates/core/src/local.rs crates/core/src/lrc.rs crates/core/src/runtime.rs crates/core/src/scalar.rs crates/core/src/sync.rs

/root/repo/target/debug/deps/libdsm_core-5a0f7dd69580c2a2.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/context.rs crates/core/src/ec.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/ids.rs crates/core/src/local.rs crates/core/src/lrc.rs crates/core/src/runtime.rs crates/core/src/scalar.rs crates/core/src/sync.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/context.rs:
crates/core/src/ec.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/ids.rs:
crates/core/src/local.rs:
crates/core/src/lrc.rs:
crates/core/src/runtime.rs:
crates/core/src/scalar.rs:
crates/core/src/sync.rs:
