/root/repo/target/debug/deps/ablation_small_objects-f96630bac001da7a.d: crates/bench/src/bin/ablation_small_objects.rs

/root/repo/target/debug/deps/ablation_small_objects-f96630bac001da7a: crates/bench/src/bin/ablation_small_objects.rs

crates/bench/src/bin/ablation_small_objects.rs:
