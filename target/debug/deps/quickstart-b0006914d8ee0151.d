/root/repo/target/debug/deps/quickstart-b0006914d8ee0151.d: examples/quickstart.rs

/root/repo/target/debug/deps/libquickstart-b0006914d8ee0151.rmeta: examples/quickstart.rs

examples/quickstart.rs:
