/root/repo/target/debug/deps/task_farm-ba63fda7792dc8c2.d: examples/task_farm.rs

/root/repo/target/debug/deps/task_farm-ba63fda7792dc8c2: examples/task_farm.rs

examples/task_farm.rs:
