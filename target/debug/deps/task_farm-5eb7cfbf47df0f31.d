/root/repo/target/debug/deps/task_farm-5eb7cfbf47df0f31.d: examples/task_farm.rs

/root/repo/target/debug/deps/libtask_farm-5eb7cfbf47df0f31.rmeta: examples/task_farm.rs

examples/task_farm.rs:
