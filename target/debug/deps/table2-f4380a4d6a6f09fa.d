/root/repo/target/debug/deps/table2-f4380a4d6a6f09fa.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-f4380a4d6a6f09fa.rmeta: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
