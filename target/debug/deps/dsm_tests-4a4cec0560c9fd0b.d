/root/repo/target/debug/deps/dsm_tests-4a4cec0560c9fd0b.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdsm_tests-4a4cec0560c9fd0b.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
