/root/repo/target/debug/deps/paper_shapes-a02fb828fcbff1cf.d: tests/tests/paper_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_shapes-a02fb828fcbff1cf.rmeta: tests/tests/paper_shapes.rs Cargo.toml

tests/tests/paper_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
