/root/repo/target/release/deps/dsm_sim-76e07e94f1ee8532.d: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/cost.rs crates/sim/src/msg.rs crates/sim/src/node.rs crates/sim/src/stats.rs crates/sim/src/work.rs

/root/repo/target/release/deps/libdsm_sim-76e07e94f1ee8532.rlib: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/cost.rs crates/sim/src/msg.rs crates/sim/src/node.rs crates/sim/src/stats.rs crates/sim/src/work.rs

/root/repo/target/release/deps/libdsm_sim-76e07e94f1ee8532.rmeta: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/cost.rs crates/sim/src/msg.rs crates/sim/src/node.rs crates/sim/src/stats.rs crates/sim/src/work.rs

crates/sim/src/lib.rs:
crates/sim/src/clock.rs:
crates/sim/src/cost.rs:
crates/sim/src/msg.rs:
crates/sim/src/node.rs:
crates/sim/src/stats.rs:
crates/sim/src/work.rs:
