/root/repo/target/release/deps/ablation_small_objects-899e3c331ff5fe39.d: crates/bench/src/bin/ablation_small_objects.rs

/root/repo/target/release/deps/ablation_small_objects-899e3c331ff5fe39: crates/bench/src/bin/ablation_small_objects.rs

crates/bench/src/bin/ablation_small_objects.rs:
