/root/repo/target/release/deps/dsm_bench-c9c9c329e65c4b62.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdsm_bench-c9c9c329e65c4b62.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdsm_bench-c9c9c329e65c4b62.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
