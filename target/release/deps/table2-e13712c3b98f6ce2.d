/root/repo/target/release/deps/table2-e13712c3b98f6ce2.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-e13712c3b98f6ce2: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
