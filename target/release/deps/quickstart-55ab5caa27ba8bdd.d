/root/repo/target/release/deps/quickstart-55ab5caa27ba8bdd.d: examples/quickstart.rs

/root/repo/target/release/deps/quickstart-55ab5caa27ba8bdd: examples/quickstart.rs

examples/quickstart.rs:
