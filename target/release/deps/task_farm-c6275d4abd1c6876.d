/root/repo/target/release/deps/task_farm-c6275d4abd1c6876.d: examples/task_farm.rs

/root/repo/target/release/deps/task_farm-c6275d4abd1c6876: examples/task_farm.rs

examples/task_farm.rs:
