/root/repo/target/release/deps/table1-a093785ad2e024b3.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-a093785ad2e024b3: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
