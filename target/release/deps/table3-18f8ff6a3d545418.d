/root/repo/target/release/deps/table3-18f8ff6a3d545418.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-18f8ff6a3d545418: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
