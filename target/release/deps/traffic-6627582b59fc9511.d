/root/repo/target/release/deps/traffic-6627582b59fc9511.d: crates/bench/src/bin/traffic.rs

/root/repo/target/release/deps/traffic-6627582b59fc9511: crates/bench/src/bin/traffic.rs

crates/bench/src/bin/traffic.rs:
