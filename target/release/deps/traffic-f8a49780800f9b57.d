/root/repo/target/release/deps/traffic-f8a49780800f9b57.d: crates/bench/src/bin/traffic.rs

/root/repo/target/release/deps/traffic-f8a49780800f9b57: crates/bench/src/bin/traffic.rs

crates/bench/src/bin/traffic.rs:
