/root/repo/target/release/deps/table1-f64b468738ecc010.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-f64b468738ecc010: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
