/root/repo/target/release/deps/table4-c227ff5f914b9716.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-c227ff5f914b9716: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
