/root/repo/target/release/deps/ablation_ci_opt-c3a7a37959c3bac7.d: crates/bench/src/bin/ablation_ci_opt.rs

/root/repo/target/release/deps/ablation_ci_opt-c3a7a37959c3bac7: crates/bench/src/bin/ablation_ci_opt.rs

crates/bench/src/bin/ablation_ci_opt.rs:
