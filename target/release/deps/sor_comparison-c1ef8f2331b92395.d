/root/repo/target/release/deps/sor_comparison-c1ef8f2331b92395.d: examples/sor_comparison.rs

/root/repo/target/release/deps/sor_comparison-c1ef8f2331b92395: examples/sor_comparison.rs

examples/sor_comparison.rs:
