/root/repo/target/release/deps/dsm_bench-f7a58f19846b8245.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/dsm_bench-f7a58f19846b8245: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
