/root/repo/target/release/deps/table4-331714e6db391ff8.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-331714e6db391ff8: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
