/root/repo/target/release/deps/scaling-dfd201f361436c8f.d: crates/bench/src/bin/scaling.rs

/root/repo/target/release/deps/scaling-dfd201f361436c8f: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
