/root/repo/target/release/deps/water_restructured-f799df05d6e0265c.d: crates/bench/src/bin/water_restructured.rs

/root/repo/target/release/deps/water_restructured-f799df05d6e0265c: crates/bench/src/bin/water_restructured.rs

crates/bench/src/bin/water_restructured.rs:
