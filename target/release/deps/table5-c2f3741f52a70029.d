/root/repo/target/release/deps/table5-c2f3741f52a70029.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-c2f3741f52a70029: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
