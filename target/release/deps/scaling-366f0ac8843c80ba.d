/root/repo/target/release/deps/scaling-366f0ac8843c80ba.d: crates/bench/src/bin/scaling.rs

/root/repo/target/release/deps/scaling-366f0ac8843c80ba: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
