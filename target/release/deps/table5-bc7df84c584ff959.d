/root/repo/target/release/deps/table5-bc7df84c584ff959.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-bc7df84c584ff959: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
