/root/repo/target/release/deps/ablation_ci_opt-da4f164fe0db5289.d: crates/bench/src/bin/ablation_ci_opt.rs

/root/repo/target/release/deps/ablation_ci_opt-da4f164fe0db5289: crates/bench/src/bin/ablation_ci_opt.rs

crates/bench/src/bin/ablation_ci_opt.rs:
