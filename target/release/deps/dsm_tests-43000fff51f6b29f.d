/root/repo/target/release/deps/dsm_tests-43000fff51f6b29f.d: tests/src/lib.rs

/root/repo/target/release/deps/libdsm_tests-43000fff51f6b29f.rlib: tests/src/lib.rs

/root/repo/target/release/deps/libdsm_tests-43000fff51f6b29f.rmeta: tests/src/lib.rs

tests/src/lib.rs:
