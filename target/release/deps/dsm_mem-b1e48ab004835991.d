/root/repo/target/release/deps/dsm_mem-b1e48ab004835991.d: crates/mem/src/lib.rs crates/mem/src/bitset.rs crates/mem/src/diff.rs crates/mem/src/granularity.rs crates/mem/src/interval.rs crates/mem/src/merge.rs crates/mem/src/page.rs crates/mem/src/region.rs crates/mem/src/testutil.rs crates/mem/src/vclock.rs

/root/repo/target/release/deps/libdsm_mem-b1e48ab004835991.rlib: crates/mem/src/lib.rs crates/mem/src/bitset.rs crates/mem/src/diff.rs crates/mem/src/granularity.rs crates/mem/src/interval.rs crates/mem/src/merge.rs crates/mem/src/page.rs crates/mem/src/region.rs crates/mem/src/testutil.rs crates/mem/src/vclock.rs

/root/repo/target/release/deps/libdsm_mem-b1e48ab004835991.rmeta: crates/mem/src/lib.rs crates/mem/src/bitset.rs crates/mem/src/diff.rs crates/mem/src/granularity.rs crates/mem/src/interval.rs crates/mem/src/merge.rs crates/mem/src/page.rs crates/mem/src/region.rs crates/mem/src/testutil.rs crates/mem/src/vclock.rs

crates/mem/src/lib.rs:
crates/mem/src/bitset.rs:
crates/mem/src/diff.rs:
crates/mem/src/granularity.rs:
crates/mem/src/interval.rs:
crates/mem/src/merge.rs:
crates/mem/src/page.rs:
crates/mem/src/region.rs:
crates/mem/src/testutil.rs:
crates/mem/src/vclock.rs:
