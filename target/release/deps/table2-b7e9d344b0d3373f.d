/root/repo/target/release/deps/table2-b7e9d344b0d3373f.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-b7e9d344b0d3373f: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
