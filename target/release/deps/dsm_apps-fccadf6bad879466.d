/root/repo/target/release/deps/dsm_apps-fccadf6bad879466.d: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/fft.rs crates/apps/src/is.rs crates/apps/src/params.rs crates/apps/src/quicksort.rs crates/apps/src/runner.rs crates/apps/src/sor.rs crates/apps/src/water.rs

/root/repo/target/release/deps/libdsm_apps-fccadf6bad879466.rlib: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/fft.rs crates/apps/src/is.rs crates/apps/src/params.rs crates/apps/src/quicksort.rs crates/apps/src/runner.rs crates/apps/src/sor.rs crates/apps/src/water.rs

/root/repo/target/release/deps/libdsm_apps-fccadf6bad879466.rmeta: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/fft.rs crates/apps/src/is.rs crates/apps/src/params.rs crates/apps/src/quicksort.rs crates/apps/src/runner.rs crates/apps/src/sor.rs crates/apps/src/water.rs

crates/apps/src/lib.rs:
crates/apps/src/barnes_hut.rs:
crates/apps/src/fft.rs:
crates/apps/src/is.rs:
crates/apps/src/params.rs:
crates/apps/src/quicksort.rs:
crates/apps/src/runner.rs:
crates/apps/src/sor.rs:
crates/apps/src/water.rs:
