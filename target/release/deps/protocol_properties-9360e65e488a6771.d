/root/repo/target/release/deps/protocol_properties-9360e65e488a6771.d: tests/tests/protocol_properties.rs

/root/repo/target/release/deps/protocol_properties-9360e65e488a6771: tests/tests/protocol_properties.rs

tests/tests/protocol_properties.rs:
