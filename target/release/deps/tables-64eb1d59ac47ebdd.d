/root/repo/target/release/deps/tables-64eb1d59ac47ebdd.d: crates/bench/benches/tables.rs

/root/repo/target/release/deps/tables-64eb1d59ac47ebdd: crates/bench/benches/tables.rs

crates/bench/benches/tables.rs:
