/root/repo/target/release/deps/sharded_engine-8253c02876303c15.d: tests/tests/sharded_engine.rs

/root/repo/target/release/deps/sharded_engine-8253c02876303c15: tests/tests/sharded_engine.rs

tests/tests/sharded_engine.rs:
