/root/repo/target/release/deps/water_restructured-cd5db4278c9f9010.d: crates/bench/src/bin/water_restructured.rs

/root/repo/target/release/deps/water_restructured-cd5db4278c9f9010: crates/bench/src/bin/water_restructured.rs

crates/bench/src/bin/water_restructured.rs:
