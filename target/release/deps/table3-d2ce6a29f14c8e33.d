/root/repo/target/release/deps/table3-d2ce6a29f14c8e33.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-d2ce6a29f14c8e33: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
