/root/repo/target/release/deps/ablation_small_objects-d293a116605daace.d: crates/bench/src/bin/ablation_small_objects.rs

/root/repo/target/release/deps/ablation_small_objects-d293a116605daace: crates/bench/src/bin/ablation_small_objects.rs

crates/bench/src/bin/ablation_small_objects.rs:
