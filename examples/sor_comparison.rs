//! Runs Red-Black SOR (one of the paper's applications) under all nine
//! implementations and prints a small comparison table — a miniature of the
//! paper's Tables 4 and 5 for one application.
//!
//! Run with `cargo run --release -p dsm-examples --bin sor_comparison -- [small|tiny|paper]`.

use dsm_apps::sor::{self, SorParams};
use dsm_core::ImplKind;

fn main() {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "small".into());
    let params = match scale.as_str() {
        "paper" => SorParams::paper(),
        "tiny" => SorParams::tiny(),
        _ => SorParams::small(),
    };
    let nprocs = 8;
    println!(
        "Red-Black SOR, {}x{} grid, {} iterations, {} processors",
        params.rows, params.cols, params.iterations, nprocs
    );
    println!(
        "{:>10}  {:>10}  {:>10}  {:>12}  {:>9}",
        "impl", "time (s)", "messages", "data (MB)", "verified"
    );
    for kind in ImplKind::all() {
        let (result, ok) = sor::run(kind, nprocs, &params, false);
        println!(
            "{:>10}  {:>10.2}  {:>10}  {:>12.2}  {:>9}",
            kind.name(),
            result.seconds(),
            result.traffic.messages,
            result.traffic.megabytes(),
            ok
        );
    }
}
