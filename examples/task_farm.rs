//! A domain example that is *not* one of the paper's benchmarks: a task farm
//! that distributes blocks of a shared image for smoothing.  It demonstrates
//! how a new application uses the public API — shared allocation, EC binding
//! (ignored under LRC), exclusive and read-only locks, barriers and work
//! accounting — and how the choice of consistency model changes the traffic
//! the program generates.
//!
//! Run with `cargo run -p dsm-examples --bin task_farm`.

use dsm_core::{BarrierId, BlockGranularity, Dsm, DsmConfig, ImplKind, LockId, LockMode, Model};
use dsm_sim::Work;

const SIDE: usize = 256; // image is SIDE x SIDE f32 pixels
const BLOCK: usize = 32; // each task smooths a BLOCK x BLOCK tile

fn main() -> Result<(), dsm_core::DsmError> {
    for kind in [ImplKind::ec_time(), ImplKind::lrc_diff()] {
        let nprocs = 4;
        let mut dsm = Dsm::new(DsmConfig::with_procs(kind, nprocs))?;
        let image = dsm.alloc_array::<f32>("image", SIDE * SIDE, BlockGranularity::Word);
        let output = dsm.alloc_array::<f32>("output", SIDE * SIDE, BlockGranularity::Word);
        dsm.init_array(image, |i| ((i * 37) % 255) as f32);

        // One lock per output tile; under EC each is bound to its tile rows
        // (a multi-range binding, so the tiles use `bind` rather than
        // `alloc_bound`).
        let tiles_per_side = SIDE / BLOCK;
        if kind.model() == Model::Ec {
            for t in 0..tiles_per_side * tiles_per_side {
                let ty = t / tiles_per_side;
                let ranges = (0..BLOCK).map(|r| {
                    let row = ty * BLOCK + r;
                    let tx = t % tiles_per_side;
                    output.range(row * SIDE + tx * BLOCK, BLOCK)
                });
                dsm.bind(LockId::new(t as u32), ranges);
            }
        }
        let barrier = BarrierId::new(0);

        let result = dsm.run(|ctx| {
            let tiles = tiles_per_side * tiles_per_side;
            let (me, nprocs) = (ctx.node(), ctx.nprocs());
            // Static task assignment: tile t goes to processor t % nprocs.
            for t in (0..tiles).filter(|t| t % nprocs == me) {
                let (ty, tx) = (t / tiles_per_side, t % tiles_per_side);
                // The tile lock is released when the guard drops at the end
                // of the task.
                let mut tile = ctx.lock(LockId::new(t as u32), LockMode::Exclusive);
                for dy in 0..BLOCK {
                    for dx in 0..BLOCK {
                        let (y, x) = (ty * BLOCK + dy, tx * BLOCK + dx);
                        let mut acc = 0.0f32;
                        let mut count = 0.0f32;
                        for (ny, nx) in [(y, x), (y.saturating_sub(1), x), (y, x.saturating_sub(1))]
                        {
                            acc += tile.get(image, ny * SIDE + nx);
                            count += 1.0;
                        }
                        tile.set(output, y * SIDE + x, acc / count);
                        tile.compute(Work::flops(6));
                    }
                }
            }
            ctx.barrier(barrier);
        });

        println!(
            "task farm under {:>9}: {:>7.3} simulated s, {:>6} messages, {:.2} MB",
            kind.name(),
            result.seconds(),
            result.traffic.messages,
            result.traffic.megabytes()
        );
        // Spot-check one smoothed pixel.
        let v = result.final_at(output, 5 * SIDE + 5);
        assert!(v > 0.0);
    }
    Ok(())
}
