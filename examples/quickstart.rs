//! Quickstart: a shared counter and a producer/consumer exchange, run under
//! every implementation of the protocol family — written against the typed
//! API (`SharedArray`/`SharedScalar` handles, `Binding`s, RAII lock guards).
//!
//! Run with `cargo run -p dsm-examples --bin quickstart`.

use dsm_core::{BarrierId, BlockGranularity, Dsm, DsmConfig, ImplKind, LockId, LockMode};
use dsm_sim::Work;

fn main() -> Result<(), dsm_core::DsmError> {
    for kind in ImplKind::all() {
        let nprocs = 4;
        let mut dsm = Dsm::new(DsmConfig::with_procs(kind, nprocs))?;

        // A counter bound to its lock in one step (under EC every shared
        // object must be associated with a lock; under LRC the binding is a
        // no-op, so the same setup code serves all nine implementations) and
        // a vector filled by processor 0.
        let counter = dsm.alloc_bound::<u32>("counter", 1, BlockGranularity::Word, LockId::new(0));
        let data = dsm.alloc_array::<f64>("data", 1024, BlockGranularity::DoubleWord);
        let barrier = BarrierId::new(0);

        let result = dsm.run(|ctx| {
            // Phase 1: processor 0 produces the data (one span write per
            // batch keeps the write trap page-batched).
            if ctx.node() == 0 {
                let produced: Vec<f64> = (0..data.len()).map(|i| (i as f64).sqrt()).collect();
                ctx.write_from(data, 0, &produced);
            }
            ctx.barrier(barrier);

            // Phase 2: everyone consumes part of it and bumps the counter.
            // Note the programmability difference the paper discusses: under
            // LRC the barrier above makes processor 0's writes visible here,
            // but under EC only data bound to an acquired lock is made
            // consistent — `data` is unbound, so the EC runs read their local
            // (initial) copy and transfer far fewer bytes.  An EC program
            // that needs these values would allocate `data` with
            // `alloc_bound` and take a read-only lock here (see the SOR and
            // Water applications).
            let per = data.len() / ctx.nprocs();
            let lo = ctx.node() * per;
            let mut local_sum = 0.0;
            for i in lo..lo + per {
                local_sum += ctx.get(data, i);
            }
            ctx.compute(Work::flops(per as u64));

            // The guard releases the counter lock when it drops.
            let mut guard = ctx.lock(counter.lock(), LockMode::Exclusive);
            guard.modify(counter, 0, |v: u32| v + 1);
            drop(guard);

            assert!(local_sum >= 0.0);
            ctx.barrier(barrier);
        });

        println!(
            "{:>9}: {} procs joined in {:>8.3} simulated seconds, {:>5} messages, {:>8} bytes",
            kind.name(),
            result.final_at(counter, 0),
            result.seconds(),
            result.traffic.messages,
            result.traffic.bytes
        );
        assert_eq!(result.final_at(counter, 0), nprocs as u32);
    }
    Ok(())
}
