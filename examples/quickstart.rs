//! Quickstart: a shared counter and a producer/consumer exchange, run under
//! every one of the six EC/LRC implementations.
//!
//! Run with `cargo run -p dsm-examples --bin quickstart`.

use dsm_core::{BarrierId, BlockGranularity, Dsm, DsmConfig, ImplKind, LockId, LockMode};
use dsm_sim::Work;

fn main() -> Result<(), dsm_core::DsmError> {
    for kind in ImplKind::all() {
        let nprocs = 4;
        let mut dsm = Dsm::new(DsmConfig::with_procs(kind, nprocs))?;

        // A counter protected by a lock and a vector filled by processor 0.
        let counter = dsm.alloc_array::<u32>("counter", 1, BlockGranularity::Word);
        let data = dsm.alloc_array::<f64>("data", 1024, BlockGranularity::DoubleWord);
        let lock = LockId::new(0);
        let barrier = BarrierId::new(0);
        // Under EC every shared object must be bound to a lock; under LRC the
        // same call is a no-op, so the setup code can be shared.
        dsm.bind(lock, vec![counter.whole()]);

        let result = dsm.run(|ctx| {
            // Phase 1: processor 0 produces the data.
            if ctx.node() == 0 {
                for i in 0..data.elems::<f64>() {
                    ctx.write(data, i, (i as f64).sqrt());
                }
            }
            ctx.barrier(barrier);

            // Phase 2: everyone consumes part of it and bumps the counter.
            // Note the programmability difference the paper discusses: under
            // LRC the barrier above makes processor 0's writes visible here,
            // but under EC only data bound to an acquired lock is made
            // consistent — `data` is unbound, so the EC runs read their local
            // (initial) copy and transfer far fewer bytes.  An EC program
            // that needs these values would bind `data` to a lock and take a
            // read-only lock here (see the SOR and Water applications).
            let per = data.elems::<f64>() / ctx.nprocs();
            let lo = ctx.node() * per;
            let mut local_sum = 0.0;
            for i in lo..lo + per {
                local_sum += ctx.read::<f64>(data, i);
            }
            ctx.compute(Work::flops(per as u64));
            ctx.acquire(lock, LockMode::Exclusive);
            let v: u32 = ctx.read(counter, 0);
            ctx.write(counter, 0, v + 1);
            ctx.release(lock);
            assert!(local_sum >= 0.0);
            ctx.barrier(barrier);
        });

        println!(
            "{:>9}: {} procs joined in {:>8.3} simulated seconds, {:>5} messages, {:>8} bytes",
            kind.name(),
            result.read_final::<u32>(counter, 0),
            result.seconds(),
            result.traffic.messages,
            result.traffic.bytes
        );
        assert_eq!(result.read_final::<u32>(counter, 0), nprocs as u32);
    }
    Ok(())
}
