//! Simulated-cluster substrate for the EC/LRC software DSM reproduction.
//!
//! The paper ran on 8 DECstation-5000/240 workstations connected by a 100-Mbps
//! point-to-point ATM LAN, with protocol handlers driven by `SIGIO` and page
//! protection driven by `mprotect`/`SIGSEGV`.  This crate replaces that
//! hardware with an explicit, deterministic *cost model*: every protocol
//! action (message, page fault, twin creation, diff application, timestamp
//! scan, instrumented store, ...) is **counted** and converted into simulated
//! time through [`CostModel`].  The DSM protocols in `dsm-core` drive these
//! counters; the benchmark harness reads them back as execution times, message
//! counts and data volumes — the quantities the paper's tables are built from.
//!
//! # Quick example
//!
//! ```
//! use dsm_sim::{CostModel, NodeClock, NodeStats, MsgKind};
//!
//! let cost = CostModel::atm_lan_1996();
//! let mut clock = NodeClock::new();
//! let mut stats = NodeStats::default();
//!
//! // Charge one lock-request round trip carrying 64 bytes of payload.
//! let t = cost.message(64);
//! clock.advance(t);
//! stats.record_msg(MsgKind::LockRequest, 64);
//!
//! assert!(clock.now().as_nanos() > 0);
//! assert_eq!(stats.messages(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clock;
mod cost;
mod msg;
mod node;
mod stats;
mod work;

pub use clock::{NodeClock, SimTime};
pub use cost::CostModel;
pub use msg::MsgKind;
pub use node::NodeId;
pub use stats::{ClusterStats, NodeStats, RegionSharing, SharingSummary, TrafficReport};
pub use work::Work;
