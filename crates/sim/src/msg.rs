//! Classification of the messages the DSM protocols exchange.

use std::fmt;

/// The kind of a protocol message, used to break down traffic statistics the
/// way the paper's analysis does (lock traffic vs. barrier traffic vs. data
/// fetches at access misses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum MsgKind {
    /// Lock request from the acquirer to the lock's manager.
    LockRequest = 0,
    /// Lock request forwarded from the manager to the last owner.
    LockForward = 1,
    /// Lock grant from the last owner to the acquirer; under EC's update
    /// protocol this carries the consistency payload (diffs or timestamped
    /// blocks) for the data bound to the lock.
    LockGrant = 2,
    /// Release notification for read-only locks (EC) back to the owner.
    LockRelease = 3,
    /// Barrier arrival message from a node to the barrier manager; under LRC
    /// this carries the node's write notices and vector.
    BarrierArrival = 4,
    /// Barrier departure message from the manager to a node; under LRC this
    /// carries the write notices the node has not yet seen.
    BarrierRelease = 5,
    /// Page/data fetch request issued on an access miss (LRC invalidate
    /// protocol), carrying the faulting node's vector.
    DataRequest = 6,
    /// Reply to a [`MsgKind::DataRequest`]: diffs or timestamped blocks.
    DataReply = 7,
}

impl MsgKind {
    /// All message kinds, in a stable order (useful for report tables).
    pub const ALL: [MsgKind; 8] = [
        MsgKind::LockRequest,
        MsgKind::LockForward,
        MsgKind::LockGrant,
        MsgKind::LockRelease,
        MsgKind::BarrierArrival,
        MsgKind::BarrierRelease,
        MsgKind::DataRequest,
        MsgKind::DataReply,
    ];

    /// Dense index of this kind within [`MsgKind::ALL`] — the `#[repr(u8)]`
    /// discriminant, pinned to the `ALL` order by `indices_match_all_order`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            MsgKind::LockRequest => "lock-req",
            MsgKind::LockForward => "lock-fwd",
            MsgKind::LockGrant => "lock-grant",
            MsgKind::LockRelease => "lock-rel",
            MsgKind::BarrierArrival => "barrier-arr",
            MsgKind::BarrierRelease => "barrier-rel",
            MsgKind::DataRequest => "data-req",
            MsgKind::DataReply => "data-reply",
        }
    }

    /// True if this message is part of synchronization (locks/barriers) as
    /// opposed to data movement at access misses.
    pub fn is_synchronization(self) -> bool {
        !matches!(self, MsgKind::DataRequest | MsgKind::DataReply)
    }
}

impl fmt::Display for MsgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_all_order() {
        for (i, k) in MsgKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = MsgKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), MsgKind::ALL.len());
    }

    #[test]
    fn sync_classification() {
        assert!(MsgKind::LockGrant.is_synchronization());
        assert!(MsgKind::BarrierArrival.is_synchronization());
        assert!(!MsgKind::DataRequest.is_synchronization());
        assert!(!MsgKind::DataReply.is_synchronization());
    }
}
