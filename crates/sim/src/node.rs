//! Node (simulated processor) identifiers.

use std::fmt;

/// Identifier of a simulated processor ("node") in the cluster.
///
/// The paper's experiments use 8 DECstation nodes; any number of nodes is
/// supported here.  Node ids are dense and start at zero.
///
/// # Examples
///
/// ```
/// use dsm_sim::NodeId;
///
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(format!("{n}"), "P3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    pub fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the dense index of this node as `usize` (convenient for
    /// indexing per-node vectors).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Iterator over the first `n` node ids (`P0..Pn-1`).
    ///
    /// ```
    /// use dsm_sim::NodeId;
    /// let all: Vec<_> = NodeId::all(3).collect();
    /// assert_eq!(all.len(), 3);
    /// assert_eq!(all[2].index(), 2);
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = NodeId> {
        (0..n as u32).map(NodeId)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32() {
        let n = NodeId::from(7u32);
        assert_eq!(u32::from(n), 7);
        assert_eq!(n.index(), 7);
    }

    #[test]
    fn display() {
        assert_eq!(NodeId::new(0).to_string(), "P0");
        assert_eq!(NodeId::new(12).to_string(), "P12");
    }

    #[test]
    fn ordering_is_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(4), NodeId::new(4));
    }

    #[test]
    fn all_enumerates_dense_ids() {
        let v: Vec<_> = NodeId::all(4).map(|n| n.index()).collect();
        assert_eq!(v, vec![0, 1, 2, 3]);
    }
}
