//! The cost model that converts protocol events into simulated time.
//!
//! All constants are per-event nanosecond charges.  The default
//! [`CostModel::atm_lan_1996`] preset approximates the paper's testbed: 8
//! DECstation-5000/240 (40 MHz MIPS R3400) workstations on a 100-Mbps ATM LAN
//! with software AAL3/4 fragmentation, `SIGIO`-driven request handling and
//! `mprotect`/`SIGSEGV` page protection under Ultrix 4.3.

use crate::{SimTime, Work};

/// Per-event simulated-time charges for every mechanism the DSM protocols use.
///
/// The protocols in `dsm-core` never look at wall-clock time; every action is
/// converted to simulated time through one of these knobs, which is what makes
/// the reproduction deterministic and lets the benchmark harness sweep the
/// environment (e.g. a faster network) without touching protocol code.
///
/// # Examples
///
/// ```
/// use dsm_sim::CostModel;
///
/// let cost = CostModel::atm_lan_1996();
/// // A one-page (4 KiB) reply costs the fixed per-message overhead plus the
/// // wire time of its payload.
/// let t = cost.message(4096);
/// assert!(t > cost.message(0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Fixed cost of sending + receiving one message (protocol stack,
    /// interrupt handling, AAL3/4 fragmentation), excluding wire time.
    pub msg_fixed_ns: u64,
    /// Wire + copy cost per payload byte (100 Mbps ~ 80 ns/byte plus copies).
    pub per_byte_ns: u64,
    /// Cost of fielding a page-protection fault (SIGSEGV delivery, kernel
    /// crossing, handler dispatch).
    pub page_fault_ns: u64,
    /// Cost of one `mprotect`-style protection change on a page.
    pub mprotect_ns: u64,
    /// Cost of servicing an asynchronous request at the responder (SIGIO
    /// interrupt) — charged to the *requester's* round trip in this model.
    pub interrupt_ns: u64,
    /// Extra instructions executed per instrumented shared store
    /// (compiler-instrumentation write trapping).
    pub instr_write_ns: u64,
    /// Cost per word copied when creating a twin.
    pub twin_copy_word_ns: u64,
    /// Cost per word compared when building a diff from a twin.
    pub diff_compare_word_ns: u64,
    /// Cost per word applied when installing a diff or update into memory.
    pub apply_word_ns: u64,
    /// Cost per block scanned during timestamp-based write collection
    /// (also used for scanning software dirty bits).
    pub ts_scan_block_ns: u64,
    /// Cost per page-level dirty bit checked (hierarchical scheme for LRC-ci).
    pub page_bit_check_ns: u64,
    /// Fixed cost of lock-manager bookkeeping per lock operation.
    pub lock_overhead_ns: u64,
    /// Fixed cost of barrier bookkeeping per node per barrier.
    pub barrier_overhead_ns: u64,
    /// Cost of one unit of application work (roughly one floating-point
    /// operation plus its share of loads/stores on a 40 MHz DECstation).
    pub work_unit_ns: u64,
    /// Cost charged per ordinary shared-memory access (load/store issued by
    /// the application through the DSM accessors), independent of trapping.
    pub shared_access_ns: u64,
}

impl CostModel {
    /// Cost model approximating the paper's environment: DECstation-5000/240
    /// nodes on a 100-Mbps ATM LAN (Section 6 of the paper).
    pub fn atm_lan_1996() -> Self {
        CostModel {
            msg_fixed_ns: 150_000, // ~150 us one-way small-message cost
            per_byte_ns: 90,       // 100 Mbps wire + programmed-I/O copies
            page_fault_ns: 70_000,
            mprotect_ns: 25_000,
            interrupt_ns: 60_000,
            instr_write_ns: 120, // a handful of extra instructions at 40 MHz
            twin_copy_word_ns: 50,
            diff_compare_word_ns: 60,
            apply_word_ns: 50,
            ts_scan_block_ns: 55,
            page_bit_check_ns: 40,
            lock_overhead_ns: 10_000,
            barrier_overhead_ns: 15_000,
            work_unit_ns: 200, // ~8 cycles/flop on a 40 MHz R3400
            shared_access_ns: 25,
        }
    }

    /// A "modern cluster" preset (sub-10-microsecond messaging, gigabytes per
    /// second of bandwidth, nanosecond-scale faults).  Used by the ablation
    /// benches to show how the EC/LRC trade-offs shift when communication gets
    /// cheap relative to computation.
    pub fn modern_cluster() -> Self {
        CostModel {
            msg_fixed_ns: 6_000,
            per_byte_ns: 1,
            page_fault_ns: 4_000,
            mprotect_ns: 1_500,
            interrupt_ns: 2_000,
            instr_write_ns: 2,
            twin_copy_word_ns: 1,
            diff_compare_word_ns: 1,
            apply_word_ns: 1,
            ts_scan_block_ns: 1,
            page_bit_check_ns: 1,
            lock_overhead_ns: 300,
            barrier_overhead_ns: 500,
            work_unit_ns: 1,
            shared_access_ns: 1,
        }
    }

    /// A cost model where everything is free.  Useful in unit tests that only
    /// care about protocol state transitions, not timing.
    pub fn free() -> Self {
        CostModel {
            msg_fixed_ns: 0,
            per_byte_ns: 0,
            page_fault_ns: 0,
            mprotect_ns: 0,
            interrupt_ns: 0,
            instr_write_ns: 0,
            twin_copy_word_ns: 0,
            diff_compare_word_ns: 0,
            apply_word_ns: 0,
            ts_scan_block_ns: 0,
            page_bit_check_ns: 0,
            lock_overhead_ns: 0,
            barrier_overhead_ns: 0,
            work_unit_ns: 0,
            shared_access_ns: 0,
        }
    }

    /// Time to transmit one message carrying `payload_bytes` of payload
    /// (fixed per-message overhead + wire time).
    pub fn message(&self, payload_bytes: usize) -> SimTime {
        SimTime::from_nanos(
            self.msg_fixed_ns
                .saturating_add(self.per_byte_ns.saturating_mul(payload_bytes as u64)),
        )
    }

    /// Time for a round trip: request carrying `req_bytes`, remote handler
    /// interrupt, reply carrying `reply_bytes`.
    pub fn round_trip(&self, req_bytes: usize, reply_bytes: usize) -> SimTime {
        self.message(req_bytes) + SimTime::from_nanos(self.interrupt_ns) + self.message(reply_bytes)
    }

    /// Time to field one page-protection fault.
    pub fn page_fault(&self) -> SimTime {
        SimTime::from_nanos(self.page_fault_ns)
    }

    /// Time for one protection change.
    pub fn mprotect(&self) -> SimTime {
        SimTime::from_nanos(self.mprotect_ns)
    }

    /// Time to execute the dirty-bit code for `n` instrumented shared stores.
    pub fn instrumented_writes(&self, n: u64) -> SimTime {
        SimTime::from_nanos(self.instr_write_ns.saturating_mul(n))
    }

    /// Time to create a twin of `words` words.
    pub fn twin_copy(&self, words: u64) -> SimTime {
        SimTime::from_nanos(self.twin_copy_word_ns.saturating_mul(words))
    }

    /// Time to compare `words` words against a twin while building a diff.
    pub fn diff_compare(&self, words: u64) -> SimTime {
        SimTime::from_nanos(self.diff_compare_word_ns.saturating_mul(words))
    }

    /// Time to apply `words` modified words into local memory.
    pub fn apply_words(&self, words: u64) -> SimTime {
        SimTime::from_nanos(self.apply_word_ns.saturating_mul(words))
    }

    /// Time to scan `blocks` timestamp slots (or word-level dirty bits).
    pub fn ts_scan(&self, blocks: u64) -> SimTime {
        SimTime::from_nanos(self.ts_scan_block_ns.saturating_mul(blocks))
    }

    /// Time to check `pages` page-level dirty bits (hierarchical scheme).
    pub fn page_bit_checks(&self, pages: u64) -> SimTime {
        SimTime::from_nanos(self.page_bit_check_ns.saturating_mul(pages))
    }

    /// Fixed lock bookkeeping cost.
    pub fn lock_overhead(&self) -> SimTime {
        SimTime::from_nanos(self.lock_overhead_ns)
    }

    /// Fixed per-node barrier bookkeeping cost.
    pub fn barrier_overhead(&self) -> SimTime {
        SimTime::from_nanos(self.barrier_overhead_ns)
    }

    /// Time to perform the given amount of application work.
    pub fn work(&self, work: Work) -> SimTime {
        SimTime::from_nanos(self.work_unit_ns.saturating_mul(work.units()))
    }

    /// Time charged per shared-memory access made through the DSM accessors.
    pub fn shared_access(&self, n: u64) -> SimTime {
        SimTime::from_nanos(self.shared_access_ns.saturating_mul(n))
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::atm_lan_1996()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_cost_scales_with_payload() {
        let c = CostModel::atm_lan_1996();
        let small = c.message(0);
        let large = c.message(4096);
        assert!(large > small);
        assert_eq!(large.as_nanos() - small.as_nanos(), 4096 * c.per_byte_ns);
    }

    #[test]
    fn round_trip_is_two_messages_plus_interrupt() {
        let c = CostModel::atm_lan_1996();
        let rt = c.round_trip(16, 1024);
        assert_eq!(
            rt.as_nanos(),
            c.message(16).as_nanos() + c.interrupt_ns + c.message(1024).as_nanos()
        );
    }

    #[test]
    fn free_model_charges_nothing() {
        let c = CostModel::free();
        assert_eq!(c.message(10_000), SimTime::ZERO);
        assert_eq!(c.round_trip(100, 100), SimTime::ZERO);
        assert_eq!(c.work(Work::flops(1_000)), SimTime::ZERO);
        assert_eq!(c.twin_copy(1024), SimTime::ZERO);
    }

    #[test]
    fn default_is_the_paper_environment() {
        assert_eq!(CostModel::default(), CostModel::atm_lan_1996());
    }

    #[test]
    fn work_units_convert_linearly() {
        let c = CostModel::atm_lan_1996();
        assert_eq!(c.work(Work::flops(10)).as_nanos(), 10 * c.work_unit_ns);
    }

    #[test]
    fn saturating_behaviour_on_huge_counts() {
        let c = CostModel::atm_lan_1996();
        // Should not panic or wrap.
        let t = c.instrumented_writes(u64::MAX);
        assert!(t.as_nanos() > 0);
    }
}
