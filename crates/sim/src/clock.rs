//! Simulated time and per-node clocks.
//!
//! Simulated time is expressed in integer nanoseconds.  Each node carries a
//! [`NodeClock`] that only ever moves forward; synchronization operations
//! (locks, barriers) merge clocks by taking the maximum, which models the
//! blocking a slower node imposes on a faster one.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or span of) simulated time, in nanoseconds.
///
/// `SimTime` is used both for absolute per-node clock values and for
/// durations charged by the [`CostModel`](crate::CostModel); the arithmetic
/// saturates rather than wrapping so pathological cost configurations degrade
/// gracefully instead of panicking.
///
/// # Examples
///
/// ```
/// use dsm_sim::SimTime;
///
/// let a = SimTime::from_micros(150);
/// let b = SimTime::from_nanos(500);
/// assert_eq!((a + b).as_nanos(), 150_500);
/// assert!(a.as_secs_f64() > 0.0001);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Zero duration / the epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us.saturating_mul(1_000))
    }

    /// Creates a time from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000_000))
    }

    /// Creates a time from seconds expressed as a float.
    ///
    /// Negative or non-finite inputs are clamped to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((secs * 1e9).round() as u64)
    }

    /// Nanoseconds since the epoch (or length of the span).
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds, truncated.
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float (the unit used by the paper's tables).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Saturating difference (`self - other`, or zero if `other` is later).
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Multiplies a span by an integer count (saturating).
    pub fn times(self, count: u64) -> SimTime {
        SimTime(self.0.saturating_mul(count))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// A monotonically non-decreasing per-node simulated clock.
///
/// # Examples
///
/// ```
/// use dsm_sim::{NodeClock, SimTime};
///
/// let mut c = NodeClock::new();
/// c.advance(SimTime::from_micros(10));
/// c.sync_to(SimTime::from_micros(5)); // earlier time: no effect
/// assert_eq!(c.now().as_micros(), 10);
/// c.sync_to(SimTime::from_micros(25));
/// assert_eq!(c.now().as_micros(), 25);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NodeClock {
    now: SimTime,
}

impl NodeClock {
    /// Creates a clock at the epoch.
    pub fn new() -> Self {
        NodeClock { now: SimTime::ZERO }
    }

    /// Current simulated time of this node.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `delta`.
    pub fn advance(&mut self, delta: SimTime) {
        self.now += delta;
    }

    /// Moves the clock forward to `t` if `t` is later than the current time
    /// (used when blocking on a peer: lock hand-off, barrier release).
    pub fn sync_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }

    /// Resets the clock back to the epoch (used between benchmark runs).
    pub fn reset(&mut self) {
        self.now = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert!((SimTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
    }

    #[test]
    fn arithmetic_saturates() {
        let big = SimTime::from_nanos(u64::MAX);
        assert_eq!(big + SimTime::from_nanos(10), big);
        assert_eq!(
            SimTime::from_nanos(3) - SimTime::from_nanos(10),
            SimTime::ZERO
        );
        assert_eq!(big.times(3), big);
    }

    #[test]
    fn sum_and_minmax() {
        let total: SimTime = [1u64, 2, 3].iter().map(|&n| SimTime::from_nanos(n)).sum();
        assert_eq!(total.as_nanos(), 6);
        assert_eq!(
            SimTime::from_nanos(4)
                .max(SimTime::from_nanos(9))
                .as_nanos(),
            9
        );
        assert_eq!(
            SimTime::from_nanos(4)
                .min(SimTime::from_nanos(9))
                .as_nanos(),
            4
        );
    }

    #[test]
    fn clock_is_monotone() {
        let mut c = NodeClock::new();
        c.advance(SimTime::from_nanos(100));
        c.sync_to(SimTime::from_nanos(50));
        assert_eq!(c.now().as_nanos(), 100);
        c.sync_to(SimTime::from_nanos(200));
        assert_eq!(c.now().as_nanos(), 200);
        c.reset();
        assert_eq!(c.now(), SimTime::ZERO);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
    }
}
