//! Per-node and cluster-wide execution statistics.
//!
//! These counters are the raw material for the paper's analysis: execution
//! time comes from the simulated clocks, while message counts and data volumes
//! (e.g. "LRC-diff sends 29.9 MB for Barnes-Hut while EC-time sends 9.5 MB")
//! come straight from these statistics.

use std::fmt;

use crate::MsgKind;

/// Counters collected by a single simulated node over one application run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeStats {
    msgs: [u64; MsgKind::ALL.len()],
    bytes: [u64; MsgKind::ALL.len()],
    /// Page-protection faults taken (twinning write trapping, LRC access
    /// misses are counted separately as `access_misses`).
    pub write_faults: u64,
    /// Access misses (reads or writes to an invalid page under LRC).
    pub access_misses: u64,
    /// Twins created.
    pub twins_created: u64,
    /// Words copied while creating twins.
    pub twin_words: u64,
    /// Diffs created.
    pub diffs_created: u64,
    /// Modified words encoded into diffs.
    pub diff_words: u64,
    /// Diffs applied to local memory.
    pub diffs_applied: u64,
    /// Words applied into local memory from diffs or update payloads.
    pub words_applied: u64,
    /// Timestamp (or dirty-bit) slots scanned during write collection.
    pub ts_blocks_scanned: u64,
    /// Page-level dirty bits checked (hierarchical LRC-ci scheme).
    pub page_bits_checked: u64,
    /// Instrumented shared stores executed (compiler-instrumentation trapping).
    pub instrumented_writes: u64,
    /// Shared-memory accesses issued by the application.
    pub shared_accesses: u64,
    /// Lock acquires performed.
    pub lock_acquires: u64,
    /// Lock acquires that were granted locally without any message.
    pub local_lock_acquires: u64,
    /// Barriers participated in.
    pub barriers: u64,
    /// Application work units charged.
    pub work_units: u64,
    /// Write notices received (LRC).
    pub write_notices_received: u64,
    /// Pages invalidated on receipt of write notices (LRC).
    pub pages_invalidated: u64,
    /// Buffer-pool takes served by recycling a pooled buffer (pool hits).
    /// Filled in by the runtime from the node's `BufferPool` after the run.
    pub pool_recycled: u64,
    /// Buffer-pool takes that had to allocate fresh (pool misses).
    pub pool_allocated: u64,
}

impl NodeStats {
    /// Creates an empty statistics record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one outbound message of the given kind and payload size.
    pub fn record_msg(&mut self, kind: MsgKind, payload_bytes: usize) {
        self.msgs[kind.index()] += 1;
        self.bytes[kind.index()] += payload_bytes as u64;
    }

    /// Total messages sent by this node.
    pub fn messages(&self) -> u64 {
        self.msgs.iter().sum()
    }

    /// Total payload bytes sent by this node.
    pub fn bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Messages of one kind.
    pub fn messages_of(&self, kind: MsgKind) -> u64 {
        self.msgs[kind.index()]
    }

    /// Payload bytes of one kind.
    pub fn bytes_of(&self, kind: MsgKind) -> u64 {
        self.bytes[kind.index()]
    }

    /// Merges another node's counters into this one (used for cluster totals).
    pub fn merge(&mut self, other: &NodeStats) {
        for i in 0..MsgKind::ALL.len() {
            self.msgs[i] += other.msgs[i];
            self.bytes[i] += other.bytes[i];
        }
        self.write_faults += other.write_faults;
        self.access_misses += other.access_misses;
        self.twins_created += other.twins_created;
        self.twin_words += other.twin_words;
        self.diffs_created += other.diffs_created;
        self.diff_words += other.diff_words;
        self.diffs_applied += other.diffs_applied;
        self.words_applied += other.words_applied;
        self.ts_blocks_scanned += other.ts_blocks_scanned;
        self.page_bits_checked += other.page_bits_checked;
        self.instrumented_writes += other.instrumented_writes;
        self.shared_accesses += other.shared_accesses;
        self.lock_acquires += other.lock_acquires;
        self.local_lock_acquires += other.local_lock_acquires;
        self.barriers += other.barriers;
        self.work_units += other.work_units;
        self.write_notices_received += other.write_notices_received;
        self.pages_invalidated += other.pages_invalidated;
        self.pool_recycled += other.pool_recycled;
        self.pool_allocated += other.pool_allocated;
    }
}

/// Aggregated statistics for a whole cluster run, one entry per node.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterStats {
    nodes: Vec<NodeStats>,
}

impl ClusterStats {
    /// Builds cluster statistics from per-node records.
    pub fn from_nodes(nodes: Vec<NodeStats>) -> Self {
        ClusterStats { nodes }
    }

    /// Number of nodes in the run.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Per-node statistics.
    pub fn node(&self, index: usize) -> &NodeStats {
        &self.nodes[index]
    }

    /// Iterator over per-node statistics.
    pub fn iter(&self) -> impl Iterator<Item = &NodeStats> {
        self.nodes.iter()
    }

    /// Sum of all nodes' counters.
    pub fn total(&self) -> NodeStats {
        let mut total = NodeStats::new();
        for n in &self.nodes {
            total.merge(n);
        }
        total
    }

    /// Builds a compact traffic report (the quantities quoted in Section 7.2
    /// of the paper: total messages and total data transferred).
    pub fn traffic(&self) -> TrafficReport {
        let t = self.total();
        TrafficReport {
            messages: t.messages(),
            bytes: t.bytes(),
            sync_messages: MsgKind::ALL
                .iter()
                .filter(|k| k.is_synchronization())
                .map(|k| t.messages_of(*k))
                .sum(),
            data_messages: MsgKind::ALL
                .iter()
                .filter(|k| !k.is_synchronization())
                .map(|k| t.messages_of(*k))
                .sum(),
            access_misses: t.access_misses,
            write_faults: t.write_faults,
            diffs_created: t.diffs_created,
            lock_acquires: t.lock_acquires,
            barriers: t.barriers,
            lock_transfers: 0,
            sharing: SharingSummary::default(),
        }
    }
}

/// Cluster-wide roll-up of the per-page sharing statistics the adaptive data
/// policy feeds on: how often pages were published and missed, how many diff
/// bytes those publishes encoded, and the widest writer set any single region
/// accumulated.  Like [`TrafficReport::lock_transfers`] this lives outside
/// any node's [`NodeStats`] — the engine owns the per-page accumulators, so
/// the runtime fills it in after the run; reports built directly from
/// [`ClusterStats::traffic`] leave it zeroed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharingSummary {
    /// Page publishes recorded across all regions.
    pub publishes: u64,
    /// Access misses recorded against page sharing state.
    pub misses: u64,
    /// Encoded diff bytes across all publishes (unsuppressed sizes, so the
    /// figure is comparable across data policies).
    pub diff_bytes: u64,
    /// The largest distinct-writer count any single region saw.
    pub max_region_writers: u32,
}

/// Per-region aggregate of the page sharing statistics, for the bench bins'
/// JSON rows and the adaptive policy's observability.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegionSharing {
    /// Region name.
    pub region: String,
    /// Pages in the region.
    pub pages: u64,
    /// Publishes summed over the region's pages.
    pub publishes: u64,
    /// Misses summed over the region's pages.
    pub misses: u64,
    /// Encoded diff bytes summed over the region's pages.
    pub diff_bytes: u64,
    /// Distinct nodes that ever published to any page of the region.
    pub distinct_writers: u32,
}

/// Headline traffic numbers for one application run, mirroring the in-text
/// statistics the paper reports (message counts and megabytes moved).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficReport {
    /// Total messages exchanged.
    pub messages: u64,
    /// Total payload bytes exchanged.
    pub bytes: u64,
    /// Messages that are part of synchronization (locks, barriers).
    pub sync_messages: u64,
    /// Messages that fetch data at access misses.
    pub data_messages: u64,
    /// Access misses taken (LRC).
    pub access_misses: u64,
    /// Write-protection faults taken (twinning).
    pub write_faults: u64,
    /// Diffs created.
    pub diffs_created: u64,
    /// Lock acquires.
    pub lock_acquires: u64,
    /// Barrier episodes (summed over nodes).
    pub barriers: u64,
    /// Lock ownership transfers between processors.  This counter lives in
    /// the runtime's sharded lock table rather than in any node's
    /// [`NodeStats`], so it is aggregated by the DSM runtime after the run;
    /// reports built directly from [`ClusterStats::traffic`] leave it zero.
    pub lock_transfers: u64,
    /// Roll-up of the per-page sharing statistics (see [`SharingSummary`]);
    /// filled in by the runtime, zero in reports built directly from
    /// [`ClusterStats::traffic`].  Not part of the [`Display`](fmt::Display)
    /// line, which older goldens fix byte-for-byte.
    pub sharing: SharingSummary,
}

impl TrafficReport {
    /// Total data volume in megabytes (the unit used in the paper's text).
    pub fn megabytes(&self) -> f64 {
        self.bytes as f64 / 1e6
    }
}

impl fmt::Display for TrafficReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} msgs ({} sync, {} data), {:.2} MB, {} misses, {} faults, {} diffs, {} acquires, \
             {} transfers",
            self.messages,
            self.sync_messages,
            self.data_messages,
            self.megabytes(),
            self.access_misses,
            self.write_faults,
            self.diffs_created,
            self.lock_acquires,
            self.lock_transfers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query_messages() {
        let mut s = NodeStats::new();
        s.record_msg(MsgKind::LockRequest, 16);
        s.record_msg(MsgKind::LockGrant, 4096);
        s.record_msg(MsgKind::LockGrant, 64);
        assert_eq!(s.messages(), 3);
        assert_eq!(s.bytes(), 16 + 4096 + 64);
        assert_eq!(s.messages_of(MsgKind::LockGrant), 2);
        assert_eq!(s.bytes_of(MsgKind::LockRequest), 16);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = NodeStats::new();
        a.record_msg(MsgKind::DataRequest, 8);
        a.write_faults = 3;
        a.work_units = 100;
        a.pool_recycled = 2;
        let mut b = NodeStats::new();
        b.record_msg(MsgKind::DataRequest, 8);
        b.record_msg(MsgKind::DataReply, 2048);
        b.write_faults = 2;
        b.work_units = 50;
        b.pool_recycled = 3;
        b.pool_allocated = 1;
        a.merge(&b);
        assert_eq!(a.messages(), 3);
        assert_eq!(a.write_faults, 5);
        assert_eq!(a.work_units, 150);
        assert_eq!(a.pool_recycled, 5);
        assert_eq!(a.pool_allocated, 1);
    }

    #[test]
    fn cluster_totals_and_traffic() {
        let mut n0 = NodeStats::new();
        n0.record_msg(MsgKind::BarrierArrival, 32);
        n0.lock_acquires = 4;
        let mut n1 = NodeStats::new();
        n1.record_msg(MsgKind::DataReply, 1000);
        n1.access_misses = 1;
        let cluster = ClusterStats::from_nodes(vec![n0, n1]);
        assert_eq!(cluster.num_nodes(), 2);
        let t = cluster.traffic();
        assert_eq!(t.messages, 2);
        assert_eq!(t.sync_messages, 1);
        assert_eq!(t.data_messages, 1);
        assert_eq!(t.bytes, 1032);
        assert_eq!(t.lock_acquires, 4);
        assert!((t.megabytes() - 0.001032).abs() < 1e-9);
    }

    #[test]
    fn traffic_report_display_is_nonempty() {
        let t = TrafficReport::default();
        assert!(!t.to_string().is_empty());
    }
}
