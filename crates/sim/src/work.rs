//! Application work accounting.

use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// An amount of application computation, measured in abstract "work units"
/// (roughly one floating-point operation together with its share of loads,
/// stores and loop overhead).
///
/// The applications in `dsm-apps` charge work explicitly — e.g. one SOR
/// element update charges [`Work::flops`]`(6)` — and the
/// [`CostModel`](crate::CostModel) converts accumulated work into simulated
/// time.  This keeps the reproduction deterministic and independent of the
/// speed of the host running the simulation.
///
/// # Examples
///
/// ```
/// use dsm_sim::Work;
///
/// let per_element = Work::flops(6);
/// let row: Work = (0..1000).map(|_| per_element).sum();
/// assert_eq!(row.units(), 6000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Work(u64);

impl Work {
    /// No work.
    pub const ZERO: Work = Work(0);

    /// Work equivalent to `n` floating-point operations.
    pub fn flops(n: u64) -> Self {
        Work(n)
    }

    /// Work equivalent to `n` generic integer/pointer operations
    /// (charged at the same unit rate; the distinction is documentation).
    pub fn ops(n: u64) -> Self {
        Work(n)
    }

    /// Raw number of work units.
    pub fn units(self) -> u64 {
        self.0
    }

    /// Scales the work by an integer factor (saturating).
    pub fn times(self, n: u64) -> Work {
        Work(self.0.saturating_mul(n))
    }
}

impl Add for Work {
    type Output = Work;
    fn add(self, rhs: Work) -> Work {
        Work(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Work {
    fn add_assign(&mut self, rhs: Work) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sum for Work {
    fn sum<I: Iterator<Item = Work>>(iter: I) -> Work {
        iter.fold(Work::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation() {
        let mut w = Work::ZERO;
        w += Work::flops(10);
        w += Work::ops(5);
        assert_eq!(w.units(), 15);
    }

    #[test]
    fn scaling_saturates() {
        assert_eq!(Work::flops(3).times(4).units(), 12);
        assert_eq!(Work::flops(u64::MAX).times(2).units(), u64::MAX);
    }

    #[test]
    fn sum_over_iterator() {
        let w: Work = (1..=4).map(Work::flops).sum();
        assert_eq!(w.units(), 10);
    }
}
