//! Property-style tests for the data-plane building blocks.
//!
//! The container has no network access, so instead of `proptest` these use a
//! small deterministic xorshift generator: every case is reproducible from
//! its printed seed, and the loops cover the same input shapes the original
//! properties did.

use dsm_mem::testutil::TestRng as Rng;
use dsm_mem::{
    page_of, pages_in, wire, BitSet, BlockGranularity, BufferPool, Diff, FlatUpdate, MemRange,
    RegionId, VectorClock, PAGE_SIZE,
};
use dsm_sim::NodeId;

const CASES: u64 = 64;

/// Diffs built from explicit dirty blocks (compiler instrumentation) always
/// cover at least the blocks a value comparison would find.
#[test]
fn instrumented_diff_covers_value_diff() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed + 1);
        let len = rng.in_range(32, 256);
        let twin = rng.bytes(len);
        let mut current = twin.clone();
        let mut dirty_blocks = Vec::new();
        for _ in 0..rng.below(32) {
            let p = rng.below(len);
            current[p] = rng.byte();
            dirty_blocks.push(p / 4);
        }
        // `from_blocks` consumes the indices streaming (no per-call scratch),
        // so they must arrive in scan order, as a dirty-bit walk yields them.
        dirty_blocks.sort_unstable();
        let by_value = Diff::from_compare(&twin, &current, 0, BlockGranularity::Word);
        let by_bits = Diff::from_blocks(&current, 0, dirty_blocks, BlockGranularity::Word);
        assert!(
            by_bits.modified_blocks() >= by_value.modified_blocks(),
            "seed {seed}"
        );
        let mut rebuilt = twin.clone();
        by_bits.apply(&mut rebuilt);
        assert_eq!(rebuilt, current, "seed {seed}");
    }
}

/// The word-chunked `from_compare` is byte-identical to the retained naive
/// block-compare reference, across both granularities, random lengths
/// (including tails not divisible by 8) and random twin/current pairs.
#[test]
fn chunked_compare_is_byte_identical_to_reference() {
    for seed in 0..CASES * 4 {
        let mut rng = Rng::new(seed + 4000);
        // Lengths deliberately straddle the 8-byte chunk boundary shapes.
        let len = rng.in_range(1, 300);
        let twin = rng.bytes(len);
        let mut current = twin.clone();
        // A mix of single-byte flips and short dirty spans.
        for _ in 0..rng.below(24) {
            let p = rng.below(len);
            if rng.bool() {
                current[p] = rng.byte();
            } else {
                let run_end = (p + rng.in_range(1, 16)).min(len);
                for b in &mut current[p..run_end] {
                    *b = rng.byte();
                }
            }
        }
        let base = rng.below(8192);
        for gran in [BlockGranularity::Word, BlockGranularity::DoubleWord] {
            let fast = Diff::from_compare(&twin, &current, base, gran);
            let slow = Diff::from_compare_reference(&twin, &current, base, gran);
            assert_eq!(fast, slow, "seed {seed} len {len} gran {gran}");
            assert_eq!(fast.encoded_size(), slow.encoded_size(), "seed {seed}");
            assert_eq!(
                fast.modified_blocks(),
                slow.modified_blocks(),
                "seed {seed}"
            );
            // Applying either reproduces `current` from the twin.
            let mut rebuilt = vec![0u8; base + len];
            rebuilt[base..].copy_from_slice(&twin);
            fast.apply(&mut rebuilt);
            assert_eq!(&rebuilt[base..], &current[..], "seed {seed}");
        }
    }
}

/// Diffs built from a bitset's runs equal diffs built from its indices, and
/// pooled buffers round-trip through the twin-copy shape.
#[test]
fn bit_run_diffs_match_index_diffs() {
    let mut pool = BufferPool::new();
    for seed in 0..CASES {
        let mut rng = Rng::new(seed + 5000);
        let len = rng.in_range(16, 512);
        let nblocks = BlockGranularity::Word.blocks_in(len);
        let current = rng.bytes(len);
        let mut bits = BitSet::new(nblocks);
        for _ in 0..rng.below(16) {
            bits.set(rng.below(nblocks));
        }
        let by_runs = Diff::from_block_runs(&current, 0, bits.iter_runs(), BlockGranularity::Word);
        let by_index = Diff::from_blocks(&current, 0, bits.iter_set(), BlockGranularity::Word);
        assert_eq!(by_runs, by_index, "seed {seed}");
        // A pooled twin copy is byte-identical to a fresh allocation.
        let twin = pool.take_copy(&current);
        assert_eq!(twin, current, "seed {seed}");
        pool.put(twin);
    }
    // After the warm-up take, every later copy reused a pooled buffer.
    assert_eq!(pool.allocated(), 1);
}

/// The encoded size of a diff is at least its payload and grows with the
/// number of runs.
#[test]
fn diff_encoded_size_bounds() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed + 1000);
        let len = rng.in_range(64, 512);
        let twin = rng.bytes(len);
        let mut current = twin.clone();
        for _ in 0..rng.below(64) {
            let p = rng.below(len);
            current[p] ^= 0xff;
        }
        let d = Diff::from_compare(&twin, &current, 0, BlockGranularity::Word);
        assert!(d.encoded_size() >= d.modified_bytes(), "seed {seed}");
        assert!(
            d.encoded_size() <= d.modified_bytes() + 8 * d.runs().len(),
            "seed {seed}"
        );
    }
}

/// BitSet set/clear/count behave like a reference `Vec<bool>`.
#[test]
fn bitset_matches_reference() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed + 2000);
        let mut bits = BitSet::new(200);
        let mut reference = [false; 200];
        for _ in 0..rng.below(200) {
            let idx = rng.below(200);
            if rng.bool() {
                bits.set(idx);
                reference[idx] = true;
            } else {
                bits.clear(idx);
                reference[idx] = false;
            }
        }
        assert_eq!(
            bits.count(),
            reference.iter().filter(|&&b| b).count(),
            "seed {seed}"
        );
        let from_iter: Vec<usize> = bits.iter_set().collect();
        let expected: Vec<usize> = reference
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(from_iter, expected, "seed {seed}");
    }
}

/// The wire codec round-trips diffs exactly — across both granularities,
/// lengths with non-multiple-of-8 tails, empty diffs (no change) and full
/// pages (every byte changed) — and the decoded diff applies identically.
#[test]
fn wire_diff_round_trips() {
    for seed in 0..CASES * 2 {
        let mut rng = Rng::new(seed + 6000);
        // Shapes: empty page, full page, and random partial modifications
        // over lengths that straddle the 8-byte chunk boundary.
        let len = match seed % 4 {
            0 => PAGE_SIZE,
            _ => rng.in_range(1, 300),
        };
        let twin = rng.bytes(len);
        let mut current = twin.clone();
        match seed % 3 {
            0 => {} // empty: nothing modified
            1 => {
                // full: every byte rewritten
                for b in &mut current {
                    *b = b.wrapping_add(1);
                }
            }
            _ => {
                for _ in 0..rng.below(24) {
                    let p = rng.below(len);
                    let run_end = (p + rng.in_range(1, 16)).min(len);
                    for b in &mut current[p..run_end] {
                        *b = rng.byte();
                    }
                }
            }
        }
        let base = rng.below(4096);
        for gran in [BlockGranularity::Word, BlockGranularity::DoubleWord] {
            let d = Diff::from_compare(&twin, &current, base, gran);
            let mut buf = Vec::new();
            wire::encode_diff(&d, &mut buf);
            let (back, used) = wire::decode_diff(&buf).expect("well-formed encoding");
            assert_eq!(used, buf.len(), "seed {seed}");
            assert_eq!(back, d, "seed {seed} gran {gran}");
            assert_eq!(back.encoded_size(), d.encoded_size(), "seed {seed}");
            let mut a = vec![0u8; base + len];
            let mut b = a.clone();
            a[base..].copy_from_slice(&twin);
            b[base..].copy_from_slice(&twin);
            d.apply(&mut a);
            back.apply(&mut b);
            assert_eq!(a, b, "seed {seed} gran {gran}");
        }
    }
}

/// The wire codec round-trips flattened update snapshots, including empty
/// ones and ones whose stamp pattern covers every block.
#[test]
fn wire_flat_update_round_trips() {
    for seed in 0..CASES * 2 {
        let mut rng = Rng::new(seed + 7000);
        let nblocks = rng.in_range(0, 200);
        let stamps: Vec<u64> = (0..nblocks)
            .map(|_| match seed % 3 {
                0 => 0,                   // never published
                1 => 7,                   // one full-coverage run
                _ => rng.below(4) as u64, // mixed runs and gaps
            })
            .collect();
        let mut u = FlatUpdate::new();
        u.rebuild_from_stamps(&stamps);
        let mut buf = Vec::new();
        wire::encode_flat_update(&u, &mut buf);
        let (back, used) = wire::decode_flat_update(&buf).expect("well-formed encoding");
        assert_eq!(used, buf.len(), "seed {seed}");
        assert_eq!(back.runs(), u.runs(), "seed {seed}");
    }
}

/// The wire codec round-trips vector clocks of any width, including empty
/// clocks (EC frames) and wide 256-entry clocks (the scaling sweep shape).
#[test]
fn wire_vclock_round_trips() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed + 8000);
        let n = match seed % 4 {
            0 => 0,
            1 => 256,
            _ => rng.in_range(1, 64),
        };
        let mut c = VectorClock::new(n);
        for i in 0..n {
            c.set_entry(NodeId::new(i as u32), rng.next_u64() as u32);
        }
        let mut buf = Vec::new();
        wire::encode_vclock(&c, &mut buf);
        assert_eq!(buf.len(), 4 + c.wire_size(), "seed {seed}");
        let (back, used) = wire::decode_vclock(&buf).expect("well-formed encoding");
        assert_eq!(used, buf.len(), "seed {seed}");
        assert_eq!(back, c, "seed {seed}");
    }
}

/// Random publish frames survive encode → length-prefixed stream → decode →
/// apply: the reassembled frame rebuilds the same region bytes the original
/// runs carried.
#[test]
fn wire_frame_round_trips_through_stream() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed + 9000);
        let region_len = rng.in_range(64, 1024);
        let mut region = rng.bytes(region_len);
        let mut frame = wire::WireFrame {
            region: rng.below(8) as u32,
            seq: rng.next_u64() % 1000,
            clock: (0..rng.below(16)).map(|_| rng.next_u64() as u32).collect(),
            runs: Vec::new(),
            payload: Vec::new(),
        };
        // Disjoint increasing runs with fresh bytes.
        let mut at = 0usize;
        while at + 4 <= region_len && frame.runs.len() < 8 {
            at += rng.below(96);
            let len = rng.in_range(1, 32).min(region_len.saturating_sub(at));
            if len == 0 {
                break;
            }
            let bytes = rng.bytes(len);
            frame.runs.push((at as u32, len as u32));
            frame.payload.extend_from_slice(&bytes);
            at += len + 1;
        }
        let mut stream = Vec::new();
        let mut body = Vec::new();
        frame.encode_into(&mut body);
        wire::write_msg(&mut stream, wire::WireMsgKind::Frame, &body).expect("write");
        wire::write_msg(&mut stream, wire::WireMsgKind::Fin, &[]).expect("write");
        let mut r = &stream[..];
        let mut msg = Vec::new();
        assert_eq!(
            wire::read_msg(&mut r, &mut msg).expect("read"),
            Some(wire::WireMsgKind::Frame),
            "seed {seed}"
        );
        let back = wire::WireFrame::decode(&msg).expect("well-formed frame");
        assert_eq!(back, frame, "seed {seed}");
        let mut expect = region.clone();
        assert!(frame.apply(&mut expect), "seed {seed}");
        assert!(back.apply(&mut region), "seed {seed}");
        assert_eq!(region, expect, "seed {seed}");
        assert_eq!(
            wire::read_msg(&mut r, &mut msg).expect("read"),
            Some(wire::WireMsgKind::Fin)
        );
        assert_eq!(wire::read_msg(&mut r, &mut msg).expect("read"), None);
    }
}

/// Delta-encoded clock streams reconstruct the exact `VectorClock` sequence:
/// a `CompactClock` encoder and an independent decoder walk a random clock
/// history (sparse bumps, dense bumps, big jumps, idle steps) and the
/// decoder's baseline must equal the sender's clock after every record.
#[test]
fn compact_clock_stream_tracks_vector_clocks() {
    use dsm_mem::CompactClock;
    for seed in 0..CASES {
        let mut rng = Rng::new(seed + 10_000);
        let n = match seed % 4 {
            0 => 1,
            1 => 256, // the scaling-sweep shape
            _ => rng.in_range(2, 64),
        };
        let mut clock = VectorClock::new(n);
        let mut enc = CompactClock::new();
        let mut dec = CompactClock::new();
        let mut buf = Vec::new();
        for step in 0..rng.in_range(2, 12) {
            match rng.below(4) {
                // Sparse: bump a few entries.
                0 => {
                    for _ in 0..rng.in_range(1, 4).min(n) {
                        clock.bump(NodeId::new(rng.below(n) as u32));
                    }
                }
                // Dense: everyone advances by one (the global-lock shape —
                // must encode as a single run).
                1 => {
                    for i in 0..n {
                        clock.bump(NodeId::new(i as u32));
                    }
                }
                // A big jump on one entry.
                2 => {
                    let i = NodeId::new(rng.below(n) as u32);
                    clock.set_entry(i, clock.entry(i) + rng.next_u64() as u32 % 100_000);
                }
                // Idle: publish again with an unchanged clock.
                _ => {}
            }
            buf.clear();
            let full = step == 0;
            let rec = enc.encode_next(clock.entries(), full, &mut buf);
            assert_eq!(rec, buf.len(), "seed {seed} step {step}");
            let used = dec
                .decode_next(&buf, full)
                .unwrap_or_else(|| panic!("seed {seed} step {step}: decode failed"));
            assert_eq!(used, buf.len(), "seed {seed} step {step}");
            assert_eq!(dec.baseline(), clock.entries(), "seed {seed} step {step}");
            if matches!(seed % 4, 1) && rng.below(4) == 1 {
                // Dense advance of 256 entries must stay O(runs), not
                // O(nprocs): one run is at most ~16 bytes of record.
                assert!(rec <= 3 + 16, "seed {seed} step {step}: record {rec}B");
            }
        }
        // First contact (full mode) resets any stale receiver baseline.
        buf.clear();
        enc.encode_next(clock.entries(), true, &mut buf);
        let mut fresh = CompactClock::new();
        assert!(fresh.decode_next(&buf, true).is_some(), "seed {seed}");
        assert_eq!(fresh.baseline(), clock.entries(), "seed {seed}");
    }
}

/// `ClockDelta` is exact over random base/new pairs — including all-zero
/// clocks, identical clocks and length mismatches — and survives its wire
/// encoding; truncated records never decode.
#[test]
fn clock_delta_round_trips_and_rejects_truncation() {
    use dsm_mem::ClockDelta;
    for seed in 0..CASES {
        let mut rng = Rng::new(seed + 11_000);
        let n = rng.in_range(1, 48);
        let gen = |rng: &mut Rng, zeros: bool| -> Vec<u32> {
            (0..n)
                .map(|_| {
                    if zeros || rng.below(3) == 0 {
                        0
                    } else {
                        rng.next_u64() as u32 % 1000
                    }
                })
                .collect()
        };
        let base = gen(&mut rng, seed % 5 == 0);
        let new = if seed % 7 == 0 {
            base.clone() // identical: the delta must be empty
        } else {
            gen(&mut rng, false)
        };
        let delta = ClockDelta::from_entries(&base, &new);
        if new == base {
            assert!(delta.is_empty(), "seed {seed}");
        }
        let mut buf = Vec::new();
        delta.encode_into(&mut buf);
        assert_eq!(delta.encoded_len(), buf.len(), "seed {seed}");
        let (back, used) = ClockDelta::decode(&buf).expect("well-formed delta");
        assert_eq!(used, buf.len(), "seed {seed}");
        let mut rebuilt = VectorClock::new(n);
        for (i, &b) in base.iter().enumerate() {
            rebuilt.set_entry(NodeId::new(i as u32), b);
        }
        back.apply_to_clock(&mut rebuilt);
        assert_eq!(rebuilt.entries(), &new[..], "seed {seed}");
        // Every strict prefix of a non-empty record must fail to decode
        // cleanly or consume fewer bytes than the full record.
        if !delta.is_empty() {
            for cut in 0..buf.len() {
                if let Some((_, used)) = ClockDelta::decode(&buf[..cut]) {
                    assert!(used < buf.len(), "seed {seed} cut {cut}");
                }
            }
        }
    }
}

/// Random frame sequences survive the full v2 batch wire: encode with a
/// sender `CompactClock`, frame into a batch message, stream it, and decode
/// with an independent receiver codec — clocks, runs and payloads all
/// reconstruct exactly, and truncated batches are rejected.
#[test]
fn wire_v2_batch_round_trips() {
    use dsm_mem::CompactClock;
    for seed in 0..CASES {
        let mut rng = Rng::new(seed + 12_000);
        let nprocs = rng.in_range(1, 32);
        let region_len = rng.in_range(64, 512);
        let mut enc = CompactClock::new();
        let mut clock = VectorClock::new(nprocs);
        let mut batch = Vec::new();
        wire::begin_batch(&mut batch);
        let nframes = rng.in_range(1, 6);
        let mut expect: Vec<wire::WireFrame> = Vec::new();
        let mut frame_buf = Vec::new();
        for f in 0..nframes {
            clock.bump(NodeId::new(rng.below(nprocs) as u32));
            let data = rng.bytes(region_len);
            let mut runs = Vec::new();
            let mut at = 0usize;
            while at + 1 < region_len && runs.len() < 4 {
                at += rng.below(64);
                let len = rng.in_range(1, 24).min(region_len.saturating_sub(at));
                if len == 0 {
                    break;
                }
                runs.push((at as u32, len as u32));
                at += len + 1;
            }
            let mut payload = Vec::new();
            for &(off, len) in &runs {
                payload.extend_from_slice(&data[off as usize..(off + len) as usize]);
            }
            let region = rng.below(4) as u32;
            frame_buf.clear();
            wire::encode_frame_v2(
                &wire::FrameV2 {
                    region,
                    seq: f as u64 + 1,
                    clock: clock.entries(),
                    full: f == 0,
                    runs: &runs,
                    data: &data,
                },
                &mut enc,
                &mut frame_buf,
            );
            dsm_mem::put_varint(&mut batch, frame_buf.len() as u64);
            batch.extend_from_slice(&frame_buf);
            expect.push(wire::WireFrame {
                region,
                seq: f as u64 + 1,
                clock: clock.entries().to_vec(),
                runs,
                payload,
            });
        }
        wire::finish_batch(&mut batch, nframes as u32);

        // Stream it and decode with a fresh receiver codec.
        let mut stream = Vec::new();
        let body = &batch[4 + 1..]; // strip the u32 length + kind byte
        wire::write_msg(&mut stream, wire::WireMsgKind::Batch, body).expect("write");
        let mut r = &stream[..];
        let mut msg = Vec::new();
        assert_eq!(
            wire::read_msg(&mut r, &mut msg).expect("read"),
            Some(wire::WireMsgKind::Batch),
            "seed {seed}"
        );
        let mut dec = CompactClock::new();
        let mut pool = BufferPool::new();
        let mut frames = wire::BatchReader::new(&msg).expect("frame count");
        for (f, want) in expect.iter().enumerate() {
            let got = frames
                .next(&mut dec, &mut pool)
                .unwrap_or_else(|| panic!("seed {seed} frame {f}: decode failed"));
            assert_eq!(got.region, want.region, "seed {seed} frame {f}");
            assert_eq!(got.seq, want.seq, "seed {seed} frame {f}");
            assert_eq!(got.clock, want.clock, "seed {seed} frame {f}");
            assert_eq!(got.runs, want.runs, "seed {seed} frame {f}");
            assert_eq!(got.payload, want.payload, "seed {seed} frame {f}");
        }
        assert!(frames.finished(), "seed {seed}");

        // Any truncation of the message body must surface as a failed frame
        // or an unfinished reader, never as a silently short batch.
        let cut = rng.below(msg.len().max(1));
        let mut dec = CompactClock::new();
        let mut truncated = wire::BatchReader::new(&msg[..cut.min(msg.len())]);
        if let Some(reader) = truncated.as_mut() {
            let mut ok = 0usize;
            while reader.remaining() > 0 {
                match reader.next(&mut dec, &mut pool) {
                    Some(_) => ok += 1,
                    None => break,
                }
            }
            assert!(
                ok < expect.len() || !reader.finished() || cut == msg.len(),
                "seed {seed} cut {cut}: truncated batch decoded fully"
            );
        }
    }
}

/// Page arithmetic is consistent: every byte of a range falls in one of the
/// pages the range reports.
#[test]
fn ranges_cover_their_pages() {
    for seed in 0..CASES * 4 {
        let mut rng = Rng::new(seed + 3000);
        let start = rng.below(100_000);
        let len = rng.below(20_000);
        let range = MemRange::new(RegionId::new(0), start, len);
        let pages = range.pages();
        if len == 0 {
            assert!(pages.is_empty(), "seed {seed}");
        } else {
            for offset in [start, start + len / 2, start + len - 1] {
                assert!(pages.contains(&page_of(offset)), "seed {seed}");
            }
            assert!(pages.end <= pages_in(start + len) + 1, "seed {seed}");
            assert!(pages.len() <= len / PAGE_SIZE + 2, "seed {seed}");
        }
    }
}
