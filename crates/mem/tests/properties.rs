//! Property-based tests for the data-plane building blocks.

use dsm_mem::{page_of, pages_in, BitSet, BlockGranularity, Diff, MemRange, RegionId, PAGE_SIZE};
use proptest::prelude::*;

proptest! {
    /// Diffs built from explicit dirty blocks (compiler instrumentation)
    /// always cover at least the blocks a value comparison would find.
    #[test]
    fn instrumented_diff_covers_value_diff(
        data in prop::collection::vec(any::<u8>(), 32..256),
        flips in prop::collection::vec((0usize..256, any::<u8>()), 0..32),
    ) {
        let twin = data.clone();
        let mut current = data;
        let mut dirty_blocks = Vec::new();
        for (pos, val) in flips {
            let p = pos % current.len();
            current[p] = val;
            dirty_blocks.push(p / 4);
        }
        let by_value = Diff::from_compare(&twin, &current, 0, BlockGranularity::Word);
        let by_bits = Diff::from_blocks(&current, 0, dirty_blocks, BlockGranularity::Word);
        prop_assert!(by_bits.modified_blocks() >= by_value.modified_blocks());
        let mut rebuilt = twin.clone();
        by_bits.apply(&mut rebuilt);
        prop_assert_eq!(rebuilt, current);
    }

    /// The encoded size of a diff is at least its payload and grows with the
    /// number of runs.
    #[test]
    fn diff_encoded_size_bounds(data in prop::collection::vec(any::<u8>(), 64..512),
                                flips in prop::collection::vec(0usize..512, 0..64)) {
        let twin = data.clone();
        let mut current = data;
        for pos in flips {
            let p = pos % current.len();
            current[p] ^= 0xff;
        }
        let d = Diff::from_compare(&twin, &current, 0, BlockGranularity::Word);
        prop_assert!(d.encoded_size() >= d.modified_bytes());
        prop_assert!(d.encoded_size() <= d.modified_bytes() + 8 * d.runs().len());
    }

    /// BitSet set/clear/count behave like a reference `Vec<bool>`.
    #[test]
    fn bitset_matches_reference(ops in prop::collection::vec((0usize..200, any::<bool>()), 0..200)) {
        let mut bits = BitSet::new(200);
        let mut reference = vec![false; 200];
        for (idx, set) in ops {
            if set {
                bits.set(idx);
                reference[idx] = true;
            } else {
                bits.clear(idx);
                reference[idx] = false;
            }
        }
        prop_assert_eq!(bits.count(), reference.iter().filter(|&&b| b).count());
        let from_iter: Vec<usize> = bits.iter_set().collect();
        let expected: Vec<usize> = reference.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        prop_assert_eq!(from_iter, expected);
    }

    /// Page arithmetic is consistent: every byte of a range falls in one of
    /// the pages the range reports.
    #[test]
    fn ranges_cover_their_pages(start in 0usize..100_000, len in 0usize..20_000) {
        let range = MemRange::new(RegionId::new(0), start, len);
        let pages = range.pages();
        if len == 0 {
            prop_assert!(pages.is_empty());
        } else {
            for offset in [start, start + len / 2, start + len - 1] {
                prop_assert!(pages.contains(&page_of(offset)));
            }
            prop_assert!(pages.end <= pages_in(start + len) + 1);
            prop_assert!(pages.len() <= len / PAGE_SIZE + 2);
        }
    }
}
