//! Block granularity of write trapping and write collection.

use std::fmt;

/// The resolution at which writes are trapped and collected.
///
/// The paper uses a *block* of one word (4 bytes) for twinning (the comparison
/// against the twin is always word-by-word) and of one word or one double-word
/// (8 bytes) for compiler instrumentation, depending on the store granularity
/// of the application (Water and 3D-FFT store doubles, so EC-ci uses
/// double-word dirty bits for them and halves the number of bits scanned —
/// Section 8.1).
///
/// # Examples
///
/// ```
/// use dsm_mem::BlockGranularity;
///
/// assert_eq!(BlockGranularity::Word.bytes(), 4);
/// assert_eq!(BlockGranularity::DoubleWord.blocks_in(64), 8);
/// assert_eq!(BlockGranularity::Word.block_of(13), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum BlockGranularity {
    /// 4-byte blocks (the twinning comparison granularity).
    #[default]
    Word,
    /// 8-byte blocks (double-precision stores under compiler instrumentation).
    DoubleWord,
}

impl BlockGranularity {
    /// Size of one block in bytes.
    pub fn bytes(self) -> usize {
        match self {
            BlockGranularity::Word => 4,
            BlockGranularity::DoubleWord => 8,
        }
    }

    /// Number of blocks needed to cover `len` bytes (rounded up).
    pub fn blocks_in(self, len: usize) -> usize {
        len.div_ceil(self.bytes())
    }

    /// Block index containing byte offset `offset`.
    pub fn block_of(self, offset: usize) -> usize {
        offset / self.bytes()
    }

    /// Byte offset of the start of block `block`.
    pub fn offset_of(self, block: usize) -> usize {
        block * self.bytes()
    }

    /// One-byte wire code of this granularity (see [`crate::wire`]).
    pub fn wire_code(self) -> u8 {
        match self {
            BlockGranularity::Word => 0,
            BlockGranularity::DoubleWord => 1,
        }
    }

    /// Decodes a granularity from its wire code.
    pub fn from_wire_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(BlockGranularity::Word),
            1 => Some(BlockGranularity::DoubleWord),
            _ => None,
        }
    }
}

impl fmt::Display for BlockGranularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockGranularity::Word => f.write_str("word"),
            BlockGranularity::DoubleWord => f.write_str("double-word"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(BlockGranularity::Word.bytes(), 4);
        assert_eq!(BlockGranularity::DoubleWord.bytes(), 8);
    }

    #[test]
    fn block_math_rounds_up() {
        assert_eq!(BlockGranularity::Word.blocks_in(0), 0);
        assert_eq!(BlockGranularity::Word.blocks_in(1), 1);
        assert_eq!(BlockGranularity::Word.blocks_in(4), 1);
        assert_eq!(BlockGranularity::Word.blocks_in(5), 2);
        assert_eq!(BlockGranularity::DoubleWord.blocks_in(16), 2);
        assert_eq!(BlockGranularity::DoubleWord.blocks_in(17), 3);
    }

    #[test]
    fn block_of_and_offset_of_are_inverse_on_boundaries() {
        let g = BlockGranularity::DoubleWord;
        for b in 0..100 {
            assert_eq!(g.block_of(g.offset_of(b)), b);
        }
    }

    #[test]
    fn default_is_word() {
        assert_eq!(BlockGranularity::default(), BlockGranularity::Word);
    }

    #[test]
    fn wire_codes_round_trip() {
        for g in [BlockGranularity::Word, BlockGranularity::DoubleWord] {
            assert_eq!(BlockGranularity::from_wire_code(g.wire_code()), Some(g));
        }
        assert_eq!(BlockGranularity::from_wire_code(2), None);
    }
}
