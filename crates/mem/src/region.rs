//! Shared-memory regions and address ranges.

use std::fmt;

use crate::{BlockGranularity, PAGE_SIZE};

/// Identifier of a shared-memory region (an allocation in the shared address
/// space, e.g. "the SOR matrix" or "the IS bucket array").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RegionId(u32);

impl RegionId {
    /// Creates a region id from a dense index.
    pub fn new(index: u32) -> Self {
        RegionId(index)
    }

    /// Dense index, convenient for indexing per-region vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Static description of a shared region: its size, its human-readable name
/// and the block granularity its writes are trapped at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionDesc {
    /// The region's identifier.
    pub id: RegionId,
    /// Human-readable name (used in statistics and debugging output).
    pub name: String,
    /// Length in bytes.
    pub len: usize,
    /// Block granularity for write trapping/collection in this region.
    pub granularity: BlockGranularity,
}

impl RegionDesc {
    /// Creates a region description.
    pub fn new(
        id: RegionId,
        name: impl Into<String>,
        len: usize,
        granularity: BlockGranularity,
    ) -> Self {
        RegionDesc {
            id,
            name: name.into(),
            len,
            granularity,
        }
    }

    /// Number of pages this region spans (rounded up).
    pub fn num_pages(&self) -> usize {
        self.len.div_ceil(PAGE_SIZE)
    }

    /// Number of blocks this region spans (rounded up).
    pub fn num_blocks(&self) -> usize {
        self.granularity.blocks_in(self.len)
    }

    /// The range covering the whole region.
    pub fn whole(&self) -> MemRange {
        MemRange::new(self.id, 0, self.len)
    }
}

/// A byte range within one shared region.
///
/// Ranges are the unit of EC's *binding*: the data associated with a lock is a
/// set of (possibly non-contiguous) `MemRange`s — the paper notes that 3D-FFT
/// "requires support for binding non-contiguous pieces of memory to a single
/// lock for efficiency" (Section 3.3).
///
/// # Examples
///
/// ```
/// use dsm_mem::{MemRange, RegionId};
///
/// let r = MemRange::new(RegionId::new(0), 100, 50);
/// assert!(r.contains(120));
/// assert!(!r.contains(150));
/// assert!(r.overlaps(&MemRange::new(RegionId::new(0), 140, 10)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRange {
    /// The region the range lies in.
    pub region: RegionId,
    /// Byte offset of the start of the range within the region.
    pub start: usize,
    /// Length of the range in bytes.
    pub len: usize,
}

impl MemRange {
    /// Creates a range.
    pub fn new(region: RegionId, start: usize, len: usize) -> Self {
        MemRange { region, start, len }
    }

    /// One-past-the-end byte offset.
    pub fn end(&self) -> usize {
        self.start + self.len
    }

    /// True if the byte offset `offset` lies inside the range.
    pub fn contains(&self, offset: usize) -> bool {
        offset >= self.start && offset < self.end()
    }

    /// True if the two ranges share at least one byte (and are in the same
    /// region).
    pub fn overlaps(&self, other: &MemRange) -> bool {
        self.region == other.region && self.start < other.end() && other.start < self.end()
    }

    /// True if the range is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Page indices (within the region) covered by this range.
    pub fn pages(&self) -> std::ops::Range<usize> {
        if self.is_empty() {
            return 0..0;
        }
        (self.start / PAGE_SIZE)..((self.end() - 1) / PAGE_SIZE + 1)
    }

    /// Block indices (within the region) covered by this range.
    pub fn blocks(&self, granularity: BlockGranularity) -> std::ops::Range<usize> {
        if self.is_empty() {
            return 0..0;
        }
        granularity.block_of(self.start)..(granularity.block_of(self.end() - 1) + 1)
    }
}

impl fmt::Display for MemRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}..{}]", self.region, self.start, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(i: u32) -> RegionId {
        RegionId::new(i)
    }

    #[test]
    fn region_desc_math() {
        let d = RegionDesc::new(rid(1), "matrix", PAGE_SIZE * 2 + 1, BlockGranularity::Word);
        assert_eq!(d.num_pages(), 3);
        assert_eq!(d.num_blocks(), (PAGE_SIZE * 2 + 1).div_ceil(4));
        assert_eq!(d.whole().len, d.len);
    }

    #[test]
    fn range_contains_and_overlaps() {
        let a = MemRange::new(rid(0), 10, 10);
        let b = MemRange::new(rid(0), 19, 5);
        let c = MemRange::new(rid(0), 20, 5);
        let d = MemRange::new(rid(1), 10, 10);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(!a.overlaps(&d));
        assert!(a.contains(10));
        assert!(a.contains(19));
        assert!(!a.contains(20));
    }

    #[test]
    fn page_and_block_ranges() {
        let r = MemRange::new(rid(0), PAGE_SIZE - 4, 8);
        assert_eq!(r.pages(), 0..2);
        assert_eq!(
            r.blocks(BlockGranularity::Word),
            (PAGE_SIZE / 4 - 1)..(PAGE_SIZE / 4 + 1)
        );
        let empty = MemRange::new(rid(0), 100, 0);
        assert!(empty.is_empty());
        assert_eq!(empty.pages(), 0..0);
        assert_eq!(empty.blocks(BlockGranularity::Word), 0..0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(MemRange::new(rid(2), 0, 16).to_string(), "R2[0..16]");
        assert_eq!(rid(3).to_string(), "R3");
    }
}
