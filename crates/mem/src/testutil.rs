//! Deterministic pseudo-random generation for property-style tests.
//!
//! The build environment is offline (no `proptest`), so the workspace's
//! property tests drive themselves with this seeded xorshift64* generator:
//! every case is reproducible from its printed seed.  Test-only API — hidden
//! from the documented surface and semver-exempt.

/// A seeded xorshift64* generator.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator from a seed (zero is mapped to one; xorshift has
    /// an all-zero fixed point).
    pub fn new(seed: u64) -> Self {
        TestRng(seed.max(1))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Value in `lo..hi`.
    pub fn in_range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo)
    }

    /// Uniform byte.
    pub fn byte(&mut self) -> u8 {
        (self.next_u64() & 0xff) as u8
    }

    /// Uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `len` uniform bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.byte()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_bounds() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = TestRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.in_range(5, 9);
            assert!((5..9).contains(&v));
        }
        assert_eq!(TestRng::new(0).0, 1, "zero seed must not be a fixed point");
    }
}
