//! A reusable pool of byte buffers for the epoch-scoped data plane.
//!
//! Twins, diff build buffers and EC small-object copies all have the same
//! lifetime shape: taken at the start of an interval (first write, or
//! acquire), dropped when the interval publishes.  Allocating them fresh
//! every epoch puts the allocator on the write hot path; a [`BufferPool`]
//! keeps the freed buffers and hands them back, so a steady-state epoch —
//! one that dirties no more pages than some earlier epoch did — allocates
//! nothing.
//!
//! Ownership rule: the pool is *per node* (it lives in the node's private
//! state and is never shared), buffers taken from it are plain `Vec<u8>`s
//! owned by the taker, and every taker returns its buffer with
//! [`BufferPool::put`] when the interval's publish retires it.  A buffer
//! that is never returned is merely an allocation, not a leak of pooled
//! state.

/// A last-in-first-out pool of `Vec<u8>` buffers.
///
/// # Examples
///
/// ```
/// use dsm_mem::BufferPool;
///
/// let mut pool = BufferPool::new();
/// let twin = pool.take_copy(&[1, 2, 3, 4]);
/// assert_eq!(twin, [1, 2, 3, 4]);
/// pool.put(twin);
/// // The next take reuses the returned buffer: no allocation.
/// let again = pool.take_copy(&[5, 6]);
/// assert_eq!(again, [5, 6]);
/// assert_eq!(pool.recycled(), 1);
/// ```
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    recycled: u64,
    allocated: u64,
}

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Takes a buffer holding a copy of `src` (a twin copy).  Reuses a freed
    /// buffer when one is available; the copy itself is one `memcpy`.
    pub fn take_copy(&mut self, src: &[u8]) -> Vec<u8> {
        let mut buf = self.take_empty(src.len());
        buf.extend_from_slice(src);
        buf
    }

    /// Takes a zero-length buffer with capacity for at least `len` bytes.
    pub fn take_empty(&mut self, len: usize) -> Vec<u8> {
        match self.free.pop() {
            Some(mut buf) => {
                self.recycled += 1;
                buf.clear();
                buf.reserve(len);
                buf
            }
            None => {
                self.allocated += 1;
                Vec::with_capacity(len)
            }
        }
    }

    /// Returns a buffer to the pool for reuse.
    pub fn put(&mut self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 {
            return; // nothing worth keeping
        }
        buf.clear();
        self.free.push(buf);
    }

    /// Number of takes served from a previously returned buffer.
    pub fn recycled(&self) -> u64 {
        self.recycled
    }

    /// Number of takes that had to allocate a fresh buffer.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Number of buffers currently waiting for reuse.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_take_put_cycle_stops_allocating() {
        let mut pool = BufferPool::new();
        let page = vec![7u8; 4096];
        // Warm up: two buffers in flight at once.
        let a = pool.take_copy(&page);
        let b = pool.take_copy(&page);
        pool.put(a);
        pool.put(b);
        assert_eq!(pool.allocated(), 2);
        assert_eq!(pool.idle(), 2);
        // Steady state: every take is served from the pool.
        for _ in 0..10 {
            let t = pool.take_copy(&page);
            assert_eq!(t.len(), 4096);
            pool.put(t);
        }
        assert_eq!(pool.allocated(), 2);
        assert_eq!(pool.recycled(), 10);
    }

    #[test]
    fn take_empty_reserves_capacity() {
        let mut pool = BufferPool::new();
        let buf = pool.take_empty(100);
        assert!(buf.is_empty());
        assert!(buf.capacity() >= 100);
        pool.put(buf);
        let buf = pool.take_empty(10);
        assert!(buf.capacity() >= 100, "returned capacity is retained");
    }

    #[test]
    fn zero_capacity_buffers_are_not_kept() {
        let mut pool = BufferPool::new();
        pool.put(Vec::new());
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn take_copy_of_empty_slice() {
        let mut pool = BufferPool::new();
        let buf = pool.take_copy(&[]);
        assert!(buf.is_empty());
    }
}
