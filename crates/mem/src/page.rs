//! Virtual-memory pages and software protection state.
//!
//! The paper's implementations use `mprotect` and `SIGSEGV` to write-protect
//! shared pages; here the same state machine is kept in a *software* page
//! table that the typed accessors in `dsm-core` consult on every access, with
//! the fault and protection-change costs charged through the cost model.

use std::fmt;

/// Size of a virtual-memory page, matching the DECstation's 4 KiB pages.
pub const PAGE_SIZE: usize = 4096;

/// Page index containing byte offset `offset`.
///
/// ```
/// use dsm_mem::{page_of, PAGE_SIZE};
/// assert_eq!(page_of(0), 0);
/// assert_eq!(page_of(PAGE_SIZE), 1);
/// assert_eq!(page_of(PAGE_SIZE - 1), 0);
/// ```
pub fn page_of(offset: usize) -> usize {
    offset / PAGE_SIZE
}

/// Byte range of page `page` clamped to a region of `region_len` bytes.
///
/// ```
/// use dsm_mem::{page_range, PAGE_SIZE};
/// assert_eq!(page_range(1, PAGE_SIZE + 100), PAGE_SIZE..PAGE_SIZE + 100);
/// assert_eq!(page_range(0, 10 * PAGE_SIZE), 0..PAGE_SIZE);
/// ```
pub fn page_range(page: usize, region_len: usize) -> std::ops::Range<usize> {
    let start = (page * PAGE_SIZE).min(region_len);
    let end = ((page + 1) * PAGE_SIZE).min(region_len);
    start..end
}

/// Calls `f(page, byte_range)` for every page overlapping the byte span
/// `off..off + len`, with each range clamped to the span — the page-batched
/// walk behind the span access APIs (`read_slice`/`write_slice`), which trap
/// and validate once per page instead of once per word.
///
/// ```
/// use dsm_mem::{for_each_page, PAGE_SIZE};
/// let mut seen = Vec::new();
/// for_each_page(PAGE_SIZE - 8, 16, |page, range| seen.push((page, range)));
/// assert_eq!(
///     seen,
///     vec![(0, PAGE_SIZE - 8..PAGE_SIZE), (1, PAGE_SIZE..PAGE_SIZE + 8)]
/// );
/// ```
pub fn for_each_page(off: usize, len: usize, mut f: impl FnMut(usize, std::ops::Range<usize>)) {
    if len == 0 {
        return;
    }
    let end = off + len;
    for page in page_of(off)..=page_of(end - 1) {
        let lo = off.max(page * PAGE_SIZE);
        let hi = end.min((page + 1) * PAGE_SIZE);
        f(page, lo..hi);
    }
}

/// Number of pages needed to cover `len` bytes.
///
/// ```
/// use dsm_mem::{pages_in, PAGE_SIZE};
/// assert_eq!(pages_in(0), 0);
/// assert_eq!(pages_in(1), 1);
/// assert_eq!(pages_in(PAGE_SIZE + 1), 2);
/// ```
pub fn pages_in(len: usize) -> usize {
    len.div_ceil(PAGE_SIZE)
}

/// Access rights of a page in a node's (software) page table.
///
/// The transitions mirror what the real implementations do with `mprotect`:
///
/// * LRC invalidate protocol: a write notice drops the page to
///   [`Protection::None`]; the access miss upgrades it to read (after the
///   diffs are applied) or read-write.
/// * Twinning write trapping: after the twin is discarded the page is
///   downgraded to [`Protection::Read`] so the next write faults and creates a
///   fresh twin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Protection {
    /// No access: any read or write faults (an invalid page under LRC).
    None,
    /// Read-only: reads proceed, writes fault (write-protected for twinning).
    Read,
    /// Full access: neither reads nor writes fault.
    #[default]
    ReadWrite,
}

impl Protection {
    /// True if a read access is allowed without a fault.
    pub fn allows_read(self) -> bool {
        !matches!(self, Protection::None)
    }

    /// True if a write access is allowed without a fault.
    pub fn allows_write(self) -> bool {
        matches!(self, Protection::ReadWrite)
    }
}

impl fmt::Display for Protection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protection::None => f.write_str("---"),
            Protection::Read => f.write_str("r--"),
            Protection::ReadWrite => f.write_str("rw-"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_math() {
        assert_eq!(page_of(0), 0);
        assert_eq!(page_of(PAGE_SIZE - 1), 0);
        assert_eq!(page_of(PAGE_SIZE), 1);
        assert_eq!(pages_in(PAGE_SIZE * 3), 3);
        assert_eq!(pages_in(PAGE_SIZE * 3 + 1), 4);
    }

    #[test]
    fn page_range_clamps_to_region() {
        assert_eq!(page_range(0, 100), 0..100);
        assert_eq!(page_range(1, 100), 100..100);
        assert_eq!(page_range(2, 3 * PAGE_SIZE), 2 * PAGE_SIZE..3 * PAGE_SIZE);
    }

    #[test]
    fn protection_semantics() {
        assert!(!Protection::None.allows_read());
        assert!(!Protection::None.allows_write());
        assert!(Protection::Read.allows_read());
        assert!(!Protection::Read.allows_write());
        assert!(Protection::ReadWrite.allows_read());
        assert!(Protection::ReadWrite.allows_write());
    }

    #[test]
    fn protection_display() {
        assert_eq!(Protection::None.to_string(), "---");
        assert_eq!(Protection::Read.to_string(), "r--");
        assert_eq!(Protection::ReadWrite.to_string(), "rw-");
    }

    #[test]
    fn default_protection_is_read_write() {
        assert_eq!(Protection::default(), Protection::ReadWrite);
    }
}
