//! Run-length encoded records of modifications to shared data ("diffs").
//!
//! A diff records the changes made to an object (EC) or a page (LRC) during
//! one execution interval, as a run-length encoding of the modified blocks and
//! their new values (Section 5.2 of the paper).  Diffs are created lazily from
//! a *twin* (an unmodified copy) or from software dirty bits, shipped to the
//! acquirer/faulting processor, applied there, and saved for possible future
//! transmission to other processors.

use crate::BlockGranularity;

/// One run of consecutive modified bytes within a diff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRun {
    /// Region-absolute byte offset of the start of the run.
    pub offset: usize,
    /// The new bytes for the run.
    pub data: Vec<u8>,
}

impl DiffRun {
    /// Length of the run in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the run carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// A run-length encoded record of the changes to a contiguous piece of shared
/// data (an EC object or an LRC page).
///
/// # Examples
///
/// ```
/// use dsm_mem::{BlockGranularity, Diff};
///
/// // Twin (old) and current (new) copy of a 32-byte object.
/// let twin = vec![0u8; 32];
/// let mut current = twin.clone();
/// current[4..8].copy_from_slice(&1u32.to_le_bytes());
/// current[8..12].copy_from_slice(&2u32.to_le_bytes());
/// current[28..32].copy_from_slice(&3u32.to_le_bytes());
///
/// let diff = Diff::from_compare(&twin, &current, 0, BlockGranularity::Word);
/// assert_eq!(diff.runs().len(), 2);       // [4..12] and [28..32]
/// assert_eq!(diff.modified_blocks(), 3);
///
/// let mut target = vec![0u8; 32];
/// diff.apply(&mut target);
/// assert_eq!(target, current);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diff {
    runs: Vec<DiffRun>,
    granularity: BlockGranularity,
}

/// Per-run header bytes in the encoded (wire) representation of a diff:
/// a 4-byte offset and a 4-byte length, as a run-length encoding would carry.
const RUN_HEADER_BYTES: usize = 8;

impl Diff {
    /// Creates an empty diff.
    pub fn empty(granularity: BlockGranularity) -> Self {
        Diff {
            runs: Vec::new(),
            granularity,
        }
    }

    /// Builds a diff by comparing `current` against its `twin`, block by
    /// block.  `base_offset` is the region-absolute offset of byte 0 of the
    /// two slices (e.g. the page's start offset).
    ///
    /// This is the write-collection step of the twinning implementations.
    ///
    /// # Panics
    ///
    /// Panics if the twin and current slices have different lengths.
    pub fn from_compare(
        twin: &[u8],
        current: &[u8],
        base_offset: usize,
        granularity: BlockGranularity,
    ) -> Self {
        assert_eq!(
            twin.len(),
            current.len(),
            "twin and current copies must be the same size"
        );
        let bs = granularity.bytes();
        let nblocks = granularity.blocks_in(current.len());
        let changed = (0..nblocks).map(|b| {
            let start = b * bs;
            let end = (start + bs).min(current.len());
            twin[start..end] != current[start..end]
        });
        Self::from_changed_blocks(current, base_offset, changed, granularity)
    }

    /// Builds a diff from an explicit set of modified block indices (indices
    /// are relative to `current`, i.e. block 0 starts at byte 0 of the slice).
    ///
    /// This is the write-collection step when software dirty bits (compiler
    /// instrumentation) identify the modified blocks.
    pub fn from_blocks<I>(
        current: &[u8],
        base_offset: usize,
        blocks: I,
        granularity: BlockGranularity,
    ) -> Self
    where
        I: IntoIterator<Item = usize>,
    {
        let nblocks = granularity.blocks_in(current.len());
        let mut dirty = vec![false; nblocks];
        for b in blocks {
            if b < nblocks {
                dirty[b] = true;
            }
        }
        Self::from_changed_blocks(current, base_offset, dirty, granularity)
    }

    fn from_changed_blocks<I>(
        current: &[u8],
        base_offset: usize,
        changed: I,
        granularity: BlockGranularity,
    ) -> Self
    where
        I: IntoIterator<Item = bool>,
    {
        let bs = granularity.bytes();
        let mut runs: Vec<DiffRun> = Vec::new();
        let mut open: Option<(usize, usize)> = None; // (start byte, end byte), slice-relative
        for (b, is_changed) in changed.into_iter().enumerate() {
            let start = b * bs;
            let end = (start + bs).min(current.len());
            if is_changed {
                match &mut open {
                    Some((_, e)) if *e == start => *e = end,
                    Some((s, e)) => {
                        runs.push(DiffRun {
                            offset: base_offset + *s,
                            data: current[*s..*e].to_vec(),
                        });
                        open = Some((start, end));
                    }
                    None => open = Some((start, end)),
                }
            }
        }
        if let Some((s, e)) = open {
            runs.push(DiffRun {
                offset: base_offset + s,
                data: current[s..e].to_vec(),
            });
        }
        Diff { runs, granularity }
    }

    /// The runs of this diff, in increasing offset order.
    pub fn runs(&self) -> &[DiffRun] {
        &self.runs
    }

    /// The block granularity the diff was created at.
    pub fn granularity(&self) -> BlockGranularity {
        self.granularity
    }

    /// True if the diff records no modifications.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Total number of modified bytes carried by the diff.
    pub fn modified_bytes(&self) -> usize {
        self.runs.iter().map(DiffRun::len).sum()
    }

    /// Total number of modified blocks carried by the diff.
    pub fn modified_blocks(&self) -> usize {
        self.runs
            .iter()
            .map(|r| self.granularity.blocks_in(r.len()))
            .sum()
    }

    /// Size of the diff on the wire: modified bytes plus a per-run header.
    pub fn encoded_size(&self) -> usize {
        self.modified_bytes() + self.runs.len() * RUN_HEADER_BYTES
    }

    /// Applies the diff to a region-sized buffer.
    ///
    /// # Panics
    ///
    /// Panics if a run extends past the end of `target`.
    pub fn apply(&self, target: &mut [u8]) {
        for run in &self.runs {
            target[run.offset..run.offset + run.data.len()].copy_from_slice(&run.data);
        }
    }

    /// Iterator over `(block_index, block_bytes)` pairs, where block indices
    /// are region-absolute (i.e. `offset / granularity`).
    pub fn blocks(&self) -> impl Iterator<Item = (usize, &[u8])> + '_ {
        let bs = self.granularity.bytes();
        self.runs.iter().flat_map(move |run| {
            (0..run.data.len().div_ceil(bs)).map(move |i| {
                let start = i * bs;
                let end = (start + bs).min(run.data.len());
                ((run.offset + start) / bs, &run.data[start..end])
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word_diff(twin: &[u8], current: &[u8]) -> Diff {
        Diff::from_compare(twin, current, 0, BlockGranularity::Word)
    }

    #[test]
    fn identical_data_gives_empty_diff() {
        let data = vec![42u8; 128];
        let d = word_diff(&data, &data);
        assert!(d.is_empty());
        assert_eq!(d.encoded_size(), 0);
        assert_eq!(d.modified_blocks(), 0);
    }

    #[test]
    fn adjacent_changes_coalesce_into_one_run() {
        let twin = vec![0u8; 64];
        let mut cur = twin.clone();
        cur[16..28].fill(9);
        let d = word_diff(&twin, &cur);
        assert_eq!(d.runs().len(), 1);
        assert_eq!(d.runs()[0].offset, 16);
        assert_eq!(d.runs()[0].len(), 12);
        assert_eq!(d.modified_blocks(), 3);
    }

    #[test]
    fn base_offset_is_added_to_run_offsets() {
        let twin = vec![0u8; 16];
        let mut cur = twin.clone();
        cur[0..4].fill(1);
        let d = Diff::from_compare(&twin, &cur, 4096, BlockGranularity::Word);
        assert_eq!(d.runs()[0].offset, 4096);
        let mut target = vec![0u8; 4096 + 16];
        d.apply(&mut target);
        assert_eq!(&target[4096..4100], &[1, 1, 1, 1]);
    }

    #[test]
    fn from_blocks_matches_explicit_dirty_set() {
        let mut cur = vec![0u8; 32];
        cur[8..12].fill(5);
        cur[12..16].fill(6);
        cur[24..28].fill(7);
        // Blocks 2,3 and 6 marked dirty; block 5 dirty but unchanged in value
        // (instrumentation reports it anyway).
        let d = Diff::from_blocks(&cur, 0, [2usize, 3, 5, 6], BlockGranularity::Word);
        assert_eq!(d.modified_blocks(), 4);
        assert_eq!(d.runs().len(), 2); // [8..16], [20..28]
        let mut target = vec![0u8; 32];
        d.apply(&mut target);
        assert_eq!(target, cur);
    }

    #[test]
    fn double_word_granularity_coarsens() {
        let twin = vec![0u8; 32];
        let mut cur = twin.clone();
        cur[4..8].fill(3); // one word touched -> whole double-word included
        let d = Diff::from_compare(&twin, &cur, 0, BlockGranularity::DoubleWord);
        assert_eq!(d.runs().len(), 1);
        assert_eq!(d.runs()[0].offset, 0);
        assert_eq!(d.runs()[0].len(), 8);
    }

    #[test]
    fn tail_shorter_than_block_is_handled() {
        let twin = vec![0u8; 10];
        let mut cur = twin.clone();
        cur[9] = 1;
        let d = word_diff(&twin, &cur);
        assert_eq!(d.runs().len(), 1);
        assert_eq!(d.runs()[0].offset, 8);
        assert_eq!(d.runs()[0].len(), 2);
        let mut target = vec![0u8; 10];
        d.apply(&mut target);
        assert_eq!(target, cur);
    }

    #[test]
    fn blocks_iterator_yields_absolute_block_indices() {
        let twin = vec![0u8; 32];
        let mut cur = twin.clone();
        cur[8..16].fill(1);
        let d = Diff::from_compare(&twin, &cur, 64, BlockGranularity::Word);
        let blocks: Vec<usize> = d.blocks().map(|(b, _)| b).collect();
        assert_eq!(blocks, vec![18, 19]); // (64 + 8)/4 and (64 + 12)/4
    }

    #[test]
    fn encoded_size_includes_run_headers() {
        let twin = vec![0u8; 64];
        let mut cur = twin.clone();
        cur[0..4].fill(1);
        cur[32..36].fill(2);
        let d = word_diff(&twin, &cur);
        assert_eq!(d.encoded_size(), 8 + 2 * RUN_HEADER_BYTES);
    }

    #[test]
    #[should_panic(expected = "same size")]
    fn mismatched_lengths_panic() {
        let _ = Diff::from_compare(&[0u8; 8], &[0u8; 12], 0, BlockGranularity::Word);
    }
}
