//! Run-length encoded records of modifications to shared data ("diffs").
//!
//! A diff records the changes made to an object (EC) or a page (LRC) during
//! one execution interval, as a run-length encoding of the modified blocks and
//! their new values (Section 5.2 of the paper).  Diffs are created lazily from
//! a *twin* (an unmodified copy) or from software dirty bits, shipped to the
//! acquirer/faulting processor, applied there, and saved for possible future
//! transmission to other processors.
//!
//! # Representation
//!
//! The payload is stored *flat*: one contiguous byte buffer holding every
//! run's bytes back to back, plus a small offset table describing the runs —
//! not one allocation per run.  The whole record sits behind an [`Arc`], so
//! cloning a diff (to fan it out to several consumers, or to retain it for a
//! later requester) is a reference-count bump, never a copy of the payload.
//! Diffs are immutable once built; the shared payload is never written again.
//!
//! Write collection ([`Diff::from_compare`]) compares the twin and the
//! current copy eight bytes at a time (`u64` loads), falling back to
//! per-block comparison only inside a chunk that differs and for a tail
//! shorter than one chunk.  The produced diff is byte-identical to the
//! per-block reference implementation ([`Diff::from_compare_reference`]),
//! which is retained for the property tests that pin this equivalence.

use std::sync::Arc;

use crate::BlockGranularity;

/// One run of consecutive modified bytes within a diff, borrowed from the
/// diff's flat payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffRun<'a> {
    /// Region-absolute byte offset of the start of the run.
    pub offset: usize,
    /// The new bytes for the run.
    pub data: &'a [u8],
}

impl DiffRun<'_> {
    /// Length of the run in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the run carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Run descriptor in the flat offset table: where the run lives in the
/// region (`offset`) and in the shared payload (`pos..pos + len`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RunDesc {
    offset: usize,
    pos: usize,
    len: usize,
}

/// The shared (immutable) body of a diff: the offset table and the flat
/// payload every run's bytes live in.
#[derive(Debug, Default, PartialEq, Eq)]
struct DiffBody {
    runs: Vec<RunDesc>,
    payload: Vec<u8>,
}

/// A run-length encoded record of the changes to a contiguous piece of shared
/// data (an EC object or an LRC page).
///
/// Cloning is cheap (the run table and payload are `Arc`-shared), so a diff
/// can be handed to several consumers without copying its bytes.
///
/// # Examples
///
/// ```
/// use dsm_mem::{BlockGranularity, Diff};
///
/// // Twin (old) and current (new) copy of a 32-byte object.
/// let twin = vec![0u8; 32];
/// let mut current = twin.clone();
/// current[4..8].copy_from_slice(&1u32.to_le_bytes());
/// current[8..12].copy_from_slice(&2u32.to_le_bytes());
/// current[28..32].copy_from_slice(&3u32.to_le_bytes());
///
/// let diff = Diff::from_compare(&twin, &current, 0, BlockGranularity::Word);
/// assert_eq!(diff.runs().len(), 2);       // [4..12] and [28..32]
/// assert_eq!(diff.modified_blocks(), 3);
///
/// let mut target = vec![0u8; 32];
/// diff.apply(&mut target);
/// assert_eq!(target, current);
/// ```
#[derive(Debug, Clone, Default, Eq)]
pub struct Diff {
    body: Arc<DiffBody>,
    granularity: BlockGranularity,
}

impl PartialEq for Diff {
    fn eq(&self, other: &Self) -> bool {
        self.granularity == other.granularity
            && (Arc::ptr_eq(&self.body, &other.body) || self.body == other.body)
    }
}

/// Per-run header bytes in the encoded (wire) representation of a diff:
/// a 4-byte offset and a 4-byte length, as a run-length encoding would carry.
const RUN_HEADER_BYTES: usize = 8;

/// Streaming builder: accepts changed byte ranges in increasing order and
/// coalesces adjacent ones into runs appended to the flat payload.
struct Builder<'a> {
    current: &'a [u8],
    base_offset: usize,
    body: DiffBody,
    /// Open run as a slice-relative byte range.
    open: Option<(usize, usize)>,
}

impl<'a> Builder<'a> {
    fn new(current: &'a [u8], base_offset: usize) -> Self {
        Builder {
            current,
            base_offset,
            body: DiffBody::default(),
            open: None,
        }
    }

    /// Adds the changed byte range `start..end` (must not start before the
    /// open run's end; callers feed ranges in increasing order).
    fn push_range(&mut self, start: usize, end: usize) {
        match &mut self.open {
            Some((_, e)) if *e == start => *e = end,
            Some(_) => {
                self.close();
                self.open = Some((start, end));
            }
            None => self.open = Some((start, end)),
        }
    }

    fn close(&mut self) {
        if let Some((s, e)) = self.open.take() {
            let pos = self.body.payload.len();
            self.body.payload.extend_from_slice(&self.current[s..e]);
            self.body.runs.push(RunDesc {
                offset: self.base_offset + s,
                pos,
                len: e - s,
            });
        }
    }

    fn finish(mut self, granularity: BlockGranularity) -> Diff {
        self.close();
        Diff {
            body: Arc::new(self.body),
            granularity,
        }
    }
}

impl Diff {
    /// Creates an empty diff.
    pub fn empty(granularity: BlockGranularity) -> Self {
        Diff {
            body: Arc::new(DiffBody::default()),
            granularity,
        }
    }

    /// Builds a diff by comparing `current` against its `twin`.  `base_offset`
    /// is the region-absolute offset of byte 0 of the two slices (e.g. the
    /// page's start offset).
    ///
    /// This is the write-collection step of the twinning implementations.
    /// The copies are compared eight bytes at a time; the result is
    /// byte-identical to [`Diff::from_compare_reference`] (the per-block
    /// reference the property tests pin it against).
    ///
    /// # Panics
    ///
    /// Panics if the twin and current slices have different lengths.
    pub fn from_compare(
        twin: &[u8],
        current: &[u8],
        base_offset: usize,
        granularity: BlockGranularity,
    ) -> Self {
        assert_eq!(
            twin.len(),
            current.len(),
            "twin and current copies must be the same size"
        );
        let len = current.len();
        let mut b = Builder::new(current, base_offset);
        match granularity {
            // Word blocks are exactly the runs `changed_word_runs` delivers
            // (the one chunked scan in this crate); a run's byte end is
            // clamped for a trailing word shorter than 4 bytes.
            BlockGranularity::Word => {
                changed_word_runs(twin, current, 0..len.div_ceil(4), |s, e| {
                    b.push_range(s * 4, (e * 4).min(len));
                });
            }
            BlockGranularity::DoubleWord => {
                let chunks = len / 8;
                for c in 0..chunks {
                    let at = c * 8;
                    if twin[at..at + 8] != current[at..at + 8] {
                        b.push_range(at, at + 8);
                    }
                }
                // Trailing partial block.
                let at = chunks * 8;
                if at < len && twin[at..] != current[at..] {
                    b.push_range(at, len);
                }
            }
        }
        b.finish(granularity)
    }

    /// The straightforward block-by-block form of [`Diff::from_compare`],
    /// retained as the executable specification the chunked comparison is
    /// property-tested against.  Not for production use.
    pub fn from_compare_reference(
        twin: &[u8],
        current: &[u8],
        base_offset: usize,
        granularity: BlockGranularity,
    ) -> Self {
        assert_eq!(
            twin.len(),
            current.len(),
            "twin and current copies must be the same size"
        );
        let bs = granularity.bytes();
        let nblocks = granularity.blocks_in(current.len());
        let mut b = Builder::new(current, base_offset);
        for block in 0..nblocks {
            let start = block * bs;
            let end = (start + bs).min(current.len());
            if twin[start..end] != current[start..end] {
                b.push_range(start, end);
            }
        }
        b.finish(granularity)
    }

    /// Builds a diff from an explicit set of modified block indices (indices
    /// are relative to `current`, i.e. block 0 starts at byte 0 of the
    /// slice).  Indices past the end of `current` are ignored; duplicates
    /// are tolerated.
    ///
    /// This is the write-collection step when software dirty bits (compiler
    /// instrumentation) identify the modified blocks.  The indices are
    /// consumed streaming — no per-call scratch is allocated — which is why
    /// they must arrive in non-decreasing order, the order a dirty-bit scan
    /// naturally produces.  (Callers holding a [`BitSet`](crate::BitSet)
    /// should prefer [`Diff::from_block_runs`] with
    /// [`iter_runs`](crate::BitSet::iter_runs).)
    ///
    /// # Panics
    ///
    /// Panics if the indices are not in non-decreasing order.
    pub fn from_blocks<I>(
        current: &[u8],
        base_offset: usize,
        blocks: I,
        granularity: BlockGranularity,
    ) -> Self
    where
        I: IntoIterator<Item = usize>,
    {
        let bs = granularity.bytes();
        let nblocks = granularity.blocks_in(current.len());
        let mut b = Builder::new(current, base_offset);
        let mut prev = 0usize;
        for block in blocks {
            assert!(
                block >= prev,
                "block indices must be non-decreasing (got {block} after {prev})"
            );
            prev = block;
            if block >= nblocks {
                continue;
            }
            let start = block * bs;
            let end = (start + bs).min(current.len());
            if b.open.is_some_and(|(_, e)| e >= end) {
                continue; // duplicate of the open run's last block
            }
            b.push_range(start, end);
        }
        b.finish(granularity)
    }

    /// Builds a diff from maximal runs of modified blocks, as `(first_block,
    /// block_count)` pairs in increasing order — the shape
    /// [`BitSet::iter_runs`](crate::BitSet::iter_runs) yields.  Each run
    /// becomes (at most) one diff run with one payload copy, and nothing is
    /// allocated beyond the diff itself.
    ///
    /// # Panics
    ///
    /// Panics if the runs overlap or are not in increasing order.
    pub fn from_block_runs<I>(
        current: &[u8],
        base_offset: usize,
        runs: I,
        granularity: BlockGranularity,
    ) -> Self
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let bs = granularity.bytes();
        let len = current.len();
        let mut b = Builder::new(current, base_offset);
        let mut prev_end = 0usize;
        for (first, count) in runs {
            let start = (first * bs).min(len);
            let end = (first.saturating_add(count).saturating_mul(bs)).min(len);
            assert!(
                start >= prev_end,
                "block runs must be disjoint and in increasing order"
            );
            prev_end = end;
            if start < end {
                b.push_range(start, end);
            }
        }
        b.finish(granularity)
    }

    /// Reassembles a diff from decoded wire parts: `(offset, len)` run
    /// descriptors in increasing offset order plus the concatenated payload
    /// (run bytes back to back, in run order).  Returns `None` if the run
    /// table and payload disagree on the total length or the runs are not
    /// strictly increasing/disjoint — a malformed wire record must not build
    /// a diff that would later panic in [`Diff::apply`].
    pub(crate) fn from_wire_parts(
        runs: &[(u32, u32)],
        payload: Vec<u8>,
        granularity: BlockGranularity,
    ) -> Option<Self> {
        let mut body = DiffBody {
            runs: Vec::with_capacity(runs.len()),
            payload,
        };
        let mut pos = 0usize;
        let mut prev_end = 0usize;
        for &(offset, len) in runs {
            let (offset, len) = (offset as usize, len as usize);
            if len == 0 || offset < prev_end {
                return None;
            }
            prev_end = offset + len;
            body.runs.push(RunDesc { offset, pos, len });
            pos += len;
        }
        if pos != body.payload.len() {
            return None;
        }
        Some(Diff {
            body: Arc::new(body),
            granularity,
        })
    }

    /// The runs of this diff, in increasing offset order.
    pub fn runs(&self) -> DiffRuns<'_> {
        DiffRuns {
            body: &self.body,
            next: 0,
        }
    }

    /// The block granularity the diff was created at.
    pub fn granularity(&self) -> BlockGranularity {
        self.granularity
    }

    /// True if the diff records no modifications.
    pub fn is_empty(&self) -> bool {
        self.body.runs.is_empty()
    }

    /// Total number of modified bytes carried by the diff.
    pub fn modified_bytes(&self) -> usize {
        self.body.payload.len()
    }

    /// Total number of modified blocks carried by the diff.
    pub fn modified_blocks(&self) -> usize {
        self.body
            .runs
            .iter()
            .map(|r| self.granularity.blocks_in(r.len))
            .sum()
    }

    /// Size of the diff on the wire: modified bytes plus a per-run header.
    pub fn encoded_size(&self) -> usize {
        self.modified_bytes() + self.body.runs.len() * RUN_HEADER_BYTES
    }

    /// Applies the diff to a region-sized buffer.
    ///
    /// # Panics
    ///
    /// Panics if a run extends past the end of `target`.
    pub fn apply(&self, target: &mut [u8]) {
        for r in &self.body.runs {
            target[r.offset..r.offset + r.len]
                .copy_from_slice(&self.body.payload[r.pos..r.pos + r.len]);
        }
    }

    /// Iterator over `(block_index, block_bytes)` pairs, where block indices
    /// are region-absolute (i.e. `offset / granularity`).
    pub fn blocks(&self) -> impl Iterator<Item = (usize, &[u8])> + '_ {
        let bs = self.granularity.bytes();
        let body = &*self.body;
        body.runs.iter().flat_map(move |run| {
            let data = &body.payload[run.pos..run.pos + run.len];
            (0..run.len.div_ceil(bs)).map(move |i| {
                let start = i * bs;
                let end = (start + bs).min(data.len());
                ((run.offset + start) / bs, &data[start..end])
            })
        })
    }
}

/// Calls `f(start_word, end_word)` for every maximal run of changed 4-byte
/// words in `words`, comparing `current` against `twin` (equal-length
/// slices; a trailing word may be shorter than 4 bytes).
///
/// This is the raw scan underneath twinning write collection, exposed so
/// protocol engines that publish straight into a master copy can reuse the
/// chunked comparison without building a [`Diff`]: words are compared eight
/// bytes (two words) at a time and only a differing chunk is refined to word
/// granularity.  The runs delivered are exactly the maximal runs a
/// word-by-word comparison would find.
///
/// ```
/// use dsm_mem::changed_word_runs;
///
/// let twin = [0u8; 16];
/// let mut cur = [0u8; 16];
/// cur[0] = 1; // word 0
/// cur[12] = 2; // word 3
/// let mut runs = Vec::new();
/// changed_word_runs(&twin, &cur, 0..4, |s, e| runs.push((s, e)));
/// assert_eq!(runs, vec![(0, 1), (3, 4)]);
/// ```
///
/// # Panics
///
/// Panics if the twin and current slices have different lengths.
pub fn changed_word_runs(
    twin: &[u8],
    current: &[u8],
    words: std::ops::Range<usize>,
    mut f: impl FnMut(usize, usize),
) {
    assert_eq!(
        twin.len(),
        current.len(),
        "twin and current copies must be the same size"
    );
    let len = current.len();
    let mut open: Option<usize> = None;
    let mut w = words.start;
    while w < words.end {
        if w + 2 <= words.end && w * 4 + 8 <= len {
            let at = w * 4;
            let t = u64::from_le_bytes(twin[at..at + 8].try_into().expect("8-byte chunk"));
            let u = u64::from_le_bytes(current[at..at + 8].try_into().expect("8-byte chunk"));
            if t == u {
                if let Some(s) = open.take() {
                    f(s, w);
                }
                w += 2;
                continue;
            }
            let x = t ^ u;
            // Little-endian interpretation: the low 32 bits are word `w`.
            if x & 0xffff_ffff != 0 {
                open.get_or_insert(w);
            } else if let Some(s) = open.take() {
                f(s, w);
            }
            if x >> 32 != 0 {
                open.get_or_insert(w + 1);
            } else if let Some(s) = open.take() {
                f(s, w + 1);
            }
            w += 2;
            continue;
        }
        let sb = (w * 4).min(len);
        let eb = (sb + 4).min(len);
        if twin[sb..eb] != current[sb..eb] {
            open.get_or_insert(w);
        } else if let Some(s) = open.take() {
            f(s, w);
        }
        w += 1;
    }
    if let Some(s) = open.take() {
        f(s, words.end);
    }
}

/// Iterator over a diff's runs; see [`Diff::runs`].
#[derive(Debug, Clone)]
pub struct DiffRuns<'a> {
    body: &'a DiffBody,
    next: usize,
}

impl<'a> Iterator for DiffRuns<'a> {
    type Item = DiffRun<'a>;

    fn next(&mut self) -> Option<DiffRun<'a>> {
        let r = self.body.runs.get(self.next)?;
        self.next += 1;
        Some(DiffRun {
            offset: r.offset,
            data: &self.body.payload[r.pos..r.pos + r.len],
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.body.runs.len() - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for DiffRuns<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn word_diff(twin: &[u8], current: &[u8]) -> Diff {
        Diff::from_compare(twin, current, 0, BlockGranularity::Word)
    }

    fn first_run<'a>(d: &'a Diff) -> DiffRun<'a> {
        d.runs().next().expect("at least one run")
    }

    #[test]
    fn identical_data_gives_empty_diff() {
        let data = vec![42u8; 128];
        let d = word_diff(&data, &data);
        assert!(d.is_empty());
        assert_eq!(d.encoded_size(), 0);
        assert_eq!(d.modified_blocks(), 0);
    }

    #[test]
    fn adjacent_changes_coalesce_into_one_run() {
        let twin = vec![0u8; 64];
        let mut cur = twin.clone();
        cur[16..28].fill(9);
        let d = word_diff(&twin, &cur);
        assert_eq!(d.runs().len(), 1);
        assert_eq!(first_run(&d).offset, 16);
        assert_eq!(first_run(&d).len(), 12);
        assert_eq!(d.modified_blocks(), 3);
    }

    #[test]
    fn base_offset_is_added_to_run_offsets() {
        let twin = vec![0u8; 16];
        let mut cur = twin.clone();
        cur[0..4].fill(1);
        let d = Diff::from_compare(&twin, &cur, 4096, BlockGranularity::Word);
        assert_eq!(first_run(&d).offset, 4096);
        let mut target = vec![0u8; 4096 + 16];
        d.apply(&mut target);
        assert_eq!(&target[4096..4100], &[1, 1, 1, 1]);
    }

    #[test]
    fn from_blocks_matches_explicit_dirty_set() {
        let mut cur = vec![0u8; 32];
        cur[8..12].fill(5);
        cur[12..16].fill(6);
        cur[24..28].fill(7);
        // Blocks 2,3 and 6 marked dirty; block 5 dirty but unchanged in value
        // (instrumentation reports it anyway).
        let d = Diff::from_blocks(&cur, 0, [2usize, 3, 5, 6], BlockGranularity::Word);
        assert_eq!(d.modified_blocks(), 4);
        assert_eq!(d.runs().len(), 2); // [8..16], [20..28]
        let mut target = vec![0u8; 32];
        d.apply(&mut target);
        assert_eq!(target, cur);
    }

    #[test]
    fn from_blocks_tolerates_duplicates_and_ignores_out_of_range() {
        let cur = vec![7u8; 16];
        let d = Diff::from_blocks(&cur, 0, [1usize, 1, 2, 9, 12], BlockGranularity::Word);
        assert_eq!(d.runs().len(), 1);
        assert_eq!(first_run(&d).offset, 4);
        assert_eq!(first_run(&d).len(), 8);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn from_blocks_rejects_unsorted_indices() {
        let cur = vec![0u8; 32];
        let _ = Diff::from_blocks(&cur, 0, [3usize, 1], BlockGranularity::Word);
    }

    #[test]
    fn from_block_runs_matches_from_blocks() {
        let mut cur = vec![0u8; 64];
        cur[4..20].fill(3);
        cur[40..44].fill(4);
        let a = Diff::from_blocks(&cur, 16, [1usize, 2, 3, 4, 10], BlockGranularity::Word);
        let b = Diff::from_block_runs(
            &cur,
            16,
            [(1usize, 4usize), (10, 1)],
            BlockGranularity::Word,
        );
        assert_eq!(a, b);
        // A run past the end is clamped; an empty run is dropped.
        let c = Diff::from_block_runs(
            &cur,
            16,
            [(1usize, 4usize), (10, 1), (16, 4)],
            BlockGranularity::Word,
        );
        assert_eq!(b, c);
    }

    #[test]
    fn double_word_granularity_coarsens() {
        let twin = vec![0u8; 32];
        let mut cur = twin.clone();
        cur[4..8].fill(3); // one word touched -> whole double-word included
        let d = Diff::from_compare(&twin, &cur, 0, BlockGranularity::DoubleWord);
        assert_eq!(d.runs().len(), 1);
        assert_eq!(first_run(&d).offset, 0);
        assert_eq!(first_run(&d).len(), 8);
    }

    #[test]
    fn tail_shorter_than_block_is_handled() {
        let twin = vec![0u8; 10];
        let mut cur = twin.clone();
        cur[9] = 1;
        let d = word_diff(&twin, &cur);
        assert_eq!(d.runs().len(), 1);
        assert_eq!(first_run(&d).offset, 8);
        assert_eq!(first_run(&d).len(), 2);
        let mut target = vec![0u8; 10];
        d.apply(&mut target);
        assert_eq!(target, cur);
    }

    #[test]
    fn blocks_iterator_yields_absolute_block_indices() {
        let twin = vec![0u8; 32];
        let mut cur = twin.clone();
        cur[8..16].fill(1);
        let d = Diff::from_compare(&twin, &cur, 64, BlockGranularity::Word);
        let blocks: Vec<usize> = d.blocks().map(|(b, _)| b).collect();
        assert_eq!(blocks, vec![18, 19]); // (64 + 8)/4 and (64 + 12)/4
    }

    #[test]
    fn encoded_size_includes_run_headers() {
        let twin = vec![0u8; 64];
        let mut cur = twin.clone();
        cur[0..4].fill(1);
        cur[32..36].fill(2);
        let d = word_diff(&twin, &cur);
        assert_eq!(d.encoded_size(), 8 + 2 * RUN_HEADER_BYTES);
    }

    #[test]
    fn clones_share_the_payload() {
        let twin = vec![0u8; 64];
        let mut cur = twin.clone();
        cur[0..12].fill(9);
        let d = word_diff(&twin, &cur);
        let d2 = d.clone();
        assert!(Arc::ptr_eq(&d.body, &d2.body));
        assert_eq!(d, d2);
    }

    #[test]
    fn chunked_compare_matches_reference_on_edge_shapes() {
        // Lengths around the 8-byte chunk boundary, with changes at the edges.
        for len in [0usize, 1, 3, 4, 7, 8, 9, 12, 15, 16, 17, 23, 24] {
            for flip in 0..len {
                let twin = vec![0u8; len];
                let mut cur = twin.clone();
                cur[flip] ^= 0x80;
                for gran in [BlockGranularity::Word, BlockGranularity::DoubleWord] {
                    let fast = Diff::from_compare(&twin, &cur, 32, gran);
                    let slow = Diff::from_compare_reference(&twin, &cur, 32, gran);
                    assert_eq!(fast, slow, "len {len} flip {flip} gran {gran}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "same size")]
    fn mismatched_lengths_panic() {
        let _ = Diff::from_compare(&[0u8; 8], &[0u8; 12], 0, BlockGranularity::Word);
    }

    #[test]
    fn changed_word_runs_matches_word_walk() {
        let mut rng = crate::testutil::TestRng::new(77);
        for _ in 0..256 {
            let len = rng.in_range(1, 120);
            let twin = rng.bytes(len);
            let mut cur = twin.clone();
            for _ in 0..rng.below(12) {
                let p = rng.below(len);
                cur[p] = rng.byte();
            }
            let nwords = len.div_ceil(4);
            let w0 = rng.below(nwords + 1);
            let w1 = w0 + rng.below(nwords + 1 - w0);
            // Reference: word-by-word comparison over the same range.
            let mut expect = Vec::new();
            let mut open: Option<usize> = None;
            for w in w0..w1 {
                let sb = (w * 4).min(len);
                let eb = (sb + 4).min(len);
                if twin[sb..eb] != cur[sb..eb] {
                    open.get_or_insert(w);
                } else if let Some(s) = open.take() {
                    expect.push((s, w));
                }
            }
            if let Some(s) = open {
                expect.push((s, w1));
            }
            let mut got = Vec::new();
            changed_word_runs(&twin, &cur, w0..w1, |s, e| got.push((s, e)));
            assert_eq!(got, expect, "len {len} words {w0}..{w1}");
        }
    }
}
