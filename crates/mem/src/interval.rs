//! Execution intervals and write notices (LRC).

use std::fmt;

use dsm_sim::NodeId;

use crate::RegionId;

/// Identifies one execution interval of one processor.
///
/// An interval ends (and the next begins) every time the processor performs a
/// release or an acquire.  `(node, index)` pairs are also the LRC per-block
/// timestamps: "processor `p` wrote the current value of the block during its
/// interval `i`" (Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntervalId {
    /// The processor the interval belongs to.
    pub node: NodeId,
    /// The interval index within that processor's execution (starts at 1; 0
    /// means "before any interval").
    pub index: u32,
}

impl IntervalId {
    /// Creates an interval id.
    pub fn new(node: NodeId, index: u32) -> Self {
        IntervalId { node, index }
    }

    /// Size of a `(processor, interval)` timestamp on the wire: the paper
    /// notes that "each of the timestamps consists of a processor identifier
    /// and an interval index" (Section 5.3); we charge 2 + 4 bytes.
    pub const WIRE_SIZE: usize = 6;
}

impl fmt::Display for IntervalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node, self.index)
    }
}

/// A write notice: "page `page` of region `region` was modified during
/// interval `interval`".
///
/// With LRC's invalidate protocol a write notice does *not* carry the actual
/// modifications; its arrival invalidates the local copy of the page, and the
/// data is fetched later at an access miss (Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WriteNotice {
    /// The region containing the modified page.
    pub region: RegionId,
    /// The page index within the region.
    pub page: usize,
    /// The interval in which the page was modified.
    pub interval: IntervalId,
}

impl WriteNotice {
    /// Creates a write notice.
    pub fn new(region: RegionId, page: usize, interval: IntervalId) -> Self {
        WriteNotice {
            region,
            page,
            interval,
        }
    }

    /// Size of a write notice on the wire (region id + page index + interval).
    pub const WIRE_SIZE: usize = 4 + 4 + IntervalId::WIRE_SIZE;
}

impl fmt::Display for WriteNotice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wn({} pg{} @ {})", self.region, self.page, self.interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_ordering_is_lexicographic() {
        let a = IntervalId::new(NodeId::new(0), 5);
        let b = IntervalId::new(NodeId::new(0), 6);
        let c = IntervalId::new(NodeId::new(1), 1);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn display_formats() {
        let i = IntervalId::new(NodeId::new(2), 7);
        assert_eq!(i.to_string(), "P2:7");
        let wn = WriteNotice::new(RegionId::new(1), 3, i);
        assert_eq!(wn.to_string(), "wn(R1 pg3 @ P2:7)");
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn wire_sizes_are_positive() {
        assert!(IntervalId::WIRE_SIZE > 0);
        assert!(WriteNotice::WIRE_SIZE > IntervalId::WIRE_SIZE);
    }
}
