//! Per-page sharing statistics and the adaptive-policy mode machinery.
//!
//! The adaptive LRC data policy (`dsm-core`) migrates each page between
//! three data-movement modes based on the sharing pattern the page exhibits
//! at runtime.  This module holds the mechanism pieces: the mode itself
//! ([`PageMode`], with a compact packed form for lock-free publication), the
//! per-page window accumulator the engines feed from their publish and miss
//! paths ([`PageSharing`]), and the hysteresis rule that turns two agreeing
//! observation windows into a migration decision
//! ([`PageSharing::advance`]).
//!
//! Everything here is a pure function of the recorded events.  The engines
//! only record *entitlement-visible* events (publishes committed under the
//! region write lock, misses decided against entitled history records), and
//! windows are closed at barrier commits while every node is blocked — so
//! for a data-race-free program the decision sequence is a deterministic
//! function of the program and the processor count.

/// The data-movement mode of one page under the adaptive policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageMode {
    /// TreadMarks behaviour: modifications stay with their writers and a
    /// miss collects diffs from every concurrent writer.  The starting mode
    /// of every page.
    Homeless,
    /// Home-based flush: releasers eagerly flush modifications to the home
    /// node (re-assigned to the dominant writer, not round-robin) and a miss
    /// is one whole-page round trip.
    Home(u32),
    /// Single-writer pinning: the owner's twin/diff work is suppressed
    /// entirely — no protocol traffic — until a second writer faults on the
    /// page.
    Pinned(u32),
}

/// Owner mask of the packed form: low 30 bits.
const OWNER_MASK: u32 = (1 << 30) - 1;

impl PageMode {
    /// Packs the mode into a `u32` (tag in the top two bits, owner below) so
    /// engines can publish mode changes through a single atomic store.
    pub fn pack(self) -> u32 {
        match self {
            PageMode::Homeless => 0,
            PageMode::Home(owner) => (1 << 30) | (owner & OWNER_MASK),
            PageMode::Pinned(owner) => (2 << 30) | (owner & OWNER_MASK),
        }
    }

    /// Inverse of [`PageMode::pack`].
    pub fn unpack(packed: u32) -> Self {
        let owner = packed & OWNER_MASK;
        match packed >> 30 {
            0 => PageMode::Homeless,
            1 => PageMode::Home(owner),
            _ => PageMode::Pinned(owner),
        }
    }

    /// Short label used in migration traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            PageMode::Homeless => "homeless",
            PageMode::Home(_) => "home",
            PageMode::Pinned(_) => "pinned",
        }
    }
}

impl std::fmt::Display for PageMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageMode::Homeless => f.write_str("homeless"),
            PageMode::Home(o) => write!(f, "home({o})"),
            PageMode::Pinned(o) => write!(f, "pinned({o})"),
        }
    }
}

/// One committed migration decision: at barrier-commit `eval`, page `page`
/// of region `region` switched to `mode`.  The sequence of these records is
/// a run's *migration trace*; determinism tests compare it across repeated
/// runs, and the same 16 bytes per record travel in the transport's control
/// frames so replicas can verify they saw every decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageModeChange {
    /// Barrier-commit sequence number (1-based) the decision was made at.
    pub eval: u32,
    /// Region index of the page.
    pub region: u32,
    /// Page index within the region.
    pub page: u32,
    /// The mode the page migrated to.
    pub mode: PageMode,
}

impl PageModeChange {
    /// Encoded size of one record on the wire (and in the simulated
    /// barrier-release payload): eval, region, page, packed mode.
    pub const WIRE_SIZE: usize = 16;

    /// Appends the record's wire form (four little-endian `u32`s).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.eval.to_le_bytes());
        out.extend_from_slice(&self.region.to_le_bytes());
        out.extend_from_slice(&self.page.to_le_bytes());
        out.extend_from_slice(&self.mode.pack().to_le_bytes());
    }
}

/// Per-page sharing-statistics accumulator: one observation window of
/// publish/miss events plus whole-run totals and the pending-candidate slot
/// of the hysteresis rule.
///
/// The engines record into the current window under the region write lock;
/// the adaptive controller calls [`PageSharing::advance`] once per barrier
/// commit (all nodes blocked) to close the window and obtain a migration
/// candidate.  Window counters are sums over commutative events, so their
/// closed values do not depend on thread scheduling within the window.
#[derive(Debug, Clone)]
pub struct PageSharing {
    /// Publishes per writer in the current window.
    writer_pubs: Vec<u32>,
    /// Total publishes in the current window.
    publishes: u32,
    /// Publishes whose predecessor record was already covered by the
    /// publisher's vector (the writers serialized, e.g. under a migratory
    /// lock); `serial == publishes` means no two writers raced.
    serial_publishes: u32,
    /// Encoded diff bytes published in the current window (always the
    /// unsuppressed size, so the signal is mode-independent).
    diff_bytes: u64,
    /// Access misses taken on the page in the current window.
    misses: u32,
    /// Whole-run publishes per writer.  The home-candidate target is the
    /// *cumulative* dominant writer (ties to the lowest id), so that data
    /// whose per-window writer rotates — migratory pages visited in turn —
    /// still produces a stable candidate the hysteresis rule can confirm.
    total_writer_pubs: Vec<u64>,
    /// The previous window's candidate, packed (`u32::MAX` = none): a
    /// migration fires only when two consecutive windows agree.
    pending: u32,
    /// Whole-run publish count (for reporting).
    pub total_publishes: u64,
    /// Whole-run encoded diff bytes (for reporting).
    pub total_diff_bytes: u64,
    /// Whole-run miss count (for reporting).
    pub total_misses: u64,
}

/// Sentinel for "no pending candidate" (distinct from every packed mode:
/// packed owners use 30 bits).
const NO_PENDING: u32 = u32::MAX;

impl PageSharing {
    /// Empty accumulator for a cluster of `nprocs` processors.
    pub fn new(nprocs: usize) -> Self {
        PageSharing {
            writer_pubs: vec![0; nprocs],
            publishes: 0,
            serial_publishes: 0,
            diff_bytes: 0,
            misses: 0,
            total_writer_pubs: vec![0; nprocs],
            pending: NO_PENDING,
            total_publishes: 0,
            total_diff_bytes: 0,
            total_misses: 0,
        }
    }

    /// Records one publish by `writer`: `bytes` of encoded modifications,
    /// `serial` if the page's previous publish record was already covered by
    /// the publisher's vector.
    pub fn record_publish(&mut self, writer: usize, bytes: usize, serial: bool) {
        self.writer_pubs[writer] += 1;
        self.publishes += 1;
        self.serial_publishes += u32::from(serial);
        self.diff_bytes += bytes as u64;
        self.total_writer_pubs[writer] += 1;
        self.total_publishes += 1;
        self.total_diff_bytes += bytes as u64;
    }

    /// Records one access miss on the page.
    pub fn record_miss(&mut self) {
        self.misses += 1;
        self.total_misses += 1;
    }

    /// Reverts one [`PageSharing::record_miss`].  The recovery subsystem
    /// calls this when rolling a crashed node back to its last checkpoint:
    /// the discarded epoch's misses must leave neither the whole-run totals
    /// (reported traffic) nor the current window (the adaptive pin-break
    /// signal), because the replayed epoch records them again.
    pub fn unrecord_miss(&mut self) {
        self.misses = self.misses.saturating_sub(1);
        self.total_misses = self.total_misses.saturating_sub(1);
    }

    /// Distinct writers observed in the current window.
    pub fn window_writers(&self) -> usize {
        self.writer_pubs.iter().filter(|&&c| c > 0).count()
    }

    /// Misses recorded in the current window.
    pub fn window_misses(&self) -> u32 {
        self.misses
    }

    /// Whether any node other than `owner` published in the current window
    /// (the pin-break signal: a pinned page must demote when a second writer
    /// shows up).
    pub fn window_foreign_writer(&self, owner: usize) -> bool {
        self.writer_pubs
            .iter()
            .enumerate()
            .any(|(q, &c)| q != owner && c > 0)
    }

    /// The candidate mode the current window's statistics argue for, if the
    /// window holds any evidence:
    ///
    /// * one writer, no misses → [`PageMode::Pinned`] at the writer;
    /// * page-sized publishes with misses → [`PageMode::Home`] at the
    ///   cumulative dominant writer, but only when a home actually beats
    ///   homeless accumulation (see below); homeless otherwise;
    /// * several writers racing (false sharing) → [`PageMode::Homeless`].
    ///
    /// A home replaces per-visit diff accumulation (each homeless miss
    /// refetches every diff still pending) with one flush plus one
    /// whole-page fetch per visitor.  That trade only pays off when the
    /// accumulation is real:
    ///
    /// * **migratory data** — the writership has rotated over at least three
    ///   nodes (with two, a visitor's miss ever finds one pending diff and
    ///   homeless is cheaper);
    /// * **producer/consumer** — one lifetime writer whose window shows at
    ///   least two publishes *and* two misses (several readers each
    ///   refetching several accumulated diffs; with one of either, the
    ///   home's flush+fetch costs as much as the diffs it replaces).
    ///
    /// `accumulating` says whether the policy's homeless miss path pays for
    /// every pending per-interval diff (diff collection).  Timestamp-based
    /// collections reconstruct one consolidated reply at fetch time, so for
    /// them a home can only add eager flushes and whole-page replies — the
    /// home candidates degrade to [`PageMode::Homeless`] and only pinning
    /// remains on the table.
    fn candidate(&self, page_bytes: usize, accumulating: bool) -> Option<PageMode> {
        if self.publishes == 0 {
            // Misses alone say nothing about the writer set.
            return None;
        }
        let writers = self.window_writers();
        let total_writers = self.total_writer_pubs.iter().filter(|&&c| c > 0).count();
        let home_pays =
            total_writers >= 3 || (total_writers == 1 && self.misses >= 2 && self.publishes >= 2);
        // The pin target is this window's writer; the home target is the
        // whole-run dominant writer, which stays stable when the per-window
        // writer rotates (both tie to the lowest id).
        let window_writer = self
            .writer_pubs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(w, _)| w as u32)
            .unwrap_or(0);
        let dominant = self
            .total_writer_pubs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(w, _)| w as u32)
            .unwrap_or(0);
        let home = if accumulating {
            PageMode::Home(dominant)
        } else {
            PageMode::Homeless
        };
        Some(if writers <= 1 {
            if self.misses == 0 {
                PageMode::Pinned(window_writer)
            } else if home_pays
                && self.diff_bytes * 4 >= self.publishes as u64 * page_bytes as u64 * 3
            {
                // Diffs approach the page size: the home's whole-page reply
                // costs no more and the accumulation is what a homeless miss
                // would otherwise pay per unseen writer.
                home
            } else {
                PageMode::Homeless
            }
        } else if self.serial_publishes == self.publishes && home_pays {
            home
        } else {
            PageMode::Homeless
        })
    }

    /// Closes the current window: returns the confirmed migration candidate
    /// — the window's candidate, only when the *previous* window proposed
    /// the same mode (two-window hysteresis) — and resets the window
    /// counters.  `page_bytes` sizes the diff-vs-page comparison;
    /// `accumulating` is the collection property described on the private
    /// `candidate` helper's docs (home candidates are only viable under
    /// accumulating diff collection).
    ///
    /// An idle window (no publishes) voids any pending candidate and
    /// confirms nothing, so a page that goes quiet keeps its mode.
    pub fn advance(&mut self, page_bytes: usize, accumulating: bool) -> Option<PageMode> {
        let candidate = self.candidate(page_bytes, accumulating);
        let confirmed = match candidate {
            Some(c) if self.pending == c.pack() => Some(c),
            _ => None,
        };
        self.pending = candidate.map_or(NO_PENDING, PageMode::pack);
        for c in &mut self.writer_pubs {
            *c = 0;
        }
        self.publishes = 0;
        self.serial_publishes = 0;
        self.diff_bytes = 0;
        self.misses = 0;
        confirmed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_packing_roundtrips() {
        for mode in [
            PageMode::Homeless,
            PageMode::Home(0),
            PageMode::Home(7),
            PageMode::Pinned(0),
            PageMode::Pinned(31),
        ] {
            assert_eq!(PageMode::unpack(mode.pack()), mode, "{mode}");
        }
        assert_ne!(PageMode::Homeless.pack(), NO_PENDING);
    }

    #[test]
    fn change_record_encodes_sixteen_bytes() {
        let c = PageModeChange {
            eval: 3,
            region: 1,
            page: 9,
            mode: PageMode::Pinned(2),
        };
        let mut buf = Vec::new();
        c.encode_into(&mut buf);
        assert_eq!(buf.len(), PageModeChange::WIRE_SIZE);
        assert_eq!(&buf[0..4], &3u32.to_le_bytes());
        assert_eq!(&buf[12..16], &PageMode::Pinned(2).pack().to_le_bytes());
    }

    #[test]
    fn single_writer_without_readers_pins_after_two_windows() {
        let mut s = PageSharing::new(4);
        s.record_publish(2, 64, true);
        assert_eq!(s.advance(4096, true), None, "first window only proposes");
        s.record_publish(2, 64, true);
        assert_eq!(s.advance(4096, true), Some(PageMode::Pinned(2)));
        assert_eq!(s.total_publishes, 2);
    }

    #[test]
    fn single_writer_with_small_diffs_and_readers_stays_homeless() {
        let mut s = PageSharing::new(4);
        for _ in 0..2 {
            s.record_publish(1, 64, true);
            s.record_miss();
            s.advance(4096, true);
        }
        s.record_publish(1, 64, true);
        s.record_miss();
        assert_eq!(s.advance(4096, true), Some(PageMode::Homeless));
    }

    #[test]
    fn page_sized_producer_consumer_gets_a_home_at_the_writer() {
        // One lifetime writer, two page-sized publishes and two reader
        // misses per window: the readers refetch accumulated diffs, so a
        // home at the writer pays off.
        let mut s = PageSharing::new(4);
        for _ in 0..2 {
            s.record_publish(3, 4096, true);
            s.record_publish(3, 4096, true);
            s.record_miss();
            s.record_miss();
            s.advance(4096, true);
        }
        s.record_publish(3, 4096, true);
        s.record_publish(3, 4096, true);
        s.record_miss();
        s.record_miss();
        assert_eq!(s.advance(4096, true), Some(PageMode::Home(3)));
    }

    #[test]
    fn lone_reader_of_a_lone_writer_stays_homeless() {
        // With a single reader taking a single miss per window, homeless
        // diffing moves one diff per window where a home would move a flush
        // *and* a fetch — the home never pays off, page-sized or not.
        let mut s = PageSharing::new(4);
        for _ in 0..2 {
            s.record_publish(3, 4096, true);
            s.record_miss();
            s.advance(4096, true);
        }
        s.record_publish(3, 4096, true);
        s.record_miss();
        assert_eq!(s.advance(4096, true), Some(PageMode::Homeless));
    }

    #[test]
    fn serialized_multi_writer_homes_at_the_dominant_writer() {
        let mut s = PageSharing::new(4);
        for _ in 0..2 {
            s.record_publish(1, 128, true);
            s.record_publish(1, 128, true);
            s.record_publish(3, 128, true);
            s.record_publish(2, 128, true);
            s.advance(4096, true);
        }
        s.record_publish(1, 128, true);
        s.record_publish(1, 128, true);
        s.record_publish(3, 128, true);
        s.record_publish(2, 128, true);
        assert_eq!(s.advance(4096, true), Some(PageMode::Home(1)));
    }

    #[test]
    fn two_writer_migratory_data_stays_homeless() {
        // With only two nodes ever writing, a visitor's miss finds exactly
        // one pending diff: homeless moves one diff per visit where a home
        // would move two pages.
        let mut s = PageSharing::new(4);
        for _ in 0..2 {
            s.record_publish(0, 4096, true);
            s.record_publish(1, 4096, true);
            s.advance(4096, true);
        }
        s.record_publish(0, 4096, true);
        s.record_publish(1, 4096, true);
        assert_eq!(s.advance(4096, true), Some(PageMode::Homeless));
    }

    #[test]
    fn dominant_writer_ties_go_to_the_lowest_node() {
        let mut s = PageSharing::new(4);
        for _ in 0..2 {
            s.record_publish(2, 32, true);
            s.record_publish(1, 32, true);
            s.record_publish(3, 32, true);
            s.advance(4096, true);
        }
        s.record_publish(2, 32, true);
        s.record_publish(1, 32, true);
        s.record_publish(3, 32, true);
        assert_eq!(s.advance(4096, true), Some(PageMode::Home(1)));
    }

    #[test]
    fn racing_writers_confirm_homeless() {
        let mut s = PageSharing::new(4);
        for _ in 0..2 {
            s.record_publish(0, 32, true);
            s.record_publish(1, 32, false); // concurrent with node 0's
            s.advance(4096, true);
        }
        s.record_publish(0, 32, true);
        s.record_publish(1, 32, false);
        assert_eq!(s.advance(4096, true), Some(PageMode::Homeless));
    }

    #[test]
    fn non_accumulating_collections_never_propose_a_home() {
        // Under timestamp collections the homeless miss reply is already
        // consolidated, so both home-shaped patterns degrade to Homeless...
        let mut migratory = PageSharing::new(4);
        for _ in 0..2 {
            migratory.record_publish(1, 4096, true);
            migratory.record_publish(3, 4096, true);
            migratory.record_publish(2, 4096, true);
            migratory.advance(4096, false);
        }
        migratory.record_publish(1, 4096, true);
        migratory.record_publish(3, 4096, true);
        migratory.record_publish(2, 4096, true);
        assert_eq!(migratory.advance(4096, false), Some(PageMode::Homeless));

        let mut producer = PageSharing::new(4);
        for _ in 0..2 {
            producer.record_publish(2, 4096, true);
            producer.record_publish(2, 4096, true);
            producer.record_miss();
            producer.record_miss();
            producer.advance(4096, false);
        }
        producer.record_publish(2, 4096, true);
        producer.record_publish(2, 4096, true);
        producer.record_miss();
        producer.record_miss();
        assert_eq!(producer.advance(4096, false), Some(PageMode::Homeless));

        // ...while pinning, which suppresses work rather than moving it,
        // stays available.
        let mut lone = PageSharing::new(4);
        lone.record_publish(2, 64, true);
        lone.advance(4096, false);
        lone.record_publish(2, 64, true);
        assert_eq!(lone.advance(4096, false), Some(PageMode::Pinned(2)));
    }

    #[test]
    fn idle_window_breaks_the_hysteresis_chain() {
        let mut s = PageSharing::new(2);
        s.record_publish(0, 16, true);
        assert_eq!(s.advance(4096, true), None);
        // The idle window voids the pending pin...
        assert_eq!(s.advance(4096, true), None);
        s.record_publish(0, 16, true);
        // ...so the next active window proposes again instead of confirming.
        assert_eq!(s.advance(4096, true), None);
        s.record_publish(0, 16, true);
        assert_eq!(s.advance(4096, true), Some(PageMode::Pinned(0)));
    }
}
