//! A compact bitset used for software dirty bits.
//!
//! Both write-trapping mechanisms need to remember which blocks (and, for the
//! hierarchical LRC scheme, which pages) were touched: compiler
//! instrumentation sets a software dirty bit on every shared store, and the
//! twinning implementation records which pages have live twins.

/// A growable bitset over dense `usize` indices.
///
/// # Examples
///
/// ```
/// use dsm_mem::BitSet;
///
/// let mut bits = BitSet::new(100);
/// bits.set(3);
/// bits.set(64);
/// assert!(bits.get(3));
/// assert!(!bits.get(4));
/// assert_eq!(bits.iter_set().collect::<Vec<_>>(), vec![3, 64]);
/// assert_eq!(bits.count(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates a bitset able to hold `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits the set can hold.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the set holds no bits at all (zero capacity).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `index`, returning whether it was previously clear.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn set(&mut self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let (w, b) = (index / 64, index % 64);
        let was_clear = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        was_clear
    }

    /// Clears bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn clear(&mut self, index: usize) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let (w, b) = (index / 64, index % 64);
        self.words[w] &= !(1 << b);
    }

    /// Reads bit `index` (out-of-range indices read as clear).
    pub fn get(&self, index: usize) -> bool {
        if index >= self.len {
            return false;
        }
        let (w, b) = (index / 64, index % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Clears all bits.
    pub fn clear_all(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bit is set.
    pub fn none_set(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterator over the indices of the set bits, in increasing order.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Sets every bit in `range` (clamped to the capacity).
    ///
    /// Whole 64-bit words are filled with one masked OR each — this sits on
    /// the write-trap path (a span write marks its dirty bits with one call),
    /// so it must not loop bit by bit.
    pub fn set_range(&mut self, range: std::ops::Range<usize>) {
        let start = range.start.min(self.len);
        let end = range.end.min(self.len);
        if start >= end {
            return;
        }
        let (sw, sb) = (start / 64, start % 64);
        let (ew, eb) = (end / 64, end % 64);
        if sw == ew {
            // Within one word; `end > start` guarantees `eb > 0` here.
            self.words[sw] |= (!0u64 << sb) & (!0u64 >> (64 - eb));
        } else {
            self.words[sw] |= !0u64 << sb;
            for w in &mut self.words[sw + 1..ew] {
                *w = !0;
            }
            if eb > 0 {
                self.words[ew] |= !0u64 >> (64 - eb);
            }
        }
    }

    /// Iterator over maximal runs of consecutive set bits as `(start, len)`
    /// pairs, in increasing order.
    ///
    /// This is the batched form of [`BitSet::iter_set`]: instead of yielding
    /// every dirty block, it yields each contiguous dirty *span* once, found
    /// with `trailing_zeros` on the underlying words — the shape the publish
    /// path wants, since a run maps to one `memcpy` and one diff run.
    ///
    /// ```
    /// use dsm_mem::BitSet;
    ///
    /// let mut bits = BitSet::new(200);
    /// bits.set_range(3..7);
    /// bits.set_range(62..70);
    /// assert_eq!(bits.iter_runs().collect::<Vec<_>>(), vec![(3, 4), (62, 8)]);
    /// ```
    pub fn iter_runs(&self) -> BitRuns<'_> {
        BitRuns {
            words: &self.words,
            wi: 0,
            cur: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over maximal runs of set bits; see [`BitSet::iter_runs`].
#[derive(Debug, Clone)]
pub struct BitRuns<'a> {
    words: &'a [u64],
    /// Index of the word `cur` was taken from.
    wi: usize,
    /// Unconsumed bits of word `wi` (consumed bits are cleared).
    cur: u64,
}

impl Iterator for BitRuns<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        while self.cur == 0 {
            self.wi += 1;
            self.cur = *self.words.get(self.wi)?;
        }
        let tz = self.cur.trailing_zeros() as usize;
        let start = self.wi * 64 + tz;
        let ones = (!(self.cur >> tz)).trailing_zeros() as usize;
        let mut len = ones;
        if tz + ones < 64 {
            // The run ends inside this word; drop its bits (bits below `tz`
            // are already zero).
            self.cur &= !0u64 << (tz + ones);
        } else {
            // The run reaches the word boundary; follow it into later words.
            self.cur = 0;
            loop {
                self.wi += 1;
                let Some(&w) = self.words.get(self.wi) else {
                    break;
                };
                if w == u64::MAX {
                    len += 64;
                    continue;
                }
                let ones = (!w).trailing_zeros() as usize;
                len += ones;
                self.cur = w & (!0u64 << ones);
                break;
            }
        }
        Some((start, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = BitSet::new(130);
        assert!(b.set(0));
        assert!(!b.set(0));
        assert!(b.set(129));
        assert!(b.get(0));
        assert!(b.get(129));
        assert!(!b.get(1));
        assert!(!b.get(1000)); // out of range reads as clear
        b.clear(0);
        assert!(!b.get(0));
        assert_eq!(b.count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut b = BitSet::new(8);
        b.set(8);
    }

    #[test]
    fn iter_set_in_order() {
        let mut b = BitSet::new(200);
        for i in [5usize, 63, 64, 65, 199] {
            b.set(i);
        }
        assert_eq!(b.iter_set().collect::<Vec<_>>(), vec![5, 63, 64, 65, 199]);
    }

    #[test]
    fn clear_all_and_none_set() {
        let mut b = BitSet::new(70);
        b.set_range(10..20);
        assert_eq!(b.count(), 10);
        assert!(!b.none_set());
        b.clear_all();
        assert!(b.none_set());
    }

    #[test]
    fn set_range_clamps() {
        let mut b = BitSet::new(16);
        b.set_range(10..100);
        assert_eq!(b.count(), 6);
        b.set_range(40..50); // entirely out of range
        assert_eq!(b.count(), 6);
    }

    #[test]
    fn set_range_matches_bitwise_loop_on_random_ranges() {
        let mut rng = crate::testutil::TestRng::new(9);
        for _ in 0..256 {
            let len = rng.in_range(1, 300);
            let lo = rng.below(len + 64);
            let hi = lo + rng.below(200);
            let mut fast = BitSet::new(len);
            fast.set_range(lo..hi);
            let mut slow = BitSet::new(len);
            for i in lo..hi.min(len) {
                slow.set(i);
            }
            assert_eq!(fast, slow, "len {len} range {lo}..{hi}");
        }
    }

    #[test]
    fn empty_set() {
        let b = BitSet::new(0);
        assert!(b.is_empty());
        assert!(b.none_set());
        assert_eq!(b.iter_set().count(), 0);
        assert_eq!(b.iter_runs().count(), 0);
    }

    #[test]
    fn runs_within_and_across_words() {
        let mut b = BitSet::new(300);
        b.set(0);
        b.set_range(10..13);
        b.set_range(60..68); // straddles the first word boundary
        b.set_range(128..256); // two full words
        b.set(299);
        assert_eq!(
            b.iter_runs().collect::<Vec<_>>(),
            vec![(0, 1), (10, 3), (60, 8), (128, 128), (299, 1)]
        );
    }

    #[test]
    fn runs_match_iter_set_on_random_patterns() {
        let mut rng = crate::testutil::TestRng::new(42);
        for _ in 0..64 {
            let len = rng.in_range(1, 400);
            let mut b = BitSet::new(len);
            for _ in 0..rng.below(64) {
                if rng.bool() {
                    b.set_range(rng.below(len)..rng.below(len).max(1));
                } else {
                    b.set(rng.below(len));
                }
            }
            // Expanding the runs must reproduce iter_set exactly.
            let expanded: Vec<usize> = b
                .iter_runs()
                .flat_map(|(start, run)| start..start + run)
                .collect();
            assert_eq!(expanded, b.iter_set().collect::<Vec<_>>());
        }
    }
}
