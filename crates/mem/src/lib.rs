//! Data-plane building blocks for the EC/LRC software DSM reproduction.
//!
//! This crate contains the *mechanism* pieces that both consistency models
//! share: shared-memory regions and addressing, pages and protection state,
//! block granularities, bitsets for software dirty bits, twins and run-length
//! **diffs**, per-block **timestamps** (EC lock incarnation numbers and LRC
//! `(processor, interval)` pairs), vector clocks and write notices.
//!
//! The protocol logic that decides *when* these mechanisms are invoked lives
//! in `dsm-core`; the applications that drive them live in `dsm-apps`.
//!
//! # Example: diffing a page against its twin
//!
//! ```
//! use dsm_mem::{BlockGranularity, Diff};
//!
//! let twin = vec![0u8; 64];
//! let mut current = twin.clone();
//! current[8..12].copy_from_slice(&7u32.to_le_bytes());
//! current[12..16].copy_from_slice(&9u32.to_le_bytes());
//!
//! let diff = Diff::from_compare(&twin, &current, 0, BlockGranularity::Word);
//! assert_eq!(diff.modified_blocks(), 2);
//!
//! let mut other = vec![0u8; 64];
//! diff.apply(&mut other);
//! assert_eq!(other, current);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bitset;
mod cclock;
mod ckpt;
mod diff;
mod granularity;
mod interval;
mod merge;
mod page;
mod pool;
mod region;
mod sharing;
#[doc(hidden)]
pub mod testutil;
mod vclock;
pub mod wire;

pub use bitset::{BitRuns, BitSet};
pub use cclock::{
    get_varint, put_varint, varint_len, zigzag_decode, zigzag_encode, ClockDelta, CompactClock,
    DeltaRun,
};
pub use ckpt::{CkptImage, CkptRegion};
pub use diff::{changed_word_runs, Diff, DiffRun, DiffRuns};
pub use granularity::BlockGranularity;
pub use interval::{IntervalId, WriteNotice};
pub use merge::{FlatRun, FlatUpdate, ReplyCost, UpdateMerge};
pub use page::{for_each_page, page_of, page_range, pages_in, Protection, PAGE_SIZE};
pub use pool::BufferPool;
pub use region::{MemRange, RegionDesc, RegionId};
pub use sharing::{PageMode, PageModeChange, PageSharing};
pub use vclock::{ClockOrd, VectorClock};
