//! Compact ordering metadata: run-length clock deltas and a stateful
//! baseline codec.
//!
//! A full [`VectorClock`] record costs 4 bytes per processor per message —
//! the O(nprocs) consistency-metadata overhead the paper's §4 charges against
//! LRC, and exactly what the 256-node transport sweep measures.  But the
//! *information* in consecutive clocks is tiny: between two publishes most
//! entries either do not move or all advance together (a barrier advances
//! every peer by one interval).  Following Louvre's compact scoped versions,
//! this module represents a clock as a **delta against a baseline**: runs of
//! consecutive entries that changed by the same signed amount, zero runs
//! skipped entirely, everything varint-encoded.
//!
//! Two consumers share the representation:
//!
//! * [`ClockDelta`] — an in-memory delta usable in per-page write-notice
//!   chains (`dsm-core` stores the delta per record and reconstructs a full
//!   clock on demand by replaying the chain over a per-page baseline).
//! * [`CompactClock`] — a per-stream codec holding the *last clock sent*
//!   as its baseline; each encoded record is the delta from the previous one.
//!   The sender and every receiver of the same stream advance identical
//!   baselines, so the encoding is exact, not approximate.
//!
//! # Encoding (all varint, see [`put_varint`])
//!
//! | Record       | Layout                                                     |
//! |--------------|------------------------------------------------------------|
//! | varint       | LEB128: 7 bits per byte, low first, high bit = continue    |
//! | `ClockDelta` | `nruns` · `nruns × (gap, len, zigzag(diff))`               |
//! | clock record | `clock_len` · `ClockDelta`                                 |
//!
//! `gap` is the run's distance from the end of the previous run (from entry
//! 0 for the first), `len ≥ 1` is the run length, and `diff ≠ 0` is the
//! signed per-entry change, zigzag-mapped to unsigned.  Malformed input
//! decodes to `None`; a corrupt peer must not be able to panic the decoder.

use crate::VectorClock;

/// Upper bound on a decoded clock length (entries), as a sanity check
/// against corrupt varints (2^28 entries; real clocks have a few hundred).
pub const MAX_CLOCK_LEN: usize = 1 << 28;

/// Appends the LEB128 varint encoding of `v` to `out`.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Number of bytes [`put_varint`] writes for `v` (1..=10).
pub fn varint_len(v: u64) -> usize {
    (64 - v.max(1).leading_zeros() as usize).div_ceil(7)
}

/// Decodes one varint from the front of `buf`; returns the value and the
/// bytes consumed, or `None` if the buffer is truncated or the value
/// overflows 64 bits.
pub fn get_varint(buf: &[u8]) -> Option<(u64, usize)> {
    let mut v = 0u64;
    for (i, &b) in buf.iter().enumerate().take(10) {
        let bits = (b & 0x7f) as u64;
        v |= bits.checked_shl(7 * i as u32).filter(|_| {
            // The 10th byte may only contribute the top bit of a u64.
            i < 9 || bits <= 1
        })?;
        if b & 0x80 == 0 {
            return Some((v, i + 1));
        }
    }
    None
}

/// Maps a signed value to unsigned so small magnitudes of either sign get
/// short varints (0 → 0, −1 → 1, 1 → 2, −2 → 3, …).
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// One run of a [`ClockDelta`]: entries `start..start + len` all changed by
/// `diff`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaRun {
    /// First entry index of the run.
    pub start: u32,
    /// Number of consecutive entries covered (≥ 1).
    pub len: u32,
    /// Signed per-entry change, never 0.
    pub diff: i64,
}

/// The difference between two vector clocks as runs of equal change.
///
/// # Examples
///
/// ```
/// use dsm_mem::ClockDelta;
///
/// // A barrier epoch: every peer advanced one interval → one run.
/// let base = [3u32, 5, 1, 7];
/// let new = [4u32, 6, 2, 8];
/// let d = ClockDelta::from_entries(&base, &new);
/// assert_eq!(d.runs().len(), 1);
/// let mut buf = Vec::new();
/// d.encode_into(&mut buf);
/// assert_eq!(buf.len(), 4); // nruns·gap·len·diff, one byte each
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClockDelta {
    runs: Vec<DeltaRun>,
}

impl ClockDelta {
    /// An empty delta (the two clocks were identical).
    pub fn new() -> Self {
        ClockDelta::default()
    }

    /// The delta taking `base` to `new`.  Entries past either slice's end
    /// are treated as zero, so the clocks may differ in length.
    pub fn from_entries(base: &[u32], new: &[u32]) -> Self {
        let mut d = ClockDelta::new();
        d.compute(base, new);
        d
    }

    /// Recomputes this delta as the change taking `base` to `new`, reusing
    /// the existing run allocation (the hot-path replacement for
    /// [`ClockDelta::from_entries`] when a retired delta is recycled).
    pub fn compute(&mut self, base: &[u32], new: &[u32]) {
        self.runs.clear();
        let n = base.len().max(new.len());
        for i in 0..n {
            let b = base.get(i).copied().unwrap_or(0);
            let v = new.get(i).copied().unwrap_or(0);
            let diff = v as i64 - b as i64;
            if diff == 0 {
                continue;
            }
            match self.runs.last_mut() {
                Some(run) if run.diff == diff && run.start as usize + run.len as usize == i => {
                    run.len += 1;
                }
                _ => self.runs.push(DeltaRun {
                    start: i as u32,
                    len: 1,
                    diff,
                }),
            }
        }
    }

    /// The runs, in increasing `start` order, non-adjacent and non-empty.
    pub fn runs(&self) -> &[DeltaRun] {
        &self.runs
    }

    /// True if the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// One past the last entry index any run touches (0 when empty).
    pub fn max_end(&self) -> usize {
        self.runs
            .last()
            .map_or(0, |r| r.start as usize + r.len as usize)
    }

    /// Adds the delta onto `clock` in place: the chain-walk reconstruction
    /// step for stored write-notice records.
    ///
    /// # Panics
    ///
    /// Panics if a run reaches past the clock's length or an entry would
    /// leave `u32` range — both are codec bugs, never a legal outcome for
    /// deltas built by [`ClockDelta::compute`] and applied in chain order.
    pub fn apply_to_clock(&self, clock: &mut VectorClock) {
        let entries = clock.entries_mut();
        for run in &self.runs {
            for e in &mut entries[run.start as usize..(run.start + run.len) as usize] {
                *e = u32::try_from(*e as i64 + run.diff).expect("clock entry out of range");
            }
        }
    }

    /// Fallible slice application for untrusted (decoded) deltas: `None` if
    /// a run reaches past `entries` or an entry would leave `u32` range.
    fn checked_apply(&self, entries: &mut [u32]) -> Option<()> {
        if self.max_end() > entries.len() {
            return None;
        }
        for run in &self.runs {
            for e in &mut entries[run.start as usize..(run.start + run.len) as usize] {
                *e = u32::try_from(*e as i64 + run.diff).ok()?;
            }
        }
        Some(())
    }

    /// Encoded size in bytes (exactly what [`ClockDelta::encode_into`]
    /// appends).
    pub fn encoded_len(&self) -> usize {
        let mut n = varint_len(self.runs.len() as u64);
        let mut prev_end = 0u64;
        for run in &self.runs {
            n += varint_len(run.start as u64 - prev_end)
                + varint_len(run.len as u64)
                + varint_len(zigzag_encode(run.diff));
            prev_end = run.start as u64 + run.len as u64;
        }
        n
    }

    /// Appends the encoded delta to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        put_varint(out, self.runs.len() as u64);
        let mut prev_end = 0u64;
        for run in &self.runs {
            put_varint(out, run.start as u64 - prev_end);
            put_varint(out, run.len as u64);
            put_varint(out, zigzag_encode(run.diff));
            prev_end = run.start as u64 + run.len as u64;
        }
    }

    /// Decodes a delta from the front of `buf`; returns it and the bytes
    /// consumed.
    pub fn decode(buf: &[u8]) -> Option<(ClockDelta, usize)> {
        let mut d = ClockDelta::new();
        let used = d.decode_from(buf)?;
        Some((d, used))
    }

    /// Decodes into `self` (reusing the run allocation) from the front of
    /// `buf`; returns the bytes consumed.  Rejects non-canonical input:
    /// zero-length or zero-diff runs, runs out of order, or runs adjacent
    /// enough that the encoder would have merged them.
    pub fn decode_from(&mut self, buf: &[u8]) -> Option<usize> {
        self.runs.clear();
        let mut at = 0usize;
        let next = |at: &mut usize| -> Option<u64> {
            let (v, n) = get_varint(&buf[*at..])?;
            *at += n;
            Some(v)
        };
        let nruns = next(&mut at)?;
        if nruns as usize > MAX_CLOCK_LEN {
            return None;
        }
        let mut prev_end = 0u64;
        let mut prev_diff = 0i64;
        for _ in 0..nruns {
            let gap = next(&mut at)?;
            let len = next(&mut at)?;
            let diff = zigzag_decode(next(&mut at)?);
            let start = prev_end.checked_add(gap)?;
            let end = start.checked_add(len)?;
            if len == 0 || diff == 0 || end > MAX_CLOCK_LEN as u64 {
                return None;
            }
            if gap == 0 && diff == prev_diff && !self.runs.is_empty() {
                return None; // adjacent equal-diff runs: not canonical
            }
            self.runs.push(DeltaRun {
                start: start as u32,
                len: len as u32,
                diff,
            });
            prev_end = end;
            prev_diff = diff;
        }
        Some(at)
    }
}

/// A stateful delta codec over a stream of clocks: each record is the
/// [`ClockDelta`] from the previous clock on the same stream.
///
/// The sender keeps one `CompactClock` per outgoing stream, each receiver
/// one per incoming stream; both sides advance the baseline on every record,
/// so decode reconstructs the sender's clock exactly.  The first record of a
/// stream (or any record after [`CompactClock::reset`], e.g. when a receiver
/// rejoins mid-stream) must be sent in *full* mode: the delta is taken from
/// the all-zero clock, which is still naturally sparse.
///
/// # Examples
///
/// ```
/// use dsm_mem::CompactClock;
///
/// let (mut enc, mut dec) = (CompactClock::new(), CompactClock::new());
/// let mut buf = Vec::new();
/// enc.encode_next(&[1, 0, 3], true, &mut buf); // first record: full mode
/// enc.encode_next(&[2, 0, 3], false, &mut buf);
/// let used = dec.decode_next(&buf, true).unwrap();
/// assert_eq!(dec.baseline(), &[1, 0, 3]);
/// dec.decode_next(&buf[used..], false).unwrap();
/// assert_eq!(dec.baseline(), &[2, 0, 3]);
/// ```
#[derive(Debug, Default)]
pub struct CompactClock {
    baseline: Vec<u32>,
    scratch: ClockDelta,
}

impl CompactClock {
    /// A codec with an empty baseline (before any record).
    pub fn new() -> Self {
        CompactClock::default()
    }

    /// Forgets the baseline.  The next encoded record must use full mode or
    /// the streams desynchronize.
    pub fn reset(&mut self) {
        self.baseline.clear();
    }

    /// The last clock encoded or decoded on this stream.
    pub fn baseline(&self) -> &[u32] {
        &self.baseline
    }

    /// Appends one clock record for `entries` to `out` and advances the
    /// baseline.  `full` encodes against the all-zero clock instead of the
    /// baseline (required for the first record of a stream).  Returns the
    /// bytes appended.
    pub fn encode_next(&mut self, entries: &[u32], full: bool, out: &mut Vec<u8>) -> usize {
        if full {
            self.baseline.clear();
        }
        self.scratch.compute(&self.baseline, entries);
        let start = out.len();
        put_varint(out, entries.len() as u64);
        self.scratch.encode_into(out);
        self.baseline.clear();
        self.baseline.extend_from_slice(entries);
        out.len() - start
    }

    /// Encoded size of the record [`CompactClock::encode_next`] would append
    /// for `entries` — without advancing the baseline.
    pub fn peek_record_len(&mut self, entries: &[u32], full: bool) -> usize {
        let base: &[u32] = if full { &[] } else { &self.baseline };
        self.scratch.compute(base, entries);
        varint_len(entries.len() as u64) + self.scratch.encoded_len()
    }

    /// Decodes one clock record from the front of `buf`, advancing the
    /// baseline to the decoded clock (readable via
    /// [`CompactClock::baseline`]).  Returns the bytes consumed, or `None`
    /// on malformed input — after which the stream state is unusable.
    pub fn decode_next(&mut self, buf: &[u8], full: bool) -> Option<usize> {
        let (len, n) = get_varint(buf)?;
        let len = usize::try_from(len).ok().filter(|&l| l <= MAX_CLOCK_LEN)?;
        let used = self.scratch.decode_from(&buf[n..])?;
        if full {
            self.baseline.clear();
        }
        self.baseline.resize(len, 0);
        if self.scratch.max_end() > len {
            return None;
        }
        self.scratch.checked_apply(&mut self.baseline)?;
        Some(n + used)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip_at_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "len of {v}");
            assert_eq!(get_varint(&buf), Some((v, buf.len())), "value {v}");
        }
        assert_eq!(get_varint(&[]), None);
        assert_eq!(get_varint(&[0x80]), None, "truncated");
        assert_eq!(get_varint(&[0xff; 11]), None, "overlong");
    }

    #[test]
    fn zigzag_is_an_involution() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
    }

    #[test]
    fn delta_coalesces_equal_runs() {
        let base = [1u32, 2, 3, 4, 5];
        let new = [2u32, 3, 3, 6, 7];
        let d = ClockDelta::from_entries(&base, &new);
        assert_eq!(
            d.runs(),
            &[
                DeltaRun {
                    start: 0,
                    len: 2,
                    diff: 1
                },
                DeltaRun {
                    start: 3,
                    len: 2,
                    diff: 2
                },
            ]
        );
        assert_eq!(d.max_end(), 5);
    }

    #[test]
    fn delta_handles_length_mismatch_as_zero_extension() {
        let d = ClockDelta::from_entries(&[1, 2], &[1, 2, 7]);
        assert_eq!(
            d.runs(),
            &[DeltaRun {
                start: 2,
                len: 1,
                diff: 7
            }]
        );
        let shrink = ClockDelta::from_entries(&[1, 2, 7], &[1, 2]);
        assert_eq!(
            shrink.runs(),
            &[DeltaRun {
                start: 2,
                len: 1,
                diff: -7
            }]
        );
    }

    #[test]
    fn delta_applies_to_a_vector_clock() {
        use dsm_sim::NodeId;
        let mut base = VectorClock::new(4);
        base.set_entry(NodeId::new(1), 5);
        let mut new = base.clone();
        new.bump(NodeId::new(1));
        new.set_entry(NodeId::new(3), 9);
        let d = ClockDelta::from_entries(base.entries(), new.entries());
        let mut rebuilt = base.clone();
        d.apply_to_clock(&mut rebuilt);
        assert_eq!(rebuilt, new);
    }

    #[test]
    fn delta_round_trip_and_rejections() {
        let d = ClockDelta::from_entries(&[0, 0, 9], &[1, 1, 2]);
        let mut buf = Vec::new();
        d.encode_into(&mut buf);
        assert_eq!(buf.len(), d.encoded_len());
        assert_eq!(ClockDelta::decode(&buf), Some((d, buf.len())));
        assert!(ClockDelta::decode(&buf[..buf.len() - 1]).is_none(), "trunc");
        // Zero-length run.
        let mut bad = Vec::new();
        for v in [1u64, 0, 0, 2] {
            put_varint(&mut bad, v);
        }
        assert!(ClockDelta::decode(&bad).is_none(), "len 0");
        // Zero diff.
        bad.clear();
        for v in [1u64, 0, 1, 0] {
            put_varint(&mut bad, v);
        }
        assert!(ClockDelta::decode(&bad).is_none(), "diff 0");
        // Two adjacent runs with the same diff: the encoder would merge.
        bad.clear();
        for v in [2u64, 0, 1, 2, 0, 1, 2] {
            put_varint(&mut bad, v);
        }
        assert!(ClockDelta::decode(&bad).is_none(), "non-canonical");
    }

    #[test]
    fn compact_clock_streams_exactly() {
        let mut enc = CompactClock::new();
        let mut dec = CompactClock::new();
        let clocks: [&[u32]; 4] = [&[0, 0, 0], &[1, 0, 0], &[2, 5, 1], &[2, 5, 1]];
        let mut buf = Vec::new();
        for (i, c) in clocks.iter().enumerate() {
            let full = i == 0;
            assert_eq!(enc.peek_record_len(c, full), {
                let mut probe = Vec::new();
                let mut again = CompactClock::new();
                again
                    .baseline
                    .extend_from_slice(if full { &[] } else { clocks[i - 1] });
                again.encode_next(c, full, &mut probe)
            });
            enc.encode_next(c, full, &mut buf);
        }
        let mut at = 0;
        for (i, c) in clocks.iter().enumerate() {
            at += dec.decode_next(&buf[at..], i == 0).expect("decodes");
            assert_eq!(&dec.baseline(), c, "record {i}");
        }
        assert_eq!(at, buf.len());
    }

    #[test]
    fn compact_clock_identical_record_is_three_bytes() {
        let mut enc = CompactClock::new();
        let mut buf = Vec::new();
        enc.encode_next(&[7; 200], true, &mut buf);
        let first = buf.len();
        // Same clock again: varint(len) + empty delta.
        let n = enc.encode_next(&[7; 200], false, &mut buf);
        assert_eq!(n, 3);
        assert!(first < 10, "one run even in full mode, got {first}");
        assert_eq!(buf.len(), first + n);
    }

    #[test]
    fn compact_clock_rejects_out_of_range_runs() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 2); // clock_len = 2
        for v in [1u64, 3, 1, 2] {
            put_varint(&mut buf, v); // one run at entry 3: past the clock
        }
        assert!(CompactClock::new().decode_next(&buf, true).is_none());
        // Negative entry: delta −1 from a zero baseline.
        buf.clear();
        put_varint(&mut buf, 2);
        for v in [1u64, 0, 1, zigzag_encode(-1)] {
            put_varint(&mut buf, v);
        }
        assert!(CompactClock::new().decode_next(&buf, true).is_none());
    }
}
