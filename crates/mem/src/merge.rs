//! Merging a sequence of diffs into a single timestamped update.
//!
//! Timestamp-based write collection differs from diffing in *what is sent*:
//! instead of forwarding every pending diff (which for migratory data means
//! `n-1` overlapping copies of the same words), the responder sends each
//! modified block **once**, together with a run-length encoding of the block
//! timestamps (Section 5.3 of the paper).  [`UpdateMerge`] models that reply:
//! pending diffs are folded in timestamp order, yielding the latest value and
//! latest stamp per block, from which the reply's data volume and timestamp
//! run count follow.

use std::collections::BTreeMap;

use crate::{BlockGranularity, Diff};

/// The cost of a timestamp-collection reply: how many blocks of data and how
/// many timestamp runs it carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplyCost {
    /// Number of distinct blocks carried.
    pub blocks: usize,
    /// Payload bytes of block data.
    pub data_bytes: usize,
    /// Number of timestamp runs (maximal sequences of consecutive blocks with
    /// the same timestamp — "only one value is sent for each run").
    pub ts_runs: usize,
    /// Payload bytes of the run-length encoded timestamps.
    pub ts_bytes: usize,
}

impl ReplyCost {
    /// Total payload bytes of the reply.
    pub fn total_bytes(&self) -> usize {
        self.data_bytes + self.ts_bytes
    }
}

/// Accumulates diffs (in increasing timestamp order) into a merged,
/// per-block-timestamped update.
///
/// # Examples
///
/// ```
/// use dsm_mem::{BlockGranularity, Diff, UpdateMerge};
///
/// let base = vec![0u8; 16];
/// let mut v1 = base.clone();
/// v1[0..8].fill(1);
/// let mut v2 = v1.clone();
/// v2[4..12].fill(2);
///
/// let d1 = Diff::from_compare(&base, &v1, 0, BlockGranularity::Word);
/// let d2 = Diff::from_compare(&v1, &v2, 0, BlockGranularity::Word);
///
/// let mut merge = UpdateMerge::new(BlockGranularity::Word);
/// merge.add(1, &d1);
/// merge.add(2, &d2);
///
/// // Blocks 0..3 modified; block 0 stamped 1, blocks 1,2 stamped 2.
/// let cost = merge.reply_cost(4);
/// assert_eq!(cost.blocks, 3);
/// assert_eq!(cost.ts_runs, 2);
///
/// let mut target = base.clone();
/// merge.apply_to(&mut target);
/// assert_eq!(target, v2);
/// ```
#[derive(Debug, Clone)]
pub struct UpdateMerge {
    granularity: BlockGranularity,
    // block index -> (stamp, bytes)
    blocks: BTreeMap<usize, (u64, Vec<u8>)>,
}

impl UpdateMerge {
    /// Creates an empty merge at the given granularity.
    pub fn new(granularity: BlockGranularity) -> Self {
        UpdateMerge {
            granularity,
            blocks: BTreeMap::new(),
        }
    }

    /// Folds one diff in, stamped `stamp`.  Later calls overwrite earlier
    /// values for the same block, so callers must add diffs in increasing
    /// timestamp order (incarnation order for EC, interval order per
    /// processor for LRC).
    pub fn add(&mut self, stamp: u64, diff: &Diff) {
        for (block, bytes) in diff.blocks() {
            self.blocks.insert(block, (stamp, bytes.to_vec()));
        }
    }

    /// True if nothing has been merged.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Number of distinct blocks in the merged update.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Computes the wire cost of the merged reply, with timestamps of
    /// `stamp_wire_bytes` each (4 for EC incarnation numbers, 6 for LRC
    /// `(processor, interval)` pairs).
    pub fn reply_cost(&self, stamp_wire_bytes: usize) -> ReplyCost {
        let mut runs = 0usize;
        let mut prev: Option<(usize, u64)> = None;
        let mut data_bytes = 0usize;
        for (&block, &(stamp, ref bytes)) in &self.blocks {
            data_bytes += bytes.len();
            let continues = match prev {
                Some((pb, ps)) => pb + 1 == block && ps == stamp,
                None => false,
            };
            if !continues {
                runs += 1;
            }
            prev = Some((block, stamp));
        }
        // Each run carries one timestamp plus a 6-byte (start, length) header.
        let ts_bytes = runs * (stamp_wire_bytes + 6);
        ReplyCost {
            blocks: self.blocks.len(),
            data_bytes,
            ts_runs: runs,
            ts_bytes,
        }
    }

    /// Applies the merged update to a region-sized buffer.
    ///
    /// # Panics
    ///
    /// Panics if a block extends past the end of `target`.
    pub fn apply_to(&self, target: &mut [u8]) {
        let bs = self.granularity.bytes();
        for (&block, (_, bytes)) in &self.blocks {
            let start = block * bs;
            target[start..start + bytes.len()].copy_from_slice(bytes);
        }
    }

    /// Iterator over `(block_index, stamp)` pairs in block order.
    pub fn stamps(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.blocks.iter().map(|(&b, &(s, _))| (b, s))
    }

    /// Flattens the merged update into `out`: one [`FlatRun`] per maximal
    /// sequence of consecutive blocks sharing a stamp — exactly the runs
    /// [`UpdateMerge::reply_cost`] counts as `ts_runs`.
    pub fn flatten_into(&self, out: &mut FlatUpdate) {
        out.runs.clear();
        for (&block, &(stamp, _)) in &self.blocks {
            match out.runs.last_mut() {
                Some(run) if run.start + run.len == block && run.stamp == stamp => run.len += 1,
                _ => out.runs.push(FlatRun {
                    start: block,
                    len: 1,
                    stamp,
                }),
            }
        }
    }
}

/// One maximal run of consecutive blocks sharing a timestamp, inside a
/// [`FlatUpdate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlatRun {
    /// First block index of the run.
    pub start: usize,
    /// Number of consecutive blocks in the run.
    pub len: usize,
    /// The stamp every block of the run carries.
    pub stamp: u64,
}

/// A flattened snapshot of a chain of merged diffs: the per-block timestamps
/// of a page (or object) run-length encoded into maximal same-stamp runs.
///
/// Replaying a chain of pending diffs block by block costs one decision per
/// block; the flattened form costs one decision per *run* and one `memcpy`
/// per applied run.  The snapshot carries no payload bytes — consumers copy
/// from the up-to-date master they already hold — so rebuilding it (see
/// [`FlatUpdate::rebuild_from_stamps`]) reuses its run buffer and allocates
/// nothing in steady state, and one snapshot can serve every consumer that
/// faults on the same page between two publishes.
///
/// # Examples
///
/// ```
/// use dsm_mem::FlatUpdate;
///
/// let stamps = [0, 7, 7, 7, 9, 0, 9];
/// let mut snap = FlatUpdate::new();
/// snap.rebuild_from_stamps(&stamps);
/// let runs: Vec<(usize, usize, u64)> =
///     snap.runs().iter().map(|r| (r.start, r.len, r.stamp)).collect();
/// // Unpublished blocks (stamp 0) separate runs and are not covered.
/// assert_eq!(runs, vec![(1, 3, 7), (4, 1, 9), (6, 1, 9)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlatUpdate {
    runs: Vec<FlatRun>,
}

impl FlatUpdate {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        FlatUpdate::default()
    }

    /// Rebuilds the snapshot from a per-block stamp array, reusing the run
    /// buffer.  Blocks stamped 0 (never published) are excluded.
    pub fn rebuild_from_stamps(&mut self, stamps: &[u64]) {
        self.runs.clear();
        let mut i = 0usize;
        while i < stamps.len() {
            let stamp = stamps[i];
            if stamp == 0 {
                i += 1;
                continue;
            }
            let start = i;
            i += 1;
            while i < stamps.len() && stamps[i] == stamp {
                i += 1;
            }
            self.runs.push(FlatRun {
                start,
                len: i - start,
                stamp,
            });
        }
    }

    /// Reassembles a snapshot from decoded wire runs (see [`crate::wire`]).
    pub(crate) fn from_wire_runs(runs: Vec<FlatRun>) -> Self {
        FlatUpdate { runs }
    }

    /// The runs of the snapshot, in increasing block order.
    pub fn runs(&self) -> &[FlatRun] {
        &self.runs
    }

    /// True if the snapshot covers no blocks.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Drops all runs (the buffer is kept).
    pub fn clear(&mut self) {
        self.runs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diff_of(base: &[u8], cur: &[u8]) -> Diff {
        Diff::from_compare(base, cur, 0, BlockGranularity::Word)
    }

    #[test]
    fn empty_merge() {
        let m = UpdateMerge::new(BlockGranularity::Word);
        assert!(m.is_empty());
        let c = m.reply_cost(4);
        assert_eq!(c.blocks, 0);
        assert_eq!(c.ts_runs, 0);
        assert_eq!(c.total_bytes(), 0);
    }

    #[test]
    fn later_stamp_wins() {
        let base = vec![0u8; 8];
        let mut a = base.clone();
        a[0..4].fill(1);
        let mut b = base.clone();
        b[0..4].fill(2);
        let mut m = UpdateMerge::new(BlockGranularity::Word);
        m.add(1, &diff_of(&base, &a));
        m.add(2, &diff_of(&base, &b));
        let mut out = base.clone();
        m.apply_to(&mut out);
        assert_eq!(&out[0..4], &[2, 2, 2, 2]);
        assert_eq!(m.num_blocks(), 1);
    }

    #[test]
    fn migratory_data_is_sent_once() {
        // Three "processors" each modify the same 16-byte object in turn.
        let base = vec![0u8; 16];
        let mut m = UpdateMerge::new(BlockGranularity::Word);
        let mut prev = base.clone();
        let mut total_diff_bytes = 0;
        for stamp in 1..=3u64 {
            let mut cur = prev.clone();
            cur.iter_mut().for_each(|b| *b = stamp as u8);
            let d = diff_of(&prev, &cur);
            total_diff_bytes += d.encoded_size();
            m.add(stamp, &d);
            prev = cur;
        }
        let cost = m.reply_cost(4);
        // Timestamping sends the 16 bytes once; diffing would send 3x.
        assert_eq!(cost.data_bytes, 16);
        assert!(total_diff_bytes >= 3 * 16);
        assert_eq!(cost.ts_runs, 1); // all blocks share the latest stamp
    }

    #[test]
    fn fine_grain_sharing_needs_many_runs() {
        // Alternating blocks written by two different "intervals".
        let base = vec![0u8; 32];
        let mut even = base.clone();
        let mut odd = base.clone();
        for blk in 0..8 {
            let range = blk * 4..blk * 4 + 4;
            if blk % 2 == 0 {
                even[range].fill(1);
            } else {
                odd[range].fill(2);
            }
        }
        let mut m = UpdateMerge::new(BlockGranularity::Word);
        m.add(1, &diff_of(&base, &even));
        m.add(2, &diff_of(&base, &odd));
        let cost = m.reply_cost(6);
        assert_eq!(cost.blocks, 8);
        assert_eq!(cost.ts_runs, 8); // no two adjacent blocks share a stamp
        assert!(cost.ts_bytes > 0);
    }

    #[test]
    fn flatten_matches_reply_cost_runs() {
        let base = vec![0u8; 32];
        let mut even = base.clone();
        let mut odd = base.clone();
        for blk in 0..8 {
            let range = blk * 4..blk * 4 + 4;
            if blk % 2 == 0 {
                even[range].fill(1);
            } else {
                odd[range].fill(2);
            }
        }
        let mut m = UpdateMerge::new(BlockGranularity::Word);
        m.add(1, &diff_of(&base, &even));
        m.add(2, &diff_of(&base, &odd));
        let mut flat = FlatUpdate::new();
        m.flatten_into(&mut flat);
        assert_eq!(flat.runs().len(), m.reply_cost(4).ts_runs);
        assert_eq!(
            flat.runs().iter().map(|r| r.len).sum::<usize>(),
            m.num_blocks()
        );
    }

    #[test]
    fn snapshot_from_stamps_skips_unpublished_blocks() {
        let mut snap = FlatUpdate::new();
        snap.rebuild_from_stamps(&[0, 0, 3, 3, 0, 5]);
        assert_eq!(
            snap.runs(),
            &[
                FlatRun {
                    start: 2,
                    len: 2,
                    stamp: 3
                },
                FlatRun {
                    start: 5,
                    len: 1,
                    stamp: 5
                }
            ]
        );
        // Rebuilding reuses the buffer and replaces the runs.
        snap.rebuild_from_stamps(&[9, 9, 9]);
        assert_eq!(snap.runs().len(), 1);
        snap.clear();
        assert!(snap.is_empty());
    }

    #[test]
    fn stamps_iterator_is_in_block_order() {
        let base = vec![0u8; 16];
        let mut cur = base.clone();
        cur[12..16].fill(9);
        cur[0..4].fill(9);
        let mut m = UpdateMerge::new(BlockGranularity::Word);
        m.add(7, &diff_of(&base, &cur));
        let stamps: Vec<_> = m.stamps().collect();
        assert_eq!(stamps, vec![(0, 7), (3, 7)]);
    }
}
