//! Length-prefixed wire codec for the transport layer.
//!
//! The simulated backend never serializes anything — messages are cost
//! accounting.  The real backends (in-process channels, sockets) move actual
//! bytes, and this module is the dependency-free codec they move them with.
//! Everything is little-endian and encoded straight from the flat payload +
//! run-offset representation the data plane already keeps ([`Diff`],
//! [`FlatUpdate`], [`VectorClock`]): encoding is a header write plus one
//! payload `memcpy` per record, never a tree walk.
//!
//! # Record layouts (all integers little-endian)
//!
//! | Record         | Layout                                                             |
//! |----------------|--------------------------------------------------------------------|
//! | message        | `u32 len` · `u8 kind` · `body[len-1]`                              |
//! | `VectorClock`  | `u32 n` · `n × u32 entry`                                          |
//! | `Diff`         | `u8 gran` · `u32 nruns` · `nruns × (u32 off, u32 len)` · payload   |
//! | `FlatUpdate`   | `u32 nruns` · `nruns × (u32 start, u32 len, u64 stamp)`            |
//! | [`WireFrame`]  | `u32 region` · `u64 seq` · clock · `u32 nruns` · runs · payload    |
//! | frame v2       | varints: `region` · `seq` · `u8 mode` · clock record · runs · payload |
//! | batch body     | `u32 nframes` · `nframes × (varint len, frame v2)`                 |
//! | [`WireInit`]   | `u32 nprocs` · `u32 nregions` · `nregions × (u32 len, bytes)`      |
//! | [`WireReport`] | `u64 fnv` · `u64 frames` · `u64 bytes` · 3 × (`u64 count` · `u64 fnv`) for ctrl/ckpt/rollback |
//!
//! The v2 frame (see [`encode_frame_v2`]) is the compact form the real
//! backends batch per epoch: the clock travels as a [`CompactClock`] delta
//! record against the stream's previous clock (`mode` 1 = encoded from the
//! all-zero clock, required on the first frame of a stream), and run offsets
//! are gap-encoded varints.  The v1 [`WireFrame`] record stays as the
//! stateless per-frame form (and the simulated backend's cost model).
//!
//! Malformed input decodes to `None` (in-memory records) or
//! `io::ErrorKind::InvalidData` (streamed messages); a corrupt peer must not
//! be able to panic the decoder.

use std::io::{self, Read, Write};

use crate::cclock::{get_varint, put_varint, varint_len, CompactClock};
use crate::{BlockGranularity, BufferPool, Diff, FlatRun, FlatUpdate, VectorClock};
use dsm_sim::NodeId;

/// Upper bound on one framed message, as a sanity check against corrupt
/// length prefixes (1 GiB; real frames are a few KiB).
pub const MAX_WIRE_MSG: usize = 1 << 30;

/// FNV-1a 64-bit hash of a byte slice — the contents fingerprint the
/// transport backends compare replicas with.
pub fn fnv64(bytes: &[u8]) -> u64 {
    fnv64_extend(0xcbf2_9ce4_8422_2325, bytes)
}

/// Folds more bytes into a running [`fnv64`] state.
pub fn fnv64_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// FNV-1a fingerprint of a sequence of regions.  Each region's length is
/// folded in before its contents, so `["ab", "c"]` and `["a", "bc"]` hash
/// differently.
pub fn fnv64_regions<'a>(regions: impl IntoIterator<Item = &'a [u8]>) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for r in regions {
        hash = fnv64_extend(hash, &(r.len() as u64).to_le_bytes());
        hash = fnv64_extend(hash, r);
    }
    hash
}

/// Bounds-checked little-endian cursor over a decode buffer.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let s = self.buf.get(self.at..end)?;
        self.at = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    fn done(&self) -> bool {
        self.at == self.buf.len()
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends the wire encoding of a vector clock to `out`.
pub fn encode_vclock(clock: &VectorClock, out: &mut Vec<u8>) {
    put_u32(out, clock.len() as u32);
    for &e in clock.entries() {
        put_u32(out, e);
    }
}

/// Decodes a vector clock; returns the clock and the bytes consumed.
pub fn decode_vclock(buf: &[u8]) -> Option<(VectorClock, usize)> {
    let mut r = Reader::new(buf);
    let clock = decode_vclock_from(&mut r)?;
    Some((clock, r.at))
}

fn decode_vclock_from(r: &mut Reader<'_>) -> Option<VectorClock> {
    let n = r.u32()? as usize;
    if n > MAX_WIRE_MSG / 4 {
        return None;
    }
    let mut clock = VectorClock::new(n);
    for i in 0..n {
        clock.set_entry(NodeId::new(i as u32), r.u32()?);
    }
    Some(clock)
}

/// Appends the wire encoding of a diff to `out`: granularity code, run
/// table, then the flat payload in one `extend_from_slice` per run.
pub fn encode_diff(diff: &Diff, out: &mut Vec<u8>) {
    out.push(diff.granularity().wire_code());
    put_u32(out, diff.runs().len() as u32);
    for run in diff.runs() {
        put_u32(out, run.offset as u32);
        put_u32(out, run.len() as u32);
    }
    for run in diff.runs() {
        out.extend_from_slice(run.data);
    }
}

/// Decodes a diff; returns the diff and the bytes consumed.
pub fn decode_diff(buf: &[u8]) -> Option<(Diff, usize)> {
    let mut r = Reader::new(buf);
    let granularity = BlockGranularity::from_wire_code(r.u8()?)?;
    let nruns = r.u32()? as usize;
    if nruns > MAX_WIRE_MSG / 8 {
        return None;
    }
    let mut runs = Vec::with_capacity(nruns);
    let mut payload_len = 0usize;
    for _ in 0..nruns {
        let offset = r.u32()?;
        let len = r.u32()?;
        payload_len = payload_len.checked_add(len as usize)?;
        runs.push((offset, len));
    }
    let payload = r.take(payload_len)?.to_vec();
    let diff = Diff::from_wire_parts(&runs, payload, granularity)?;
    Some((diff, r.at))
}

/// Appends the wire encoding of a flattened update snapshot to `out`.
pub fn encode_flat_update(update: &FlatUpdate, out: &mut Vec<u8>) {
    put_u32(out, update.runs().len() as u32);
    for run in update.runs() {
        put_u32(out, run.start as u32);
        put_u32(out, run.len as u32);
        put_u64(out, run.stamp);
    }
}

/// Decodes a flattened update snapshot; returns it and the bytes consumed.
pub fn decode_flat_update(buf: &[u8]) -> Option<(FlatUpdate, usize)> {
    let mut r = Reader::new(buf);
    let nruns = r.u32()? as usize;
    if nruns > MAX_WIRE_MSG / 16 {
        return None;
    }
    let mut runs = Vec::with_capacity(nruns);
    for _ in 0..nruns {
        let start = r.u32()? as usize;
        let len = r.u32()? as usize;
        let stamp = r.u64()?;
        runs.push(FlatRun { start, len, stamp });
    }
    Some((FlatUpdate::from_wire_runs(runs), r.at))
}

/// One replicated publish: the bytes one publish event wrote into a region's
/// master copy, plus the per-region sequence number that totally orders it.
///
/// Frames carry the publisher's vector clock (empty under EC, which has no
/// vector time) — deliberately, because the O(nprocs) clock record is exactly
/// the per-message overhead the 256-node transport sweep measures.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WireFrame {
    /// Dense index of the region the frame belongs to.
    pub region: u32,
    /// Per-region publish sequence number (1-based, dense): a replica applies
    /// frames of a region strictly in `seq` order.
    pub seq: u64,
    /// The publisher's vector-clock entries at publish time (may be empty).
    pub clock: Vec<u32>,
    /// Changed-byte runs as region-absolute `(offset, len)` pairs, in
    /// increasing offset order.
    pub runs: Vec<(u32, u32)>,
    /// Every run's bytes, back to back in run order.
    pub payload: Vec<u8>,
}

impl WireFrame {
    /// Length of the encoded frame body in bytes.
    pub fn encoded_len(&self) -> usize {
        4 + 8 + (4 + self.clock.len() * 4) + 4 + self.runs.len() * 8 + self.payload.len()
    }

    /// Appends the encoded frame body to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.encoded_len());
        put_u32(out, self.region);
        put_u64(out, self.seq);
        put_u32(out, self.clock.len() as u32);
        for &e in &self.clock {
            put_u32(out, e);
        }
        put_u32(out, self.runs.len() as u32);
        for &(offset, len) in &self.runs {
            put_u32(out, offset);
            put_u32(out, len);
        }
        out.extend_from_slice(&self.payload);
    }

    /// Decodes a frame body; the buffer must contain exactly one frame.
    pub fn decode(buf: &[u8]) -> Option<WireFrame> {
        let mut r = Reader::new(buf);
        let region = r.u32()?;
        let seq = r.u64()?;
        let nclock = r.u32()? as usize;
        if nclock > MAX_WIRE_MSG / 4 {
            return None;
        }
        let mut clock = Vec::with_capacity(nclock);
        for _ in 0..nclock {
            clock.push(r.u32()?);
        }
        let nruns = r.u32()? as usize;
        if nruns > MAX_WIRE_MSG / 8 {
            return None;
        }
        let mut runs = Vec::with_capacity(nruns);
        let mut payload_len = 0usize;
        let mut prev_end = 0u64;
        for _ in 0..nruns {
            let offset = r.u32()?;
            let len = r.u32()?;
            if len == 0 || (offset as u64) < prev_end {
                return None;
            }
            prev_end = offset as u64 + len as u64;
            payload_len = payload_len.checked_add(len as usize)?;
            runs.push((offset, len));
        }
        let payload = r.take(payload_len)?.to_vec();
        if !r.done() {
            return None;
        }
        Some(WireFrame {
            region,
            seq,
            clock,
            runs,
            payload,
        })
    }

    /// Copies the frame's runs into a region-sized buffer.  Returns `false`
    /// (leaving a suffix unapplied) if a run falls outside the region.
    pub fn apply(&self, region: &mut [u8]) -> bool {
        let mut pos = 0usize;
        for &(offset, len) in &self.runs {
            let (offset, len) = (offset as usize, len as usize);
            let Some(dst) = region.get_mut(offset..offset + len) else {
                return false;
            };
            dst.copy_from_slice(&self.payload[pos..pos + len]);
            pos += len;
        }
        true
    }
}

/// Kind byte of a framed transport message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum WireMsgKind {
    /// Replica bootstrap: cluster shape and initial region contents.
    Init = 0,
    /// One [`WireFrame`].
    Frame = 1,
    /// End of stream from one sender; no body.
    Fin = 2,
    /// Replica's end-of-run [`WireReport`].
    Report = 3,
    /// An epoch's worth of v2 frames, coalesced (see [`BatchReader`]).
    Batch = 4,
    /// An engine control broadcast (adaptive LRC's migration commits).  The
    /// body is opaque to the transport: replicas count the messages and fold
    /// each body into an order-independent XOR-of-[`fnv64`] fingerprint, so
    /// the end-of-run report proves every replica saw every control payload.
    Ctrl = 5,
    /// A checkpoint image (encoded [`CkptImage`](crate::CkptImage)) taken at
    /// a barrier cut.  Opaque to the transport, fingerprinted like
    /// [`WireMsgKind::Ctrl`].
    Ckpt = 6,
    /// A rollback announcement: a crashed node rewinding to its last
    /// checkpoint before replaying.  Opaque to the transport, fingerprinted
    /// like [`WireMsgKind::Ctrl`].
    Rollback = 7,
}

impl WireMsgKind {
    fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(WireMsgKind::Init),
            1 => Some(WireMsgKind::Frame),
            2 => Some(WireMsgKind::Fin),
            3 => Some(WireMsgKind::Report),
            4 => Some(WireMsgKind::Batch),
            5 => Some(WireMsgKind::Ctrl),
            6 => Some(WireMsgKind::Ckpt),
            7 => Some(WireMsgKind::Rollback),
            _ => None,
        }
    }
}

/// `mode` byte of a v2 frame: the clock record is a delta against the
/// stream's previous clock.
pub const CLOCK_MODE_DELTA: u8 = 0;
/// `mode` byte of a v2 frame: the clock record is encoded from the all-zero
/// clock (first frame of a stream, or after a receiver reset).
pub const CLOCK_MODE_FULL: u8 = 1;

/// Borrowed view of one publish, as [`encode_frame_v2`] consumes it: the
/// engines' run table plus the region's master copy the payload is cut from.
#[derive(Debug, Clone, Copy)]
pub struct FrameV2<'a> {
    /// Dense index of the region the frame belongs to.
    pub region: u32,
    /// Per-region publish sequence number (1-based, dense).
    pub seq: u64,
    /// The publisher's vector-clock entries (empty under EC).
    pub clock: &'a [u32],
    /// Encode the clock in full mode (required on a stream's first frame).
    pub full: bool,
    /// Region-absolute changed-byte `(offset, len)` runs, in increasing
    /// offset order, non-overlapping.
    pub runs: &'a [(u32, u32)],
    /// The region's master copy; payload bytes are copied out at the run
    /// offsets.
    pub data: &'a [u8],
}

/// Appends one v2 frame body to `out`, advancing `codec`'s baseline:
/// varint `region` · varint `seq` · `u8 mode` · clock record ·
/// varint `nruns` · `nruns × (varint gap, varint len)` · payload.
///
/// Run offsets are gap-encoded (distance from the previous run's end), so
/// overlap is unrepresentable on the wire.  Returns
/// `(meta_bytes, payload_bytes)` appended — the split the transport report
/// surfaces.
pub fn encode_frame_v2(
    f: &FrameV2<'_>,
    codec: &mut CompactClock,
    out: &mut Vec<u8>,
) -> (usize, usize) {
    let start = out.len();
    put_varint(out, f.region as u64);
    put_varint(out, f.seq);
    out.push(if f.full {
        CLOCK_MODE_FULL
    } else {
        CLOCK_MODE_DELTA
    });
    codec.encode_next(f.clock, f.full, out);
    put_varint(out, f.runs.len() as u64);
    let mut prev_end = 0u64;
    for &(off, len) in f.runs {
        debug_assert!(off as u64 >= prev_end, "unsorted or overlapping runs");
        put_varint(out, off as u64 - prev_end);
        put_varint(out, len as u64);
        prev_end = off as u64 + len as u64;
    }
    let meta = out.len() - start;
    for &(off, len) in f.runs {
        out.extend_from_slice(&f.data[off as usize..(off + len) as usize]);
    }
    (meta, out.len() - start - meta)
}

/// Meta bytes [`encode_frame_v2`] would append for a frame with this shape —
/// everything except the payload — given the clock record's encoded size
/// (see [`CompactClock::peek_record_len`]).  Lets the channel backend
/// account exact would-be wire bytes without serializing.
pub fn frame_v2_meta_len(
    region: u32,
    seq: u64,
    clock_record_len: usize,
    runs: &[(u32, u32)],
) -> usize {
    let mut n = varint_len(region as u64) + varint_len(seq) + 1 + clock_record_len;
    n += varint_len(runs.len() as u64);
    let mut prev_end = 0u64;
    for &(off, len) in runs {
        n += varint_len(off as u64 - prev_end) + varint_len(len as u64);
        prev_end = off as u64 + len as u64;
    }
    n
}

/// Decodes one v2 frame body (the buffer must contain exactly one frame),
/// advancing `codec`'s baseline.  The payload buffer is drawn from `pool`
/// so a replica's read loop recycles instead of allocating per frame.
pub fn decode_frame_v2(
    buf: &[u8],
    codec: &mut CompactClock,
    pool: &mut BufferPool,
) -> Option<WireFrame> {
    let mut at = 0usize;
    let next = |at: &mut usize| -> Option<u64> {
        let (v, n) = get_varint(buf.get(*at..)?)?;
        *at += n;
        Some(v)
    };
    let region = u32::try_from(next(&mut at)?).ok()?;
    let seq = next(&mut at)?;
    let mode = *buf.get(at)?;
    at += 1;
    let full = match mode {
        CLOCK_MODE_DELTA => false,
        CLOCK_MODE_FULL => true,
        _ => return None,
    };
    at += codec.decode_next(buf.get(at..)?, full)?;
    let nruns = next(&mut at)?;
    if nruns as usize > MAX_WIRE_MSG / 2 {
        return None;
    }
    let mut runs = Vec::with_capacity(nruns as usize);
    let mut payload_len = 0usize;
    let mut prev_end = 0u64;
    for _ in 0..nruns {
        let gap = next(&mut at)?;
        let len = next(&mut at)?;
        let off = prev_end.checked_add(gap)?;
        prev_end = off.checked_add(len)?;
        if len == 0 || prev_end > u32::MAX as u64 {
            return None;
        }
        payload_len = payload_len.checked_add(len as usize)?;
        runs.push((off as u32, len as u32));
    }
    let end = at.checked_add(payload_len)?;
    let bytes = buf.get(at..end)?;
    if end != buf.len() {
        return None; // trailing garbage
    }
    let mut payload = pool.take_empty(payload_len);
    payload.extend_from_slice(bytes);
    Some(WireFrame {
        region,
        seq,
        clock: codec.baseline().to_vec(),
        runs,
        payload,
    })
}

/// Byte length of the batch message header [`begin_batch`] reserves:
/// `u32 msg_len` · `u8 kind` · `u32 nframes`, all backpatched by
/// [`finish_batch`].
pub const BATCH_HEADER_LEN: usize = 9;

/// Starts a batch message in an empty buffer by reserving
/// [`BATCH_HEADER_LEN`] placeholder bytes.  The caller appends each frame as
/// varint `len` + v2 body, then calls [`finish_batch`]; the completed buffer
/// is one framed message, written to a stream verbatim.
pub fn begin_batch(out: &mut Vec<u8>) {
    debug_assert!(out.is_empty(), "batch buffer must start empty");
    out.resize(BATCH_HEADER_LEN, 0);
}

/// Backpatches the batch header: the message length prefix, the
/// [`WireMsgKind::Batch`] kind byte and the frame count.
pub fn finish_batch(out: &mut [u8], nframes: u32) {
    let len = out.len() - 4; // kind byte + body, per the message framing
    out[0..4].copy_from_slice(&(len as u32).to_le_bytes());
    out[4] = WireMsgKind::Batch as u8;
    out[5..9].copy_from_slice(&nframes.to_le_bytes());
}

/// Iterates the v2 frames of one [`WireMsgKind::Batch`] body
/// (`u32 nframes` · `nframes × (varint len, frame body)`).
///
/// Call [`BatchReader::next`] until [`BatchReader::remaining`] hits zero,
/// then check [`BatchReader::finished`] — a batch with leftover bytes after
/// its last frame is malformed.
#[derive(Debug)]
pub struct BatchReader<'a> {
    buf: &'a [u8],
    at: usize,
    remaining: u32,
}

impl<'a> BatchReader<'a> {
    /// Wraps a batch message body; `None` if it lacks the frame count.
    pub fn new(body: &'a [u8]) -> Option<Self> {
        let count = body.get(..4)?;
        Some(BatchReader {
            buf: body,
            at: 4,
            remaining: u32::from_le_bytes(count.try_into().expect("4 bytes")),
        })
    }

    /// Frames not yet decoded.
    pub fn remaining(&self) -> u32 {
        self.remaining
    }

    /// Decodes the next frame, or `None` if the batch is exhausted *or*
    /// malformed (distinguish with [`BatchReader::remaining`]).
    pub fn next(&mut self, codec: &mut CompactClock, pool: &mut BufferPool) -> Option<WireFrame> {
        if self.remaining == 0 {
            return None;
        }
        let (flen, n) = get_varint(self.buf.get(self.at..)?)?;
        let flen = usize::try_from(flen).ok().filter(|&l| l <= MAX_WIRE_MSG)?;
        let start = self.at + n;
        let frame = decode_frame_v2(self.buf.get(start..start + flen)?, codec, pool)?;
        self.at = start + flen;
        self.remaining -= 1;
        Some(frame)
    }

    /// True once every frame decoded and no bytes trail the last one.
    pub fn finished(&self) -> bool {
        self.remaining == 0 && self.at == self.buf.len()
    }
}

/// Replica bootstrap message: how many senders will connect and the initial
/// contents of every region (a replica must start from the same initial
/// image the engine's master copies start from).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WireInit {
    /// Number of node connections (senders) the replica should expect.
    pub nprocs: u32,
    /// Initial contents of each region, in region-index order.
    pub regions: Vec<Vec<u8>>,
}

impl WireInit {
    /// Appends the encoded body to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        put_u32(out, self.nprocs);
        put_u32(out, self.regions.len() as u32);
        for r in &self.regions {
            put_u32(out, r.len() as u32);
            out.extend_from_slice(r);
        }
    }

    /// Decodes a body; the buffer must contain exactly one record.
    pub fn decode(buf: &[u8]) -> Option<WireInit> {
        let mut r = Reader::new(buf);
        let nprocs = r.u32()?;
        let nregions = r.u32()? as usize;
        if nregions > MAX_WIRE_MSG / 4 {
            return None;
        }
        let mut regions = Vec::with_capacity(nregions);
        for _ in 0..nregions {
            let len = r.u32()? as usize;
            regions.push(r.take(len)?.to_vec());
        }
        if !r.done() {
            return None;
        }
        Some(WireInit { nprocs, regions })
    }
}

/// A replica holder's end-of-run report, sent back on the control connection
/// once every sender has finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireReport {
    /// [`fnv64_regions`] fingerprint of the replica's final contents.
    pub contents_fnv: u64,
    /// Frames the replica applied.
    pub frames_applied: u64,
    /// Payload bytes the replica received (encoded frame bodies).
    pub bytes_received: u64,
    /// [`WireMsgKind::Ctrl`] messages the replica received.
    pub ctrl_frames: u64,
    /// XOR of the [`fnv64`] of every control body received — order-independent,
    /// so it is comparable however the senders' control messages interleaved.
    pub ctrl_fnv: u64,
    /// [`WireMsgKind::Ckpt`] messages the replica received.
    pub ckpt_frames: u64,
    /// XOR of the [`fnv64`] of every checkpoint body received.
    pub ckpt_fnv: u64,
    /// [`WireMsgKind::Rollback`] messages the replica received.
    pub rollback_frames: u64,
    /// XOR of the [`fnv64`] of every rollback body received.
    pub rollback_fnv: u64,
}

impl WireReport {
    /// Appends the encoded body to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        put_u64(out, self.contents_fnv);
        put_u64(out, self.frames_applied);
        put_u64(out, self.bytes_received);
        put_u64(out, self.ctrl_frames);
        put_u64(out, self.ctrl_fnv);
        put_u64(out, self.ckpt_frames);
        put_u64(out, self.ckpt_fnv);
        put_u64(out, self.rollback_frames);
        put_u64(out, self.rollback_fnv);
    }

    /// Decodes a body; the buffer must contain exactly one record.
    pub fn decode(buf: &[u8]) -> Option<WireReport> {
        let mut r = Reader::new(buf);
        let report = WireReport {
            contents_fnv: r.u64()?,
            frames_applied: r.u64()?,
            bytes_received: r.u64()?,
            ctrl_frames: r.u64()?,
            ctrl_fnv: r.u64()?,
            ckpt_frames: r.u64()?,
            ckpt_fnv: r.u64()?,
            rollback_frames: r.u64()?,
            rollback_fnv: r.u64()?,
        };
        if !r.done() {
            return None;
        }
        Some(report)
    }
}

/// Writes one framed message: `u32` length prefix (kind byte + body), the
/// kind byte, then the body.
pub fn write_msg(w: &mut impl Write, kind: WireMsgKind, body: &[u8]) -> io::Result<()> {
    let len = body.len() + 1;
    if len > MAX_WIRE_MSG {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "wire message too large",
        ));
    }
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(&[kind as u8])?;
    w.write_all(body)
}

/// Reads one framed message into `body` (reused across calls).  Returns the
/// message kind, or `None` on a clean end of stream (EOF exactly at a
/// message boundary).  A truncated message or an unknown kind byte is an
/// [`io::ErrorKind::InvalidData`] error.
pub fn read_msg(r: &mut impl Read, body: &mut Vec<u8>) -> io::Result<Option<WireMsgKind>> {
    let mut prefix = [0u8; 4];
    match r.read_exact(&mut prefix) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len == 0 || len > MAX_WIRE_MSG {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad wire message length",
        ));
    }
    let mut kind_byte = [0u8; 1];
    r.read_exact(&mut kind_byte)?;
    let kind = WireMsgKind::from_code(kind_byte[0])
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "unknown wire message kind"))?;
    body.clear();
    body.resize(len - 1, 0);
    r.read_exact(body)?;
    Ok(Some(kind))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_length_sensitive() {
        // Reference value of FNV-1a 64 for "hello".
        assert_eq!(fnv64(b"hello"), 0xa430_d846_80aa_bd0b);
        assert_ne!(
            fnv64_regions([b"ab".as_slice(), b"c".as_slice()]),
            fnv64_regions([b"a".as_slice(), b"bc".as_slice()])
        );
        assert_eq!(fnv64_regions([]), fnv64_regions([]));
    }

    #[test]
    fn vclock_round_trip() {
        let mut c = VectorClock::new(5);
        c.set_entry(NodeId::new(0), 3);
        c.set_entry(NodeId::new(4), 9);
        let mut buf = Vec::new();
        encode_vclock(&c, &mut buf);
        assert_eq!(buf.len(), 4 + 5 * 4);
        let (back, used) = decode_vclock(&buf).expect("decodes");
        assert_eq!(back, c);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn diff_round_trip_preserves_apply() {
        let twin = vec![0u8; 64];
        let mut cur = twin.clone();
        cur[4..16].fill(7);
        cur[40..44].fill(9);
        let d = Diff::from_compare(&twin, &cur, 0, BlockGranularity::Word);
        let mut buf = Vec::new();
        encode_diff(&d, &mut buf);
        let (back, used) = decode_diff(&buf).expect("decodes");
        assert_eq!(used, buf.len());
        assert_eq!(back, d);
        let mut target = vec![0u8; 64];
        back.apply(&mut target);
        assert_eq!(target, cur);
    }

    #[test]
    fn flat_update_round_trip() {
        let mut u = FlatUpdate::new();
        u.rebuild_from_stamps(&[0, 7, 7, 9, 0, 9]);
        let mut buf = Vec::new();
        encode_flat_update(&u, &mut buf);
        let (back, used) = decode_flat_update(&buf).expect("decodes");
        assert_eq!(used, buf.len());
        assert_eq!(back.runs(), u.runs());
    }

    /// Seeded xorshift64* — the same generator the `cclock` codec property
    /// tests use, so failures reproduce byte-for-byte.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn flat_update_wire_round_trip_seeded_property() {
        // Checkpoint images serialize their per-region run tables through
        // this exact path, so it gets the full randomized treatment.
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        for case in 0..256 {
            let nwords = 1 + (xorshift(&mut seed) % 96) as usize;
            let mut stamps = vec![0u64; nwords];
            for s in stamps.iter_mut() {
                if xorshift(&mut seed) % 3 != 0 {
                    *s = 1 + xorshift(&mut seed) % 5;
                }
            }
            let mut u = FlatUpdate::new();
            u.rebuild_from_stamps(&stamps);
            let mut buf = Vec::new();
            encode_flat_update(&u, &mut buf);
            let (back, used) = decode_flat_update(&buf).expect("round trip");
            assert_eq!(used, buf.len(), "case {case}: consumed everything");
            assert_eq!(back.runs(), u.runs(), "case {case}: runs survive");
            // Any truncation that cuts into the run table is rejected.
            if !u.runs().is_empty() {
                let cut = (xorshift(&mut seed) as usize) % (buf.len() - 4) + 4;
                assert!(
                    decode_flat_update(&buf[..cut]).is_none(),
                    "case {case}: truncation at {cut} rejected"
                );
            }
            assert!(decode_flat_update(&buf[..3]).is_none(), "headerless");
            // Garbage run counts (larger than the buffer could hold) are
            // rejected by the bounds check, not by attempting the allocation.
            let mut garbage = buf.clone();
            garbage[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
            assert!(
                decode_flat_update(&garbage).is_none(),
                "case {case}: absurd run count rejected"
            );
            garbage[0..4].copy_from_slice(&(u.runs().len() as u32 + 1).to_le_bytes());
            assert!(
                decode_flat_update(&garbage).is_none(),
                "case {case}: overstated run count rejected"
            );
        }
    }

    #[test]
    fn frame_round_trip_and_apply() {
        let f = WireFrame {
            region: 2,
            seq: 17,
            clock: vec![1, 0, 4],
            runs: vec![(0, 4), (8, 8)],
            payload: vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12],
        };
        let mut buf = Vec::new();
        f.encode_into(&mut buf);
        assert_eq!(buf.len(), f.encoded_len());
        let back = WireFrame::decode(&buf).expect("decodes");
        assert_eq!(back, f);
        let mut region = vec![0u8; 16];
        assert!(back.apply(&mut region));
        assert_eq!(&region[0..4], &[1, 2, 3, 4]);
        assert_eq!(&region[8..16], &[5, 6, 7, 8, 9, 10, 11, 12]);
        // A run past the end of the region is rejected, not a panic.
        let mut short = vec![0u8; 8];
        assert!(!back.apply(&mut short));
    }

    #[test]
    fn frame_decode_rejects_malformed_input() {
        let f = WireFrame {
            region: 0,
            seq: 1,
            clock: vec![],
            runs: vec![(0, 4)],
            payload: vec![1, 2, 3, 4],
        };
        let mut buf = Vec::new();
        f.encode_into(&mut buf);
        assert!(
            WireFrame::decode(&buf[..buf.len() - 1]).is_none(),
            "truncated"
        );
        let mut extra = buf.clone();
        extra.push(0);
        assert!(WireFrame::decode(&extra).is_none(), "trailing garbage");
        // Overlapping runs are rejected.
        let bad = WireFrame {
            runs: vec![(8, 8), (0, 4)],
            payload: vec![0; 12],
            ..WireFrame::default()
        };
        let mut bbuf = Vec::new();
        bad.encode_into(&mut bbuf);
        assert!(WireFrame::decode(&bbuf).is_none(), "unsorted runs");
    }

    #[test]
    fn init_and_report_round_trip() {
        let init = WireInit {
            nprocs: 8,
            regions: vec![vec![1, 2, 3], vec![], vec![9; 10]],
        };
        let mut buf = Vec::new();
        init.encode_into(&mut buf);
        assert_eq!(WireInit::decode(&buf), Some(init));

        let rep = WireReport {
            contents_fnv: 0xdead_beef,
            frames_applied: 42,
            bytes_received: 4096,
            ctrl_frames: 3,
            ctrl_fnv: 0x1234,
            ckpt_frames: 5,
            ckpt_fnv: 0x5678,
            rollback_frames: 1,
            rollback_fnv: 0x9abc,
        };
        let mut rbuf = Vec::new();
        rep.encode_into(&mut rbuf);
        assert_eq!(WireReport::decode(&rbuf), Some(rep));
        assert!(
            WireReport::decode(&rbuf[..rbuf.len() - 1]).is_none(),
            "short"
        );
    }

    #[test]
    fn framed_messages_round_trip_over_a_stream() {
        let mut stream = Vec::new();
        write_msg(&mut stream, WireMsgKind::Init, &[1, 2, 3]).expect("write");
        write_msg(&mut stream, WireMsgKind::Fin, &[]).expect("write");
        let mut r = &stream[..];
        let mut body = Vec::new();
        assert_eq!(
            read_msg(&mut r, &mut body).expect("read"),
            Some(WireMsgKind::Init)
        );
        assert_eq!(body, &[1, 2, 3]);
        assert_eq!(
            read_msg(&mut r, &mut body).expect("read"),
            Some(WireMsgKind::Fin)
        );
        assert!(body.is_empty());
        assert_eq!(
            read_msg(&mut r, &mut body).expect("read"),
            None,
            "clean EOF"
        );
    }

    #[test]
    fn frame_v2_round_trip_through_a_batch() {
        let data = {
            let mut d = vec![0u8; 64];
            for (i, b) in d.iter_mut().enumerate() {
                *b = i as u8;
            }
            d
        };
        type TestFrame = (u32, u64, Vec<u32>, Vec<(u32, u32)>);
        let frames: [TestFrame; 3] = [
            (0, 1, vec![1, 0, 0], vec![(0, 4), (8, 8)]),
            (2, 1, vec![2, 0, 0], vec![(60, 4)]),
            (0, 2, vec![2, 1, 1], vec![(4, 2)]),
        ];
        let mut enc = CompactClock::new();
        let mut batch = Vec::new();
        begin_batch(&mut batch);
        let mut frame_buf = Vec::new();
        for (i, (region, seq, clock, runs)) in frames.iter().enumerate() {
            frame_buf.clear();
            let (meta, payload) = encode_frame_v2(
                &FrameV2 {
                    region: *region,
                    seq: *seq,
                    clock,
                    full: i == 0,
                    runs,
                    data: &data,
                },
                &mut enc,
                &mut frame_buf,
            );
            assert_eq!(meta + payload, frame_buf.len());
            assert_eq!(
                meta,
                frame_v2_meta_len(
                    *region,
                    *seq,
                    {
                        let mut probe = CompactClock::new();
                        if i > 0 {
                            probe.encode_next(&frames[i - 1].2, true, &mut Vec::new());
                        }
                        probe.peek_record_len(clock, i == 0)
                    },
                    runs
                )
            );
            put_varint(&mut batch, frame_buf.len() as u64);
            batch.extend_from_slice(&frame_buf);
        }
        finish_batch(&mut batch, frames.len() as u32);

        // The completed buffer is a well-formed framed message.
        let mut stream = &batch[..];
        let mut body = Vec::new();
        assert_eq!(
            read_msg(&mut stream, &mut body).expect("read"),
            Some(WireMsgKind::Batch)
        );
        let mut dec = CompactClock::new();
        let mut pool = BufferPool::new();
        let mut reader = BatchReader::new(&body).expect("frame count");
        assert_eq!(reader.remaining(), 3);
        for (region, seq, clock, runs) in &frames {
            let f = reader.next(&mut dec, &mut pool).expect("frame decodes");
            assert_eq!(f.region, *region);
            assert_eq!(f.seq, *seq);
            assert_eq!(&f.clock, clock);
            assert_eq!(&f.runs, runs);
            let expect: Vec<u8> = runs
                .iter()
                .flat_map(|&(off, len)| data[off as usize..(off + len) as usize].to_vec())
                .collect();
            assert_eq!(f.payload, expect);
        }
        assert!(reader.finished());
        assert!(reader.next(&mut dec, &mut pool).is_none(), "exhausted");
    }

    #[test]
    fn frame_v2_decode_rejects_malformed_input() {
        let data = vec![7u8; 32];
        let mut enc = CompactClock::new();
        let mut buf = Vec::new();
        encode_frame_v2(
            &FrameV2 {
                region: 1,
                seq: 1,
                clock: &[3, 0],
                full: true,
                runs: &[(0, 8)],
                data: &data,
            },
            &mut enc,
            &mut buf,
        );
        let mut pool = BufferPool::new();
        let fresh = || CompactClock::new();
        assert!(decode_frame_v2(&buf, &mut fresh(), &mut pool).is_some());
        assert!(
            decode_frame_v2(&buf[..buf.len() - 1], &mut fresh(), &mut pool).is_none(),
            "truncated payload"
        );
        let mut extra = buf.clone();
        extra.push(0);
        assert!(
            decode_frame_v2(&extra, &mut fresh(), &mut pool).is_none(),
            "trailing garbage"
        );
        let mut bad_mode = buf.clone();
        bad_mode[2] = 9; // region and seq are one varint byte each here
        assert!(
            decode_frame_v2(&bad_mode, &mut fresh(), &mut pool).is_none(),
            "unknown clock mode"
        );
        // A delta-mode first frame decodes against an empty baseline — legal
        // for the codec — but a zero-length run is not.
        let mut zrun = Vec::new();
        let mut enc2 = CompactClock::new();
        encode_frame_v2(
            &FrameV2 {
                region: 0,
                seq: 1,
                clock: &[],
                full: true,
                runs: &[],
                data: &data,
            },
            &mut enc2,
            &mut zrun,
        );
        let nruns_at = zrun.len() - 1;
        zrun[nruns_at] = 1; // claim one run, provide no run table
        assert!(
            decode_frame_v2(&zrun, &mut fresh(), &mut pool).is_none(),
            "missing run table"
        );
    }

    #[test]
    fn batch_reader_rejects_truncation() {
        let data = vec![1u8; 16];
        let mut enc = CompactClock::new();
        let mut batch = Vec::new();
        begin_batch(&mut batch);
        let mut frame_buf = Vec::new();
        encode_frame_v2(
            &FrameV2 {
                region: 0,
                seq: 1,
                clock: &[5],
                full: true,
                runs: &[(0, 4)],
                data: &data,
            },
            &mut enc,
            &mut frame_buf,
        );
        put_varint(&mut batch, frame_buf.len() as u64);
        batch.extend_from_slice(&frame_buf);
        finish_batch(&mut batch, 1);
        let body = &batch[5..]; // strip the message len + kind

        let mut pool = BufferPool::new();
        assert!(BatchReader::new(&body[..3]).is_none(), "no frame count");
        // Truncated inside the frame: next() fails with frames remaining.
        let mut r = BatchReader::new(&body[..body.len() - 2]).expect("count");
        assert!(r.next(&mut CompactClock::new(), &mut pool).is_none());
        assert_eq!(r.remaining(), 1, "failure, not exhaustion");
        assert!(!r.finished());
        // Trailing garbage after the last frame: finished() stays false.
        let mut long = body.to_vec();
        long.push(0);
        let mut r = BatchReader::new(&long).expect("count");
        assert!(r.next(&mut CompactClock::new(), &mut pool).is_some());
        assert_eq!(r.remaining(), 0);
        assert!(!r.finished(), "trailing garbage detected");
    }

    #[test]
    fn read_msg_rejects_corrupt_streams() {
        // Zero length prefix.
        let zero = 0u32.to_le_bytes().to_vec();
        let mut body = Vec::new();
        assert!(read_msg(&mut &zero[..], &mut body).is_err());
        // Unknown kind byte.
        let mut unk = Vec::new();
        unk.extend_from_slice(&1u32.to_le_bytes());
        unk.push(99);
        assert!(read_msg(&mut &unk[..], &mut body).is_err());
        // Truncated body.
        let mut trunc = Vec::new();
        trunc.extend_from_slice(&10u32.to_le_bytes());
        trunc.push(WireMsgKind::Frame as u8);
        trunc.extend_from_slice(&[0, 0]);
        assert!(read_msg(&mut &trunc[..], &mut body).is_err());
    }
}
