//! Checkpoint images: the serialized form of one node's barrier-cut snapshot.
//!
//! The recovery subsystem (`dsm-core`) snapshots every node at barrier
//! boundaries.  Barriers are the natural consistent cut for this protocol
//! family: all dirty pages have been published (or deliberately retained,
//! under EC's lock-scoped publishes), no locks are held by a well-formed
//! program, and the vector clocks of all nodes are mutually reconciled by
//! the rendezvous.  The in-memory snapshot keeps full region copies (restore
//! is a `memcpy`); *this* module defines the compact image that travels to
//! the transport replicas as a [`WireMsgKind::Ckpt`](crate::wire::WireMsgKind)
//! frame and whose size the recovery bench reports: word-granular
//! changed-run deltas against the node's previous checkpoint, encoded with
//! the same flat-payload codec the data plane already uses
//! ([`encode_flat_update`](crate::wire::encode_flat_update) — no serde tree
//! walk).
//!
//! # Image layout (all integers little-endian)
//!
//! | Field        | Layout                                                    |
//! |--------------|-----------------------------------------------------------|
//! | header       | `u32 node` · `u64 barriers` · `u64 epoch` · `u64 time_ns` |
//! | vector clock | `u32 n` · `n × u32 entry`                                 |
//! | regions      | `u32 nregions` · per region: flat-update record · `u32 payload_len` · payload |
//! | lock table   | `u32 nlocks` · `nlocks × u32 lock`                        |
//!
//! The per-region run table is a [`FlatUpdate`] whose runs are *word*
//! indices stamped with the cut's barrier count; the payload carries each
//! run's bytes back to back.  A clean barrier cut has an empty lock table —
//! it is present so the image format can describe mid-critical-section cuts
//! if a future protocol needs them.
//!
//! Malformed input decodes to `None`: truncations, overstated run counts,
//! payload/run-table length mismatches and unsorted runs are all rejected,
//! matching the rest of the wire codec.

use crate::wire::{
    decode_flat_update, decode_vclock, encode_flat_update, encode_vclock, MAX_WIRE_MSG,
};
use crate::{changed_word_runs, FlatRun, FlatUpdate, VectorClock};

/// One region's contribution to a checkpoint image: the word runs that
/// changed since the node's previous checkpoint, plus their bytes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CkptRegion {
    /// Changed word runs (run starts/lengths are word indices), every run
    /// stamped with the cut's barrier count.
    pub update: FlatUpdate,
    /// Each run's bytes, back to back in run order.
    pub payload: Vec<u8>,
}

impl CkptRegion {
    /// Builds the delta of one region against its previous checkpoint copy,
    /// stamping every run `stamp` (the cut's barrier count).
    ///
    /// # Panics
    ///
    /// Panics if the copies differ in length or are not word-granular —
    /// every region in this system is, and a silent ragged tail would make
    /// the image lossy.
    pub fn delta(prev: &[u8], cur: &[u8], stamp: u64) -> CkptRegion {
        assert_eq!(prev.len(), cur.len(), "checkpoint copies must match");
        assert_eq!(cur.len() % 4, 0, "regions are word-granular");
        let mut runs = Vec::new();
        changed_word_runs(prev, cur, 0..cur.len() / 4, |start, end| {
            runs.push(FlatRun {
                start,
                len: end - start,
                stamp,
            })
        });
        let mut payload = Vec::with_capacity(runs.iter().map(|r| r.len * 4).sum());
        for r in &runs {
            payload.extend_from_slice(&cur[r.start * 4..(r.start + r.len) * 4]);
        }
        CkptRegion {
            update: FlatUpdate::from_wire_runs(runs),
            payload,
        }
    }

    /// Number of words the delta covers.
    pub fn words(&self) -> usize {
        self.payload.len() / 4
    }

    /// Copies the delta into a region-sized buffer (the previous checkpoint
    /// copy), reconstructing the checkpointed contents.  Returns `false`,
    /// leaving a suffix unapplied, if a run falls outside the buffer.
    pub fn apply_to(&self, target: &mut [u8]) -> bool {
        let mut pos = 0usize;
        for r in self.update.runs() {
            let (start, len) = (r.start * 4, r.len * 4);
            let Some(dst) = target.get_mut(start..start + len) else {
                return false;
            };
            dst.copy_from_slice(&self.payload[pos..pos + len]);
            pos += len;
        }
        true
    }
}

/// One node's checkpoint image: the barrier cut's identity (node, barrier
/// count, epoch, simulated time), the node's vector clock at the cut, the
/// per-region changed-run deltas and the (normally empty) held-lock table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CkptImage {
    /// The checkpointing node.
    pub node: u32,
    /// Barriers the node had completed at the cut (cut index; doubles as the
    /// run stamp of every delta run).
    pub barriers: u64,
    /// The node's interval/epoch counter at the cut.
    pub epoch: u64,
    /// The node's simulated clock at the cut, in nanoseconds.
    pub time_ns: u64,
    /// The node's vector clock at the cut.
    pub clock: VectorClock,
    /// Per-region deltas against the node's previous checkpoint, in region
    /// index order (one entry per region, empty delta if unchanged).
    pub regions: Vec<CkptRegion>,
    /// Locks held across the cut (empty at a clean barrier cut).
    pub locks: Vec<u32>,
}

fn get_u32(buf: &[u8], at: &mut usize) -> Option<u32> {
    let end = at.checked_add(4)?;
    let v = u32::from_le_bytes(buf.get(*at..end)?.try_into().expect("4 bytes"));
    *at = end;
    Some(v)
}

fn get_u64(buf: &[u8], at: &mut usize) -> Option<u64> {
    let end = at.checked_add(8)?;
    let v = u64::from_le_bytes(buf.get(*at..end)?.try_into().expect("8 bytes"));
    *at = end;
    Some(v)
}

impl CkptImage {
    /// Appends the encoded image to `out` (see the module docs for the
    /// layout).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.node.to_le_bytes());
        out.extend_from_slice(&self.barriers.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.time_ns.to_le_bytes());
        encode_vclock(&self.clock, out);
        out.extend_from_slice(&(self.regions.len() as u32).to_le_bytes());
        for r in &self.regions {
            encode_flat_update(&r.update, out);
            out.extend_from_slice(&(r.payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&r.payload);
        }
        out.extend_from_slice(&(self.locks.len() as u32).to_le_bytes());
        for &l in &self.locks {
            out.extend_from_slice(&l.to_le_bytes());
        }
    }

    /// Decodes an image; the buffer must contain exactly one record.
    /// Malformed input — truncation, trailing garbage, run/payload length
    /// mismatches, unsorted or overlapping runs — returns `None`.
    pub fn decode(buf: &[u8]) -> Option<CkptImage> {
        let mut at = 0usize;
        let node = get_u32(buf, &mut at)?;
        let barriers = get_u64(buf, &mut at)?;
        let epoch = get_u64(buf, &mut at)?;
        let time_ns = get_u64(buf, &mut at)?;
        let (clock, used) = decode_vclock(buf.get(at..)?)?;
        at += used;
        let nregions = get_u32(buf, &mut at)? as usize;
        if nregions > MAX_WIRE_MSG / 8 {
            return None;
        }
        let mut regions = Vec::with_capacity(nregions);
        for _ in 0..nregions {
            let (update, used) = decode_flat_update(buf.get(at..)?)?;
            at += used;
            let plen = get_u32(buf, &mut at)? as usize;
            let end = at.checked_add(plen)?;
            let payload = buf.get(at..end)?.to_vec();
            at = end;
            let mut words = 0usize;
            let mut prev_end = 0usize;
            for r in update.runs() {
                if r.len == 0 || r.start < prev_end {
                    return None;
                }
                prev_end = r.start.checked_add(r.len)?;
                words = words.checked_add(r.len)?;
            }
            if words.checked_mul(4)? != plen {
                return None;
            }
            regions.push(CkptRegion { update, payload });
        }
        let nlocks = get_u32(buf, &mut at)? as usize;
        if nlocks > MAX_WIRE_MSG / 4 {
            return None;
        }
        let mut locks = Vec::with_capacity(nlocks);
        for _ in 0..nlocks {
            locks.push(get_u32(buf, &mut at)?);
        }
        if at != buf.len() {
            return None;
        }
        Some(CkptImage {
            node,
            barriers,
            epoch,
            time_ns,
            clock,
            regions,
            locks,
        })
    }

    /// Length of the encoded image in bytes — what the recovery bench
    /// reports as the per-checkpoint wire cost.
    pub fn encoded_len(&self) -> usize {
        let mut n = 4 + 8 + 8 + 8; // header
        n += 4 + self.clock.len() * 4; // vector clock
        n += 4; // nregions
        for r in &self.regions {
            n += 4 + r.update.runs().len() * 16 + 4 + r.payload.len();
        }
        n + 4 + self.locks.len() * 4
    }

    /// Total words of region data the image carries.
    pub fn words(&self) -> usize {
        self.regions.iter().map(CkptRegion::words).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_sim::NodeId;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn sample_image(seed: &mut u64) -> (CkptImage, Vec<Vec<u8>>, Vec<Vec<u8>>) {
        let nregions = 1 + (xorshift(seed) % 3) as usize;
        let mut prevs = Vec::new();
        let mut curs = Vec::new();
        let mut image = CkptImage {
            node: (xorshift(seed) % 8) as u32,
            barriers: xorshift(seed) % 100,
            epoch: xorshift(seed) % 100,
            time_ns: xorshift(seed),
            clock: {
                let mut c = VectorClock::new(4);
                for i in 0..4 {
                    c.set_entry(NodeId::new(i), (xorshift(seed) % 50) as u32);
                }
                c
            },
            regions: Vec::new(),
            locks: (0..xorshift(seed) % 3).map(|i| i as u32).collect(),
        };
        for _ in 0..nregions {
            let words = 4 + (xorshift(seed) % 64) as usize;
            let prev: Vec<u8> = (0..words * 4).map(|_| xorshift(seed) as u8).collect();
            let mut cur = prev.clone();
            for _ in 0..xorshift(seed) % 20 {
                let w = (xorshift(seed) as usize) % words;
                cur[w * 4..w * 4 + 4].copy_from_slice(&(xorshift(seed) as u32).to_le_bytes());
            }
            image
                .regions
                .push(CkptRegion::delta(&prev, &cur, image.barriers));
            prevs.push(prev);
            curs.push(cur);
        }
        (image, prevs, curs)
    }

    #[test]
    fn image_round_trip_reconstructs_contents_seeded_property() {
        let mut seed = 0x2545_f491_4f6c_dd1du64;
        for case in 0..128 {
            let (image, prevs, curs) = sample_image(&mut seed);
            let mut buf = Vec::new();
            image.encode_into(&mut buf);
            assert_eq!(buf.len(), image.encoded_len(), "case {case}: length");
            let back = CkptImage::decode(&buf).expect("round trip");
            assert_eq!(back, image, "case {case}");
            // Applying the delta to the previous copy reconstructs the cut.
            for (ridx, prev) in prevs.iter().enumerate() {
                let mut target = prev.clone();
                assert!(back.regions[ridx].apply_to(&mut target));
                assert_eq!(target, curs[ridx], "case {case} region {ridx}");
            }
            // Every truncation of the image is rejected.
            let cut = (xorshift(&mut seed) as usize) % buf.len();
            assert!(
                CkptImage::decode(&buf[..cut]).is_none(),
                "case {case}: truncation at {cut} rejected"
            );
            // As is trailing garbage.
            let mut long = buf.clone();
            long.push(0);
            assert!(CkptImage::decode(&long).is_none(), "case {case}: trailing");
        }
    }

    #[test]
    fn decode_rejects_inconsistent_run_tables() {
        let prev = vec![0u8; 32];
        let mut cur = prev.clone();
        cur[4..8].fill(9);
        let image = CkptImage {
            regions: vec![CkptRegion::delta(&prev, &cur, 3)],
            clock: VectorClock::new(2),
            ..CkptImage::default()
        };
        let mut buf = Vec::new();
        image.encode_into(&mut buf);
        assert!(CkptImage::decode(&buf).is_some());
        // Shrink the payload length field without shrinking the run table:
        // the words/payload cross-check must fire.
        let plen_at = buf.len() - 4 /* nlocks */ - 4 /* payload */ - 4;
        buf[plen_at..plen_at + 4].copy_from_slice(&0u32.to_le_bytes());
        assert!(CkptImage::decode(&buf).is_none(), "payload mismatch");
    }

    #[test]
    fn empty_delta_is_compact() {
        let data = vec![7u8; 64];
        let r = CkptRegion::delta(&data, &data, 1);
        assert!(r.update.is_empty());
        assert_eq!(r.words(), 0);
    }

    #[test]
    fn apply_rejects_out_of_range_runs() {
        let prev = vec![0u8; 16];
        let mut cur = prev.clone();
        cur[12..16].fill(1);
        let r = CkptRegion::delta(&prev, &cur, 1);
        let mut short = vec![0u8; 8];
        assert!(!r.apply_to(&mut short));
    }
}
