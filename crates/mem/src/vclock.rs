//! Vector clocks over execution intervals (LRC).
//!
//! LRC divides each process's execution into intervals and represents the
//! happens-before partial order between intervals with a per-interval vector:
//! entry `q` of processor `p`'s vector names the most recent interval of `q`
//! that precedes `p`'s current interval (Section 5.1 of the paper).

use std::cmp::Ordering;
use std::fmt;

use dsm_sim::NodeId;

/// Result of comparing two vector clocks under the interval partial order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockOrd {
    /// The clocks are identical.
    Equal,
    /// `self` happens-before `other` (every entry ≤, at least one <).
    Before,
    /// `other` happens-before `self`.
    After,
    /// Neither dominates the other: the intervals are concurrent.
    Concurrent,
}

/// A vector of interval indices, one entry per processor.
///
/// # Examples
///
/// ```
/// use dsm_mem::{ClockOrd, VectorClock};
/// use dsm_sim::NodeId;
///
/// let mut a = VectorClock::new(3);
/// let mut b = VectorClock::new(3);
/// a.bump(NodeId::new(0));
/// assert_eq!(a.compare(&b), ClockOrd::After);
/// b.bump(NodeId::new(1));
/// assert_eq!(a.compare(&b), ClockOrd::Concurrent);
/// b.merge_max(&a);
/// assert!(b.dominates(&a));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct VectorClock {
    entries: Vec<u32>,
}

impl VectorClock {
    /// Creates a clock of `nprocs` entries, all zero (no intervals seen).
    pub fn new(nprocs: usize) -> Self {
        VectorClock {
            entries: vec![0; nprocs],
        }
    }

    /// Number of processors covered by the clock.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the clock has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The most recent interval index of `node` known to this clock.
    pub fn entry(&self, node: NodeId) -> u32 {
        self.entries.get(node.index()).copied().unwrap_or(0)
    }

    /// Sets the entry for `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_entry(&mut self, node: NodeId, value: u32) {
        self.entries[node.index()] = value;
    }

    /// Increments the entry for `node` and returns the new value (used when a
    /// processor starts a new interval at a release or acquire).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn bump(&mut self, node: NodeId) -> u32 {
        self.entries[node.index()] += 1;
        self.entries[node.index()]
    }

    /// Overwrites this clock with `other`'s entries, reusing the existing
    /// allocation — the hot-path replacement for `clone()` when the
    /// destination clock already exists (grant and release paths run once
    /// per lock operation and must not allocate).
    pub fn copy_from(&mut self, other: &VectorClock) {
        self.entries.clone_from(&other.entries);
    }

    /// Pairwise maximum with `other` (the consistency action at an acquire).
    pub fn merge_max(&mut self, other: &VectorClock) {
        if other.entries.len() > self.entries.len() {
            self.entries.resize(other.entries.len(), 0);
        }
        for (mine, theirs) in self.entries.iter_mut().zip(other.entries.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// True if every entry of `self` is ≥ the corresponding entry of `other`
    /// (i.e. `self` has seen everything `other` has).
    pub fn dominates(&self, other: &VectorClock) -> bool {
        let n = self.entries.len().max(other.entries.len());
        (0..n).all(|i| {
            self.entries.get(i).copied().unwrap_or(0) >= other.entries.get(i).copied().unwrap_or(0)
        })
    }

    /// Compares two clocks under the partial order.
    pub fn compare(&self, other: &VectorClock) -> ClockOrd {
        let ge = self.dominates(other);
        let le = other.dominates(self);
        match (ge, le) {
            (true, true) => ClockOrd::Equal,
            (true, false) => ClockOrd::After,
            (false, true) => ClockOrd::Before,
            (false, false) => ClockOrd::Concurrent,
        }
    }

    /// Size of the clock when transmitted in a message (4 bytes per entry).
    pub fn wire_size(&self) -> usize {
        self.entries.len() * 4
    }

    /// The raw entries.
    pub fn entries(&self) -> &[u32] {
        &self.entries
    }

    /// Mutable access to the raw entries, for in-place delta application
    /// (crate-internal: [`crate::ClockDelta::apply_to_clock`] is the public
    /// door).
    pub(crate) fn entries_mut(&mut self) -> &mut [u32] {
        &mut self.entries
    }
}

impl PartialOrd for VectorClock {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match self.compare(other) {
            ClockOrd::Equal => Some(Ordering::Equal),
            ClockOrd::Before => Some(Ordering::Less),
            ClockOrd::After => Some(Ordering::Greater),
            ClockOrd::Concurrent => None,
        }
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn fresh_clocks_are_equal() {
        let a = VectorClock::new(4);
        let b = VectorClock::new(4);
        assert_eq!(a.compare(&b), ClockOrd::Equal);
        assert_eq!(a.partial_cmp(&b), Some(Ordering::Equal));
    }

    #[test]
    fn bump_orders_clocks() {
        let mut a = VectorClock::new(2);
        let b = a.clone();
        assert_eq!(a.bump(n(0)), 1);
        assert_eq!(a.compare(&b), ClockOrd::After);
        assert_eq!(b.compare(&a), ClockOrd::Before);
        assert_eq!(b.partial_cmp(&a), Some(Ordering::Less));
    }

    #[test]
    fn concurrent_clocks() {
        let mut a = VectorClock::new(2);
        let mut b = VectorClock::new(2);
        a.bump(n(0));
        b.bump(n(1));
        assert_eq!(a.compare(&b), ClockOrd::Concurrent);
        assert_eq!(a.partial_cmp(&b), None);
    }

    #[test]
    fn merge_max_is_least_upper_bound() {
        let mut a = VectorClock::new(3);
        let mut b = VectorClock::new(3);
        a.set_entry(n(0), 5);
        a.set_entry(n(2), 1);
        b.set_entry(n(1), 7);
        b.set_entry(n(2), 3);
        let mut m = a.clone();
        m.merge_max(&b);
        assert!(m.dominates(&a));
        assert!(m.dominates(&b));
        assert_eq!(m.entries(), &[5, 7, 3]);
    }

    #[test]
    fn copy_from_matches_clone_without_reallocating() {
        let mut src = VectorClock::new(4);
        src.set_entry(n(2), 9);
        let mut dst = VectorClock::new(4);
        dst.set_entry(n(0), 3);
        let buf = dst.entries.as_ptr();
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert_eq!(
            dst.entries.as_ptr(),
            buf,
            "same-length copy must reuse the buffer"
        );
    }

    #[test]
    fn entry_out_of_range_reads_zero() {
        let a = VectorClock::new(2);
        assert_eq!(a.entry(n(9)), 0);
    }

    #[test]
    fn wire_size_and_display() {
        let mut a = VectorClock::new(3);
        a.set_entry(n(1), 2);
        assert_eq!(a.wire_size(), 12);
        assert_eq!(a.to_string(), "<0,2,0>");
    }
}
