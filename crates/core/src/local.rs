//! Per-node (per simulated processor) private state.
//!
//! Each node owns a full copy of every shared region, plus the bookkeeping
//! the write-trapping mechanisms need: per-page twins, written-block bits
//! (software dirty bits), and — for LRC — per-page records of which remote
//! intervals have already been applied.

use std::collections::HashMap;

use dsm_mem::{pages_in, BitSet, BufferPool, RegionDesc, PAGE_SIZE};
use dsm_sim::{NodeClock, NodeId, NodeStats};

use crate::ids::LockMode;

/// Number of word-granularity blocks in one page.
pub(crate) const WORDS_PER_PAGE: usize = PAGE_SIZE / 4;

/// Per-page private state of one node.
#[derive(Debug, Default)]
pub(crate) struct LocalPage {
    /// Twin (unmodified copy) of the page, present while the page is dirty
    /// under twinning write trapping.
    pub twin: Option<Vec<u8>>,
    /// Word-level written bits (software dirty bits) for this page, allocated
    /// lazily on the first write.
    pub written: Option<BitSet>,
    /// True if the page has been modified since the start of the current
    /// interval (LRC) and is awaiting publication.
    pub dirty: bool,
    /// True if the page is write-protected so that the next write takes a
    /// simulated protection fault and creates a twin (twinning trapping for
    /// LRC pages and large EC objects).
    pub armed: bool,
    /// LRC: per-processor interval index whose modifications to this page
    /// have been applied to the local copy.
    pub applied: Vec<u32>,
    /// LRC: the node-local epoch at which this page's freshness was last
    /// verified; if it equals the node's current epoch the page is known
    /// up to date and accesses proceed without consulting the shared state.
    pub checked_epoch: u64,
    /// LRC: the region's publish generation *plus one* as of the last
    /// freshness check that left this page fully caught up (every publish to
    /// the page applied, `applied[q] >= latest[q]` for all `q`), or 0 if the
    /// last check left entitled-but-unseen intervals pending.  While the
    /// region generation still equals `checked_gen - 1` the page is fresh in
    /// *every* epoch — no publish exists that any acquire could entitle us
    /// to — so the check is a single atomic load, with no region lock and no
    /// per-processor scan.
    pub checked_gen: u64,
}

impl LocalPage {
    /// Returns the written-bit set, allocating it on first use.
    pub fn written_mut(&mut self) -> &mut BitSet {
        self.written
            .get_or_insert_with(|| BitSet::new(WORDS_PER_PAGE))
    }

    /// True if the given word block (page-relative) was written in the
    /// current interval.
    pub fn was_written(&self, word_in_page: usize) -> bool {
        self.written.as_ref().is_some_and(|w| w.get(word_in_page))
    }

    /// Clears all per-interval write-trapping state.
    pub fn clear_interval_state(&mut self) {
        self.twin = None;
        if let Some(w) = &mut self.written {
            w.clear_all();
        }
        self.dirty = false;
    }
}

/// One node's private copy of a shared region plus its page table.
#[derive(Debug)]
pub(crate) struct LocalRegion {
    /// The node's copy of the region contents.
    pub data: Vec<u8>,
    /// Per-page private state.
    pub pages: Vec<LocalPage>,
}

impl LocalRegion {
    /// Creates the node's copy of a region, initialised with `init`.
    pub fn new(desc: &RegionDesc, init: &[u8], nprocs: usize) -> Self {
        let npages = pages_in(desc.len).max(1);
        let mut pages = Vec::with_capacity(npages);
        for _ in 0..npages {
            pages.push(LocalPage {
                applied: vec![0; nprocs],
                ..LocalPage::default()
            });
        }
        LocalRegion {
            data: init.to_vec(),
            pages,
        }
    }

    /// The byte range of page `page`, clamped to the region length.
    pub fn page_span(&self, page: usize) -> std::ops::Range<usize> {
        dsm_mem::page_range(page, self.data.len())
    }
}

/// State of a lock currently held by this node.
#[derive(Debug)]
pub(crate) struct HeldLock {
    /// The mode it was acquired in.
    pub mode: LockMode,
    /// EC small-object twinning: a copy of every bound range taken at acquire
    /// time, concatenated in binding order into one pooled buffer (the range
    /// layout is recomputed from the binding at release, which must therefore
    /// not change while the lock is held), compared against the current data
    /// at release and then returned to the node's [`BufferPool`].
    pub small_twins: Option<Vec<u8>>,
    /// EC large-object twinning: the pages that were armed (write-protected)
    /// at acquire, so release can disarm exactly those.
    pub armed_pages: Vec<(usize, usize)>,
}

/// All private state of one simulated processor.
#[derive(Debug)]
pub(crate) struct NodeLocal {
    /// This node's identity.
    pub node: NodeId,
    /// Number of processors in the run.
    pub nprocs: usize,
    /// The node's simulated clock.
    pub clock: NodeClock,
    /// The node's statistics counters.
    pub stats: NodeStats,
    /// The node's copy of every shared region.
    pub regions: Vec<LocalRegion>,
    /// LRC: completed-interval vector (own entry = number of completed
    /// intervals of this node).
    pub vector: dsm_mem::VectorClock,
    /// Bumped at every acquire and barrier; used to avoid re-checking page
    /// freshness on every access (LRC).
    pub epoch: u64,
    /// Locks currently held by this node.
    pub held: HashMap<u32, HeldLock>,
    /// Pages dirtied during the current interval, awaiting publication at the
    /// next release or barrier (LRC).
    pub dirty_pages: Vec<(usize, usize)>,
    /// The value of this node's own interval counter at its last barrier
    /// arrival (used to size barrier arrival messages).
    pub intervals_at_last_barrier: u32,
    /// Scratch buffer for the LRC stale-source scan, reused across access
    /// misses so the slow path never allocates.  Ownership rule: a hook that
    /// needs it takes it with `std::mem::take` (so `self` stays borrowable)
    /// and must move it back before returning on every path.
    pub scratch_stale: Vec<(usize, u32, u32)>,
    /// Per-node scratch for the LRC publish-history pass (largest entitled
    /// publish interval per node), reused under the same ownership rule as
    /// `scratch_stale` so the freshness check stays O(history + nprocs)
    /// without allocating.
    pub scratch_upto: Vec<u32>,
    /// Scratch vector clock for grant-time merges, reused so `remote_grant`
    /// never clones a release vector.
    pub scratch_clock: dsm_mem::VectorClock,
    /// Reusable buffer pool backing this node's twins (LRC pages, EC pages
    /// and EC small objects).  Twins are taken at the first write (or EC
    /// acquire) of an interval and returned when the interval's publish
    /// retires them, so steady-state epochs allocate nothing.  The pool is
    /// strictly node-private: buffers never cross threads.
    pub pool: BufferPool,
    /// Spare buffer swapped with `dirty_pages` at each publish, so draining
    /// the dirty list does not surrender its capacity (the publish path would
    /// otherwise reallocate the list every interval).
    pub scratch_dirty: Vec<(usize, usize)>,
    /// This node's transport endpoint: where publish frames go under the
    /// channel and socket backends.  `None` under the default simulated
    /// backend, which keeps the publish path branch-only.  Ownership rule:
    /// a publish hook takes it with `Option::take` (so `self` stays
    /// borrowable) and must put it back before returning on every path.
    pub wire: Option<Box<crate::transport::WireEndpoint>>,
    /// Checkpoint/rollback state, `Some` only while a
    /// [`FaultPlan`](crate::FaultPlan) other than `None` is armed — the
    /// fault-free paths pay at most one pointer test for it.
    pub recovery: Option<Box<crate::recovery::RecoveryState>>,
}

impl NodeLocal {
    /// Creates the private state of node `node`.
    pub fn new(node: NodeId, nprocs: usize, regions: &[RegionDesc], init: &[Vec<u8>]) -> Self {
        let local_regions = regions
            .iter()
            .zip(init.iter())
            .map(|(desc, init)| LocalRegion::new(desc, init, nprocs))
            .collect();
        NodeLocal {
            node,
            nprocs,
            clock: NodeClock::new(),
            stats: NodeStats::new(),
            regions: local_regions,
            vector: dsm_mem::VectorClock::new(nprocs),
            epoch: 1,
            held: HashMap::new(),
            dirty_pages: Vec::new(),
            intervals_at_last_barrier: 0,
            scratch_stale: Vec::new(),
            scratch_upto: Vec::new(),
            scratch_clock: dsm_mem::VectorClock::new(nprocs),
            pool: BufferPool::new(),
            scratch_dirty: Vec::new(),
            wire: None,
            recovery: None,
        }
    }

    /// Appends an undo record for a crash-epoch mutation to shared state,
    /// but only on the fault plan's target node while its crash is still
    /// pending — every other configuration (no plan, non-target node, crash
    /// already fired) records nothing.  The closure keeps the record's
    /// construction off the fault-free fast path.
    #[inline]
    pub fn undo(&mut self, f: impl FnOnce() -> crate::recovery::UndoRec) {
        if let Some(r) = self.recovery.as_deref_mut() {
            if r.is_target && !r.fired {
                r.undo.push(f());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_mem::{BlockGranularity, RegionId};

    fn desc(len: usize) -> RegionDesc {
        RegionDesc::new(RegionId::new(0), "r", len, BlockGranularity::Word)
    }

    #[test]
    fn local_region_has_one_page_table_entry_per_page() {
        let d = desc(PAGE_SIZE * 2 + 10);
        let r = LocalRegion::new(&d, &vec![0u8; d.len], 4);
        assert_eq!(r.pages.len(), 3);
        assert_eq!(r.page_span(2), 2 * PAGE_SIZE..2 * PAGE_SIZE + 10);
        assert_eq!(r.pages[0].applied.len(), 4);
    }

    #[test]
    fn written_bits_are_lazy() {
        let d = desc(100);
        let mut r = LocalRegion::new(&d, &[0u8; 100], 2);
        assert!(r.pages[0].written.is_none());
        assert!(!r.pages[0].was_written(3));
        r.pages[0].written_mut().set(3);
        assert!(r.pages[0].was_written(3));
        r.pages[0].clear_interval_state();
        assert!(!r.pages[0].was_written(3));
    }

    #[test]
    fn node_local_copies_initial_contents() {
        let d = desc(16);
        let init = vec![vec![7u8; 16]];
        let n = NodeLocal::new(NodeId::new(1), 2, &[d], &init);
        assert_eq!(n.regions[0].data, vec![7u8; 16]);
        assert_eq!(n.vector.len(), 2);
        assert_eq!(n.epoch, 1);
    }
}
