//! The entry-consistency protocol (Midway-style), Section 3.1 / 4 / 5 of the
//! paper.
//!
//! Shared data is bound to locks.  An exclusive acquire arms write trapping on
//! the bound data (twin copy for small objects, copy-on-write protection for
//! large ones, or nothing for compiler instrumentation); the release publishes
//! the modifications; the next acquirer receives them with the lock grant
//! message (update protocol), selected either by per-block incarnation
//! timestamps or as a chain of diffs.

use dsm_mem::BlockGranularity;
use dsm_sim::{MsgKind, SimTime};

use crate::config::{Collection, Trapping};
use crate::context::{ProcessContext, CTRL_MSG_BYTES};
use crate::ids::{LockId, LockMode};
use crate::local::HeldLock;
use crate::shared::{EcShared, PublishRec, Shared};

impl ProcessContext<'_> {
    /// EC lock acquire: block until the lock is available, account for the
    /// request/forward/grant messages, pull the bound data (update protocol)
    /// and arm write trapping for exclusive acquires.
    pub(crate) fn ec_acquire(&mut self, lock: LockId, mode: LockMode) {
        let cost = self.cost().clone();
        self.local.clock.advance(cost.lock_overhead());
        self.local.stats.lock_acquires += 1;
        let me = self.local.node;
        let nprocs = self.local.nprocs;
        let lidx = lock.index();
        let global = self.global;
        let mut shared = global.shared.lock();
        shared.ensure_lock(lidx);

        loop {
            let l = &shared.locks[lidx];
            let ok = match mode {
                LockMode::Exclusive => l.can_acquire_exclusive(),
                LockMode::ReadOnly => l.can_acquire_read(),
            };
            if ok {
                break;
            }
            global.condvar.wait(&mut shared);
        }

        let manager = lock.manager(nprocs);
        let (local_grant, free_time, last_owner) = {
            let l = &shared.locks[lidx];
            (l.last_owner == Some(me), l.free_time, l.last_owner)
        };

        let mut arrival = self.local.clock.now();
        if local_grant {
            self.local.stats.local_lock_acquires += 1;
        } else {
            if me != manager {
                self.local
                    .stats
                    .record_msg(MsgKind::LockRequest, CTRL_MSG_BYTES);
                arrival += cost.message(CTRL_MSG_BYTES);
            }
            // Never-owned locks are granted by their manager; otherwise the
            // manager forwards the request to the last owner.
            let owner = last_owner.unwrap_or(manager);
            if manager != owner {
                self.local
                    .stats
                    .record_msg(MsgKind::LockForward, CTRL_MSG_BYTES);
                arrival += cost.message(CTRL_MSG_BYTES);
            }
        }
        let grant_time = arrival.max(free_time);
        self.local.clock.sync_to(grant_time);

        {
            let l = &mut shared.locks[lidx];
            if l.last_owner != Some(me) {
                l.transfers += 1;
            }
            match mode {
                LockMode::Exclusive => {
                    l.exclusive_holder = Some(me);
                    l.last_owner = Some(me);
                }
                LockMode::ReadOnly => {
                    l.readers += 1;
                }
            }
        }

        if !local_grant {
            self.local
                .clock
                .advance(SimTime::from_nanos(cost.interrupt_ns));
            shared.ec().locks[lidx].incarnation += 1;
            let payload = self.ec_pull(&mut shared, lock);
            self.local.stats.record_msg(MsgKind::LockGrant, payload);
            self.local.clock.advance(cost.message(payload));
        }

        let mut held = HeldLock {
            mode,
            small_twins: None,
            armed_pages: Vec::new(),
        };
        if mode == LockMode::Exclusive {
            self.ec_arm(&mut shared, lock, &mut held);
        }
        drop(shared);
        self.local.held.insert(lock.0, held);
    }

    /// EC lock release: publish the modifications to the bound data and make
    /// the lock available.
    pub(crate) fn ec_release(&mut self, lock: LockId) {
        let cost = self.cost().clone();
        self.local.clock.advance(cost.lock_overhead());
        let held = self
            .local
            .held
            .remove(&lock.0)
            .expect("release of a lock that is not held");
        let global = self.global;
        let mut shared = global.shared.lock();
        shared.ensure_lock(lock.index());
        if held.mode == LockMode::Exclusive {
            self.ec_publish(&mut shared, lock, &held);
        }
        {
            let l = &mut shared.locks[lock.index()];
            match held.mode {
                LockMode::Exclusive => l.exclusive_holder = None,
                LockMode::ReadOnly => l.readers = l.readers.saturating_sub(1),
            }
            l.free_time = l.free_time.max(self.local.clock.now());
        }
        drop(shared);
        global.condvar.notify_all();
    }

    /// Makes the data bound to `lock` consistent at this node (the payload of
    /// the lock grant message under the update protocol).  Returns the grant
    /// payload size in bytes.
    fn ec_pull(&mut self, shared: &mut Shared, lock: LockId) -> usize {
        let cost = self.global.cfg.cost.clone();
        let trapping = self.global.cfg.kind.trapping();
        let collection = self.global.cfg.kind.collection();
        let me = self.local.node.index();
        let lidx = lock.index();

        let ec = shared.ec();
        let publish_seq = ec.publish_seq;
        let EcShared { regions, locks, .. } = ec;
        let meta = &mut locks[lidx];
        let bound = meta.bound.clone();
        let seen = meta.seen_seq[me];
        let rebound = meta.seen_epoch[me] != meta.rebind_epoch;
        let bound_bytes: usize = bound.iter().map(|r| r.len).sum();

        let mut applied_words = 0usize;
        let mut ts_runs = 0usize;
        let mut scan_blocks = 0u64;
        let mut prev: Option<(usize, usize, u64)> = None;

        for range in &bound {
            let ridx = range.region.index();
            let rs = &regions[ridx];
            let local_data = &mut self.local.regions[ridx].data;
            let gran_div = if trapping == Trapping::Instrumentation {
                self.global.regions[ridx].granularity.bytes() / 4
            } else {
                1
            };
            let blocks = range.blocks(BlockGranularity::Word);
            scan_blocks += (blocks.len() / gran_div.max(1)) as u64;
            for block in blocks {
                let stamp = rs.stamp[block];
                if stamp == 0 {
                    prev = None;
                    continue;
                }
                if rebound || stamp > seen {
                    let start = block * 4;
                    let end = (start + 4).min(local_data.len());
                    local_data[start..end].copy_from_slice(&rs.master[start..end]);
                    applied_words += 1;
                    let contiguous =
                        matches!(prev, Some((r, b, s)) if r == ridx && b + 1 == block && s == stamp);
                    if !contiguous {
                        ts_runs += 1;
                    }
                    prev = Some((ridx, block, stamp));
                } else {
                    prev = None;
                }
            }
        }

        self.local.stats.words_applied += applied_words as u64;
        self.local.clock.advance(cost.apply_words(applied_words as u64));

        let payload = match collection {
            Collection::Timestamps => {
                // The responder scans the timestamps of every block bound to
                // the lock on every request.
                self.local.stats.ts_blocks_scanned += scan_blocks;
                self.local.clock.advance(cost.ts_scan(scan_blocks));
                if rebound {
                    bound_bytes + 12
                } else {
                    applied_words * 4 + ts_runs * (4 + 6)
                }
            }
            Collection::Diffs => {
                let mut bytes = 0usize;
                let mut count = 0u64;
                let mut creation_words = 0u64;
                for rec in meta.publishes.iter_mut().filter(|r| r.stamp > seen) {
                    bytes += rec.encoded_size;
                    count += 1;
                    if !rec.creation_charged {
                        rec.creation_charged = true;
                        creation_words += rec.compare_words as u64;
                    }
                }
                self.local.stats.diffs_applied += count;
                self.local.clock.advance(cost.diff_compare(creation_words));
                let bytes = bytes.max(applied_words * 4);
                if rebound {
                    bound_bytes.max(bytes)
                } else {
                    bytes
                }
            }
        };

        meta.seen_seq[me] = publish_seq;
        meta.seen_epoch[me] = meta.rebind_epoch;
        payload
    }

    /// Arms write trapping for the bound data of an exclusive acquire.
    fn ec_arm(&mut self, shared: &mut Shared, lock: LockId, held: &mut HeldLock) {
        if self.global.cfg.kind.trapping() != Trapping::Twinning {
            return;
        }
        let cost = self.global.cfg.cost.clone();
        let small_limit = self.global.cfg.ec_small_object_limit;
        let bound = shared.ec().locks[lock.index()].bound.clone();
        let total: usize = bound.iter().map(|r| r.len).sum();
        if total == 0 {
            return;
        }
        if total <= small_limit {
            // Small object: copy it eagerly at acquire, avoiding the
            // protection fault the Midway VM implementation takes.
            let mut twins = Vec::with_capacity(bound.len());
            for range in &bound {
                let data = &self.local.regions[range.region.index()].data;
                twins.push(data[range.start..range.end()].to_vec());
            }
            let words = (total / 4) as u64;
            self.local.stats.twins_created += 1;
            self.local.stats.twin_words += words;
            self.local.clock.advance(cost.twin_copy(words));
            held.small_twins = Some(twins);
        } else {
            // Large object: write-protect its pages; the first write to each
            // page faults and creates a per-page twin.
            let mut mprotects = 0u64;
            for range in &bound {
                let ridx = range.region.index();
                for page in range.pages() {
                    let lp = &mut self.local.regions[ridx].pages[page];
                    if !lp.armed {
                        lp.armed = true;
                        lp.twin = None;
                        held.armed_pages.push((ridx, page));
                        mprotects += 1;
                    }
                }
            }
            self.local.clock.advance(cost.mprotect().times(mprotects));
        }
    }

    /// Publishes the modifications made to the bound data while the exclusive
    /// lock was held (write collection on the releaser side).
    fn ec_publish(&mut self, shared: &mut Shared, lock: LockId, held: &HeldLock) {
        let cost = self.global.cfg.cost.clone();
        let trapping = self.global.cfg.kind.trapping();
        let collection = self.global.cfg.kind.collection();
        let diff_ring = self.global.cfg.diff_ring;
        let me = self.local.node;
        let lidx = lock.index();

        let ec = shared.ec();
        let EcShared {
            regions,
            locks,
            publish_seq,
        } = ec;
        let meta = &mut locks[lidx];
        let bound = meta.bound.clone();
        if bound.is_empty() {
            return;
        }
        *publish_seq += 1;
        let seq = *publish_seq;

        let mut changed_words = 0usize;
        let mut runs = 0usize;
        let mut compare_words = 0usize;
        let mut prev_changed: Option<(usize, usize)> = None;

        for (range_i, range) in bound.iter().enumerate() {
            let ridx = range.region.index();
            let local_region = &mut self.local.regions[ridx];
            let rs = &mut regions[ridx];
            for block in range.blocks(BlockGranularity::Word) {
                let start = block * 4;
                let end = (start + 4).min(local_region.data.len());
                let changed = match trapping {
                    Trapping::Instrumentation => {
                        let page = start / dsm_mem::PAGE_SIZE;
                        let w_in_page = block - page * (dsm_mem::PAGE_SIZE / 4);
                        local_region.pages[page].was_written(w_in_page)
                    }
                    Trapping::Twinning => {
                        if let Some(twins) = &held.small_twins {
                            let twin = &twins[range_i];
                            let toff = start.saturating_sub(range.start);
                            compare_words += 1;
                            twin.get(toff..toff + (end - start))
                                != Some(&local_region.data[start..end])
                        } else {
                            let page = start / dsm_mem::PAGE_SIZE;
                            match &local_region.pages[page].twin {
                                Some(twin) => {
                                    let span_start = page * dsm_mem::PAGE_SIZE;
                                    compare_words += 1;
                                    twin[start - span_start..end - span_start]
                                        != local_region.data[start..end]
                                }
                                None => false,
                            }
                        }
                    }
                };
                if changed {
                    rs.master[start..end].copy_from_slice(&local_region.data[start..end]);
                    rs.stamp[block] = seq;
                    changed_words += 1;
                    let contiguous =
                        matches!(prev_changed, Some((r, b)) if r == ridx && b + 1 == block);
                    if !contiguous {
                        runs += 1;
                    }
                    prev_changed = Some((ridx, block));
                }
            }
        }

        // Reset the per-holding trapping state.
        match trapping {
            Trapping::Instrumentation => {
                for range in &bound {
                    let ridx = range.region.index();
                    let region = &mut self.local.regions[ridx];
                    for block in range.blocks(BlockGranularity::Word) {
                        let start = block * 4;
                        let page = start / dsm_mem::PAGE_SIZE;
                        let w_in_page = block - page * (dsm_mem::PAGE_SIZE / 4);
                        if let Some(bits) = &mut region.pages[page].written {
                            if w_in_page < bits.len() {
                                bits.clear(w_in_page);
                            }
                        }
                    }
                }
            }
            Trapping::Twinning => {
                for &(ridx, page) in &held.armed_pages {
                    let lp = &mut self.local.regions[ridx].pages[page];
                    lp.armed = false;
                    lp.twin = None;
                }
            }
        }

        // With timestamps the comparison that stamps the changed blocks runs
        // at the release; with diffs it is deferred to the first request
        // (lazy diffing).
        if trapping == Trapping::Twinning && collection == Collection::Timestamps {
            self.local
                .clock
                .advance(cost.diff_compare(compare_words as u64));
        }

        if changed_words > 0 {
            self.local.stats.diff_words += changed_words as u64;
            if collection == Collection::Diffs {
                self.local.stats.diffs_created += 1;
            }
            meta.publishes.push_back(PublishRec {
                stamp: seq,
                node: me,
                encoded_size: changed_words * 4 + runs * 8,
                compare_words,
                creation_charged: collection == Collection::Timestamps
                    || trapping == Trapping::Instrumentation,
            });
            while meta.publishes.len() > diff_ring {
                meta.publishes.pop_front();
            }
        }
    }
}
