//! The entry-consistency engine (Midway-style), Section 3.1 / 4 / 5 of the
//! paper.
//!
//! Shared data is bound to locks.  An exclusive acquire arms write trapping on
//! the bound data (twin copy for small objects, copy-on-write protection for
//! large ones, or nothing for compiler instrumentation); the release publishes
//! the modifications; the next acquirer receives them with the lock grant
//! message (update protocol), selected either by per-block incarnation
//! timestamps or as a chain of diffs.
//!
//! State is sharded: each lock's binding and publish ring sits behind its own
//! mutex, each region's published master copy behind its own `RwLock`, and
//! the global publish sequence is a single atomic counter — so grants and
//! releases of independent locks proceed in parallel.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

use dsm_mem::{BlockGranularity, MemRange, RegionDesc, VectorClock};

use crate::config::{Collection, DsmConfig, Trapping};
use crate::engine::{ProtocolEngine, PublishRec, CTRL_MSG_BYTES};
use crate::ids::{LockId, LockMode};
use crate::local::{HeldLock, NodeLocal};
use crate::sync::{self, SlotTable};

/// Per-lock entry-consistency state.
#[derive(Debug, Default)]
struct EcLockState {
    /// The memory ranges bound to the lock (possibly non-contiguous).
    bound: Vec<MemRange>,
    /// Incremented whenever the binding changes; a node whose `seen_epoch`
    /// lags must conservatively receive all bound data (Section 7.1,
    /// "Rebinding").
    rebind_epoch: u64,
    /// Lock incarnation number: incremented on every remote grant.
    incarnation: u64,
    /// Ring of recent publish records for diff-mode traffic accounting.
    publishes: VecDeque<PublishRec>,
    /// Highest publish sequence this lock's own chain has stamped.  Grants
    /// snapshot *this* (not the global counter): both publish and grant hold
    /// this lock's mutex, so every stamp `<= last_seq` is guaranteed visible,
    /// whereas a concurrent publish under another lock may have drawn a lower
    /// global sequence whose stamps have not landed yet.
    last_seq: u64,
    /// Per node: the publish sequence this node has applied through for this
    /// lock's data.
    seen_seq: Vec<u64>,
    /// Per node: the rebind epoch this node has seen.
    seen_epoch: Vec<u64>,
}

/// Per-region entry-consistency state: the published master copy and
/// per-word-block publish-sequence stamps.
#[derive(Debug)]
struct EcRegionState {
    /// Latest published value of every byte.
    master: Vec<u8>,
    /// Per word block: the publish sequence number that last wrote it
    /// (0 = never published).
    stamp: Vec<u64>,
}

/// The entry-consistency [`ProtocolEngine`].
pub(crate) struct EcEngine {
    cfg: DsmConfig,
    regions: Vec<RegionDesc>,
    /// Published master copies, one `RwLock` per region.
    region_state: Vec<RwLock<EcRegionState>>,
    /// Per-region monotonic publish generation, bumped (under the region's
    /// write lock) whenever a release publishes modifications to the region.
    /// EC needs no freshness checks — consistency travels with lock grants —
    /// so this is bookkeeping symmetry with `LrcEngine`: it gives region
    /// observers (debug output, future engines layered on the master copies)
    /// the same cheap "has anything been published?" signal.
    publish_gen: Vec<AtomicU64>,
    /// Per-lock metadata, one mutex per lock, created on demand.
    locks: SlotTable<Mutex<EcLockState>>,
    /// Global publish sequence counter (orders publishes across all locks).
    publish_seq: AtomicU64,
}

impl std::fmt::Debug for EcEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EcEngine")
            .field("regions", &self.regions.len())
            .field("locks", &self.locks.len())
            .field("publish_seq", &self.publish_seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl EcEngine {
    /// Builds the engine for a run.
    pub fn new(cfg: &DsmConfig, regions: &[RegionDesc], init: &[Vec<u8>]) -> Self {
        let nprocs = cfg.nprocs;
        let region_state = regions
            .iter()
            .zip(init.iter())
            .map(|(d, init)| {
                RwLock::new(EcRegionState {
                    master: init.clone(),
                    stamp: vec![0; d.len.div_ceil(4)],
                })
            })
            .collect();
        EcEngine {
            cfg: cfg.clone(),
            regions: regions.to_vec(),
            region_state,
            publish_gen: regions.iter().map(|_| AtomicU64::new(0)).collect(),
            locks: SlotTable::new(move |_| {
                Mutex::new(EcLockState {
                    seen_seq: vec![0; nprocs],
                    seen_epoch: vec![0; nprocs],
                    ..EcLockState::default()
                })
            }),
            publish_seq: AtomicU64::new(0),
        }
    }
}

impl ProtocolEngine for EcEngine {
    fn bind(&self, lock: LockId, ranges: Vec<MemRange>) {
        let slot = self.locks.get(lock.index());
        sync::lock(&slot).bound = ranges;
    }

    fn rebind(&self, lock: LockId, ranges: Vec<MemRange>) {
        let slot = self.locks.get(lock.index());
        let mut meta = sync::lock(&slot);
        if meta.bound != ranges {
            meta.bound = ranges;
            meta.rebind_epoch += 1;
        }
    }

    fn validate_acquire(&self, _lock: LockId, _mode: LockMode) {
        // EC provides both exclusive and read-only locks.
    }

    /// Makes the data bound to `lock` consistent at this node (the payload of
    /// the lock grant message under the update protocol).  Returns the grant
    /// payload size in bytes.
    fn remote_grant(&self, local: &mut NodeLocal, lock: LockId) -> usize {
        let cost = &self.cfg.cost;
        let trapping = self.cfg.kind.trapping();
        let collection = self.cfg.kind.collection();
        let me = local.node.index();

        let slot = self.locks.get(lock.index());
        let mut meta = sync::lock(&slot);
        meta.incarnation += 1;
        // Everything this lock's chain has published is visible (same mutex
        // ordered the publish), so its own high-water mark is the safe
        // "applied through" value to record below.
        let publish_seq = meta.last_seq;
        let seen = meta.seen_seq[me];
        let rebound = meta.seen_epoch[me] != meta.rebind_epoch;
        let bound_bytes: usize = meta.bound.iter().map(|r| r.len).sum();

        let mut applied_words = 0usize;
        let mut ts_runs = 0usize;
        let mut scan_blocks = 0u64;
        let mut prev: Option<(usize, usize, u64)> = None;

        // The binding is borrowed, not cloned: the grant path runs once per
        // remote acquire and must not allocate.
        for range in &meta.bound {
            let ridx = range.region.index();
            let rs = sync::read(&self.region_state[ridx]);
            let local_data = &mut local.regions[ridx].data;
            let gran_div = if trapping == Trapping::Instrumentation {
                self.regions[ridx].granularity.bytes() / 4
            } else {
                1
            };
            let blocks = range.blocks(BlockGranularity::Word);
            scan_blocks += (blocks.len() / gran_div.max(1)) as u64;
            for block in blocks {
                let stamp = rs.stamp[block];
                if stamp == 0 {
                    prev = None;
                    continue;
                }
                if rebound || stamp > seen {
                    let start = block * 4;
                    let end = (start + 4).min(local_data.len());
                    local_data[start..end].copy_from_slice(&rs.master[start..end]);
                    applied_words += 1;
                    let contiguous = matches!(prev, Some((r, b, s)) if r == ridx && b + 1 == block && s == stamp);
                    if !contiguous {
                        ts_runs += 1;
                    }
                    prev = Some((ridx, block, stamp));
                } else {
                    prev = None;
                }
            }
        }

        local.stats.words_applied += applied_words as u64;
        local.clock.advance(cost.apply_words(applied_words as u64));

        let payload = match collection {
            Collection::Timestamps => {
                // The responder scans the timestamps of every block bound to
                // the lock on every request.
                local.stats.ts_blocks_scanned += scan_blocks;
                local.clock.advance(cost.ts_scan(scan_blocks));
                if rebound {
                    bound_bytes + 12
                } else {
                    applied_words * 4 + ts_runs * (4 + 6)
                }
            }
            Collection::Diffs => {
                let mut bytes = 0usize;
                let mut count = 0u64;
                let mut creation_words = 0u64;
                for rec in meta.publishes.iter_mut().filter(|r| r.stamp > seen) {
                    bytes += rec.encoded_size;
                    count += 1;
                    if !rec.creation_charged {
                        rec.creation_charged = true;
                        creation_words += rec.compare_words as u64;
                    }
                }
                local.stats.diffs_applied += count;
                local.clock.advance(cost.diff_compare(creation_words));
                let bytes = bytes.max(applied_words * 4);
                if rebound {
                    bound_bytes.max(bytes)
                } else {
                    bytes
                }
            }
        };

        meta.seen_seq[me] = publish_seq;
        meta.seen_epoch[me] = meta.rebind_epoch;
        payload
    }

    /// Arms write trapping for the bound data of an exclusive acquire.
    fn after_acquire(&self, local: &mut NodeLocal, lock: LockId, held: &mut HeldLock) {
        if held.mode != LockMode::Exclusive || self.cfg.kind.trapping() != Trapping::Twinning {
            return;
        }
        let cost = &self.cfg.cost;
        let small_limit = self.cfg.ec_small_object_limit;
        // Arming touches only this node's private state, so the binding can
        // be borrowed under the lock's mutex (no clone): no other lock of
        // the ordering hierarchy is taken below.
        let slot = self.locks.get(lock.index());
        let meta = sync::lock(&slot);
        let bound = &meta.bound;
        let total: usize = bound.iter().map(|r| r.len).sum();
        if total == 0 {
            return;
        }
        if total <= small_limit {
            // Small object: copy it eagerly at acquire, avoiding the
            // protection fault the Midway VM implementation takes.
            let mut twins = Vec::with_capacity(bound.len());
            for range in bound {
                let data = &local.regions[range.region.index()].data;
                twins.push(data[range.start..range.end()].to_vec());
            }
            let words = (total / 4) as u64;
            local.stats.twins_created += 1;
            local.stats.twin_words += words;
            local.clock.advance(cost.twin_copy(words));
            held.small_twins = Some(twins);
        } else {
            // Large object: write-protect its pages; the first write to each
            // page faults and creates a per-page twin.
            let mut mprotects = 0u64;
            for range in bound {
                let ridx = range.region.index();
                for page in range.pages() {
                    let lp = &mut local.regions[ridx].pages[page];
                    if !lp.armed {
                        lp.armed = true;
                        lp.twin = None;
                        held.armed_pages.push((ridx, page));
                        mprotects += 1;
                    }
                }
            }
            local.clock.advance(cost.mprotect().times(mprotects));
        }
    }

    /// Publishes the modifications made to the bound data while the exclusive
    /// lock was held (write collection on the releaser side).
    fn before_release(&self, local: &mut NodeLocal, lock: LockId, held: &HeldLock) {
        if held.mode != LockMode::Exclusive {
            return;
        }
        let cost = &self.cfg.cost;
        let trapping = self.cfg.kind.trapping();
        let collection = self.cfg.kind.collection();
        let diff_ring = self.cfg.diff_ring;
        let me = local.node;

        let slot = self.locks.get(lock.index());
        let mut meta = sync::lock(&slot);
        if meta.bound.is_empty() {
            return;
        }
        // The global counter only allocates unique, monotone stamps; the
        // per-lock `last_seq` below is what grants consult.
        let seq = self.publish_seq.fetch_add(1, Ordering::SeqCst) + 1;
        meta.last_seq = meta.last_seq.max(seq);

        let mut changed_words = 0usize;
        let mut runs = 0usize;
        let mut compare_words = 0usize;
        let mut prev_changed: Option<(usize, usize)> = None;

        // Borrowed, not cloned: the release path must not allocate.
        let bound = &meta.bound;
        for (range_i, range) in bound.iter().enumerate() {
            let ridx = range.region.index();
            let local_region = &mut local.regions[ridx];
            let mut rs = sync::write(&self.region_state[ridx]);
            let changed_before = changed_words;
            for block in range.blocks(BlockGranularity::Word) {
                let start = block * 4;
                let end = (start + 4).min(local_region.data.len());
                let changed = match trapping {
                    Trapping::Instrumentation => {
                        let page = start / dsm_mem::PAGE_SIZE;
                        let w_in_page = block - page * (dsm_mem::PAGE_SIZE / 4);
                        local_region.pages[page].was_written(w_in_page)
                    }
                    Trapping::Twinning => {
                        if let Some(twins) = &held.small_twins {
                            let twin = &twins[range_i];
                            let toff = start.saturating_sub(range.start);
                            compare_words += 1;
                            twin.get(toff..toff + (end - start))
                                != Some(&local_region.data[start..end])
                        } else {
                            let page = start / dsm_mem::PAGE_SIZE;
                            match &local_region.pages[page].twin {
                                Some(twin) => {
                                    let span_start = page * dsm_mem::PAGE_SIZE;
                                    compare_words += 1;
                                    twin[start - span_start..end - span_start]
                                        != local_region.data[start..end]
                                }
                                None => false,
                            }
                        }
                    }
                };
                if changed {
                    rs.master[start..end].copy_from_slice(&local_region.data[start..end]);
                    rs.stamp[block] = seq;
                    changed_words += 1;
                    let contiguous =
                        matches!(prev_changed, Some((r, b)) if r == ridx && b + 1 == block);
                    if !contiguous {
                        runs += 1;
                    }
                    prev_changed = Some((ridx, block));
                }
            }
            if changed_words > changed_before {
                // Commit the publish to the region's generation while its
                // write lock is still held.
                self.publish_gen[ridx].fetch_add(1, Ordering::Release);
            }
        }

        // Reset the per-holding trapping state.
        match trapping {
            Trapping::Instrumentation => {
                for range in bound {
                    let ridx = range.region.index();
                    let region = &mut local.regions[ridx];
                    for block in range.blocks(BlockGranularity::Word) {
                        let start = block * 4;
                        let page = start / dsm_mem::PAGE_SIZE;
                        let w_in_page = block - page * (dsm_mem::PAGE_SIZE / 4);
                        if let Some(bits) = &mut region.pages[page].written {
                            if w_in_page < bits.len() {
                                bits.clear(w_in_page);
                            }
                        }
                    }
                }
            }
            Trapping::Twinning => {
                for &(ridx, page) in &held.armed_pages {
                    let lp = &mut local.regions[ridx].pages[page];
                    lp.armed = false;
                    lp.twin = None;
                }
            }
        }

        // With timestamps the comparison that stamps the changed blocks runs
        // at the release; with diffs it is deferred to the first request
        // (lazy diffing).
        if trapping == Trapping::Twinning && collection == Collection::Timestamps {
            local.clock.advance(cost.diff_compare(compare_words as u64));
        }

        if changed_words > 0 {
            local.stats.diff_words += changed_words as u64;
            if collection == Collection::Diffs {
                local.stats.diffs_created += 1;
            }
            meta.publishes.push_back(PublishRec {
                stamp: seq,
                node: me,
                encoded_size: changed_words * 4 + runs * 8,
                compare_words,
                creation_charged: collection == Collection::Timestamps
                    || trapping == Trapping::Instrumentation,
            });
            while meta.publishes.len() > diff_ring {
                meta.publishes.pop_front();
            }
        }
    }

    fn barrier_arrive(&self, _local: &mut NodeLocal) -> usize {
        // EC barriers exchange no data: consistency travels with locks.
        CTRL_MSG_BYTES
    }

    fn barrier_depart(
        &self,
        _local: &mut NodeLocal,
        _old_vector: &VectorClock,
        _released_vector: &VectorClock,
    ) -> usize {
        CTRL_MSG_BYTES
    }

    fn ensure_read_fresh(&self, _local: &mut NodeLocal, _ridx: usize, _page: usize) {
        // Under EC, data is made consistent only at lock acquires.
    }

    /// Write-trapping for EC (the bound data is writable only while the
    /// exclusive lock is held, so there is no freshness check), batched over
    /// the span's pages.
    fn trap_write_span(
        &self,
        local: &mut NodeLocal,
        ridx: usize,
        off: usize,
        len: usize,
        count: usize,
    ) {
        let cost = &self.cfg.cost;
        let trapping = self.cfg.kind.trapping();
        let region = &mut local.regions[ridx];
        let region_len = region.data.len();
        match trapping {
            Trapping::Instrumentation => {
                let factor = if self.cfg.ci_loop_optimization { 1 } else { 2 };
                local.stats.instrumented_writes += count as u64;
                local
                    .clock
                    .advance(cost.instrumented_writes(factor).times(count as u64));
                dsm_mem::for_each_page(off, len, |page, bytes| {
                    let base_word = page * (dsm_mem::PAGE_SIZE / 4);
                    region.pages[page]
                        .written_mut()
                        .set_range(bytes.start / 4 - base_word..bytes.end.div_ceil(4) - base_word);
                });
            }
            Trapping::Twinning => {
                dsm_mem::for_each_page(off, len, |page, _| {
                    let needs_twin = region.pages[page].armed && region.pages[page].twin.is_none();
                    if needs_twin {
                        let span = dsm_mem::page_range(page, region_len);
                        let words = span.len().div_ceil(4) as u64;
                        let copy = region.data[span].to_vec();
                        region.pages[page].twin = Some(copy);
                        local.stats.write_faults += 1;
                        local.stats.twins_created += 1;
                        local.stats.twin_words += words;
                        local
                            .clock
                            .advance(cost.page_fault() + cost.twin_copy(words) + cost.mprotect());
                    }
                });
            }
        }
    }

    fn read_master(&self, ridx: usize, off: usize, out: &mut [u8]) {
        let rs = sync::read(&self.region_state[ridx]);
        out.copy_from_slice(&rs.master[off..off + out.len()]);
    }

    fn final_regions(&self) -> Vec<Vec<u8>> {
        self.region_state
            .iter()
            .map(|r| sync::read(r).master.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ImplKind;
    use dsm_mem::RegionId;

    fn engine(kind: ImplKind) -> EcEngine {
        let cfg = DsmConfig::with_procs(kind, 4);
        let regions = vec![RegionDesc::new(
            RegionId::new(0),
            "r",
            8192,
            BlockGranularity::Word,
        )];
        let init = vec![vec![0u8; 8192]];
        EcEngine::new(&cfg, &regions, &init)
    }

    #[test]
    fn lock_metadata_grows_on_demand() {
        let e = engine(ImplKind::ec_time());
        let r = MemRange::new(RegionId::new(0), 0, 64);
        e.bind(LockId::new(5), vec![r]);
        assert_eq!(e.locks.len(), 6);
        let slot = e.locks.get(5);
        let meta = sync::lock(&slot);
        assert_eq!(meta.bound, vec![r]);
        assert_eq!(meta.seen_seq.len(), 4);
    }

    #[test]
    fn release_publish_bumps_the_region_generation() {
        let e = engine(ImplKind::ec_ci());
        e.bind(LockId::new(0), vec![MemRange::new(RegionId::new(0), 0, 64)]);
        let regions = e.regions.clone();
        let init = vec![vec![0u8; 8192]];
        let mut local = NodeLocal::new(dsm_sim::NodeId::new(0), 4, &regions, &init);
        let mut held = HeldLock {
            mode: LockMode::Exclusive,
            small_twins: None,
            armed_pages: Vec::new(),
        };
        e.after_acquire(&mut local, LockId::new(0), &mut held);
        local.regions[0].data[0..4].copy_from_slice(&7u32.to_le_bytes());
        e.trap_write(&mut local, 0, 0, 4);
        e.before_release(&mut local, LockId::new(0), &held);
        assert_eq!(e.publish_gen[0].load(Ordering::Relaxed), 1);
        let mut buf = [0u8; 4];
        e.read_master(0, 0, &mut buf);
        assert_eq!(buf, 7u32.to_le_bytes());
    }

    #[test]
    fn rebind_bumps_the_epoch_only_on_change() {
        let e = engine(ImplKind::ec_diff());
        let a = MemRange::new(RegionId::new(0), 0, 64);
        let b = MemRange::new(RegionId::new(0), 64, 64);
        e.bind(LockId::new(0), vec![a]);
        e.rebind(LockId::new(0), vec![a]);
        {
            let slot = e.locks.get(0);
            assert_eq!(sync::lock(&slot).rebind_epoch, 0);
        }
        e.rebind(LockId::new(0), vec![b]);
        let slot = e.locks.get(0);
        assert_eq!(sync::lock(&slot).rebind_epoch, 1);
    }
}
