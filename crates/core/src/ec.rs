//! The entry-consistency engine (Midway-style), Section 3.1 / 4 / 5 of the
//! paper.
//!
//! Shared data is bound to locks.  An exclusive acquire arms write trapping on
//! the bound data (twin copy for small objects, copy-on-write protection for
//! large ones, or nothing for compiler instrumentation); the release publishes
//! the modifications; the next acquirer receives them with the lock grant
//! message (update protocol), selected either by per-block incarnation
//! timestamps or as a chain of diffs.
//!
//! State is sharded: each lock's binding and publish ring sits behind its own
//! mutex, each region's published master copy behind its own `RwLock`, and
//! the global publish sequence is a single atomic counter — so grants and
//! releases of independent locks proceed in parallel.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

use dsm_mem::{BlockGranularity, MemRange, RegionDesc, VectorClock};

use crate::config::{Collection, DsmConfig, Trapping};
use crate::engine::{ProtocolEngine, PublishRec, CTRL_MSG_BYTES};
use crate::ids::{LockId, LockMode};
use crate::local::{HeldLock, NodeLocal};
use crate::recovery::UndoRec;
use crate::sync::{self, SlotTable};

/// Per-lock entry-consistency state.
#[derive(Debug, Default)]
struct EcLockState {
    /// The memory ranges bound to the lock (possibly non-contiguous).
    bound: Vec<MemRange>,
    /// Incremented whenever the binding changes; a node whose `seen_epoch`
    /// lags must conservatively receive all bound data (Section 7.1,
    /// "Rebinding").
    rebind_epoch: u64,
    /// Lock incarnation number: incremented on every remote grant.
    incarnation: u64,
    /// Ring of recent publish records for diff-mode traffic accounting.
    publishes: VecDeque<PublishRec>,
    /// Highest publish sequence this lock's own chain has stamped.  Grants
    /// snapshot *this* (not the global counter): both publish and grant hold
    /// this lock's mutex, so every stamp `<= last_seq` is guaranteed visible,
    /// whereas a concurrent publish under another lock may have drawn a lower
    /// global sequence whose stamps have not landed yet.
    last_seq: u64,
    /// Per node: the publish sequence this node has applied through for this
    /// lock's data.
    seen_seq: Vec<u64>,
    /// Per node: the rebind epoch this node has seen.
    seen_epoch: Vec<u64>,
}

/// Per-region entry-consistency state: the published master copy and
/// per-word-block publish-sequence stamps.
#[derive(Debug)]
struct EcRegionState {
    /// Latest published value of every byte.
    master: Vec<u8>,
    /// Per word block: the publish sequence number that last wrote it
    /// (0 = never published).
    stamp: Vec<u64>,
}

/// The entry-consistency [`ProtocolEngine`].
pub(crate) struct EcEngine {
    cfg: DsmConfig,
    regions: Vec<RegionDesc>,
    /// Published master copies, one `RwLock` per region.
    region_state: Vec<RwLock<EcRegionState>>,
    /// Per-region monotonic publish generation, bumped (under the region's
    /// write lock) whenever a release publishes modifications to the region.
    /// EC needs no freshness checks — consistency travels with lock grants —
    /// so this is bookkeeping symmetry with `LrcEngine`: it gives region
    /// observers (debug output, future engines layered on the master copies)
    /// the same cheap "has anything been published?" signal.
    publish_gen: Vec<AtomicU64>,
    /// Per-lock metadata, one mutex per lock, created on demand.
    locks: SlotTable<Mutex<EcLockState>>,
    /// Global publish sequence counter (orders publishes across all locks).
    publish_seq: AtomicU64,
}

impl std::fmt::Debug for EcEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EcEngine")
            .field("regions", &self.regions.len())
            .field("locks", &self.locks.len())
            .field("publish_seq", &self.publish_seq.load(Ordering::Relaxed))
            .finish()
    }
}

/// Running write-collection state shared by the trapping arms of
/// [`EcEngine::before_release`]: the logical counts the simulated costs are
/// charged from, plus the cross-range run bookkeeping.
struct Collect {
    changed_words: usize,
    runs: usize,
    compare_words: usize,
    /// Last published block as `(region, block)` — a following publish of
    /// `block + 1` in the same region continues the current run.
    prev: Option<(usize, usize)>,
    /// Whether to record byte runs for a transport frame.
    track: bool,
    /// Changed-byte runs of the range being collected, region-absolute and
    /// coalesced (adjacent block publishes extend the last run).  Drained
    /// into a frame after each range, so it never spans two regions.
    wire_runs: Vec<(u32, u32)>,
}

impl Collect {
    /// `wire_runs` is the endpoint's reusable run table when a transport is
    /// attached (the caller hands it back afterwards), `None` otherwise.
    fn new(wire_runs: Option<Vec<(u32, u32)>>) -> Self {
        Collect {
            changed_words: 0,
            runs: 0,
            compare_words: 0,
            prev: None,
            track: wire_runs.is_some(),
            wire_runs: wire_runs.unwrap_or_default(),
        }
    }

    /// Publishes the changed blocks `first..last` of region `ridx`: copies
    /// the new bytes from `data` (the whole region) into the master, stamps
    /// the blocks with `seq`, and maintains the changed-word and run counts.
    fn publish(
        &mut self,
        rsd: &mut EcRegionState,
        data: &[u8],
        seq: u64,
        ridx: usize,
        first: usize,
        last: usize,
    ) {
        let start = first * 4;
        let end = (last * 4).min(data.len());
        rsd.master[start..end].copy_from_slice(&data[start..end]);
        rsd.stamp[first..last].fill(seq);
        self.changed_words += last - first;
        let contiguous = matches!(self.prev, Some((r, b)) if r == ridx && b + 1 == first);
        if !contiguous {
            self.runs += 1;
        }
        self.prev = Some((ridx, last - 1));
        if self.track {
            let (s, l) = (start as u32, (end - start) as u32);
            match self.wire_runs.last_mut() {
                Some(prev_run) if prev_run.0 + prev_run.1 == s => prev_run.1 += l,
                _ => self.wire_runs.push((s, l)),
            }
        }
    }
}

impl EcEngine {
    /// Builds the engine for a run.
    pub fn new(cfg: &DsmConfig, regions: &[RegionDesc], init: &[Vec<u8>]) -> Self {
        let nprocs = cfg.nprocs;
        let region_state = regions
            .iter()
            .zip(init.iter())
            .map(|(d, init)| {
                RwLock::new(EcRegionState {
                    master: init.clone(),
                    stamp: vec![0; d.len.div_ceil(4)],
                })
            })
            .collect();
        EcEngine {
            cfg: cfg.clone(),
            regions: regions.to_vec(),
            region_state,
            publish_gen: regions.iter().map(|_| AtomicU64::new(0)).collect(),
            locks: SlotTable::new(move |_| {
                Mutex::new(EcLockState {
                    seen_seq: vec![0; nprocs],
                    seen_epoch: vec![0; nprocs],
                    ..EcLockState::default()
                })
            }),
            publish_seq: AtomicU64::new(0),
        }
    }
}

impl ProtocolEngine for EcEngine {
    fn bind(&self, lock: LockId, ranges: Vec<MemRange>) {
        let slot = self.locks.get(lock.index());
        sync::lock(&slot).bound = ranges;
    }

    fn rebind(&self, lock: LockId, ranges: Vec<MemRange>) {
        let slot = self.locks.get(lock.index());
        let mut meta = sync::lock(&slot);
        if meta.bound != ranges {
            meta.bound = ranges;
            meta.rebind_epoch += 1;
        }
    }

    fn validate_acquire(&self, _lock: LockId, _mode: LockMode) {
        // EC provides both exclusive and read-only locks.
    }

    /// Makes the data bound to `lock` consistent at this node (the payload of
    /// the lock grant message under the update protocol).  Returns the grant
    /// payload size in bytes.
    fn remote_grant(&self, local: &mut NodeLocal, lock: LockId) -> usize {
        let cost = &self.cfg.cost;
        let trapping = self.cfg.kind.trapping();
        let collection = self.cfg.kind.collection();
        let me = local.node.index();

        let slot = self.locks.get(lock.index());
        let mut meta = sync::lock(&slot);
        meta.incarnation += 1;
        // Everything this lock's chain has published is visible (same mutex
        // ordered the publish), so its own high-water mark is the safe
        // "applied through" value to record below.
        let publish_seq = meta.last_seq;
        let seen = meta.seen_seq[me];
        let prev_seen_epoch = meta.seen_epoch[me];
        let rebound = prev_seen_epoch != meta.rebind_epoch;
        let bound_bytes: usize = meta.bound.iter().map(|r| r.len).sum();

        let mut applied_words = 0usize;
        let mut ts_runs = 0usize;
        let mut scan_blocks = 0u64;
        let mut prev: Option<(usize, usize, u64)> = None;

        // The binding is borrowed, not cloned: the grant path runs once per
        // remote acquire and must not allocate.  The stamp scan walks
        // maximal same-stamp runs — the apply decision is constant within a
        // run, so each run costs one decision and (when applied) one copy —
        // with `prev` carrying the run bookkeeping across range and region
        // boundaries exactly as the word-by-word walk did.
        for range in &meta.bound {
            let ridx = range.region.index();
            let rs = sync::read(&self.region_state[ridx]);
            let local_data = &mut local.regions[ridx].data;
            let gran_div = if trapping == Trapping::Instrumentation {
                self.regions[ridx].granularity.bytes() / 4
            } else {
                1
            };
            let blocks = range.blocks(BlockGranularity::Word);
            scan_blocks += (blocks.len() / gran_div.max(1)) as u64;
            let stamps = &rs.stamp[blocks.clone()];
            let mut i = 0usize;
            while i < stamps.len() {
                let stamp = stamps[i];
                if stamp == 0 {
                    prev = None;
                    i += 1;
                    continue;
                }
                let run_start = i;
                i += 1;
                while i < stamps.len() && stamps[i] == stamp {
                    i += 1;
                }
                let first = blocks.start + run_start;
                let last = blocks.start + i;
                if rebound || stamp > seen {
                    let start = first * 4;
                    let end = (last * 4).min(local_data.len());
                    local_data[start..end].copy_from_slice(&rs.master[start..end]);
                    applied_words += i - run_start;
                    let contiguous = matches!(prev, Some((r, b, s)) if r == ridx && b + 1 == first && s == stamp);
                    if !contiguous {
                        ts_runs += 1;
                    }
                    prev = Some((ridx, last - 1, stamp));
                } else {
                    prev = None;
                }
            }
        }

        local.stats.words_applied += applied_words as u64;
        local.clock.advance(cost.apply_words(applied_words as u64));

        let payload = match collection {
            Collection::Timestamps => {
                // The responder scans the timestamps of every block bound to
                // the lock on every request.
                local.stats.ts_blocks_scanned += scan_blocks;
                local.clock.advance(cost.ts_scan(scan_blocks));
                if rebound {
                    bound_bytes + 12
                } else {
                    applied_words * 4 + ts_runs * (4 + 6)
                }
            }
            Collection::Diffs => {
                let mut bytes = 0usize;
                let mut count = 0u64;
                let mut creation_words = 0u64;
                for rec in meta.publishes.iter_mut().filter(|r| r.stamp > seen) {
                    bytes += rec.encoded_size;
                    count += 1;
                    if !rec.creation_charged {
                        rec.creation_charged = true;
                        creation_words += rec.compare_words as u64;
                        let stamp = rec.stamp;
                        local.undo(|| UndoRec::EcDiffCharge {
                            lock: lock.index(),
                            stamp,
                        });
                    }
                }
                local.stats.diffs_applied += count;
                local.clock.advance(cost.diff_compare(creation_words));
                let bytes = bytes.max(applied_words * 4);
                if rebound {
                    bound_bytes.max(bytes)
                } else {
                    bytes
                }
            }
        };

        local.undo(|| UndoRec::EcGrant {
            lock: lock.index(),
            prev_seen_seq: seen,
            prev_seen_epoch,
        });
        meta.seen_seq[me] = publish_seq;
        meta.seen_epoch[me] = meta.rebind_epoch;
        payload
    }

    /// Arms write trapping for the bound data of an exclusive acquire.
    fn after_acquire(&self, local: &mut NodeLocal, lock: LockId, held: &mut HeldLock) {
        if held.mode != LockMode::Exclusive || self.cfg.kind.trapping() != Trapping::Twinning {
            return;
        }
        let cost = &self.cfg.cost;
        let small_limit = self.cfg.ec_small_object_limit;
        // Arming touches only this node's private state, so the binding can
        // be borrowed under the lock's mutex (no clone): no other lock of
        // the ordering hierarchy is taken below.
        let slot = self.locks.get(lock.index());
        let meta = sync::lock(&slot);
        let bound = &meta.bound;
        let total: usize = bound.iter().map(|r| r.len).sum();
        if total == 0 {
            return;
        }
        if total <= small_limit {
            // Small object: copy it eagerly at acquire, avoiding the
            // protection fault the Midway VM implementation takes.  All the
            // bound ranges go into one pooled buffer, concatenated in
            // binding order (release recomputes the layout from the same
            // binding), so the acquire path allocates nothing in steady
            // state.
            let mut twins = local.pool.take_empty(total);
            for range in bound {
                let data = &local.regions[range.region.index()].data;
                twins.extend_from_slice(&data[range.start..range.end()]);
            }
            let words = (total / 4) as u64;
            local.stats.twins_created += 1;
            local.stats.twin_words += words;
            local.clock.advance(cost.twin_copy(words));
            held.small_twins = Some(twins);
        } else {
            // Large object: write-protect its pages; the first write to each
            // page faults and creates a per-page twin.
            let mut mprotects = 0u64;
            for range in bound {
                let ridx = range.region.index();
                for page in range.pages() {
                    let lp = &mut local.regions[ridx].pages[page];
                    if !lp.armed {
                        lp.armed = true;
                        lp.twin = None;
                        held.armed_pages.push((ridx, page));
                        mprotects += 1;
                    }
                }
            }
            local.clock.advance(cost.mprotect().times(mprotects));
        }
    }

    /// Publishes the modifications made to the bound data while the exclusive
    /// lock was held (write collection on the releaser side).
    fn before_release(&self, local: &mut NodeLocal, lock: LockId, held: &mut HeldLock) {
        if held.mode != LockMode::Exclusive {
            return;
        }
        let cost = &self.cfg.cost;
        let trapping = self.cfg.kind.trapping();
        let collection = self.cfg.kind.collection();
        let diff_ring = self.cfg.diff_ring;
        let me = local.node;

        let slot = self.locks.get(lock.index());
        let mut meta = sync::lock(&slot);
        if meta.bound.is_empty() {
            if let Some(buf) = held.small_twins.take() {
                local.pool.put(buf);
            }
            return;
        }
        // The global counter only allocates unique, monotone stamps; the
        // per-lock `last_seq` below is what grants consult.
        let seq = self.publish_seq.fetch_add(1, Ordering::SeqCst) + 1;
        meta.last_seq = meta.last_seq.max(seq);

        // Transport endpoint, taken out so `local` stays borrowable; put
        // back at the end (there are no returns between here and there).
        // None under the simulated backend, keeping the path branch-only.
        let mut wire = local.wire.take();
        let mut col = Collect::new(
            wire.as_deref_mut()
                .map(|w| std::mem::take(&mut w.scratch_runs)),
        );
        // Offset of the current range's twin in the concatenated small-twin
        // buffer (ranges were copied in binding order at acquire).
        let mut small_cum = 0usize;

        // Borrowed, not cloned: the release path must not allocate.
        let bound = &meta.bound;
        for range in bound.iter() {
            let ridx = range.region.index();
            // Armed fault-plan target only: capture the range's stamps and
            // master bytes before the publish overwrites them, so a rollback
            // can restore the exact pre-release state (the closure never
            // runs otherwise).
            local.undo(|| {
                let rs = sync::read(&self.region_state[ridx]);
                let blocks = range.blocks(BlockGranularity::Word);
                let end = (blocks.end * 4).min(rs.master.len());
                UndoRec::EcRange {
                    ridx,
                    start_block: blocks.start,
                    stamps: rs.stamp[blocks.clone()].into(),
                    master: rs.master[blocks.start * 4..end].into(),
                }
            });
            let crate::local::LocalRegion { data, pages } = &mut local.regions[ridx];
            let data = &data[..];
            let mut rs = sync::write(&self.region_state[ridx]);
            let rsd = &mut *rs;
            let changed_before = col.changed_words;
            match trapping {
                Trapping::Instrumentation => {
                    for block in range.blocks(BlockGranularity::Word) {
                        let page = block * 4 / dsm_mem::PAGE_SIZE;
                        let w_in_page = block - page * (dsm_mem::PAGE_SIZE / 4);
                        if pages[page].was_written(w_in_page) {
                            col.publish(rsd, data, seq, ridx, block, block + 1);
                        }
                    }
                }
                Trapping::Twinning if held.small_twins.is_some() => {
                    let twins = held.small_twins.as_deref().expect("checked above");
                    let twin = &twins[small_cum..small_cum + range.len];
                    small_cum += range.len;
                    for block in range.blocks(BlockGranularity::Word) {
                        let start = block * 4;
                        let end = (start + 4).min(data.len());
                        let toff = start.saturating_sub(range.start);
                        col.compare_words += 1;
                        if twin.get(toff..toff + (end - start)) != Some(&data[start..end]) {
                            col.publish(rsd, data, seq, ridx, block, block + 1);
                        }
                    }
                }
                Trapping::Twinning => {
                    // Large object: pages without a twin were never written
                    // under this holding and are skipped wholesale (as the
                    // word walk's `None => unchanged` arm did, without
                    // charging comparisons); pages with a twin are compared
                    // through the chunked run scan, publishing each maximal
                    // changed run with one copy and one stamp fill.  Run
                    // bookkeeping (`Collect::prev`) still crosses page and
                    // range boundaries by block adjacency.
                    let blocks = range.blocks(BlockGranularity::Word);
                    for page in range.pages() {
                        let Some(twin) = &pages[page].twin else {
                            continue;
                        };
                        let span = dsm_mem::page_range(page, data.len());
                        let pb = span.start / 4;
                        let page_words = span.len().div_ceil(4);
                        let w0 = blocks.start.max(pb) - pb;
                        let w1 = blocks.end.min(pb + page_words) - pb;
                        if w0 >= w1 {
                            continue;
                        }
                        col.compare_words += w1 - w0;
                        let cur = &data[span.clone()];
                        dsm_mem::changed_word_runs(twin, cur, w0..w1, |s, e| {
                            col.publish(rsd, data, seq, ridx, pb + s, pb + e);
                        });
                    }
                }
            }
            if col.changed_words > changed_before {
                // Commit the publish to the region's generation while its
                // write lock is still held.  As in the LRC engine, the
                // generation doubles as the frame's per-region sequence
                // number: bumped once per range-with-changes, under the
                // region's write lock.
                let gen = self.publish_gen[ridx].fetch_add(1, Ordering::Release) + 1;
                if let Some(w) = wire.as_deref_mut() {
                    // EC has no vector time: frames carry an empty clock.
                    w.publish(ridx as u32, gen, &[], &col.wire_runs, data);
                    col.wire_runs.clear();
                }
            }
        }

        // Reset the per-holding trapping state.
        match trapping {
            Trapping::Instrumentation => {
                for range in bound {
                    let ridx = range.region.index();
                    let region = &mut local.regions[ridx];
                    for block in range.blocks(BlockGranularity::Word) {
                        let start = block * 4;
                        let page = start / dsm_mem::PAGE_SIZE;
                        let w_in_page = block - page * (dsm_mem::PAGE_SIZE / 4);
                        if let Some(bits) = &mut region.pages[page].written {
                            if w_in_page < bits.len() {
                                bits.clear(w_in_page);
                            }
                        }
                    }
                }
            }
            Trapping::Twinning => {
                for &(ridx, page) in &held.armed_pages {
                    let lp = &mut local.regions[ridx].pages[page];
                    lp.armed = false;
                    if let Some(twin) = lp.twin.take() {
                        local.pool.put(twin);
                    }
                }
                if let Some(buf) = held.small_twins.take() {
                    local.pool.put(buf);
                }
            }
        }

        // With timestamps the comparison that stamps the changed blocks runs
        // at the release; with diffs it is deferred to the first request
        // (lazy diffing).
        if trapping == Trapping::Twinning && collection == Collection::Timestamps {
            local
                .clock
                .advance(cost.diff_compare(col.compare_words as u64));
        }

        if col.changed_words > 0 {
            local.stats.diff_words += col.changed_words as u64;
            if collection == Collection::Diffs {
                local.stats.diffs_created += 1;
            }
            meta.publishes.push_back(PublishRec {
                stamp: seq,
                node: me,
                encoded_size: col.changed_words * 4 + col.runs * 8,
                compare_words: col.compare_words,
                creation_charged: collection == Collection::Timestamps
                    || trapping == Trapping::Instrumentation,
            });
            local.undo(|| UndoRec::EcPublish {
                lock: lock.index(),
                stamp: seq,
            });
            while meta.publishes.len() > diff_ring {
                meta.publishes.pop_front();
            }
        }

        // Hand the run table back to the endpoint and the endpoint back to
        // the node.  The release's frames stay in the endpoint's epoch batch:
        // they move at the next barrier arrival (or at the transport's final
        // flush), so a lock-churning epoch pays one send per peer instead of
        // one per release.  Replica correctness does not depend on when the
        // batch goes out — frames are totally ordered per region by their
        // `publish_gen` sequence and replicas reorder on arrival — and the
        // socket backend still flushes early if a pathological epoch outgrows
        // its batch buffer.
        if let Some(w) = wire.as_deref_mut() {
            let mut runs = std::mem::take(&mut col.wire_runs);
            runs.clear();
            w.scratch_runs = runs;
        }
        local.wire = wire;
    }

    fn barrier_arrive(&self, local: &mut NodeLocal) -> usize {
        // EC barriers exchange no data — consistency travels with locks —
        // but they are the wire's epoch boundary: every grant frame the
        // epoch's releases buffered moves here as one batch per peer, the
        // same begin/finish batching the LRC interval flush gets.
        if let Some(w) = local.wire.as_deref_mut() {
            w.flush();
        }
        CTRL_MSG_BYTES
    }

    fn barrier_depart(
        &self,
        _local: &mut NodeLocal,
        _old_vector: &VectorClock,
        _released_vector: &VectorClock,
    ) -> usize {
        CTRL_MSG_BYTES
    }

    fn ensure_read_fresh(&self, _local: &mut NodeLocal, _ridx: usize, _page: usize) {
        // Under EC, data is made consistent only at lock acquires.
    }

    /// Write-trapping for EC (the bound data is writable only while the
    /// exclusive lock is held, so there is no freshness check), batched over
    /// the span's pages.
    fn trap_write_span(
        &self,
        local: &mut NodeLocal,
        ridx: usize,
        off: usize,
        len: usize,
        count: usize,
    ) {
        let cost = &self.cfg.cost;
        let trapping = self.cfg.kind.trapping();
        let region = &mut local.regions[ridx];
        let region_len = region.data.len();
        match trapping {
            Trapping::Instrumentation => {
                let factor = if self.cfg.ci_loop_optimization { 1 } else { 2 };
                local.stats.instrumented_writes += count as u64;
                local
                    .clock
                    .advance(cost.instrumented_writes(factor).times(count as u64));
                dsm_mem::for_each_page(off, len, |page, bytes| {
                    let base_word = page * (dsm_mem::PAGE_SIZE / 4);
                    region.pages[page]
                        .written_mut()
                        .set_range(bytes.start / 4 - base_word..bytes.end.div_ceil(4) - base_word);
                });
            }
            Trapping::Twinning => {
                dsm_mem::for_each_page(off, len, |page, _| {
                    let needs_twin = region.pages[page].armed && region.pages[page].twin.is_none();
                    if needs_twin {
                        let span = dsm_mem::page_range(page, region_len);
                        let words = span.len().div_ceil(4) as u64;
                        let copy = local.pool.take_copy(&region.data[span]);
                        region.pages[page].twin = Some(copy);
                        local.stats.write_faults += 1;
                        local.stats.twins_created += 1;
                        local.stats.twin_words += words;
                        local
                            .clock
                            .advance(cost.page_fault() + cost.twin_copy(words) + cost.mprotect());
                    }
                });
            }
        }
    }

    fn read_master(&self, ridx: usize, off: usize, out: &mut [u8]) {
        let rs = sync::read(&self.region_state[ridx]);
        out.copy_from_slice(&rs.master[off..off + out.len()]);
    }

    fn final_regions(&self) -> Vec<Vec<u8>> {
        self.region_state
            .iter()
            .map(|r| sync::read(r).master.clone())
            .collect()
    }

    /// Unwinds the crash epoch's effects on the per-lock metadata — grant
    /// watermarks and incarnations, pushed publish records and first-miss
    /// diff charges — and on the region state: `EcRange` restores the
    /// per-word stamps and master bytes a retracted publish overwrote, so a
    /// replayed grant scan sees exactly the stamps (in particular the
    /// never-published zeros) the original run saw.
    fn rollback_undo(&self, node: dsm_sim::NodeId, undo: &[UndoRec]) {
        let me = node.index();
        for rec in undo.iter().rev() {
            match rec {
                UndoRec::EcGrant {
                    lock,
                    prev_seen_seq,
                    prev_seen_epoch,
                } => {
                    let slot = self.locks.get(*lock);
                    let mut meta = sync::lock(&slot);
                    meta.seen_seq[me] = *prev_seen_seq;
                    meta.seen_epoch[me] = *prev_seen_epoch;
                    meta.incarnation = meta.incarnation.saturating_sub(1);
                }
                UndoRec::EcPublish { lock, stamp } => {
                    let slot = self.locks.get(*lock);
                    let mut meta = sync::lock(&slot);
                    meta.publishes.retain(|r| r.stamp != *stamp);
                }
                UndoRec::EcDiffCharge { lock, stamp } => {
                    let slot = self.locks.get(*lock);
                    let mut meta = sync::lock(&slot);
                    if let Some(r) = meta.publishes.iter_mut().find(|r| r.stamp == *stamp) {
                        r.creation_charged = false;
                    }
                }
                UndoRec::EcRange {
                    ridx,
                    start_block,
                    stamps,
                    master,
                } => {
                    let mut rs = sync::write(&self.region_state[*ridx]);
                    rs.stamp[*start_block..*start_block + stamps.len()].copy_from_slice(stamps);
                    let start = *start_block * 4;
                    rs.master[start..start + master.len()].copy_from_slice(master);
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ImplKind;
    use dsm_mem::RegionId;

    fn engine(kind: ImplKind) -> EcEngine {
        let cfg = DsmConfig::with_procs(kind, 4);
        let regions = vec![RegionDesc::new(
            RegionId::new(0),
            "r",
            8192,
            BlockGranularity::Word,
        )];
        let init = vec![vec![0u8; 8192]];
        EcEngine::new(&cfg, &regions, &init)
    }

    #[test]
    fn lock_metadata_grows_on_demand() {
        let e = engine(ImplKind::ec_time());
        let r = MemRange::new(RegionId::new(0), 0, 64);
        e.bind(LockId::new(5), vec![r]);
        assert_eq!(e.locks.len(), 6);
        let slot = e.locks.get(5);
        let meta = sync::lock(&slot);
        assert_eq!(meta.bound, vec![r]);
        assert_eq!(meta.seen_seq.len(), 4);
    }

    #[test]
    fn release_publish_bumps_the_region_generation() {
        let e = engine(ImplKind::ec_ci());
        e.bind(LockId::new(0), vec![MemRange::new(RegionId::new(0), 0, 64)]);
        let regions = e.regions.clone();
        let init = vec![vec![0u8; 8192]];
        let mut local = NodeLocal::new(dsm_sim::NodeId::new(0), 4, &regions, &init);
        let mut held = HeldLock {
            mode: LockMode::Exclusive,
            small_twins: None,
            armed_pages: Vec::new(),
        };
        e.after_acquire(&mut local, LockId::new(0), &mut held);
        local.regions[0].data[0..4].copy_from_slice(&7u32.to_le_bytes());
        e.trap_write(&mut local, 0, 0, 4);
        e.before_release(&mut local, LockId::new(0), &mut held);
        assert_eq!(e.publish_gen[0].load(Ordering::Relaxed), 1);
        let mut buf = [0u8; 4];
        e.read_master(0, 0, &mut buf);
        assert_eq!(buf, 7u32.to_le_bytes());
    }

    #[test]
    fn rebind_bumps_the_epoch_only_on_change() {
        let e = engine(ImplKind::ec_diff());
        let a = MemRange::new(RegionId::new(0), 0, 64);
        let b = MemRange::new(RegionId::new(0), 64, 64);
        e.bind(LockId::new(0), vec![a]);
        e.rebind(LockId::new(0), vec![a]);
        {
            let slot = e.locks.get(0);
            assert_eq!(sync::lock(&slot).rebind_epoch, 0);
        }
        e.rebind(LockId::new(0), vec![b]);
        let slot = e.locks.get(0);
        assert_eq!(sync::lock(&slot).rebind_epoch, 1);
    }
}
