//! The typed shared-data API: `SharedArray<T>` handles, RAII lock guards,
//! scoped array views, and first-class EC bindings.
//!
//! This layer is pure ergonomics over the raw [`ProcessContext`] accessors —
//! every typed operation lowers onto exactly one raw call (`read`, `write`,
//! `read_slice`, `write_slice`, `acquire`, `release`, ...), so the simulated
//! costs, statistics and traffic of a typed program are **byte-identical** to
//! its raw-API equivalent (`tests/tests/typed_api_equivalence.rs` pins this
//! against goldens blessed before the layer existed).
//!
//! The paper's central programmability finding is that entry consistency
//! makes the programmer associate data with synchronization objects while
//! lazy release consistency needs no annotations (Section 3).  The typed API
//! makes that burden visible and checkable instead of burying it in
//! turbofish calls and scattered `bind` invocations:
//!
//! * [`SharedArray<T>`] / [`SharedScalar<T>`] carry their element type, so
//!   access sites infer `T` from the handle instead of spelling
//!   `read::<f64>(region, i)`.
//! * [`LockGuard`]s from [`ProcessContext::lock`] release on drop and gate
//!   mutable views on the acquisition mode — a read-only EC lock cannot hand
//!   out an [`ArrayViewMut`].
//! * [`Binding<T>`] from [`Dsm::alloc_bound`] constructs the lock→data
//!   association of Section 3 in one place (a no-op under LRC, so the same
//!   setup code serves every model).
//! * [`ArrayView`] / [`ArrayViewMut`] bulk operations lower onto the
//!   allocation-free span hot path ([`ProcessContext::read_slice`] /
//!   [`ProcessContext::write_slice`]).
//!
//! The raw `Region`-based accessors remain available as the documented
//! low-level escape hatch — programs with dynamic lock sets (e.g. 3D-FFT's
//! per-(owner, reader) chunk locks) interleave raw `acquire`/`release` with
//! typed data access freely, and equivalence suites use the raw API to pin
//! byte-identity across the two surfaces.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};

use dsm_mem::{BlockGranularity, MemRange};

use crate::context::ProcessContext;
use crate::ids::{LockId, LockMode};
use crate::runtime::{Dsm, Region, RunResult};
use crate::scalar::Scalar;

// ---------------------------------------------------------------------------
// Typed handles
// ---------------------------------------------------------------------------

/// `Debug` body shared by the typed handles (they differ only in the struct
/// name and all delegate to the inner region).
macro_rules! fmt_debug_handle {
    ($name:literal) => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct($name)
                .field("region", &self.region())
                .field("elem", &std::any::type_name::<T>())
                .finish()
        }
    };
}

/// Typed handle to a shared region holding elements of type `T`.
///
/// Returned by [`Dsm::alloc_array`]; carries the element type and the
/// region's trapping granularity so access sites never repeat them.  Handles
/// are plain `Copy` values (no data is stored inside), freely shared with
/// worker closures.
///
/// ```
/// use dsm_core::{Dsm, DsmConfig, ImplKind, BarrierId, BlockGranularity};
///
/// let mut dsm = Dsm::new(DsmConfig::with_procs(ImplKind::lrc_diff(), 2))?;
/// let data = dsm.alloc_array::<f64>("data", 16, BlockGranularity::DoubleWord);
/// let result = dsm.run(|ctx| {
///     if ctx.node() == 0 {
///         ctx.set(data, 3, 2.5); // element type inferred from the handle
///     }
///     ctx.barrier(BarrierId::new(0));
/// });
/// assert_eq!(result.final_at(data, 3), 2.5);
/// # Ok::<(), dsm_core::DsmError>(())
/// ```
pub struct SharedArray<T: Scalar> {
    region: Region,
    _elem: PhantomData<fn() -> T>,
}

impl<T: Scalar> SharedArray<T> {
    /// Types a raw region handle as an array of `T`.
    ///
    /// This is the escape-hatch constructor for code that allocated with the
    /// raw [`Dsm::alloc`]; [`Dsm::alloc_array`] is the normal way to obtain a
    /// typed handle.
    ///
    /// # Panics
    ///
    /// Panics if the region's byte length is not a multiple of `T`'s size.
    pub fn from_region(region: Region) -> Self {
        assert!(
            region.len() % T::SIZE == 0,
            "region of {} bytes does not hold whole elements of {} bytes",
            region.len(),
            T::SIZE
        );
        SharedArray {
            region,
            _elem: PhantomData,
        }
    }

    /// The underlying raw region handle (the escape hatch back to the
    /// untyped API).
    pub fn region(&self) -> Region {
        self.region
    }

    /// Number of elements the array holds.
    pub fn len(&self) -> usize {
        self.region.len() / T::SIZE
    }

    /// True if the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.region.len() == 0
    }

    /// The block granularity writes are trapped at under compiler
    /// instrumentation.
    pub fn granularity(&self) -> BlockGranularity {
        self.region.granularity()
    }

    /// A [`MemRange`] covering elements `start..start + count`, for binding
    /// part of the array to an EC lock ([`Dsm::bind`]).
    pub fn range(&self, start: usize, count: usize) -> MemRange {
        self.region.range_of::<T>(start, count)
    }

    /// A [`MemRange`] covering the whole array.
    pub fn whole(&self) -> MemRange {
        self.region.whole()
    }
}

impl<T: Scalar> Clone for SharedArray<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Scalar> Copy for SharedArray<T> {}

impl<T: Scalar> PartialEq for SharedArray<T> {
    fn eq(&self, other: &Self) -> bool {
        self.region == other.region
    }
}
impl<T: Scalar> Eq for SharedArray<T> {}

impl<T: Scalar> fmt::Debug for SharedArray<T> {
    fmt_debug_handle!("SharedArray");
}

impl<T: Scalar> From<SharedArray<T>> for Region {
    fn from(arr: SharedArray<T>) -> Region {
        arr.region
    }
}

/// Typed handle to a single shared value of type `T`.
///
/// Returned by [`Dsm::alloc_scalar`]; accessed with [`ProcessContext::load`]
/// / [`ProcessContext::store`] / [`ProcessContext::fetch_update`] and read
/// out with [`RunResult::final_scalar`].
pub struct SharedScalar<T: Scalar> {
    array: SharedArray<T>,
}

impl<T: Scalar> SharedScalar<T> {
    pub(crate) fn new(array: SharedArray<T>) -> Self {
        SharedScalar { array }
    }

    /// The scalar viewed as a one-element array.
    pub fn array(&self) -> SharedArray<T> {
        self.array
    }

    /// The underlying raw region handle.
    pub fn region(&self) -> Region {
        self.array.region()
    }
}

impl<T: Scalar> Clone for SharedScalar<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Scalar> Copy for SharedScalar<T> {}

impl<T: Scalar> PartialEq for SharedScalar<T> {
    fn eq(&self, other: &Self) -> bool {
        self.array == other.array
    }
}
impl<T: Scalar> Eq for SharedScalar<T> {}

impl<T: Scalar> fmt::Debug for SharedScalar<T> {
    fmt_debug_handle!("SharedScalar");
}

impl<T: Scalar> From<SharedScalar<T>> for SharedArray<T> {
    fn from(s: SharedScalar<T>) -> SharedArray<T> {
        s.array
    }
}

/// A lock→data association under entry consistency: the typed array allocated
/// by [`Dsm::alloc_bound`] together with the lock its data is bound to.
///
/// Under EC the bound data is made consistent at each acquire of the lock
/// (Section 3 of the paper); under LRC the binding is a no-op, so the same
/// setup code serves every implementation.  A `Binding<T>` converts into its
/// [`SharedArray<T>`] wherever a typed handle is expected, so access sites
/// read identically for bound and unbound data.
pub struct Binding<T: Scalar> {
    lock: LockId,
    array: SharedArray<T>,
}

impl<T: Scalar> Binding<T> {
    pub(crate) fn new(lock: LockId, array: SharedArray<T>) -> Self {
        Binding { lock, array }
    }

    /// The lock the data is bound to.
    pub fn lock(&self) -> LockId {
        self.lock
    }

    /// The bound array.
    pub fn array(&self) -> SharedArray<T> {
        self.array
    }
}

impl<T: Scalar> Clone for Binding<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Scalar> Copy for Binding<T> {}

impl<T: Scalar> fmt::Debug for Binding<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Binding")
            .field("lock", &self.lock)
            .field("array", &self.array)
            .finish()
    }
}

impl<T: Scalar> From<Binding<T>> for SharedArray<T> {
    fn from(b: Binding<T>) -> SharedArray<T> {
        b.array
    }
}

// ---------------------------------------------------------------------------
// RAII lock guards
// ---------------------------------------------------------------------------

/// RAII guard for a lock acquired with [`ProcessContext::lock`] (or
/// conditionally with [`ProcessContext::lock_if`]): the lock is released when
/// the guard is dropped.
///
/// The guard mutably borrows the context and dereferences to it, so all
/// shared access while the lock is held flows *through* the guard — and a
/// nested acquire (`guard.lock(inner, mode)`) borrows the outer guard,
/// letting the borrow checker enforce LIFO release order.  Entitlement is
/// checked at the view layer: [`LockGuard::view_mut`] panics if the guard
/// holds a read-only lock, mirroring EC's rule that only an exclusive holder
/// may modify bound data.
///
/// Releasing charges exactly what a raw [`ProcessContext::release`] charges,
/// at the point the guard drops; use [`LockGuard::unlock`] to release at a
/// precise program point (or immediately, for EC's read-lock "pulse" that
/// fetches bound data: `ctx.lock(l, LockMode::ReadOnly).unlock()`).
#[must_use = "the lock is released when the guard drops; an unused guard releases immediately"]
pub struct LockGuard<'c, 'a> {
    ctx: &'c mut ProcessContext<'a>,
    lock: Option<LockId>,
    mode: LockMode,
}

impl<'c, 'a> LockGuard<'c, 'a> {
    /// The lock this guard holds, or `None` for a [`ProcessContext::lock_if`]
    /// guard whose condition was false.
    pub fn lock_id(&self) -> Option<LockId> {
        self.lock
    }

    /// The mode the lock was requested in.
    pub fn mode(&self) -> LockMode {
        self.mode
    }

    /// True if this guard actually holds a lock.
    pub fn holds(&self) -> bool {
        self.lock.is_some()
    }

    /// Releases the lock now (equivalent to dropping the guard, but reads as
    /// an action at the release point).
    pub fn unlock(self) {}

    /// A read-only typed view of `arr`, scoped to this guard's borrow.
    ///
    /// Under EC the view should cover data bound to the held lock — that is
    /// what the acquire made consistent.
    pub fn view<T: Scalar>(&mut self, arr: impl Into<SharedArray<T>>) -> ArrayView<'_, 'a, T> {
        self.ctx.view(arr)
    }

    /// A mutable typed view of `arr`, scoped to this guard's borrow.
    ///
    /// # Panics
    ///
    /// Panics if the guard holds a read-only lock: under EC only an exclusive
    /// holder may modify bound data, and handing out a mutable view from a
    /// read-only acquisition is exactly the annotation bug the typed API
    /// exists to catch.
    pub fn view_mut<T: Scalar>(
        &mut self,
        arr: impl Into<SharedArray<T>>,
    ) -> ArrayViewMut<'_, 'a, T> {
        assert!(
            !self.holds() || self.mode.is_exclusive(),
            "mutable view through a read-only lock guard ({})",
            self.lock.expect("held")
        );
        self.ctx.view_mut(arr)
    }
}

impl<'a> Deref for LockGuard<'_, 'a> {
    type Target = ProcessContext<'a>;

    fn deref(&self) -> &ProcessContext<'a> {
        self.ctx
    }
}

impl<'a> DerefMut for LockGuard<'_, 'a> {
    fn deref_mut(&mut self) -> &mut ProcessContext<'a> {
        self.ctx
    }
}

impl Drop for LockGuard<'_, '_> {
    fn drop(&mut self) {
        if let Some(lock) = self.lock {
            self.ctx.release(lock);
        }
    }
}

impl fmt::Debug for LockGuard<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockGuard")
            .field("lock", &self.lock)
            .field("mode", &self.mode)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Scoped typed views
// ---------------------------------------------------------------------------

/// Read-only typed view of a [`SharedArray<T>`], obtained from
/// [`ProcessContext::view`] or [`LockGuard::view`].
///
/// Bulk operations ([`ArrayView::read_into`], [`ArrayView::to_vec`]) lower
/// onto the allocation-free span hot path
/// ([`ProcessContext::read_slice`]) — per-page freshness validation instead
/// of per-word — with costs identical to the element-wise loop.
#[derive(Debug)]
pub struct ArrayView<'c, 'a, T: Scalar> {
    ctx: &'c mut ProcessContext<'a>,
    arr: SharedArray<T>,
}

impl<T: Scalar> ArrayView<'_, '_, T> {
    /// The array this view reads.
    pub fn array(&self) -> SharedArray<T> {
        self.arr
    }

    /// Number of elements in the array.
    pub fn len(&self) -> usize {
        self.arr.len()
    }

    /// True if the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.arr.is_empty()
    }

    /// Reads element `idx`.
    pub fn get(&mut self, idx: usize) -> T {
        self.ctx.get(self.arr, idx)
    }

    /// Reads `out.len()` consecutive elements starting at `start` (one span
    /// read on the hot path).
    pub fn read_into(&mut self, start: usize, out: &mut [T]) {
        self.ctx.read_into(self.arr, start, out);
    }

    /// Copies the whole array out as a vector (one span read).
    pub fn to_vec(&mut self) -> Vec<T> {
        let mut out = vec![T::default(); self.len()];
        self.read_into(0, &mut out);
        out
    }
}

/// Mutable typed view of a [`SharedArray<T>`], obtained from
/// [`ProcessContext::view_mut`] or [`LockGuard::view_mut`] (the latter only
/// through an exclusive lock).
///
/// Bulk writes ([`ArrayViewMut::write`], [`ArrayViewMut::fill_from`]) lower onto
/// the span hot path ([`ProcessContext::write_slice`]): the write trap runs
/// once per page instead of once per word, with identical simulated costs.
#[derive(Debug)]
pub struct ArrayViewMut<'c, 'a, T: Scalar> {
    ctx: &'c mut ProcessContext<'a>,
    arr: SharedArray<T>,
}

impl<T: Scalar> ArrayViewMut<'_, '_, T> {
    /// The array this view accesses.
    pub fn array(&self) -> SharedArray<T> {
        self.arr
    }

    /// Number of elements in the array.
    pub fn len(&self) -> usize {
        self.arr.len()
    }

    /// True if the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.arr.is_empty()
    }

    /// Reads element `idx`.
    pub fn get(&mut self, idx: usize) -> T {
        self.ctx.get(self.arr, idx)
    }

    /// Writes element `idx`.
    pub fn set(&mut self, idx: usize, value: T) {
        self.ctx.set(self.arr, idx, value);
    }

    /// Applies `f` to element `idx` (read-modify-write).
    pub fn modify(&mut self, idx: usize, f: impl FnOnce(T) -> T) {
        self.ctx.modify(self.arr, idx, f);
    }

    /// Reads `out.len()` consecutive elements starting at `start` (one span
    /// read on the hot path).
    pub fn read_into(&mut self, start: usize, out: &mut [T]) {
        self.ctx.read_into(self.arr, start, out);
    }

    /// Writes `values.len()` consecutive elements starting at `start` (one
    /// span write on the hot path).
    pub fn write(&mut self, start: usize, values: &[T]) {
        self.ctx.write_from(self.arr, start, values);
    }

    /// Writes `values` over the whole array (one span write).
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the array length.
    pub fn fill_from(&mut self, values: &[T]) {
        assert_eq!(values.len(), self.len(), "fill_from length mismatch");
        self.write(0, values);
    }
}

// ---------------------------------------------------------------------------
// ProcessContext: typed accessors and guards
// ---------------------------------------------------------------------------

/// Typed shared-data accessors.  Each method lowers onto exactly one raw
/// accessor with the element type inferred from the handle; costs and
/// statistics are identical to the raw call.
impl<'a> ProcessContext<'a> {
    /// Reads element `idx` of a typed array
    /// (lowers onto [`read`](ProcessContext::read)).
    pub fn get<T: Scalar>(&mut self, arr: impl Into<SharedArray<T>>, idx: usize) -> T {
        self.read::<T>(arr.into().region(), idx)
    }

    /// Writes element `idx` of a typed array
    /// (lowers onto [`write`](ProcessContext::write)).
    pub fn set<T: Scalar>(&mut self, arr: impl Into<SharedArray<T>>, idx: usize, value: T) {
        self.write::<T>(arr.into().region(), idx, value);
    }

    /// Applies `f` to element `idx` of a typed array
    /// (lowers onto [`update`](ProcessContext::update)).
    pub fn modify<T: Scalar>(
        &mut self,
        arr: impl Into<SharedArray<T>>,
        idx: usize,
        f: impl FnOnce(T) -> T,
    ) {
        self.update::<T>(arr.into().region(), idx, f);
    }

    /// Reads `out.len()` consecutive elements starting at element `start`
    /// (lowers onto the span hot path, [`read_slice`](ProcessContext::read_slice)).
    pub fn read_into<T: Scalar>(
        &mut self,
        arr: impl Into<SharedArray<T>>,
        start: usize,
        out: &mut [T],
    ) {
        self.read_slice::<T>(arr.into().region(), start, out);
    }

    /// Writes `values.len()` consecutive elements starting at element `start`
    /// (lowers onto the span hot path, [`write_slice`](ProcessContext::write_slice)).
    pub fn write_from<T: Scalar>(
        &mut self,
        arr: impl Into<SharedArray<T>>,
        start: usize,
        values: &[T],
    ) {
        self.write_slice::<T>(arr.into().region(), start, values);
    }

    /// Reads the most recently published value of element `idx` without any
    /// consistency action or cost (lowers onto
    /// [`poll`](ProcessContext::poll); see that method's caveats — never use
    /// it for data the algorithm consumes).
    pub fn peek<T: Scalar>(&mut self, arr: impl Into<SharedArray<T>>, idx: usize) -> T {
        self.poll::<T>(arr.into().region(), idx)
    }

    /// Reads a shared scalar.
    pub fn load<T: Scalar>(&mut self, scalar: SharedScalar<T>) -> T {
        self.get(scalar.array(), 0)
    }

    /// Writes a shared scalar.
    pub fn store<T: Scalar>(&mut self, scalar: SharedScalar<T>, value: T) {
        self.set(scalar.array(), 0, value);
    }

    /// Applies `f` to a shared scalar (read-modify-write).
    pub fn fetch_update<T: Scalar>(&mut self, scalar: SharedScalar<T>, f: impl FnOnce(T) -> T) {
        self.modify(scalar.array(), 0, f);
    }

    /// Acquires `lock` in `mode` and returns an RAII guard that releases it
    /// when dropped (lowers onto [`acquire`](ProcessContext::acquire) /
    /// [`release`](ProcessContext::release) with identical costs).
    ///
    /// The guard dereferences to the context, so data access while the lock
    /// is held flows through it; a nested `guard.lock(..)` borrows the outer
    /// guard, making out-of-order release a borrow error.
    pub fn lock(&mut self, lock: LockId, mode: LockMode) -> LockGuard<'_, 'a> {
        self.acquire(lock, mode);
        LockGuard {
            ctx: self,
            lock: Some(lock),
            mode,
        }
    }

    /// Acquires `lock` only if `cond` is true, returning a guard either way.
    ///
    /// This fits the application suite's idiom of one worker body shared by
    /// the EC and LRC versions: EC programs pass `cond = true` (the
    /// annotation), LRC programs pass `false`, and the body is written once
    /// against the guard.  With `cond` false the guard holds nothing,
    /// releases nothing, and charges nothing.
    pub fn lock_if(&mut self, cond: bool, lock: LockId, mode: LockMode) -> LockGuard<'_, 'a> {
        if cond {
            self.acquire(lock, mode);
        }
        LockGuard {
            ctx: self,
            lock: cond.then_some(lock),
            mode,
        }
    }

    /// A read-only typed view of `arr` (no lock required — under LRC,
    /// barriers provide the ordering).
    pub fn view<T: Scalar>(&mut self, arr: impl Into<SharedArray<T>>) -> ArrayView<'_, 'a, T> {
        ArrayView {
            arr: arr.into(),
            ctx: self,
        }
    }

    /// A mutable typed view of `arr` (no lock required — use
    /// [`LockGuard::view_mut`] to get the EC entitlement check).
    pub fn view_mut<T: Scalar>(
        &mut self,
        arr: impl Into<SharedArray<T>>,
    ) -> ArrayViewMut<'_, 'a, T> {
        ArrayViewMut {
            arr: arr.into(),
            ctx: self,
        }
    }
}

// ---------------------------------------------------------------------------
// Dsm: typed allocation
// ---------------------------------------------------------------------------

/// Typed allocation.
impl Dsm {
    /// Allocates a shared scalar of type `T`, zero-initialised.
    pub fn alloc_scalar<T: Scalar>(
        &mut self,
        name: impl Into<String>,
        granularity: BlockGranularity,
    ) -> SharedScalar<T> {
        SharedScalar::new(self.alloc_array::<T>(name, 1, granularity))
    }

    /// Allocates a shared array of `count` elements of type `T` and binds it
    /// to `lock`, constructing the EC lock→data association of Section 3 in
    /// one place.  Under LRC the binding is a no-op, so the same call serves
    /// every implementation.
    pub fn alloc_bound<T: Scalar>(
        &mut self,
        name: impl Into<String>,
        count: usize,
        granularity: BlockGranularity,
        lock: LockId,
    ) -> Binding<T> {
        let array = self.alloc_array::<T>(name, count, granularity);
        self.bind(lock, [array.whole()]);
        Binding::new(lock, array)
    }

    /// Initialises a typed array with values produced by `f` (called with
    /// each element index).  Like [`Dsm::init_region`], initial data is
    /// distributed before the run and charged no communication cost.
    pub fn init_array<T: Scalar>(
        &mut self,
        arr: impl Into<SharedArray<T>>,
        f: impl Fn(usize) -> T,
    ) {
        self.init_region::<T>(arr.into().region(), f);
    }

    /// Initialises a shared scalar.
    pub fn init_scalar<T: Scalar>(&mut self, scalar: SharedScalar<T>, value: T) {
        self.init_region::<T>(scalar.region(), move |_| value);
    }
}

// ---------------------------------------------------------------------------
// RunResult: typed finals
// ---------------------------------------------------------------------------

/// Typed access to the final published contents.
impl RunResult {
    /// Reads element `idx` of the final contents of a typed array.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn final_at<T: Scalar>(&self, arr: impl Into<SharedArray<T>>, idx: usize) -> T {
        self.read_final::<T>(arr.into().region(), idx)
    }

    /// Copies the final contents of a typed array out as a vector.
    pub fn final_array<T: Scalar>(&self, arr: impl Into<SharedArray<T>>) -> Vec<T> {
        self.final_vec::<T>(arr.into().region())
    }

    /// Reads the final value of a shared scalar.
    pub fn final_scalar<T: Scalar>(&self, scalar: SharedScalar<T>) -> T {
        self.final_at(scalar.array(), 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DsmConfig, ImplKind};
    use crate::ids::BarrierId;

    fn dsm(kind: ImplKind, nprocs: usize) -> Dsm {
        Dsm::new(DsmConfig::with_procs(kind, nprocs)).expect("valid config")
    }

    #[test]
    fn handles_carry_type_and_shape() {
        let mut d = dsm(ImplKind::ec_time(), 2);
        let a = d.alloc_array::<f64>("m", 100, BlockGranularity::DoubleWord);
        assert_eq!(a.len(), 100);
        assert!(!a.is_empty());
        assert_eq!(a.region().len(), 800);
        assert_eq!(a.granularity(), BlockGranularity::DoubleWord);
        let r = a.range(10, 5);
        assert_eq!((r.start, r.len), (80, 40));
        assert_eq!(a.whole().len, 800);
        assert_eq!(Region::from(a), a.region());
    }

    #[test]
    fn from_region_roundtrips() {
        let mut d = dsm(ImplKind::lrc_diff(), 1);
        let raw = d.alloc("raw", 64, BlockGranularity::Word);
        let typed = SharedArray::<u32>::from_region(raw);
        assert_eq!(typed.len(), 16);
        assert_eq!(typed.region(), raw);
    }

    #[test]
    #[should_panic(expected = "whole elements")]
    fn from_region_rejects_partial_elements() {
        let mut d = dsm(ImplKind::lrc_diff(), 1);
        let raw = d.alloc("raw", 6, BlockGranularity::Word);
        let _ = SharedArray::<u32>::from_region(raw);
    }

    #[test]
    fn typed_accessors_roundtrip_and_match_raw() {
        let mut d = dsm(ImplKind::lrc_diff(), 1);
        let a = d.alloc_array::<u32>("a", 64, BlockGranularity::Word);
        d.init_array(a, |i| i as u32);
        let result = d.run(|ctx| {
            assert_eq!(ctx.get(a, 7), 7);
            ctx.set(a, 7, 70);
            ctx.modify(a, 7, |v| v + 1);
            let mut buf = [0u32; 4];
            ctx.read_into(a, 6, &mut buf);
            assert_eq!(buf, [6, 71, 8, 9]);
            ctx.write_from(a, 0, &[100, 101]);
            // peek reads the *published* master copy: local writes are not
            // published until the release/barrier, so it still sees the
            // initial value.
            assert_eq!(ctx.peek(a, 1), 1);
            // Raw escape hatch agrees with the typed surface.
            assert_eq!(ctx.read::<u32>(a.region(), 7), 71);
            ctx.barrier(BarrierId::new(0));
        });
        assert_eq!(result.final_at(a, 0), 100);
        assert_eq!(result.final_array(a)[7], 71);
    }

    #[test]
    fn scalars_load_store_and_update() {
        let mut d = dsm(ImplKind::ec_diff(), 2);
        let s = d.alloc_scalar::<u32>("counter", BlockGranularity::Word);
        d.init_scalar(s, 5);
        let lock = LockId::new(0);
        d.bind(lock, [s.array().whole()]);
        let result = d.run(|ctx| {
            let mut g = ctx.lock(lock, LockMode::Exclusive);
            g.fetch_update(s, |v| v + 1);
            g.unlock();
            ctx.barrier(BarrierId::new(0));
        });
        assert_eq!(result.final_scalar(s), 7);
    }

    #[test]
    fn guards_release_on_drop_with_raw_costs() {
        // A guard-based program and a raw program must produce identical
        // traffic (the guard is sugar, not semantics).
        let run = |guards: bool| {
            let mut d = dsm(ImplKind::lrc_diff(), 2);
            let a = d.alloc_array::<u32>("a", 16, BlockGranularity::Word);
            let result = d.run(|ctx| {
                if guards {
                    let mut g = ctx.lock(LockId::new(0), LockMode::Exclusive);
                    g.modify(a, 0, |v: u32| v + 1);
                } else {
                    ctx.acquire(LockId::new(0), LockMode::Exclusive);
                    ctx.update::<u32>(a.region(), 0, |v| v + 1);
                    ctx.release(LockId::new(0));
                }
                ctx.barrier(BarrierId::new(0));
            });
            (
                result.final_at(a, 0),
                result.traffic.messages,
                result.traffic.bytes,
                result.traffic.lock_transfers,
            )
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn lock_if_false_holds_and_charges_nothing() {
        let mut d = dsm(ImplKind::lrc_diff(), 1);
        let a = d.alloc_array::<u32>("a", 4, BlockGranularity::Word);
        let result = d.run(|ctx| {
            let mut g = ctx.lock_if(false, LockId::new(9), LockMode::Exclusive);
            assert!(!g.holds());
            assert_eq!(g.lock_id(), None);
            g.set(a, 0, 1);
            // A mutable view is fine without a lock (the LRC case).
            g.view_mut(a).set(1, 2);
            drop(g);
            ctx.barrier(BarrierId::new(0));
        });
        assert_eq!(result.final_at(a, 1), 2);
        assert_eq!(result.traffic.lock_acquires, 0);
    }

    #[test]
    fn nested_guards_release_in_lifo_order() {
        let mut d = dsm(ImplKind::ec_time(), 2);
        let a = d.alloc_bound::<u32>("a", 8, BlockGranularity::Word, LockId::new(0));
        let b = d.alloc_bound::<u32>("b", 8, BlockGranularity::Word, LockId::new(1));
        let result = d.run(|ctx| {
            let mut outer = ctx.lock(a.lock(), LockMode::Exclusive);
            {
                let mut inner = outer.lock(b.lock(), LockMode::Exclusive);
                inner.modify(b, 0, |v: u32| v + 1);
            }
            outer.modify(a, 0, |v: u32| v + 1);
            drop(outer);
            ctx.barrier(BarrierId::new(0));
        });
        assert_eq!(result.final_at(a, 0), 2);
        assert_eq!(result.final_at(b, 0), 2);
    }

    #[test]
    // The worker's panic message ("mutable view through a read-only lock
    // guard") is replaced by the runtime's join message when it propagates.
    #[should_panic(expected = "worker thread panicked")]
    fn read_only_guard_refuses_mutable_views() {
        let mut d = dsm(ImplKind::ec_time(), 1);
        let a = d.alloc_bound::<u32>("a", 8, BlockGranularity::Word, LockId::new(0));
        d.run(|ctx| {
            let mut g = ctx.lock(a.lock(), LockMode::ReadOnly);
            let _ = g.view_mut(a);
        });
    }

    #[test]
    fn views_cover_bulk_and_element_ops() {
        let mut d = dsm(ImplKind::hlrc_diff(), 2);
        let a = d.alloc_array::<i64>("a", 32, BlockGranularity::DoubleWord);
        d.init_array(a, |i| i as i64);
        let result = d.run(|ctx| {
            if ctx.node() == 0 {
                let mut v = ctx.view_mut(a);
                assert_eq!(v.len(), 32);
                assert!(!v.is_empty());
                assert_eq!(v.array(), a);
                v.set(0, -1);
                v.modify(0, |x| x - 1);
                v.write(1, &[10, 11]);
                let mut all = vec![0i64; 32];
                v.read_into(0, &mut all);
                assert_eq!(&all[..3], &[-2, 10, 11]);
            }
            ctx.barrier(BarrierId::new(0));
            let mut r = ctx.view(a);
            assert_eq!(r.get(1), 10);
            assert_eq!(r.to_vec()[2], 11);
            assert_eq!(r.array(), a);
            assert_eq!(r.len(), 32);
            assert!(!r.is_empty());
            ctx.barrier(BarrierId::new(1));
        });
        assert_eq!(result.final_array(a)[0], -2);
    }

    #[test]
    fn bindings_convert_to_arrays_everywhere() {
        let mut d = dsm(ImplKind::ec_ci(), 2);
        let b = d.alloc_bound::<f32>("b", 16, BlockGranularity::Word, LockId::new(3));
        assert_eq!(b.lock(), LockId::new(3));
        assert_eq!(b.array().len(), 16);
        d.init_array(b, |i| i as f32);
        let result = d.run(|ctx| {
            let mut g = ctx.lock(b.lock(), LockMode::Exclusive);
            let v = g.get(b, 2);
            g.set(b, 2, v + 1.0);
            g.unlock();
            ctx.barrier(BarrierId::new(0));
        });
        assert_eq!(result.final_at(b, 2), 4.0);
    }

    #[test]
    fn handles_are_copy_eq_and_debuggable() {
        let mut d = dsm(ImplKind::lrc_ci(), 1);
        let a = d.alloc_array::<f64>("a", 4, BlockGranularity::DoubleWord);
        let b = d.alloc_array::<f64>("b", 4, BlockGranularity::DoubleWord);
        let a2 = a;
        assert_eq!(a, a2);
        assert_ne!(a, b);
        let s = d.alloc_scalar::<u32>("s", BlockGranularity::Word);
        assert_eq!(s, s);
        let dbg = format!("{a:?} {s:?}");
        assert!(dbg.contains("SharedArray") && dbg.contains("f64"));
        assert!(dbg.contains("SharedScalar") && dbg.contains("u32"));
    }
}
