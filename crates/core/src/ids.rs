//! Synchronization object identifiers and lock modes.

use std::fmt;

use dsm_sim::NodeId;

/// Identifier of a lock.
///
/// Locks are created on demand the first time an id is used; managers are
/// assigned round-robin by id, as in the paper's runtime ("assignment of locks
/// to processors is done in a round-robin way to distribute the load").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LockId(pub u32);

impl LockId {
    /// Creates a lock id.
    pub fn new(id: u32) -> Self {
        LockId(id)
    }

    /// Dense index for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The statically assigned manager of this lock in a cluster of `nprocs`
    /// processors.
    pub fn manager(self, nprocs: usize) -> NodeId {
        NodeId::new(self.0 % nprocs as u32)
    }
}

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Identifier of a barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BarrierId(pub u32);

impl BarrierId {
    /// Creates a barrier id.
    pub fn new(id: u32) -> Self {
        BarrierId(id)
    }

    /// Dense index for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The statically assigned manager of this barrier.
    pub fn manager(self, nprocs: usize) -> NodeId {
        NodeId::new(self.0 % nprocs as u32)
    }
}

impl fmt::Display for BarrierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// Acquisition mode of a lock.
///
/// The EC implementations provide exclusive and read-only locks (read-only
/// locks are what EC programs use to read data another processor produced
/// before a barrier, Section 3.3); the LRC implementation only needs exclusive
/// locks for the application suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Exclusive (write) access.
    Exclusive,
    /// Shared read-only access.
    ReadOnly,
}

impl LockMode {
    /// True for [`LockMode::Exclusive`].
    pub fn is_exclusive(self) -> bool {
        matches!(self, LockMode::Exclusive)
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockMode::Exclusive => f.write_str("exclusive"),
            LockMode::ReadOnly => f.write_str("read-only"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn managers_are_round_robin() {
        assert_eq!(LockId::new(0).manager(8), NodeId::new(0));
        assert_eq!(LockId::new(9).manager(8), NodeId::new(1));
        assert_eq!(BarrierId::new(3).manager(2), NodeId::new(1));
    }

    #[test]
    fn display() {
        assert_eq!(LockId::new(5).to_string(), "L5");
        assert_eq!(BarrierId::new(2).to_string(), "B2");
        assert_eq!(LockMode::Exclusive.to_string(), "exclusive");
        assert_eq!(LockMode::ReadOnly.to_string(), "read-only");
    }

    #[test]
    fn mode_predicate() {
        assert!(LockMode::Exclusive.is_exclusive());
        assert!(!LockMode::ReadOnly.is_exclusive());
    }
}
