//! Pluggable transport under the protocol engines.
//!
//! The engines publish modifications into shared master copies; a
//! [`Transport`] decides what *else* happens at each publish.  The default
//! [`TransportKind::Simulated`] backend does nothing — messages remain pure
//! cost accounting, exactly as before, and the hot path stays branch-only.
//! The real backends replicate every publish as a [`WireFrame`] to a set of
//! replica holders and verify, at the end of the run, that every replica's
//! contents are byte-identical (FNV-fingerprint equal) to the engines'
//! master copies:
//!
//! * [`TransportKind::Channel`] — every simulated processor is a
//!   message-passing OS thread; frames travel as `Arc`'d flat payloads over
//!   `std::sync::mpsc` channels with zero copies, one full replica per node.
//! * [`TransportKind::SocketLocal`] / [`TransportKind::SocketRemote`] —
//!   frames are serialized with the dependency-free codec of
//!   [`dsm_mem::wire`] and streamed over length-prefixed TCP connections to
//!   replica peers: in-process listener threads (`SocketLocal`) or separate
//!   processes started by a driver (`SocketRemote`, see
//!   [`serve_transport_peer`]).
//!
//! Cost accounting is transport-independent: the simulated clocks and
//! statistics are charged identically under every backend, so simulated
//! times and all goldens stay byte-identical; the backends differ only in
//! what moves on the host.  See `DESIGN.md` §6 for the backend contract and
//! the wire format.

use std::collections::BTreeMap;
use std::io::{self, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{mpsc, Arc};

use dsm_mem::wire::{
    fnv64_regions, read_msg, write_msg, WireFrame, WireInit, WireMsgKind, WireReport,
};
use dsm_sim::NodeId;

use crate::config::DsmConfig;

/// Which transport carries publish frames during a run.
///
/// The simulated backend is the default and the only one that keeps the
/// publish hot path allocation-free; the real backends trade that for actual
/// bytes moving between threads or processes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// No replication: messages are cost accounting only (the default).
    #[default]
    Simulated,
    /// One replica per simulated processor; frames are `Arc`-shared over
    /// in-process `std::sync::mpsc` channels between the worker threads.
    Channel,
    /// This many replica peers served by in-process listener threads;
    /// frames are serialized and streamed over loopback TCP.
    SocketLocal(usize),
    /// Replica peers already running (separate processes, see
    /// [`serve_transport_peer`]) at these `host:port` addresses.
    SocketRemote(Vec<String>),
}

impl TransportKind {
    /// Short backend label used in reports and bench output.
    pub fn label(&self) -> &'static str {
        match self {
            TransportKind::Simulated => "sim",
            TransportKind::Channel => "channel",
            TransportKind::SocketLocal(_) | TransportKind::SocketRemote(_) => "socket",
        }
    }
}

/// End-of-run transport summary attached to every
/// [`RunResult`](crate::RunResult).
///
/// Under the simulated backend everything except `master_fnv` is zero.  The
/// real backends verify each replica's final contents against the engines'
/// master copies before returning, so a returned report certifies
/// `replicas_verified` byte-identical replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportReport {
    /// Backend label (`"sim"`, `"channel"`, `"socket"`).
    pub backend: &'static str,
    /// [`fnv64_regions`] fingerprint of the engines' final master copies —
    /// comparable across backends and across processes.
    pub master_fnv: u64,
    /// Replicas whose final contents were verified fingerprint-equal to the
    /// master copies.
    pub replicas_verified: usize,
    /// Publish frames sent (each counted once, however many receivers).
    pub frames_sent: u64,
    /// Encoded frame bytes delivered, summed over receivers (for the channel
    /// backend: the bytes that *would* be on a wire; the `Arc` handoff
    /// itself copies nothing).
    pub wire_bytes: u64,
    /// Frames applied across all replicas.
    pub frames_applied: u64,
}

/// One replica of the shared regions, rebuilt purely from publish frames.
///
/// Frames of a region are applied strictly in `seq` order; out-of-order
/// arrivals wait in a per-region reorder buffer.  The per-region sequence
/// numbers are dense (the engines draw them from the same counter the
/// publish bumps), so a replica that has seen every frame always drains.
#[derive(Debug)]
struct Replica {
    regions: Vec<Vec<u8>>,
    /// Per region: the last applied sequence number (0 = none yet).
    applied_seq: Vec<u64>,
    /// Per region: frames that arrived ahead of their turn, keyed by seq.
    pending: Vec<BTreeMap<u64, Arc<WireFrame>>>,
    frames_applied: u64,
    bytes_received: u64,
}

impl Replica {
    fn new(init: &[Vec<u8>]) -> Self {
        Replica {
            regions: init.to_vec(),
            applied_seq: vec![0; init.len()],
            pending: init.iter().map(|_| BTreeMap::new()).collect(),
            frames_applied: 0,
            bytes_received: 0,
        }
    }

    /// Accepts a frame, applying it — and any unblocked successors — as soon
    /// as its region's sequence reaches it.
    fn offer(&mut self, frame: Arc<WireFrame>) {
        let r = frame.region as usize;
        assert!(r < self.regions.len(), "frame for unknown region {r}");
        self.bytes_received += frame.encoded_len() as u64;
        self.pending[r].insert(frame.seq, frame);
        while let Some(f) = self.pending[r].remove(&(self.applied_seq[r] + 1)) {
            assert!(
                f.apply(&mut self.regions[r]),
                "frame run outside region {r}"
            );
            self.applied_seq[r] += 1;
            self.frames_applied += 1;
        }
    }

    /// True once no frame is waiting on a missing predecessor.
    fn drained(&self) -> bool {
        self.pending.iter().all(BTreeMap::is_empty)
    }

    fn fnv(&self) -> u64 {
        fnv64_regions(self.regions.iter().map(|r| r.as_slice()))
    }

    fn report(&self) -> WireReport {
        WireReport {
            contents_fnv: self.fnv(),
            frames_applied: self.frames_applied,
            bytes_received: self.bytes_received,
        }
    }
}

/// A worker thread's handle onto the transport: where its publish frames go.
///
/// Owned by the worker's `NodeLocal` for the duration of the run (`None`
/// under the simulated backend), handed back to the transport's
/// [`Transport::finish`] afterwards.
#[derive(Debug)]
pub(crate) struct WireEndpoint {
    /// Frames this endpoint published.
    pub frames_sent: u64,
    /// Encoded frame bytes this endpoint delivered, summed over receivers.
    pub wire_bytes: u64,
    /// Scratch run table the engines fill while collecting a publish
    /// (borrowed out with `std::mem::take`, handed back after the frame is
    /// built, so steady-state publishes reuse its capacity).
    pub scratch_runs: Vec<(u32, u32)>,
    inner: EndpointInner,
}

#[derive(Debug)]
enum EndpointInner {
    /// Channel backend: senders to every other node's inbox, this node's own
    /// inbox, and this node's own replica.
    Channel {
        peers: Vec<mpsc::Sender<Arc<WireFrame>>>,
        inbox: mpsc::Receiver<Arc<WireFrame>>,
        replica: Replica,
    },
    /// Socket backend: one buffered stream per replica peer.
    Socket {
        conns: Vec<BufWriter<TcpStream>>,
        scratch: Vec<u8>,
    },
}

impl WireEndpoint {
    /// Replicates one publish: region-absolute changed-byte `runs` of
    /// `data`, totally ordered within the region by `seq` (dense, 1-based).
    /// `clock` is the publisher's vector-clock entries (empty under EC).
    pub fn publish(
        &mut self,
        region: u32,
        seq: u64,
        clock: &[u32],
        runs: &[(u32, u32)],
        data: &[u8],
    ) {
        let payload_len: usize = runs.iter().map(|&(_, len)| len as usize).sum();
        let mut payload = Vec::with_capacity(payload_len);
        for &(off, len) in runs {
            payload.extend_from_slice(&data[off as usize..off as usize + len as usize]);
        }
        let frame = WireFrame {
            region,
            seq,
            clock: clock.to_vec(),
            runs: runs.to_vec(),
            payload,
        };
        self.frames_sent += 1;
        match &mut self.inner {
            EndpointInner::Channel {
                peers,
                inbox,
                replica,
            } => {
                self.wire_bytes += frame.encoded_len() as u64 * (peers.len() as u64 + 1);
                let frame = Arc::new(frame);
                for peer in peers.iter() {
                    peer.send(frame.clone()).expect("peer inbox closed mid-run");
                }
                replica.offer(frame);
                // Opportunistically absorb whatever peers have sent so far;
                // the rest is drained after the run, when every send is
                // join-ordered before the drain.
                while let Ok(f) = inbox.try_recv() {
                    replica.offer(f);
                }
            }
            EndpointInner::Socket { conns, scratch } => {
                scratch.clear();
                frame.encode_into(scratch);
                for conn in conns.iter_mut() {
                    write_msg(conn, WireMsgKind::Frame, scratch)
                        .expect("replica peer connection lost mid-run");
                }
                // Body plus the 5-byte message header, per receiving peer.
                self.wire_bytes += (scratch.len() as u64 + 5) * conns.len() as u64;
            }
        }
    }
}

/// The backend contract: hand one endpoint to each worker before the run,
/// collect them and verify every replica afterwards.
pub(crate) trait Transport: Send {
    /// Backend label for the report.
    fn label(&self) -> &'static str;

    /// The endpoint worker `node` publishes through, or `None` if this
    /// backend replicates nothing (simulated).
    fn take_endpoint(&mut self, node: NodeId) -> Option<Box<WireEndpoint>>;

    /// Completes the run: drains and verifies every replica against the
    /// engines' final `master` copies and summarizes the traffic.
    ///
    /// Panics if any replica's contents diverge from the master — that is a
    /// transport bug, never a legal outcome.
    fn finish(&mut self, endpoints: Vec<WireEndpoint>, master: &[Vec<u8>]) -> TransportReport;
}

/// Builds the transport for a run.  The single place [`TransportKind`] is
/// dispatched on.
pub(crate) fn build_transport(cfg: &DsmConfig, init: &[Vec<u8>]) -> Box<dyn Transport> {
    match &cfg.transport {
        TransportKind::Simulated => Box::new(SimulatedTransport),
        TransportKind::Channel => Box::new(ChannelTransport::new(cfg.nprocs, init)),
        TransportKind::SocketLocal(npeers) => {
            Box::new(SocketTransport::new_local(cfg.nprocs, *npeers, init))
        }
        TransportKind::SocketRemote(addrs) => {
            Box::new(SocketTransport::new_remote(cfg.nprocs, addrs, init))
        }
    }
}

/// The default backend: no endpoints, no replication, no bytes.  Publishes
/// stay exactly the branch-free accounting they were before the transport
/// layer existed.
#[derive(Debug)]
struct SimulatedTransport;

impl Transport for SimulatedTransport {
    fn label(&self) -> &'static str {
        "sim"
    }

    fn take_endpoint(&mut self, _node: NodeId) -> Option<Box<WireEndpoint>> {
        None
    }

    fn finish(&mut self, _endpoints: Vec<WireEndpoint>, master: &[Vec<u8>]) -> TransportReport {
        TransportReport {
            backend: self.label(),
            master_fnv: fnv64_regions(master.iter().map(|r| r.as_slice())),
            replicas_verified: 0,
            frames_sent: 0,
            wire_bytes: 0,
            frames_applied: 0,
        }
    }
}

/// In-process channel backend: every node owns a full replica and an inbox;
/// a publish `Arc`-clones one frame into every other node's inbox.
#[derive(Debug)]
struct ChannelTransport {
    endpoints: Vec<Option<Box<WireEndpoint>>>,
}

/// One node's frame channel: the sender peers clone, the node's own inbox.
type FrameChannel = (mpsc::Sender<Arc<WireFrame>>, mpsc::Receiver<Arc<WireFrame>>);

impl ChannelTransport {
    fn new(nprocs: usize, init: &[Vec<u8>]) -> Self {
        let channels: Vec<FrameChannel> = (0..nprocs).map(|_| mpsc::channel()).collect();
        let senders: Vec<mpsc::Sender<Arc<WireFrame>>> =
            channels.iter().map(|(tx, _)| tx.clone()).collect();
        let endpoints = channels
            .into_iter()
            .enumerate()
            .map(|(p, (_, inbox))| {
                let peers = senders
                    .iter()
                    .enumerate()
                    .filter(|&(q, _)| q != p)
                    .map(|(_, tx)| tx.clone())
                    .collect();
                Some(Box::new(WireEndpoint {
                    frames_sent: 0,
                    wire_bytes: 0,
                    scratch_runs: Vec::new(),
                    inner: EndpointInner::Channel {
                        peers,
                        inbox,
                        replica: Replica::new(init),
                    },
                }))
            })
            .collect();
        ChannelTransport { endpoints }
    }
}

impl Transport for ChannelTransport {
    fn label(&self) -> &'static str {
        "channel"
    }

    fn take_endpoint(&mut self, node: NodeId) -> Option<Box<WireEndpoint>> {
        self.endpoints[node.index()].take()
    }

    fn finish(&mut self, endpoints: Vec<WireEndpoint>, master: &[Vec<u8>]) -> TransportReport {
        let master_fnv = fnv64_regions(master.iter().map(|r| r.as_slice()));
        let mut report = TransportReport {
            backend: self.label(),
            master_fnv,
            replicas_verified: 0,
            frames_sent: 0,
            wire_bytes: 0,
            frames_applied: 0,
        };
        for ep in endpoints {
            report.frames_sent += ep.frames_sent;
            report.wire_bytes += ep.wire_bytes;
            let EndpointInner::Channel {
                inbox, mut replica, ..
            } = ep.inner
            else {
                unreachable!("channel transport only hands out channel endpoints");
            };
            // Every worker thread has been joined, so every send
            // happens-before this drain: the inbox holds the complete
            // remainder of the run's frames.
            while let Ok(f) = inbox.try_recv() {
                replica.offer(f);
            }
            assert!(replica.drained(), "replica is missing publish frames");
            assert_eq!(
                replica.fnv(),
                master_fnv,
                "channel replica diverged from the engines' master copies"
            );
            report.frames_applied += replica.frames_applied;
            report.replicas_verified += 1;
        }
        report
    }
}

/// Socket backend: replica peers behind loopback TCP, either served by
/// in-process listener threads or by already-running remote processes.
#[derive(Debug)]
struct SocketTransport {
    endpoints: Vec<Option<Box<WireEndpoint>>>,
    /// Control connection to each peer; the end-of-run [`WireReport`] comes
    /// back on it.
    controls: Vec<TcpStream>,
    /// In-process peer threads (`SocketLocal` only), joined at finish.
    servers: Vec<std::thread::JoinHandle<io::Result<()>>>,
}

impl SocketTransport {
    /// Spawns `npeers` in-process replica peers and connects to them.
    fn new_local(nprocs: usize, npeers: usize, init: &[Vec<u8>]) -> Self {
        assert!(npeers >= 1, "socket transport needs at least one peer");
        let mut addrs = Vec::with_capacity(npeers);
        let mut servers = Vec::with_capacity(npeers);
        for _ in 0..npeers {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
            addrs.push(listener.local_addr().expect("listener address").to_string());
            servers.push(std::thread::spawn(move || serve_transport_peer(listener)));
        }
        let mut transport = Self::connect(nprocs, &addrs, init);
        transport.servers = servers;
        transport
    }

    /// Connects to replica peers already running at `addrs`.
    fn new_remote(nprocs: usize, addrs: &[String], init: &[Vec<u8>]) -> Self {
        assert!(
            !addrs.is_empty(),
            "socket transport needs at least one peer"
        );
        Self::connect(nprocs, addrs, init)
    }

    fn connect(nprocs: usize, addrs: &[String], init: &[Vec<u8>]) -> Self {
        // Control connection first: it carries the bootstrap Init (cluster
        // shape, initial region images) the peer needs before it can accept
        // node streams.
        let mut init_body = Vec::new();
        WireInit {
            nprocs: nprocs as u32,
            regions: init.to_vec(),
        }
        .encode_into(&mut init_body);
        let mut controls = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let mut conn = TcpStream::connect(addr).expect("connect to replica peer");
            conn.write_all(b"C").expect("send control role");
            write_msg(&mut conn, WireMsgKind::Init, &init_body).expect("send init");
            controls.push(conn);
        }
        let endpoints = (0..nprocs)
            .map(|_| {
                let conns = addrs
                    .iter()
                    .map(|addr| {
                        let mut conn = TcpStream::connect(addr).expect("connect to replica peer");
                        conn.write_all(b"N").expect("send node role");
                        BufWriter::new(conn)
                    })
                    .collect();
                Some(Box::new(WireEndpoint {
                    frames_sent: 0,
                    wire_bytes: 0,
                    scratch_runs: Vec::new(),
                    inner: EndpointInner::Socket {
                        conns,
                        scratch: Vec::new(),
                    },
                }))
            })
            .collect();
        SocketTransport {
            endpoints,
            controls,
            servers: Vec::new(),
        }
    }
}

impl Transport for SocketTransport {
    fn label(&self) -> &'static str {
        "socket"
    }

    fn take_endpoint(&mut self, node: NodeId) -> Option<Box<WireEndpoint>> {
        self.endpoints[node.index()].take()
    }

    fn finish(&mut self, endpoints: Vec<WireEndpoint>, master: &[Vec<u8>]) -> TransportReport {
        let master_fnv = fnv64_regions(master.iter().map(|r| r.as_slice()));
        let mut report = TransportReport {
            backend: self.label(),
            master_fnv,
            replicas_verified: 0,
            frames_sent: 0,
            wire_bytes: 0,
            frames_applied: 0,
        };
        // Close every node stream cleanly: Fin, flush, drop.
        for ep in endpoints {
            report.frames_sent += ep.frames_sent;
            report.wire_bytes += ep.wire_bytes;
            let EndpointInner::Socket { mut conns, .. } = ep.inner else {
                unreachable!("socket transport only hands out socket endpoints");
            };
            for conn in conns.iter_mut() {
                write_msg(conn, WireMsgKind::Fin, &[]).expect("send fin");
                conn.flush().expect("flush node stream");
            }
        }
        // Every peer now sees nprocs Fins and reports back.
        let mut body = Vec::new();
        for control in self.controls.drain(..) {
            let mut control = control;
            let kind = read_msg(&mut control, &mut body).expect("read peer report");
            assert_eq!(kind, Some(WireMsgKind::Report), "peer sent a non-report");
            let peer = WireReport::decode(&body).expect("malformed peer report");
            assert_eq!(
                peer.contents_fnv, master_fnv,
                "socket replica diverged from the engines' master copies"
            );
            report.frames_applied += peer.frames_applied;
            report.replicas_verified += 1;
        }
        for server in self.servers.drain(..) {
            server
                .join()
                .expect("replica peer thread panicked")
                .expect("replica peer failed");
        }
        report
    }
}

/// Serves one replica peer on `listener` until the run completes, then
/// returns.  This is the *entire* peer: the in-process `SocketLocal` threads
/// and the separate `SocketRemote` processes both run exactly this function.
///
/// Protocol: every inbound connection announces its role with one byte —
/// `C` for the single control connection, which immediately carries an
/// `Init` message (number of node streams to expect, initial region
/// images), or `N` for a node stream carrying `Frame` messages and a final
/// `Fin`.  Once every node stream has finished, the peer writes its
/// [`WireReport`] (contents fingerprint, frames applied, bytes received)
/// back on the control connection.
///
/// # Errors
///
/// Returns an error if a connection misbehaves (unknown role byte, corrupt
/// message, unexpected disconnect) or a frame arrives for an unknown
/// region's sequence that never completes.
pub fn serve_transport_peer(listener: TcpListener) -> io::Result<()> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());

    // Accept the control connection (with its Init) and the node streams, in
    // whatever order they arrive.
    let mut control: Option<TcpStream> = None;
    let mut init: Option<WireInit> = None;
    let mut nodes: Vec<TcpStream> = Vec::new();
    let mut body = Vec::new();
    loop {
        if let Some(i) = &init {
            if nodes.len() as u32 >= i.nprocs {
                break;
            }
        }
        let (mut conn, _) = listener.accept()?;
        let mut role = [0u8; 1];
        conn.read_exact(&mut role)?;
        match role[0] {
            b'C' => {
                if read_msg(&mut conn, &mut body)? != Some(WireMsgKind::Init) {
                    return Err(bad("expected an init message on the control connection"));
                }
                init = Some(WireInit::decode(&body).ok_or_else(|| bad("malformed init"))?);
                control = Some(conn);
            }
            b'N' => nodes.push(conn),
            _ => return Err(bad("unknown connection role byte")),
        }
    }
    let init = init.expect("loop exits only with init");
    let mut control = control.expect("init arrived on the control connection");

    // One reader thread per node stream, funneling decoded frames into the
    // replica; the reorder buffer restores per-region publish order.
    let mut replica = Replica::new(&init.regions);
    std::thread::scope(|scope| -> io::Result<()> {
        let (tx, rx) = mpsc::channel::<io::Result<Option<WireFrame>>>();
        for mut conn in nodes {
            let tx = tx.clone();
            scope.spawn(move || {
                let mut body = Vec::new();
                loop {
                    let event = match read_msg(&mut conn, &mut body) {
                        Ok(Some(WireMsgKind::Frame)) => match WireFrame::decode(&body) {
                            Some(frame) => Ok(Some(frame)),
                            None => Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                "malformed frame",
                            )),
                        },
                        Ok(Some(WireMsgKind::Fin)) | Ok(None) => Ok(None),
                        Ok(Some(_)) => Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "unexpected message on a node stream",
                        )),
                        Err(e) => Err(e),
                    };
                    let done = !matches!(event, Ok(Some(_)));
                    if tx.send(event).is_err() || done {
                        return;
                    }
                }
            });
        }
        drop(tx);
        let mut fins = 0u32;
        while fins < init.nprocs {
            match rx.recv() {
                Ok(Ok(Some(frame))) => replica.offer(Arc::new(frame)),
                Ok(Ok(None)) => fins += 1,
                Ok(Err(e)) => return Err(e),
                Err(_) => return Err(bad("node stream reader died")),
            }
        }
        Ok(())
    })?;

    if !replica.drained() {
        return Err(bad("stream ended with frames waiting on missing sequences"));
    }
    body.clear();
    replica.report().encode_into(&mut body);
    write_msg(&mut control, WireMsgKind::Report, &body)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(region: u32, seq: u64, off: u32, byte: u8) -> Arc<WireFrame> {
        Arc::new(WireFrame {
            region,
            seq,
            clock: vec![],
            runs: vec![(off, 1)],
            payload: vec![byte],
        })
    }

    #[test]
    fn replica_reorders_frames_per_region() {
        let init = vec![vec![0u8; 8], vec![0u8; 4]];
        let mut r = Replica::new(&init);
        // Region 0's seq 2 must wait for seq 1; region 1 is independent.
        r.offer(frame(0, 2, 1, 22));
        assert_eq!(r.frames_applied, 0);
        assert!(!r.drained());
        r.offer(frame(1, 1, 0, 9));
        assert_eq!(r.frames_applied, 1);
        r.offer(frame(0, 1, 0, 11));
        assert_eq!(r.frames_applied, 3);
        assert!(r.drained());
        assert_eq!(r.regions[0][..2], [11, 22]);
        assert_eq!(r.regions[1][0], 9);
        let expect = {
            let mut m = init.clone();
            m[0][0] = 11;
            m[0][1] = 22;
            m[1][0] = 9;
            fnv64_regions(m.iter().map(|x| x.as_slice()))
        };
        assert_eq!(r.fnv(), expect);
    }

    #[test]
    #[should_panic(expected = "outside region")]
    fn replica_rejects_out_of_range_runs() {
        let mut r = Replica::new(&[vec![0u8; 4]]);
        r.offer(frame(0, 1, 100, 5));
    }

    #[test]
    fn channel_endpoints_replicate_and_verify() {
        let init = vec![vec![0u8; 16]];
        let mut t = ChannelTransport::new(2, &init);
        let mut a = t.take_endpoint(NodeId::new(0)).expect("endpoint");
        let mut b = t.take_endpoint(NodeId::new(1)).expect("endpoint");
        let mut master = init.clone();
        master[0][0..4].copy_from_slice(&[1, 2, 3, 4]);
        a.publish(0, 1, &[1, 0], &[(0, 4)], &master[0]);
        master[0][8] = 9;
        b.publish(0, 2, &[1, 1], &[(8, 1)], &master[0]);
        assert_eq!(a.frames_sent, 1);
        assert!(a.wire_bytes > 0);
        let report = t.finish(vec![*a, *b], &master);
        assert_eq!(report.backend, "channel");
        assert_eq!(report.replicas_verified, 2);
        assert_eq!(report.frames_sent, 2);
        // Both replicas applied both frames.
        assert_eq!(report.frames_applied, 4);
        assert_eq!(
            report.master_fnv,
            fnv64_regions(master.iter().map(|r| r.as_slice()))
        );
    }

    #[test]
    #[should_panic(expected = "diverged")]
    fn channel_divergence_is_caught() {
        let init = vec![vec![0u8; 8]];
        let mut t = ChannelTransport::new(1, &init);
        let a = t.take_endpoint(NodeId::new(0)).expect("endpoint");
        // The master claims a write the endpoint never published.
        let mut master = init.clone();
        master[0][0] = 7;
        t.finish(vec![*a], &master);
    }

    #[test]
    fn socket_local_round_trip_over_loopback() {
        let init = vec![vec![0u8; 32], vec![5u8; 8]];
        let mut t = SocketTransport::new_local(2, 2, &init);
        let mut a = t.take_endpoint(NodeId::new(0)).expect("endpoint");
        let mut b = t.take_endpoint(NodeId::new(1)).expect("endpoint");
        let mut master = init.clone();
        master[0][4..8].copy_from_slice(&[9, 9, 9, 9]);
        a.publish(0, 1, &[], &[(4, 4)], &master[0]);
        master[1][0] = 0;
        b.publish(1, 1, &[], &[(0, 1)], &master[1]);
        let report = t.finish(vec![*a, *b], &master);
        assert_eq!(report.backend, "socket");
        assert_eq!(report.replicas_verified, 2);
        assert_eq!(report.frames_sent, 2);
        assert_eq!(report.frames_applied, 4);
        assert!(report.wire_bytes > 0);
    }

    #[test]
    fn simulated_transport_hands_out_nothing() {
        let mut t = SimulatedTransport;
        assert!(t.take_endpoint(NodeId::new(0)).is_none());
        let master = vec![vec![3u8; 4]];
        let report = t.finish(Vec::new(), &master);
        assert_eq!(report.backend, "sim");
        assert_eq!(report.replicas_verified, 0);
        assert_eq!(
            report.master_fnv,
            fnv64_regions(master.iter().map(|r| r.as_slice()))
        );
    }

    #[test]
    fn transport_kind_labels() {
        assert_eq!(TransportKind::default(), TransportKind::Simulated);
        assert_eq!(TransportKind::Simulated.label(), "sim");
        assert_eq!(TransportKind::Channel.label(), "channel");
        assert_eq!(TransportKind::SocketLocal(2).label(), "socket");
        assert_eq!(TransportKind::SocketRemote(vec![]).label(), "socket");
    }
}
