//! Pluggable transport under the protocol engines.
//!
//! The engines publish modifications into shared master copies; a
//! [`Transport`] decides what *else* happens at each publish.  The default
//! [`TransportKind::Simulated`] backend does nothing — messages remain pure
//! cost accounting, exactly as before, and the hot path stays branch-only.
//! The real backends replicate every publish as a [`WireFrame`] to a set of
//! replica holders and verify, at the end of the run, that every replica's
//! contents are byte-identical (FNV-fingerprint equal) to the engines'
//! master copies:
//!
//! * [`TransportKind::Channel`] — every simulated processor is a
//!   message-passing OS thread; frames travel as `Arc`'d flat payloads over
//!   `std::sync::mpsc` channels with zero copies, one full replica per node.
//! * [`TransportKind::SocketLocal`] / [`TransportKind::SocketRemote`] —
//!   frames are serialized with the dependency-free codec of
//!   [`dsm_mem::wire`] and streamed over length-prefixed TCP connections to
//!   replica peers: in-process listener threads (`SocketLocal`) or separate
//!   processes started by a driver (`SocketRemote`, see
//!   [`serve_transport_peer`]).
//!
//! Both real backends buffer per peer and move data at **epoch boundaries**:
//! an endpoint accumulates the interval's frames and the engines call
//! [`WireEndpoint::flush`] once per publish event, after the region locks
//! are released — one channel send (or one `write_all` syscall, with
//! `TCP_NODELAY` set) per peer per epoch instead of one per frame.  On the
//! wire the frames travel in v2 form (see [`dsm_mem::wire::encode_frame_v2`]):
//! vector clocks are [`CompactClock`] delta records against the stream's
//! previous clock, so ordering metadata scales with what changed, not with
//! nprocs.
//!
//! Cost accounting is transport-independent: the simulated clocks and
//! statistics are charged identically under every backend, so simulated
//! times and all goldens stay byte-identical; the backends differ only in
//! what moves on the host.  See `DESIGN.md` §6 for the backend contract and
//! the wire format.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{mpsc, Arc};

use dsm_mem::wire::{
    self, begin_batch, encode_frame_v2, finish_batch, fnv64, fnv64_regions, frame_v2_meta_len,
    read_msg, write_msg, BatchReader, FrameV2, WireFrame, WireInit, WireMsgKind, WireReport,
};
use dsm_mem::{put_varint, varint_len, BufferPool, CompactClock};
use dsm_sim::NodeId;

use crate::config::DsmConfig;

/// Which transport carries publish frames during a run.
///
/// The simulated backend is the default and the only one that keeps the
/// publish hot path allocation-free; the real backends trade that for actual
/// bytes moving between threads or processes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// No replication: messages are cost accounting only (the default).
    #[default]
    Simulated,
    /// One replica per simulated processor; frames are `Arc`-shared over
    /// in-process `std::sync::mpsc` channels between the worker threads.
    Channel,
    /// This many replica peers served by in-process listener threads;
    /// frames are serialized and streamed over loopback TCP.
    SocketLocal(usize),
    /// Replica peers already running (separate processes, see
    /// [`serve_transport_peer`]) at these `host:port` addresses.
    SocketRemote(Vec<String>),
}

impl TransportKind {
    /// Short backend label used in reports and bench output.
    pub fn label(&self) -> &'static str {
        match self {
            TransportKind::Simulated => "sim",
            TransportKind::Channel => "channel",
            TransportKind::SocketLocal(_) | TransportKind::SocketRemote(_) => "socket",
        }
    }
}

/// End-of-run transport summary attached to every
/// [`RunResult`](crate::RunResult).
///
/// Under the simulated backend everything except `master_fnv` is zero.  The
/// real backends verify each replica's final contents against the engines'
/// master copies before returning, so a returned report certifies
/// `replicas_verified` byte-identical replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportReport {
    /// Backend label (`"sim"`, `"channel"`, `"socket"`).
    pub backend: &'static str,
    /// [`fnv64_regions`] fingerprint of the engines' final master copies —
    /// comparable across backends and across processes.
    pub master_fnv: u64,
    /// Replicas whose final contents were verified fingerprint-equal to the
    /// master copies.
    pub replicas_verified: usize,
    /// Publish frames sent (each counted once, however many receivers).
    pub frames_sent: u64,
    /// Bytes delivered, summed over receivers (for the channel backend: the
    /// bytes that *would* be on a wire in v2 batch form; the `Arc` handoff
    /// itself copies nothing).  Always `wire_bytes_payload + wire_bytes_meta`.
    pub wire_bytes: u64,
    /// The changed-bytes part of `wire_bytes`: run payloads, summed over
    /// receivers.
    pub wire_bytes_payload: u64,
    /// The ordering-metadata part of `wire_bytes`: frame headers, delta
    /// clock records, run tables and batch framing, summed over receivers.
    pub wire_bytes_meta: u64,
    /// Sends saved by epoch coalescing: frames that rode in an already-open
    /// batch instead of paying their own send (`frames_sent` minus batches).
    pub frames_coalesced: u64,
    /// Frames applied across all replicas.
    pub frames_applied: u64,
    /// Engine control broadcasts sent (adaptive LRC's migration commits;
    /// zero for every static policy).  Each replica's received count and
    /// XOR-FNV fingerprint are verified against the senders' totals.
    pub ctrl_frames: u64,
    /// Checkpoint images shipped to the replicas (zero unless a
    /// [`FaultPlan`](crate::FaultPlan) is armed); verified like control
    /// broadcasts.
    pub ckpt_frames: u64,
    /// Rollback notices shipped to the replicas (zero unless an injected
    /// crash actually fired); verified like control broadcasts.
    pub rollback_frames: u64,
}

/// Sentinel region index marking an in-process control frame (the channel
/// backend's counterpart of [`WireMsgKind::Ctrl`]): replicas fingerprint the
/// payload instead of applying it.
const CTRL_REGION: u32 = u32::MAX;

/// Sentinel region index for a checkpoint image (the channel backend's
/// counterpart of [`WireMsgKind::Ckpt`]): replicas count and fingerprint the
/// encoded [`dsm_mem::CkptImage`] without applying it.
const CKPT_REGION: u32 = u32::MAX - 1;

/// Sentinel region index for a rollback notice ([`WireMsgKind::Rollback`]):
/// a recovering node announcing it re-enters from its last checkpoint.
const ROLLBACK_REGION: u32 = u32::MAX - 2;

/// One replica of the shared regions, rebuilt purely from publish frames.
///
/// Frames of a region are applied strictly in `seq` order; out-of-order
/// arrivals wait in a per-region reorder buffer.  The per-region sequence
/// numbers are dense (the engines draw them from the same counter the
/// publish bumps), so a replica that has seen every frame always drains.
#[derive(Debug)]
struct Replica {
    regions: Vec<Vec<u8>>,
    /// Per region: the last applied sequence number (0 = none yet).
    applied_seq: Vec<u64>,
    /// Per region: frames that arrived ahead of their turn, keyed by seq.
    pending: Vec<BTreeMap<u64, Arc<WireFrame>>>,
    frames_applied: u64,
    bytes_received: u64,
    /// Control frames received and their order-independent fingerprint.
    ctrl_frames: u64,
    ctrl_fnv: u64,
    /// Checkpoint images received and their order-independent fingerprint.
    ckpt_frames: u64,
    ckpt_fnv: u64,
    /// Rollback notices received and their order-independent fingerprint.
    rollback_frames: u64,
    rollback_fnv: u64,
    /// Recycles applied frames' payload buffers back to the decode path, so
    /// a socket peer's read loop stops allocating per frame in steady state.
    pool: BufferPool,
}

impl Replica {
    fn new(init: &[Vec<u8>]) -> Self {
        Replica {
            regions: init.to_vec(),
            applied_seq: vec![0; init.len()],
            pending: init.iter().map(|_| BTreeMap::new()).collect(),
            frames_applied: 0,
            bytes_received: 0,
            ctrl_frames: 0,
            ctrl_fnv: 0,
            ckpt_frames: 0,
            ckpt_fnv: 0,
            rollback_frames: 0,
            rollback_fnv: 0,
            pool: BufferPool::new(),
        }
    }

    /// Folds one control payload into the replica's count and fingerprint.
    fn take_ctrl(&mut self, payload: &[u8]) {
        self.ctrl_frames += 1;
        self.ctrl_fnv ^= fnv64(payload);
    }

    /// Folds one checkpoint image into the replica's count and fingerprint.
    /// The image must at least decode — a replica is the crash-recovery
    /// escrow, so a malformed image is a transport bug worth failing on.
    fn take_ckpt(&mut self, payload: &[u8]) {
        assert!(
            dsm_mem::CkptImage::decode(payload).is_some(),
            "malformed checkpoint image reached a replica"
        );
        self.ckpt_frames += 1;
        self.ckpt_fnv ^= fnv64(payload);
    }

    /// Folds one rollback notice into the replica's count and fingerprint.
    fn take_rollback(&mut self, payload: &[u8]) {
        self.rollback_frames += 1;
        self.rollback_fnv ^= fnv64(payload);
    }

    /// Accepts a frame, applying it — and any unblocked successors — as soon
    /// as its region's sequence reaches it.  Uniquely-owned applied frames
    /// donate their payload buffer back to the pool.
    fn offer(&mut self, frame: Arc<WireFrame>) {
        match frame.region {
            CTRL_REGION => {
                self.take_ctrl(&frame.payload);
                return;
            }
            CKPT_REGION => {
                self.take_ckpt(&frame.payload);
                return;
            }
            ROLLBACK_REGION => {
                self.take_rollback(&frame.payload);
                return;
            }
            _ => {}
        }
        let r = frame.region as usize;
        assert!(r < self.regions.len(), "frame for unknown region {r}");
        self.pending[r].insert(frame.seq, frame);
        while let Some(f) = self.pending[r].remove(&(self.applied_seq[r] + 1)) {
            assert!(
                f.apply(&mut self.regions[r]),
                "frame run outside region {r}"
            );
            self.applied_seq[r] += 1;
            self.frames_applied += 1;
            if let Ok(owned) = Arc::try_unwrap(f) {
                self.pool.put(owned.payload);
            }
        }
    }

    /// Counts framed bytes (message headers included) received on node
    /// streams; the socket peer loop calls it once per message.
    fn note_received(&mut self, bytes: u64) {
        self.bytes_received += bytes;
    }

    /// True once no frame is waiting on a missing predecessor.
    fn drained(&self) -> bool {
        self.pending.iter().all(BTreeMap::is_empty)
    }

    fn fnv(&self) -> u64 {
        fnv64_regions(self.regions.iter().map(|r| r.as_slice()))
    }

    fn report(&self) -> WireReport {
        WireReport {
            contents_fnv: self.fnv(),
            frames_applied: self.frames_applied,
            bytes_received: self.bytes_received,
            ctrl_frames: self.ctrl_frames,
            ctrl_fnv: self.ctrl_fnv,
            ckpt_frames: self.ckpt_frames,
            ckpt_fnv: self.ckpt_fnv,
            rollback_frames: self.rollback_frames,
            rollback_fnv: self.rollback_fnv,
        }
    }
}

/// An epoch's worth of frames, handed to a peer's inbox in one send.
type FrameBatch = Vec<Arc<WireFrame>>;

/// Flush the socket batch buffer early if it outgrows this (pathological
/// epochs only; normal epochs are a few KiB).
const SOCKET_BATCH_LIMIT: usize = 4 << 20;

/// A worker thread's handle onto the transport: where its publish frames go.
///
/// Owned by the worker's `NodeLocal` for the duration of the run (`None`
/// under the simulated backend), handed back to the transport's
/// [`Transport::finish`] afterwards.  Publishes accumulate in a per-peer
/// send buffer; the engines call [`WireEndpoint::flush`] at each epoch
/// boundary (end of a publish event, after region locks are released).
#[derive(Debug)]
pub(crate) struct WireEndpoint {
    /// Frames this endpoint published.
    pub frames_sent: u64,
    /// Payload bytes delivered (changed-byte runs), summed over receivers.
    pub wire_bytes_payload: u64,
    /// Ordering-metadata bytes delivered (headers, delta clocks, run tables,
    /// batch framing), summed over receivers.
    pub wire_bytes_meta: u64,
    /// Sends saved by coalescing: frames beyond the first in each batch.
    pub frames_coalesced: u64,
    /// Control broadcasts this endpoint sent (see [`WireEndpoint::send_ctrl`]).
    pub ctrl_sent: u64,
    /// XOR of the [`fnv64`] of every control payload this endpoint sent.
    pub ctrl_fnv: u64,
    /// Checkpoint images this endpoint shipped (see
    /// [`WireEndpoint::send_ckpt`]).
    pub ckpt_sent: u64,
    /// XOR of the [`fnv64`] of every checkpoint image this endpoint sent.
    pub ckpt_fnv: u64,
    /// Rollback notices this endpoint sent (see
    /// [`WireEndpoint::send_rollback`]).
    pub rollback_sent: u64,
    /// XOR of the [`fnv64`] of every rollback notice this endpoint sent.
    pub rollback_fnv: u64,
    /// Scratch run table the engines fill while collecting a publish
    /// (borrowed out with `std::mem::take`, handed back after the frame is
    /// built, so steady-state publishes reuse its capacity).
    pub scratch_runs: Vec<(u32, u32)>,
    /// Delta codec for this endpoint's outgoing clock stream.  Every peer
    /// receives the identical stream, so one sender baseline serves all.
    enc: CompactClock,
    /// False until the first publish: the first frame of a stream carries
    /// its clock in full mode to seed the receivers' baselines.
    started: bool,
    inner: EndpointInner,
}

#[derive(Debug)]
enum EndpointInner {
    /// Channel backend: senders to every other node's inbox, this node's own
    /// inbox, and this node's own replica.
    Channel {
        peers: Vec<mpsc::Sender<FrameBatch>>,
        inbox: mpsc::Receiver<FrameBatch>,
        replica: Replica,
        /// Frames published since the last flush.
        pending: FrameBatch,
        /// Scratch for sizing the would-be-on-wire delta clock record.
        clock_scratch: Vec<u8>,
    },
    /// Socket backend: one raw TCP stream per replica peer (`TCP_NODELAY`
    /// set; batching makes the writes large, so Nagle only adds latency).
    Socket {
        conns: Vec<TcpStream>,
        /// The open batch message: header placeholder + encoded v2 frames.
        batch: Vec<u8>,
        batch_frames: u32,
        batch_payload: u64,
        /// Scratch one frame is encoded into before the length-prefixed
        /// append to `batch`.
        frame_buf: Vec<u8>,
    },
}

impl WireEndpoint {
    fn new(inner: EndpointInner) -> Box<Self> {
        Box::new(WireEndpoint {
            frames_sent: 0,
            wire_bytes_payload: 0,
            wire_bytes_meta: 0,
            frames_coalesced: 0,
            ctrl_sent: 0,
            ctrl_fnv: 0,
            ckpt_sent: 0,
            ckpt_fnv: 0,
            rollback_sent: 0,
            rollback_fnv: 0,
            scratch_runs: Vec::new(),
            enc: CompactClock::new(),
            started: false,
            inner,
        })
    }

    /// Total bytes this endpoint delivered, summed over receivers.
    pub fn wire_bytes(&self) -> u64 {
        self.wire_bytes_payload + self.wire_bytes_meta
    }

    /// Buffers one publish for replication: region-absolute changed-byte
    /// `runs` of `data`, totally ordered within the region by `seq` (dense,
    /// 1-based).  `clock` is the publisher's vector-clock entries (empty
    /// under EC).  Nothing moves until [`WireEndpoint::flush`].
    pub fn publish(
        &mut self,
        region: u32,
        seq: u64,
        clock: &[u32],
        runs: &[(u32, u32)],
        data: &[u8],
    ) {
        self.frames_sent += 1;
        let full = !self.started;
        self.started = true;
        let mut overflow = false;
        match &mut self.inner {
            EndpointInner::Channel {
                peers,
                pending,
                clock_scratch,
                ..
            } => {
                // Account the exact v2 wire form (the Arc handoff itself
                // moves no bytes): delta clock record + frame meta + payload,
                // per receiver, plus this frame's batch length prefix.
                clock_scratch.clear();
                let clock_rec = self.enc.encode_next(clock, full, clock_scratch);
                let payload_len: usize = runs.iter().map(|&(_, len)| len as usize).sum();
                let meta = frame_v2_meta_len(region, seq, clock_rec, runs);
                let receivers = peers.len() as u64 + 1;
                let framed_meta = (varint_len((meta + payload_len) as u64) + meta) as u64;
                self.wire_bytes_meta += framed_meta * receivers;
                self.wire_bytes_payload += payload_len as u64 * receivers;
                let mut payload = Vec::with_capacity(payload_len);
                for &(off, len) in runs {
                    payload.extend_from_slice(&data[off as usize..(off + len) as usize]);
                }
                pending.push(Arc::new(WireFrame {
                    region,
                    seq,
                    clock: clock.to_vec(),
                    runs: runs.to_vec(),
                    payload,
                }));
            }
            EndpointInner::Socket {
                batch,
                batch_frames,
                batch_payload,
                frame_buf,
                ..
            } => {
                frame_buf.clear();
                let (_, payload) = encode_frame_v2(
                    &FrameV2 {
                        region,
                        seq,
                        clock,
                        full,
                        runs,
                        data,
                    },
                    &mut self.enc,
                    frame_buf,
                );
                if batch.is_empty() {
                    begin_batch(batch);
                }
                put_varint(batch, frame_buf.len() as u64);
                batch.extend_from_slice(frame_buf);
                *batch_frames += 1;
                *batch_payload += payload as u64;
                overflow = batch.len() >= SOCKET_BATCH_LIMIT;
            }
        }
        if overflow {
            self.flush();
        }
    }

    /// Broadcasts one engine control payload (opaque bytes) to every replica,
    /// immediately — control frames bypass the epoch batch so they never
    /// perturb the data plane's coalescing accounting.  Replicas do not apply
    /// the payload; they count it and fold it into an order-independent
    /// XOR-FNV fingerprint that [`Transport::finish`] verifies against the
    /// senders' totals, proving every replica observed every broadcast.
    pub fn send_ctrl(&mut self, payload: &[u8]) {
        self.ctrl_sent += 1;
        self.ctrl_fnv ^= fnv64(payload);
        self.send_oob(CTRL_REGION, WireMsgKind::Ctrl, self.ctrl_sent, payload);
    }

    /// Ships one encoded [`dsm_mem::CkptImage`] to every replica,
    /// immediately (checkpoints cut at barrier boundaries must not wait in
    /// an epoch batch).  Replicas validate, count and fingerprint the image
    /// — it is the crash-recovery escrow, verified like control broadcasts.
    pub fn send_ckpt(&mut self, payload: &[u8]) {
        self.ckpt_sent += 1;
        self.ckpt_fnv ^= fnv64(payload);
        self.send_oob(CKPT_REGION, WireMsgKind::Ckpt, self.ckpt_sent, payload);
    }

    /// Announces to every replica that this node rolled back to its last
    /// checkpoint and is replaying (its republished frames follow under
    /// fresh sequences).
    pub fn send_rollback(&mut self, payload: &[u8]) {
        self.rollback_sent += 1;
        self.rollback_fnv ^= fnv64(payload);
        self.send_oob(
            ROLLBACK_REGION,
            WireMsgKind::Rollback,
            self.rollback_sent,
            payload,
        );
    }

    /// Shared delivery path of the out-of-band (non-data) frame kinds:
    /// bypasses the epoch batch so they never perturb the data plane's
    /// coalescing accounting, and costs one message per receiver
    /// (u32 length prefix + kind byte + body).
    fn send_oob(&mut self, region: u32, kind: WireMsgKind, seq: u64, payload: &[u8]) {
        match &mut self.inner {
            EndpointInner::Channel { peers, replica, .. } => {
                let frame = Arc::new(WireFrame {
                    region,
                    seq,
                    clock: Vec::new(),
                    runs: Vec::new(),
                    payload: payload.to_vec(),
                });
                self.wire_bytes_meta += (payload.len() as u64 + 5) * (peers.len() as u64 + 1);
                for peer in peers.iter() {
                    peer.send(vec![Arc::clone(&frame)])
                        .expect("peer inbox closed mid-run");
                }
                replica.offer(frame);
            }
            EndpointInner::Socket { conns, .. } => {
                // Written directly to each stream; the open data batch (if
                // any) is still unsent, so the message simply precedes it on
                // the wire — replicas treat out-of-band frames as order-free.
                for conn in conns.iter_mut() {
                    write_msg(conn, kind, payload).expect("replica peer connection lost mid-run");
                }
                self.wire_bytes_meta += (payload.len() as u64 + 5) * conns.len() as u64;
            }
        }
    }

    /// Delivers everything buffered since the last flush: one batch message
    /// per peer (one channel send, or one `write_all` per socket).  The
    /// engines call this at each epoch boundary; a flush with nothing
    /// pending only drains the inbox (channel) or is a no-op (socket).
    pub fn flush(&mut self) {
        match &mut self.inner {
            EndpointInner::Channel {
                peers,
                inbox,
                replica,
                pending,
                ..
            } => {
                if !pending.is_empty() {
                    self.frames_coalesced += pending.len() as u64 - 1;
                    self.wire_bytes_meta +=
                        wire::BATCH_HEADER_LEN as u64 * (peers.len() as u64 + 1);
                    for peer in peers.iter() {
                        peer.send(pending.clone())
                            .expect("peer inbox closed mid-run");
                    }
                    for f in pending.drain(..) {
                        replica.offer(f);
                    }
                }
                // Absorb whatever peers have flushed so far; the rest is
                // drained after the run, when every send is join-ordered
                // before the drain.
                while let Ok(batch) = inbox.try_recv() {
                    for f in batch {
                        replica.offer(f);
                    }
                }
            }
            EndpointInner::Socket {
                conns,
                batch,
                batch_frames,
                batch_payload,
                ..
            } => {
                if *batch_frames == 0 {
                    return;
                }
                finish_batch(batch, *batch_frames);
                for conn in conns.iter_mut() {
                    conn.write_all(batch)
                        .expect("replica peer connection lost mid-run");
                }
                let nconns = conns.len() as u64;
                self.wire_bytes_meta += (batch.len() as u64 - *batch_payload) * nconns;
                self.wire_bytes_payload += *batch_payload * nconns;
                self.frames_coalesced += *batch_frames as u64 - 1;
                batch.clear();
                *batch_frames = 0;
                *batch_payload = 0;
            }
        }
    }
}

/// The backend contract: hand one endpoint to each worker before the run,
/// collect them and verify every replica afterwards.
pub(crate) trait Transport: Send {
    /// Backend label for the report.
    fn label(&self) -> &'static str;

    /// The endpoint worker `node` publishes through, or `None` if this
    /// backend replicates nothing (simulated).
    fn take_endpoint(&mut self, node: NodeId) -> Option<Box<WireEndpoint>>;

    /// Completes the run: flushes every endpoint, drains and verifies every
    /// replica against the engines' final `master` copies and summarizes the
    /// traffic.
    ///
    /// Panics if any replica's contents diverge from the master — that is a
    /// transport bug, never a legal outcome.
    fn finish(&mut self, endpoints: Vec<WireEndpoint>, master: &[Vec<u8>]) -> TransportReport;
}

/// Builds the transport for a run.  The single place [`TransportKind`] is
/// dispatched on.
pub(crate) fn build_transport(cfg: &DsmConfig, init: &[Vec<u8>]) -> Box<dyn Transport> {
    match &cfg.transport {
        TransportKind::Simulated => Box::new(SimulatedTransport),
        TransportKind::Channel => Box::new(ChannelTransport::new(cfg.nprocs, init)),
        TransportKind::SocketLocal(npeers) => {
            Box::new(SocketTransport::new_local(cfg.nprocs, *npeers, init))
        }
        TransportKind::SocketRemote(addrs) => {
            Box::new(SocketTransport::new_remote(cfg.nprocs, addrs, init))
        }
    }
}

fn empty_report(backend: &'static str, master: &[Vec<u8>]) -> TransportReport {
    TransportReport {
        backend,
        master_fnv: fnv64_regions(master.iter().map(|r| r.as_slice())),
        replicas_verified: 0,
        frames_sent: 0,
        wire_bytes: 0,
        wire_bytes_payload: 0,
        wire_bytes_meta: 0,
        frames_coalesced: 0,
        frames_applied: 0,
        ctrl_frames: 0,
        ckpt_frames: 0,
        rollback_frames: 0,
    }
}

/// Folds one finished endpoint's counters into the report.
fn absorb_endpoint(report: &mut TransportReport, ep: &WireEndpoint) {
    report.frames_sent += ep.frames_sent;
    report.wire_bytes_payload += ep.wire_bytes_payload;
    report.wire_bytes_meta += ep.wire_bytes_meta;
    report.wire_bytes += ep.wire_bytes();
    report.frames_coalesced += ep.frames_coalesced;
    report.ctrl_frames += ep.ctrl_sent;
    report.ckpt_frames += ep.ckpt_sent;
    report.rollback_frames += ep.rollback_sent;
}

/// The out-of-band totals a set of finished endpoints implies, as
/// `(count, fnv)` pairs for control broadcasts, checkpoint images and
/// rollback notices: every replica must have received each count of frames
/// with the matching order-independent XOR-FNV fingerprint.  Which endpoint
/// sent each one is timing-dependent, but the totals are not.
fn expected_oob(endpoints: &[WireEndpoint]) -> [(u64, u64); 3] {
    endpoints.iter().fold([(0, 0); 3], |mut acc, ep| {
        acc[0] = (acc[0].0 + ep.ctrl_sent, acc[0].1 ^ ep.ctrl_fnv);
        acc[1] = (acc[1].0 + ep.ckpt_sent, acc[1].1 ^ ep.ckpt_fnv);
        acc[2] = (acc[2].0 + ep.rollback_sent, acc[2].1 ^ ep.rollback_fnv);
        acc
    })
}

/// The default backend: no endpoints, no replication, no bytes.  Publishes
/// stay exactly the branch-free accounting they were before the transport
/// layer existed.
#[derive(Debug)]
struct SimulatedTransport;

impl Transport for SimulatedTransport {
    fn label(&self) -> &'static str {
        "sim"
    }

    fn take_endpoint(&mut self, _node: NodeId) -> Option<Box<WireEndpoint>> {
        None
    }

    fn finish(&mut self, _endpoints: Vec<WireEndpoint>, master: &[Vec<u8>]) -> TransportReport {
        empty_report(self.label(), master)
    }
}

/// In-process channel backend: every node owns a full replica and an inbox;
/// a flush `Arc`-clones the epoch's frames into every other node's inbox in
/// one send.
#[derive(Debug)]
struct ChannelTransport {
    endpoints: Vec<Option<Box<WireEndpoint>>>,
}

/// One node's frame channel: the sender peers clone, the node's own inbox.
type BatchChannel = (mpsc::Sender<FrameBatch>, mpsc::Receiver<FrameBatch>);

impl ChannelTransport {
    fn new(nprocs: usize, init: &[Vec<u8>]) -> Self {
        let channels: Vec<BatchChannel> = (0..nprocs).map(|_| mpsc::channel()).collect();
        let senders: Vec<mpsc::Sender<FrameBatch>> =
            channels.iter().map(|(tx, _)| tx.clone()).collect();
        let endpoints = channels
            .into_iter()
            .enumerate()
            .map(|(p, (_, inbox))| {
                let peers = senders
                    .iter()
                    .enumerate()
                    .filter(|&(q, _)| q != p)
                    .map(|(_, tx)| tx.clone())
                    .collect();
                Some(WireEndpoint::new(EndpointInner::Channel {
                    peers,
                    inbox,
                    replica: Replica::new(init),
                    pending: Vec::new(),
                    clock_scratch: Vec::new(),
                }))
            })
            .collect();
        ChannelTransport { endpoints }
    }
}

impl Transport for ChannelTransport {
    fn label(&self) -> &'static str {
        "channel"
    }

    fn take_endpoint(&mut self, node: NodeId) -> Option<Box<WireEndpoint>> {
        self.endpoints[node.index()].take()
    }

    fn finish(&mut self, mut endpoints: Vec<WireEndpoint>, master: &[Vec<u8>]) -> TransportReport {
        // Flush every endpoint before draining any replica: a replica's
        // inbox is complete only once all of its peers have flushed.
        for ep in endpoints.iter_mut() {
            ep.flush();
        }
        let [ctrl, ckpt, rollback] = expected_oob(&endpoints);
        let mut report = empty_report(self.label(), master);
        for ep in endpoints {
            absorb_endpoint(&mut report, &ep);
            let EndpointInner::Channel {
                inbox, mut replica, ..
            } = ep.inner
            else {
                unreachable!("channel transport only hands out channel endpoints");
            };
            // Every worker thread has been joined, so every send
            // happens-before this drain: the inbox holds the complete
            // remainder of the run's frames.
            while let Ok(batch) = inbox.try_recv() {
                for f in batch {
                    replica.offer(f);
                }
            }
            assert!(replica.drained(), "replica is missing publish frames");
            assert_eq!(
                replica.fnv(),
                report.master_fnv,
                "channel replica diverged from the engines' master copies"
            );
            assert_eq!(
                (replica.ctrl_frames, replica.ctrl_fnv),
                ctrl,
                "channel replica missed an engine control broadcast"
            );
            assert_eq!(
                (replica.ckpt_frames, replica.ckpt_fnv),
                ckpt,
                "channel replica missed a checkpoint image"
            );
            assert_eq!(
                (replica.rollback_frames, replica.rollback_fnv),
                rollback,
                "channel replica missed a rollback notice"
            );
            report.frames_applied += replica.frames_applied;
            report.replicas_verified += 1;
        }
        report
    }
}

/// Socket backend: replica peers behind loopback TCP, either served by
/// in-process listener threads or by already-running remote processes.
#[derive(Debug)]
struct SocketTransport {
    endpoints: Vec<Option<Box<WireEndpoint>>>,
    /// Control connection to each peer; the end-of-run [`WireReport`] comes
    /// back on it.
    controls: Vec<TcpStream>,
    /// In-process peer threads (`SocketLocal` only), joined at finish.
    servers: Vec<std::thread::JoinHandle<io::Result<()>>>,
}

impl SocketTransport {
    /// Spawns `npeers` in-process replica peers and connects to them.
    fn new_local(nprocs: usize, npeers: usize, init: &[Vec<u8>]) -> Self {
        assert!(npeers >= 1, "socket transport needs at least one peer");
        let mut addrs = Vec::with_capacity(npeers);
        let mut servers = Vec::with_capacity(npeers);
        for _ in 0..npeers {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
            addrs.push(listener.local_addr().expect("listener address").to_string());
            servers.push(std::thread::spawn(move || serve_transport_peer(listener)));
        }
        let mut transport = Self::connect(nprocs, &addrs, init);
        transport.servers = servers;
        transport
    }

    /// Connects to replica peers already running at `addrs`.
    fn new_remote(nprocs: usize, addrs: &[String], init: &[Vec<u8>]) -> Self {
        assert!(
            !addrs.is_empty(),
            "socket transport needs at least one peer"
        );
        Self::connect(nprocs, addrs, init)
    }

    fn connect(nprocs: usize, addrs: &[String], init: &[Vec<u8>]) -> Self {
        // Control connection first: it carries the bootstrap Init (cluster
        // shape, initial region images) the peer needs before it can accept
        // node streams.
        let mut init_body = Vec::new();
        WireInit {
            nprocs: nprocs as u32,
            regions: init.to_vec(),
        }
        .encode_into(&mut init_body);
        let mut controls = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let mut conn = TcpStream::connect(addr).expect("connect to replica peer");
            conn.set_nodelay(true).expect("set TCP_NODELAY");
            conn.write_all(b"C").expect("send control role");
            write_msg(&mut conn, WireMsgKind::Init, &init_body).expect("send init");
            controls.push(conn);
        }
        let endpoints = (0..nprocs)
            .map(|_| {
                let conns = addrs
                    .iter()
                    .map(|addr| {
                        let mut conn = TcpStream::connect(addr).expect("connect to replica peer");
                        conn.set_nodelay(true).expect("set TCP_NODELAY");
                        conn.write_all(b"N").expect("send node role");
                        conn
                    })
                    .collect();
                Some(WireEndpoint::new(EndpointInner::Socket {
                    conns,
                    batch: Vec::new(),
                    batch_frames: 0,
                    batch_payload: 0,
                    frame_buf: Vec::new(),
                }))
            })
            .collect();
        SocketTransport {
            endpoints,
            controls,
            servers: Vec::new(),
        }
    }
}

impl Transport for SocketTransport {
    fn label(&self) -> &'static str {
        "socket"
    }

    fn take_endpoint(&mut self, node: NodeId) -> Option<Box<WireEndpoint>> {
        self.endpoints[node.index()].take()
    }

    fn finish(&mut self, mut endpoints: Vec<WireEndpoint>, master: &[Vec<u8>]) -> TransportReport {
        let mut report = empty_report(self.label(), master);
        // Flush any leftover batch, then close every node stream cleanly:
        // Fin, drop.
        for ep in endpoints.iter_mut() {
            ep.flush();
        }
        let [ctrl, ckpt, rollback] = expected_oob(&endpoints);
        for ep in endpoints {
            absorb_endpoint(&mut report, &ep);
            let EndpointInner::Socket { mut conns, .. } = ep.inner else {
                unreachable!("socket transport only hands out socket endpoints");
            };
            for conn in conns.iter_mut() {
                write_msg(conn, WireMsgKind::Fin, &[]).expect("send fin");
            }
        }
        // Every peer now sees nprocs Fins and reports back.
        let mut body = Vec::new();
        for control in self.controls.drain(..) {
            let mut control = control;
            let kind = read_msg(&mut control, &mut body).expect("read peer report");
            assert_eq!(kind, Some(WireMsgKind::Report), "peer sent a non-report");
            let peer = WireReport::decode(&body).expect("malformed peer report");
            assert_eq!(
                peer.contents_fnv, report.master_fnv,
                "socket replica diverged from the engines' master copies"
            );
            assert_eq!(
                (peer.ctrl_frames, peer.ctrl_fnv),
                ctrl,
                "socket replica missed an engine control broadcast"
            );
            assert_eq!(
                (peer.ckpt_frames, peer.ckpt_fnv),
                ckpt,
                "socket replica missed a checkpoint image"
            );
            assert_eq!(
                (peer.rollback_frames, peer.rollback_fnv),
                rollback,
                "socket replica missed a rollback notice"
            );
            report.frames_applied += peer.frames_applied;
            report.replicas_verified += 1;
        }
        for server in self.servers.drain(..) {
            server
                .join()
                .expect("replica peer thread panicked")
                .expect("replica peer failed");
        }
        report
    }
}

/// Serves one replica peer on `listener` until the run completes, then
/// returns.  This is the *entire* peer: the in-process `SocketLocal` threads
/// and the separate `SocketRemote` processes both run exactly this function.
///
/// Protocol: every inbound connection announces its role with one byte —
/// `C` for the single control connection, which immediately carries an
/// `Init` message (number of node streams to expect, initial region
/// images), or `N` for a node stream carrying `Batch` (or legacy `Frame`)
/// messages and a final `Fin`.  One reader thread serves each node stream
/// end to end: it owns the stream's receive-side [`CompactClock`] baseline
/// (the delta clock records of a stream replay against it in order) and a
/// reusable message buffer, reads through a [`io::BufReader`], and applies
/// decoded frames straight into the shared replica under a mutex — no
/// cross-thread handoff, no per-message allocation (payload buffers come
/// from the replica's [`BufferPool`], which recycles applied frames).  Once
/// every node stream has finished, the peer writes its [`WireReport`]
/// (contents fingerprint, frames applied, bytes received) back on the
/// control connection.
///
/// # Errors
///
/// Returns an error if a connection misbehaves (unknown role byte, corrupt
/// message, unexpected disconnect) or a frame arrives for an unknown
/// region's sequence that never completes.
pub fn serve_transport_peer(listener: TcpListener) -> io::Result<()> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());

    // Accept the control connection (with its Init) and the node streams, in
    // whatever order they arrive.
    let mut control: Option<TcpStream> = None;
    let mut init: Option<WireInit> = None;
    let mut nodes: Vec<TcpStream> = Vec::new();
    let mut body = Vec::new();
    loop {
        if let Some(i) = &init {
            if nodes.len() as u32 >= i.nprocs {
                break;
            }
        }
        let (mut conn, _) = listener.accept()?;
        conn.set_nodelay(true)?;
        let mut role = [0u8; 1];
        conn.read_exact(&mut role)?;
        match role[0] {
            b'C' => {
                if read_msg(&mut conn, &mut body)? != Some(WireMsgKind::Init) {
                    return Err(bad("expected an init message on the control connection"));
                }
                init = Some(WireInit::decode(&body).ok_or_else(|| bad("malformed init"))?);
                control = Some(conn);
            }
            b'N' => nodes.push(conn),
            _ => return Err(bad("unknown connection role byte")),
        }
    }
    let init = init.expect("loop exits only with init");
    let mut control = control.expect("init arrived on the control connection");

    // One reader thread per node stream, each decoding and applying its own
    // stream directly (the reorder buffer restores per-region publish
    // order, so streams can interleave freely under the replica mutex).
    let replica = std::sync::Mutex::new(Replica::new(&init.regions));
    std::thread::scope(|scope| -> io::Result<()> {
        let handles: Vec<_> = nodes
            .into_iter()
            .map(|conn| {
                let replica = &replica;
                scope.spawn(move || -> io::Result<()> {
                    // Receive side of this stream's delta clock codec, and a
                    // message buffer reused across the whole stream.
                    let mut codec = CompactClock::new();
                    let mut body = Vec::new();
                    let mut conn = io::BufReader::new(conn);
                    loop {
                        match read_msg(&mut conn, &mut body)? {
                            Some(WireMsgKind::Batch) => {
                                let mut r = sync_lock(replica);
                                r.note_received(body.len() as u64 + 5);
                                let mut frames = BatchReader::new(&body)
                                    .ok_or_else(|| bad("batch lacks a frame count"))?;
                                while frames.remaining() > 0 {
                                    let frame = frames
                                        .next(&mut codec, &mut r.pool)
                                        .ok_or_else(|| bad("malformed frame in batch"))?;
                                    r.offer(Arc::new(frame));
                                }
                                if !frames.finished() {
                                    return Err(bad("trailing bytes after the last batch frame"));
                                }
                            }
                            Some(WireMsgKind::Frame) => {
                                let frame = WireFrame::decode(&body)
                                    .ok_or_else(|| bad("malformed frame"))?;
                                let mut r = sync_lock(replica);
                                r.note_received(body.len() as u64 + 5);
                                r.offer(Arc::new(frame));
                            }
                            Some(WireMsgKind::Ctrl) => {
                                let mut r = sync_lock(replica);
                                r.note_received(body.len() as u64 + 5);
                                r.take_ctrl(&body);
                            }
                            Some(WireMsgKind::Ckpt) => {
                                let mut r = sync_lock(replica);
                                r.note_received(body.len() as u64 + 5);
                                r.take_ckpt(&body);
                            }
                            Some(WireMsgKind::Rollback) => {
                                let mut r = sync_lock(replica);
                                r.note_received(body.len() as u64 + 5);
                                r.take_rollback(&body);
                            }
                            Some(WireMsgKind::Fin) | None => return Ok(()),
                            Some(_) => return Err(bad("unexpected message on a node stream")),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("node stream reader panicked")?;
        }
        Ok(())
    })?;

    let replica = replica.into_inner().expect("readers joined cleanly");
    if !replica.drained() {
        return Err(bad("stream ended with frames waiting on missing sequences"));
    }
    body.clear();
    replica.report().encode_into(&mut body);
    write_msg(&mut control, WireMsgKind::Report, &body)?;
    Ok(())
}

/// Locks a mutex, propagating a poisoned-lock panic (a reader thread died
/// mid-apply; the replica is unusable anyway).
fn sync_lock<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().expect("replica mutex poisoned")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(region: u32, seq: u64, off: u32, byte: u8) -> Arc<WireFrame> {
        Arc::new(WireFrame {
            region,
            seq,
            clock: vec![],
            runs: vec![(off, 1)],
            payload: vec![byte],
        })
    }

    #[test]
    fn replica_reorders_frames_per_region() {
        let init = vec![vec![0u8; 8], vec![0u8; 4]];
        let mut r = Replica::new(&init);
        // Region 0's seq 2 must wait for seq 1; region 1 is independent.
        r.offer(frame(0, 2, 1, 22));
        assert_eq!(r.frames_applied, 0);
        assert!(!r.drained());
        r.offer(frame(1, 1, 0, 9));
        assert_eq!(r.frames_applied, 1);
        r.offer(frame(0, 1, 0, 11));
        assert_eq!(r.frames_applied, 3);
        assert!(r.drained());
        assert_eq!(r.regions[0][..2], [11, 22]);
        assert_eq!(r.regions[1][0], 9);
        let expect = {
            let mut m = init.clone();
            m[0][0] = 11;
            m[0][1] = 22;
            m[1][0] = 9;
            fnv64_regions(m.iter().map(|x| x.as_slice()))
        };
        assert_eq!(r.fnv(), expect);
    }

    #[test]
    fn replica_recycles_applied_payload_buffers() {
        let mut r = Replica::new(&[vec![0u8; 8]]);
        // Uniquely-owned frames donate their payloads back to the pool.
        r.offer(frame(0, 1, 0, 1));
        r.offer(frame(0, 2, 1, 2));
        assert_eq!(r.pool.idle(), 2);
    }

    #[test]
    #[should_panic(expected = "outside region")]
    fn replica_rejects_out_of_range_runs() {
        let mut r = Replica::new(&[vec![0u8; 4]]);
        r.offer(frame(0, 1, 100, 5));
    }

    #[test]
    fn channel_endpoints_replicate_and_verify() {
        let init = vec![vec![0u8; 16]];
        let mut t = ChannelTransport::new(2, &init);
        let mut a = t.take_endpoint(NodeId::new(0)).expect("endpoint");
        let mut b = t.take_endpoint(NodeId::new(1)).expect("endpoint");
        let mut master = init.clone();
        master[0][0..4].copy_from_slice(&[1, 2, 3, 4]);
        a.publish(0, 1, &[1, 0], &[(0, 4)], &master[0]);
        master[0][8] = 9;
        b.publish(0, 2, &[1, 1], &[(8, 1)], &master[0]);
        assert_eq!(a.frames_sent, 1);
        assert!(a.wire_bytes() > 0, "accounted at publish");
        assert_eq!(a.wire_bytes_payload, 4 * 2, "4 payload bytes × 2 receivers");
        let report = t.finish(vec![*a, *b], &master);
        assert_eq!(report.backend, "channel");
        assert_eq!(report.replicas_verified, 2);
        assert_eq!(report.frames_sent, 2);
        // Both replicas applied both frames.
        assert_eq!(report.frames_applied, 4);
        assert_eq!(
            report.wire_bytes,
            report.wire_bytes_payload + report.wire_bytes_meta
        );
        assert_eq!(
            report.master_fnv,
            fnv64_regions(master.iter().map(|r| r.as_slice()))
        );
    }

    #[test]
    fn channel_flush_coalesces_an_epochs_frames() {
        let init = vec![vec![0u8; 16], vec![0u8; 16]];
        let mut t = ChannelTransport::new(2, &init);
        let mut a = t.take_endpoint(NodeId::new(0)).expect("endpoint");
        let b = t.take_endpoint(NodeId::new(1)).expect("endpoint");
        let mut master = init.clone();
        master[0][0] = 1;
        master[1][0] = 2;
        // Two frames in one epoch ride one batch: one send per peer.
        a.publish(0, 1, &[1, 0], &[(0, 1)], &master[0]);
        a.publish(1, 1, &[1, 0], &[(0, 1)], &master[1]);
        assert_eq!(a.frames_coalesced, 0, "nothing moved before the flush");
        a.flush();
        assert_eq!(a.frames_coalesced, 1);
        let report = t.finish(vec![*a, *b], &master);
        assert_eq!(report.frames_sent, 2);
        assert_eq!(report.frames_coalesced, 1);
        assert_eq!(report.frames_applied, 4);
    }

    #[test]
    #[should_panic(expected = "diverged")]
    fn channel_divergence_is_caught() {
        let init = vec![vec![0u8; 8]];
        let mut t = ChannelTransport::new(1, &init);
        let a = t.take_endpoint(NodeId::new(0)).expect("endpoint");
        // The master claims a write the endpoint never published.
        let mut master = init.clone();
        master[0][0] = 7;
        t.finish(vec![*a], &master);
    }

    #[test]
    fn socket_local_round_trip_over_loopback() {
        let init = vec![vec![0u8; 32], vec![5u8; 8]];
        let mut t = SocketTransport::new_local(2, 2, &init);
        let mut a = t.take_endpoint(NodeId::new(0)).expect("endpoint");
        let mut b = t.take_endpoint(NodeId::new(1)).expect("endpoint");
        let mut master = init.clone();
        master[0][4..8].copy_from_slice(&[9, 9, 9, 9]);
        a.publish(0, 1, &[], &[(4, 4)], &master[0]);
        master[1][0] = 0;
        b.publish(1, 1, &[], &[(0, 1)], &master[1]);
        let report = t.finish(vec![*a, *b], &master);
        assert_eq!(report.backend, "socket");
        assert_eq!(report.replicas_verified, 2);
        assert_eq!(report.frames_sent, 2);
        assert_eq!(report.frames_applied, 4);
        assert!(report.wire_bytes > 0);
        assert_eq!(
            report.wire_bytes_payload,
            5 * 2,
            "5 payload bytes × 2 peers"
        );
        assert_eq!(
            report.wire_bytes,
            report.wire_bytes_payload + report.wire_bytes_meta
        );
    }

    #[test]
    fn socket_batches_with_vector_clocks_round_trip() {
        let init = vec![vec![0u8; 64]];
        let mut t = SocketTransport::new_local(1, 1, &init);
        let mut a = t.take_endpoint(NodeId::new(0)).expect("endpoint");
        let mut master = init.clone();
        // Three epochs of two frames each, with advancing clocks: exercises
        // the delta codec (full first record, deltas after) and coalescing.
        for epoch in 1..=3u64 {
            let clock = [epoch as u32, epoch as u32 * 2];
            master[0][epoch as usize] = epoch as u8;
            a.publish(0, epoch * 2 - 1, &clock, &[(epoch as u32, 1)], &master[0]);
            master[0][32 + epoch as usize] = epoch as u8;
            a.publish(0, epoch * 2, &clock, &[(32 + epoch as u32, 1)], &master[0]);
            a.flush();
        }
        assert_eq!(a.frames_coalesced, 3, "one per two-frame epoch");
        let report = t.finish(vec![*a], &master);
        assert_eq!(report.replicas_verified, 1);
        assert_eq!(report.frames_sent, 6);
        assert_eq!(report.frames_applied, 6);
        assert_eq!(report.frames_coalesced, 3);
    }

    #[test]
    fn channel_ctrl_broadcasts_reach_every_replica() {
        let init = vec![vec![0u8; 16]];
        let mut t = ChannelTransport::new(2, &init);
        let mut a = t.take_endpoint(NodeId::new(0)).expect("endpoint");
        let mut b = t.take_endpoint(NodeId::new(1)).expect("endpoint");
        let mut master = init.clone();
        master[0][0] = 1;
        a.publish(0, 1, &[1, 0], &[(0, 1)], &master[0]);
        // Control broadcasts from both sides, interleaved with data.
        a.send_ctrl(&[1, 2, 3]);
        b.send_ctrl(&[4, 5]);
        assert_eq!(a.ctrl_sent, 1);
        assert_eq!(a.frames_sent, 1, "ctrl frames are not data frames");
        let report = t.finish(vec![*a, *b], &master);
        assert_eq!(report.ctrl_frames, 2);
        assert_eq!(report.replicas_verified, 2);
        assert_eq!(report.frames_applied, 2, "one data frame × two replicas");
    }

    #[test]
    #[should_panic(expected = "control broadcast")]
    fn channel_ctrl_divergence_is_caught() {
        let init = vec![vec![0u8; 8]];
        let mut t = ChannelTransport::new(1, &init);
        let mut a = t.take_endpoint(NodeId::new(0)).expect("endpoint");
        // Claim a broadcast that never went out: the replica's count can't
        // match.
        a.ctrl_sent = 1;
        t.finish(vec![*a], &init);
    }

    #[test]
    fn socket_ctrl_broadcasts_reach_every_peer() {
        let init = vec![vec![0u8; 32]];
        let mut t = SocketTransport::new_local(2, 2, &init);
        let mut a = t.take_endpoint(NodeId::new(0)).expect("endpoint");
        let mut b = t.take_endpoint(NodeId::new(1)).expect("endpoint");
        let mut master = init.clone();
        master[0][0] = 7;
        // A ctrl broadcast while a's data batch is still open: the peer must
        // account both, in any order.
        a.publish(0, 1, &[], &[(0, 1)], &master[0]);
        a.send_ctrl(&[9, 9, 9, 9]);
        b.send_ctrl(&[8]);
        let report = t.finish(vec![*a, *b], &master);
        assert_eq!(report.ctrl_frames, 2);
        assert_eq!(report.replicas_verified, 2);
        assert_eq!(report.frames_applied, 2);
    }

    #[test]
    fn simulated_transport_hands_out_nothing() {
        let mut t = SimulatedTransport;
        assert!(t.take_endpoint(NodeId::new(0)).is_none());
        let master = vec![vec![3u8; 4]];
        let report = t.finish(Vec::new(), &master);
        assert_eq!(report.backend, "sim");
        assert_eq!(report.replicas_verified, 0);
        assert_eq!(
            report.master_fnv,
            fnv64_regions(master.iter().map(|r| r.as_slice()))
        );
    }

    #[test]
    fn transport_kind_labels() {
        assert_eq!(TransportKind::default(), TransportKind::Simulated);
        assert_eq!(TransportKind::Simulated.label(), "sim");
        assert_eq!(TransportKind::Channel.label(), "channel");
        assert_eq!(TransportKind::SocketLocal(2).label(), "socket");
        assert_eq!(TransportKind::SocketRemote(vec![]).label(), "socket");
    }
}
