//! Error type for the DSM runtime.

use std::error::Error;
use std::fmt;

/// Errors reported by the DSM runtime and configuration layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DsmError {
    /// The requested trapping/collection combination is not supported
    /// (compiler instrumentation + diffing, as in the paper).
    UnsupportedCombination,
    /// The configuration is invalid (e.g. zero processors).
    InvalidConfig(String),
    /// An EC program accessed or released a lock it does not hold, bound a
    /// lock twice inconsistently, or similar protocol misuse.
    ProtocolMisuse(String),
    /// A shared-memory access was out of the bounds of its region.
    OutOfBounds {
        /// The region that was accessed.
        region: String,
        /// The offending byte offset.
        offset: usize,
        /// The region length.
        len: usize,
    },
}

impl fmt::Display for DsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DsmError::UnsupportedCombination => {
                f.write_str("compiler instrumentation cannot be combined with diffing")
            }
            DsmError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            DsmError::ProtocolMisuse(msg) => write!(f, "protocol misuse: {msg}"),
            DsmError::OutOfBounds {
                region,
                offset,
                len,
            } => write!(
                f,
                "shared access at byte {offset} is outside region {region} of {len} bytes"
            ),
        }
    }
}

impl Error for DsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errs: Vec<DsmError> = vec![
            DsmError::UnsupportedCombination,
            DsmError::InvalidConfig("nprocs".into()),
            DsmError::ProtocolMisuse("release without acquire".into()),
            DsmError::OutOfBounds {
                region: "R0".into(),
                offset: 10,
                len: 4,
            },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase() || msg.starts_with("shared"));
        }
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<DsmError>();
    }
}
