//! Shared (engine-side) state of the LRC protocol family: master copies,
//! block stamps, per-page write-notice indexes and per-lock release vectors.
//!
//! The state is policy-independent: both the homeless and the home-based
//! [`DataPolicy`](super::policy::DataPolicy) operate on the same structures —
//! a policy only changes *where data moves* (and what that movement costs),
//! never what the ordering layer records.

use std::collections::VecDeque;

use dsm_mem::{ClockDelta, FlatUpdate, PageSharing, VectorClock};
use dsm_sim::NodeId;

use crate::engine::PublishRec;

/// Packs an LRC `(node, interval)` timestamp into a `u64` (0 = never written).
pub(crate) fn pack_stamp(node: NodeId, interval: u32) -> u64 {
    ((node.index() as u64 + 1) << 32) | interval as u64
}

/// Unpacks a stamp produced by [`pack_stamp`]; `None` for the never-written
/// sentinel.
pub(crate) fn unpack_stamp(stamp: u64) -> Option<(NodeId, u32)> {
    if stamp == 0 {
        None
    } else {
        Some((
            NodeId::new((stamp >> 32) as u32 - 1),
            (stamp & 0xffff_ffff) as u32,
        ))
    }
}

/// One publish to a page: the writer, its interval, and the *delta* of its
/// publish-time vector against the previous record's.  The bounded per-page
/// history of these records is the simulation's stand-in for the write
/// notices a real node would have received: freshness and responder
/// decisions read only the records the faulting node's vector *entitles* it
/// to, so a concurrent publish the node has not yet synchronized with can
/// never change the outcome of its check.  (The raw `latest` high water
/// marks are updated racily by design and must only feed monotone,
/// stats-neutral fast paths such as the caught-up check.)
///
/// Storing the delta instead of the full vector shrinks each record from
/// `O(nprocs)` words to `O(runs of change)` — under coarse synchronization a
/// publish typically advances every entry by the same amount, which is a
/// single run.  The full vector of record `i` is reconstructed on demand by
/// replaying deltas `0..=i` over the page's
/// [`base_clock`](LrcPageState::base_clock)
/// (see [`LrcPageState::reconstruct_pub_clock`]).
#[derive(Debug, Clone)]
pub(crate) struct PagePub {
    /// The publishing node.
    pub node: NodeId,
    /// The interval the publish ended.
    pub interval: u32,
    /// The publisher's vector at publish time (own entry already bumped),
    /// as a delta from the previous retained record's vector — or from
    /// `base_clock` for the oldest retained record.
    pub delta: ClockDelta,
}

/// Per-page lazy-release-consistency state.
#[derive(Debug, Clone)]
pub(crate) struct LrcPageState {
    /// Per node: the latest interval in which that node published
    /// modifications to this page (0 = never).
    pub latest: Vec<u32>,
    /// Ring of recent publishes to this page, oldest first (see [`PagePub`]).
    pub history: VecDeque<PagePub>,
    /// Anchor of the history's delta chain: the publish-time vector of the
    /// most recently evicted record (all-zero while nothing has been
    /// evicted).  The oldest retained record's delta applies on top of this.
    pub base_clock: VectorClock,
    /// The newest retained record's publish-time vector — the running end of
    /// the delta chain, kept materialized so appending a record is one
    /// `O(nprocs)` diff (no replay).
    pub head_clock: VectorClock,
    /// Per node: the largest publish interval that has been evicted from
    /// `history` (0 = none).  Below this mark the engine conservatively
    /// assumes the page was touched.
    pub evicted_latest: Vec<u32>,
    /// Ring of recent per-interval publish records for traffic accounting.
    pub diffs: VecDeque<PublishRec>,
    /// Version of this page's block stamps: bumped every time a publish
    /// writes new stamps for the page, so consumers can tell whether a
    /// cached flattening of the stamp array is still current.
    pub stamp_ver: u64,
    /// Flattened-diff snapshot of the page: the per-block stamps run-length
    /// encoded into maximal same-stamp runs, as of version `snap_ver`.
    /// Built lazily at the first access miss after a publish and reused (no
    /// rebuild, no per-consumer copy) by every later miss on the page until
    /// the next publish — the apply loop walks these runs instead of every
    /// block.  `snap_ver != stamp_ver` marks the snapshot stale.
    pub snap: FlatUpdate,
    /// The `stamp_ver` the snapshot was built at (`u64::MAX` = never built).
    pub snap_ver: u64,
    /// Sharing-statistics accumulator: publish/miss/diff-byte counts per
    /// observation window plus run totals.  Every LRC-family policy records
    /// into it (the totals feed [`TrafficReport`](dsm_sim::TrafficReport)
    /// sharing roll-ups); only the adaptive policy closes windows and acts
    /// on them.  Recorded strictly under the region write lock.
    pub sharing: PageSharing,
}

impl LrcPageState {
    /// Empty page state for a cluster of `nprocs` processors.
    pub fn new(nprocs: usize) -> Self {
        LrcPageState {
            latest: vec![0; nprocs],
            history: VecDeque::new(),
            base_clock: VectorClock::new(nprocs),
            head_clock: VectorClock::new(nprocs),
            evicted_latest: vec![0; nprocs],
            diffs: VecDeque::new(),
            stamp_ver: 0,
            snap: FlatUpdate::new(),
            snap_ver: u64::MAX,
            sharing: PageSharing::new(nprocs),
        }
    }

    /// Appends a publish record for `node` ending `interval` with
    /// publish-time vector `clock`, keeping at most `ring` records.
    ///
    /// The record stores only the delta against the current chain head; an
    /// evicted record's delta is folded into [`base_clock`] so the chain
    /// stays replayable, and its buffers are recycled into the new record so
    /// steady-state publishes allocate nothing.
    ///
    /// [`base_clock`]: LrcPageState::base_clock
    pub fn push_pub(&mut self, node: NodeId, interval: u32, clock: &VectorClock, ring: usize) {
        let mut rec = if self.history.len() >= ring {
            let old = self.history.pop_front().expect("non-empty ring");
            let slot = &mut self.evicted_latest[old.node.index()];
            *slot = (*slot).max(old.interval);
            // The evicted record's vector becomes the new chain anchor.
            old.delta.apply_to_clock(&mut self.base_clock);
            old
        } else {
            PagePub {
                node,
                interval: 0,
                delta: ClockDelta::new(),
            }
        };
        rec.node = node;
        rec.interval = interval;
        rec.delta
            .compute(self.head_clock.entries(), clock.entries());
        self.head_clock.copy_from(clock);
        self.history.push_back(rec);
    }

    /// The most recent publish to this page that `vector` entitles its owner
    /// to see, as an index into `history`, if any record of it is still
    /// retained.
    pub fn last_entitled_pub(&self, vector: &VectorClock) -> Option<usize> {
        self.history
            .iter()
            .enumerate()
            .rev()
            .find(|(_, rec)| rec.interval <= vector.entry(rec.node))
            .map(|(i, _)| i)
    }

    /// Materializes the publish-time vector of history record `idx` into
    /// `out` by replaying the delta chain from [`base_clock`] — `O(idx)`
    /// small deltas, no allocation when `out` has capacity.
    ///
    /// [`base_clock`]: LrcPageState::base_clock
    pub fn reconstruct_pub_clock(&self, idx: usize, out: &mut VectorClock) {
        out.copy_from(&self.base_clock);
        for rec in self.history.iter().take(idx + 1) {
            rec.delta.apply_to_clock(out);
        }
    }
}

/// Per-region lazy-release-consistency state.
#[derive(Debug)]
pub(crate) struct LrcRegionState {
    /// Latest published value of every byte.
    pub master: Vec<u8>,
    /// Per word block: packed `(node, interval)` timestamp of the last
    /// publish (0 = never).  See [`pack_stamp`]/[`unpack_stamp`].
    pub stamp: Vec<u64>,
    /// Per page metadata.
    pub pages: Vec<LrcPageState>,
}

/// Per-lock lazy-release-consistency state.
#[derive(Debug)]
pub(crate) struct LrcLockState {
    /// The releaser's vector at the last release of the lock.
    pub release_vec: VectorClock,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_packing_roundtrips() {
        assert_eq!(unpack_stamp(0), None);
        let s = pack_stamp(NodeId::new(3), 17);
        assert_eq!(unpack_stamp(s), Some((NodeId::new(3), 17)));
        let s = pack_stamp(NodeId::new(0), 0);
        assert_ne!(s, 0, "node 0 interval 0 must not collide with the sentinel");
    }

    #[test]
    fn last_entitled_pub_skips_unentitled_records() {
        let mut ps = LrcPageState::new(4);
        let mut v1 = VectorClock::new(4);
        v1.set_entry(NodeId::new(1), 3);
        ps.push_pub(NodeId::new(1), 3, &v1, 8);
        let mut v2 = VectorClock::new(4);
        v2.set_entry(NodeId::new(2), 9);
        ps.push_pub(NodeId::new(2), 9, &v2, 8);

        // Entitled to node 1's interval 3 but not node 2's interval 9: the
        // newest *entitled* record wins, whatever landed after it.
        let mut mine = VectorClock::new(4);
        mine.set_entry(NodeId::new(1), 5);
        mine.set_entry(NodeId::new(2), 8);
        let last = ps.last_entitled_pub(&mine).expect("one entitled record");
        assert_eq!(ps.history[last].node, NodeId::new(1));
        assert_eq!(ps.history[last].interval, 3);

        // Entitled to both: the newest record wins.
        mine.set_entry(NodeId::new(2), 9);
        let last = ps.last_entitled_pub(&mine).unwrap();
        assert_eq!(ps.history[last].node, NodeId::new(2));

        // Entitled to neither.
        let nothing = VectorClock::new(4);
        assert!(ps.last_entitled_pub(&nothing).is_none());
    }

    #[test]
    fn delta_chain_reconstructs_evicted_history() {
        // Push five records through a ring of three; reconstruction must
        // still yield each retained record's exact publish-time vector.
        let mut ps = LrcPageState::new(3);
        let mut clocks = Vec::new();
        let mut v = VectorClock::new(3);
        for i in 1..=5u32 {
            let node = NodeId::new(i % 3);
            v.bump(node);
            v.set_entry(NodeId::new(2), v.entry(NodeId::new(2)) + i);
            clocks.push(v.clone());
            ps.push_pub(node, v.entry(node), &v, 3);
        }
        assert_eq!(ps.history.len(), 3);
        // Records 0 and 1 were evicted; 2, 3, 4 remain at indices 0, 1, 2.
        let mut out = VectorClock::new(3);
        for (idx, want) in clocks[2..].iter().enumerate() {
            ps.reconstruct_pub_clock(idx, &mut out);
            assert_eq!(&out, want, "record {idx}");
        }
        // The anchor is the newest evicted record's vector.
        assert_eq!(&ps.base_clock, &clocks[1]);
        assert_eq!(&ps.head_clock, &clocks[4]);
    }
}
