//! Shared (engine-side) state of the LRC protocol family: master copies,
//! block stamps, per-page write-notice indexes and per-lock release vectors.
//!
//! The state is policy-independent: both the homeless and the home-based
//! [`DataPolicy`](super::policy::DataPolicy) operate on the same structures —
//! a policy only changes *where data moves* (and what that movement costs),
//! never what the ordering layer records.

use std::collections::VecDeque;

use dsm_mem::{FlatUpdate, VectorClock};
use dsm_sim::NodeId;

use crate::engine::PublishRec;

/// Packs an LRC `(node, interval)` timestamp into a `u64` (0 = never written).
pub(crate) fn pack_stamp(node: NodeId, interval: u32) -> u64 {
    ((node.index() as u64 + 1) << 32) | interval as u64
}

/// Unpacks a stamp produced by [`pack_stamp`]; `None` for the never-written
/// sentinel.
pub(crate) fn unpack_stamp(stamp: u64) -> Option<(NodeId, u32)> {
    if stamp == 0 {
        None
    } else {
        Some((
            NodeId::new((stamp >> 32) as u32 - 1),
            (stamp & 0xffff_ffff) as u32,
        ))
    }
}

/// One publish to a page: the writer, its interval, and its vector at publish
/// time.  The bounded per-page history of these records is the simulation's
/// stand-in for the write notices a real node would have received: freshness
/// and responder decisions read only the records the faulting node's vector
/// *entitles* it to, so a concurrent publish the node has not yet synchronized
/// with can never change the outcome of its check.  (The raw `latest` high
/// water marks are updated racily by design and must only feed monotone,
/// stats-neutral fast paths such as the caught-up check.)
#[derive(Debug, Clone)]
pub(crate) struct PagePub {
    /// The publishing node.
    pub node: NodeId,
    /// The interval the publish ended.
    pub interval: u32,
    /// The publisher's vector at publish time (own entry already bumped).
    pub vector: VectorClock,
}

/// Per-page lazy-release-consistency state.
#[derive(Debug, Clone)]
pub(crate) struct LrcPageState {
    /// Per node: the latest interval in which that node published
    /// modifications to this page (0 = never).
    pub latest: Vec<u32>,
    /// Ring of recent publishes to this page, oldest first (see [`PagePub`]).
    pub history: VecDeque<PagePub>,
    /// Per node: the largest publish interval that has been evicted from
    /// `history` (0 = none).  Below this mark the engine conservatively
    /// assumes the page was touched.
    pub evicted_latest: Vec<u32>,
    /// Ring of recent per-interval publish records for traffic accounting.
    pub diffs: VecDeque<PublishRec>,
    /// Version of this page's block stamps: bumped every time a publish
    /// writes new stamps for the page, so consumers can tell whether a
    /// cached flattening of the stamp array is still current.
    pub stamp_ver: u64,
    /// Flattened-diff snapshot of the page: the per-block stamps run-length
    /// encoded into maximal same-stamp runs, as of version `snap_ver`.
    /// Built lazily at the first access miss after a publish and reused (no
    /// rebuild, no per-consumer copy) by every later miss on the page until
    /// the next publish — the apply loop walks these runs instead of every
    /// block.  `snap_ver != stamp_ver` marks the snapshot stale.
    pub snap: FlatUpdate,
    /// The `stamp_ver` the snapshot was built at (`u64::MAX` = never built).
    pub snap_ver: u64,
}

impl LrcPageState {
    /// Empty page state for a cluster of `nprocs` processors.
    pub fn new(nprocs: usize) -> Self {
        LrcPageState {
            latest: vec![0; nprocs],
            history: VecDeque::new(),
            evicted_latest: vec![0; nprocs],
            diffs: VecDeque::new(),
            stamp_ver: 0,
            snap: FlatUpdate::new(),
            snap_ver: u64::MAX,
        }
    }

    /// The most recent publish to this page that `vector` entitles its owner
    /// to see, if any record of it is still retained.
    pub fn last_entitled_pub(&self, vector: &VectorClock) -> Option<&PagePub> {
        self.history
            .iter()
            .rev()
            .find(|rec| rec.interval <= vector.entry(rec.node))
    }
}

/// Per-region lazy-release-consistency state.
#[derive(Debug)]
pub(crate) struct LrcRegionState {
    /// Latest published value of every byte.
    pub master: Vec<u8>,
    /// Per word block: packed `(node, interval)` timestamp of the last
    /// publish (0 = never).  See [`pack_stamp`]/[`unpack_stamp`].
    pub stamp: Vec<u64>,
    /// Per page metadata.
    pub pages: Vec<LrcPageState>,
}

/// Per-lock lazy-release-consistency state.
#[derive(Debug)]
pub(crate) struct LrcLockState {
    /// The releaser's vector at the last release of the lock.
    pub release_vec: VectorClock,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_packing_roundtrips() {
        assert_eq!(unpack_stamp(0), None);
        let s = pack_stamp(NodeId::new(3), 17);
        assert_eq!(unpack_stamp(s), Some((NodeId::new(3), 17)));
        let s = pack_stamp(NodeId::new(0), 0);
        assert_ne!(s, 0, "node 0 interval 0 must not collide with the sentinel");
    }

    #[test]
    fn last_entitled_pub_skips_unentitled_records() {
        let mut ps = LrcPageState::new(4);
        let mut v1 = VectorClock::new(4);
        v1.set_entry(NodeId::new(1), 3);
        ps.history.push_back(PagePub {
            node: NodeId::new(1),
            interval: 3,
            vector: v1,
        });
        let mut v2 = VectorClock::new(4);
        v2.set_entry(NodeId::new(2), 9);
        ps.history.push_back(PagePub {
            node: NodeId::new(2),
            interval: 9,
            vector: v2,
        });

        // Entitled to node 1's interval 3 but not node 2's interval 9: the
        // newest *entitled* record wins, whatever landed after it.
        let mut mine = VectorClock::new(4);
        mine.set_entry(NodeId::new(1), 5);
        mine.set_entry(NodeId::new(2), 8);
        let last = ps.last_entitled_pub(&mine).expect("one entitled record");
        assert_eq!(last.node, NodeId::new(1));
        assert_eq!(last.interval, 3);

        // Entitled to both: the newest record wins.
        mine.set_entry(NodeId::new(2), 9);
        assert_eq!(ps.last_entitled_pub(&mine).unwrap().node, NodeId::new(2));

        // Entitled to neither.
        let nothing = VectorClock::new(4);
        assert!(ps.last_entitled_pub(&nothing).is_none());
    }
}
