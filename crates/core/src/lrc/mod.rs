//! The lazy-release-consistency protocol family (Sections 3.2 / 4 / 5 of the
//! paper, plus home-based LRC).
//!
//! The family is layered: [`ordering::LrcEngine`] owns everything that makes
//! LRC *lazy release consistency* — intervals ended by releases and barrier
//! arrivals, vector clocks, write notices, the invalidate protocol's
//! freshness checks and the generation fast path — and is generic over a
//! [`policy::DataPolicy`] that decides where published data lives and what an
//! access miss fetches:
//!
//! * **Homeless** (`LRC-*`): the TreadMarks shape.  Data moves lazily, at
//!   the access miss, collected from every concurrent writer.
//! * **Home-based** (`HLRC-*`): every page has a static round-robin home;
//!   releasers eagerly flush diffs to the home, and a miss is one whole-page
//!   round trip to one node.
//! * **Adaptive** (`ALRC-*`): an online controller picks per page, from its
//!   observed sharing pattern, between homeless diffing, a home at the
//!   dominant writer, and single-writer pinning (see the `adaptive` module).
//!
//! Choosing a policy: homeless LRC sends less data when pages are rarely
//! shared (only the diffs move, only on demand) but a multi-writer page costs
//! a faulting node one round trip *per concurrent writer*.  Home-based LRC
//! pays an eager flush per release and ships whole pages, but caps every miss
//! at a single round trip however many writers raced on the page — the
//! classic trade for write-shared (falsely shared) data.  When a workload
//! mixes those patterns (the common case: the paper's §5 finds no static
//! winner), the adaptive policy migrates each page to whichever mode its own
//! sharing statistics argue for, and additionally pins pages only one node
//! ever touches so they generate no protocol work at all.  All three policies
//! run the same ordering layer, so their memory contents are identical on
//! data-race-free programs; `tests/tests/hlrc_equivalence.rs` pins that (and
//! pins the homeless policy byte-for-byte against the pre-refactor monolithic
//! engine), while `tests/tests/adaptive_determinism.rs` pins the adaptive
//! migration traces across repeated runs and processor counts.

mod adaptive;
mod ordering;
mod policy;
mod state;

use adaptive::Adaptive;
use ordering::LrcEngine;
use policy::{HomeBased, Homeless};

/// The homeless (TreadMarks-style) engine: `LRC-ci`, `LRC-time`, `LRC-diff`.
pub(crate) type HomelessLrcEngine = LrcEngine<Homeless>;

/// The home-based engine: `HLRC-ci`, `HLRC-time`, `HLRC-diff`.
pub(crate) type HomeBasedLrcEngine = LrcEngine<HomeBased>;

/// The adaptive engine: `ALRC-ci`, `ALRC-time`, `ALRC-diff`.
pub(crate) type AdaptiveLrcEngine = LrcEngine<Adaptive>;
