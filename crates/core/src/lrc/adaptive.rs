//! The adaptive data policy: an online per-page controller over the LRC
//! ordering core.
//!
//! Every page starts homeless (TreadMarks behaviour).  The ordering core
//! records each page's publishes, misses and diff bytes into its
//! [`PageSharing`](dsm_mem::PageSharing) accumulator; at every barrier the
//! last arriver — while all nodes are blocked in the rendezvous — closes the
//! observation windows and migrates pages whose sharing pattern argues for a
//! different data-movement mode:
//!
//! * **Homeless** for false sharing: racing writers each keep their diffs and
//!   misses collect them, the pattern homeless LRC wins on in the paper.
//! * **Home at the dominant writer** for migratory or page-sized
//!   producer/consumer data: one eager flush (free when the dominant writer
//!   *is* the home) replaces per-writer diff collection.
//! * **Pinned at the single writer** when nobody else touches the page: the
//!   owner's twin/diff work is suppressed entirely until a second sharer
//!   shows up, at which point the pin is broken at the next barrier.
//!
//! Decisions read only entitlement-visible records (window counters recorded
//! under region write locks, closed between complete barrier episodes), so
//! the migration trace is a deterministic function of the program and the
//! processor count.  Committed decisions travel to the transport replicas as
//! a control frame, keeping the real-wire backends bitwise-verified.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, RwLock};

use dsm_mem::{page_range, PageMode, PageModeChange, RegionDesc};
use dsm_sim::NodeId;

use crate::config::DsmConfig;
use crate::engine::PublishRec;
use crate::local::NodeLocal;
use crate::sync;

use super::policy::{home_miss, home_publish, DataPolicy, Homeless, MissInfo};
use super::state::LrcRegionState;

/// Controller bookkeeping, touched only at barrier commits.
#[derive(Debug, Default)]
struct AdaptiveCtrl {
    /// Barrier-commit evaluations performed so far (1-based in the trace).
    evals: u32,
    /// Every committed migration, in commit order.
    trace: Vec<PageModeChange>,
}

/// The adaptive data policy.  See the module docs.
#[derive(Debug)]
pub(crate) struct Adaptive {
    /// The homeless policy, delegated to for pages in homeless mode.
    homeless: Homeless,
    /// Packed current [`PageMode`] per region per page.  Stored only at
    /// barrier commits while every node is blocked in the rendezvous, read
    /// lock-free on the trap/publish/miss paths — the barrier's release
    /// ordering makes each store visible to every node's next access.
    modes: Vec<Vec<AtomicU32>>,
    /// Controller state (barrier commits only).
    ctrl: Mutex<AdaptiveCtrl>,
}

impl Adaptive {
    /// The page's current mode (lock-free).
    fn mode(&self, ridx: usize, page: usize) -> PageMode {
        PageMode::unpack(self.modes[ridx][page].load(Ordering::Relaxed))
    }
}

impl DataPolicy for Adaptive {
    fn build(_cfg: &DsmConfig, regions: &[RegionDesc]) -> Self {
        Adaptive {
            homeless: Homeless,
            modes: regions
                .iter()
                .map(|d| {
                    (0..d.num_pages().max(1))
                        .map(|_| AtomicU32::new(PageMode::Homeless.pack()))
                        .collect()
                })
                .collect(),
            ctrl: Mutex::new(AdaptiveCtrl::default()),
        }
    }

    fn label(&self) -> &'static str {
        "adaptive"
    }

    fn on_publish(
        &self,
        cfg: &DsmConfig,
        local: &mut NodeLocal,
        ridx: usize,
        page: usize,
        rec: &mut PublishRec,
    ) {
        match self.mode(ridx, page) {
            // Homeless pages keep their modifications with the writers; a
            // pinned page's owner never reaches this hook (suppressed
            // upstream) and a surprise second writer publishes homeless-style
            // until the pin is broken at the next barrier.
            PageMode::Homeless | PageMode::Pinned(_) => {}
            PageMode::Home(home) => home_publish(cfg, local, NodeId::new(home), rec),
        }
    }

    fn on_miss(
        &self,
        cfg: &DsmConfig,
        local: &mut NodeLocal,
        rs: &mut LrcRegionState,
        m: &MissInfo<'_>,
    ) {
        match self.mode(m.ridx, m.page) {
            PageMode::Homeless => self.homeless.on_miss(cfg, local, rs, m),
            PageMode::Home(home) => home_miss(cfg, local, NodeId::new(home), m),
            // A miss on a pinned page means a second sharer appeared: the
            // owner holds the only current copy, so the fetch is one
            // whole-page round trip to it — exactly a home fetch with the
            // owner as the home.  The miss also lands in the page's window
            // statistics, breaking the pin at the next barrier.
            PageMode::Pinned(owner) => home_miss(cfg, local, NodeId::new(owner), m),
        }
    }

    fn charge_write_fault(&self, node: NodeId, ridx: usize, page: usize) -> bool {
        !matches!(self.mode(ridx, page), PageMode::Pinned(o) if o == node.index() as u32)
    }

    fn suppress_publish(&self, node: NodeId, ridx: usize, page: usize) -> bool {
        matches!(self.mode(ridx, page), PageMode::Pinned(o) if o == node.index() as u32)
    }

    fn barrier_commit(
        &self,
        cfg: &DsmConfig,
        regions: &[RegionDesc],
        region_state: &[RwLock<LrcRegionState>],
        local: &mut NodeLocal,
    ) -> usize {
        // Only diff collection pays for every pending per-interval diff on a
        // homeless miss; the timestamp collections send one consolidated
        // reply, so for them a home could only add cost and the controller
        // restricts itself to pin/unpin decisions (see
        // `PageSharing::candidate`).
        let accumulating = cfg.kind.collection() == crate::config::Collection::Diffs;
        let mut ctrl = sync::lock(&self.ctrl);
        ctrl.evals += 1;
        let eval = ctrl.evals;
        let first = ctrl.trace.len();
        for (ridx, d) in regions.iter().enumerate() {
            let mut rs = sync::write(&region_state[ridx]);
            for (page, ps) in rs.pages.iter_mut().enumerate() {
                let slot = &self.modes[ridx][page];
                let cur = PageMode::unpack(slot.load(Ordering::Relaxed));
                // Pin break: a pinned page that saw a miss or a foreign
                // publish this window demotes *now*, bypassing hysteresis —
                // the single-writer assumption is gone.
                let pin_broken = matches!(cur, PageMode::Pinned(o)
                    if ps.sharing.window_misses() > 0
                        || ps.sharing.window_foreign_writer(o as usize));
                let confirmed = ps
                    .sharing
                    .advance(page_range(page, d.len).len(), accumulating);
                let next = if pin_broken {
                    Some(confirmed.unwrap_or(PageMode::Homeless))
                } else {
                    confirmed
                };
                if let Some(next) = next {
                    if next != cur {
                        slot.store(next.pack(), Ordering::Relaxed);
                        ctrl.trace.push(PageModeChange {
                            eval,
                            region: ridx as u32,
                            page: page as u32,
                            mode: next,
                        });
                    }
                }
            }
        }
        let changes = &ctrl.trace[first..];
        if changes.is_empty() {
            return 0;
        }
        // Ship the committed decisions to the transport replicas as one
        // control frame ([eval][count][records]) so the real-wire backends
        // can verify every replica saw the same migrations.
        if let Some(w) = local.wire.as_deref_mut() {
            let mut payload = Vec::with_capacity(8 + changes.len() * PageModeChange::WIRE_SIZE);
            payload.extend_from_slice(&eval.to_le_bytes());
            payload.extend_from_slice(&(changes.len() as u32).to_le_bytes());
            for c in changes {
                c.encode_into(&mut payload);
            }
            w.send_ctrl(&payload);
        }
        // The decisions ride the barrier release: each departer's release
        // message grows by one record per migration.
        changes.len() * PageModeChange::WIRE_SIZE
    }

    fn migration_trace(&self) -> Vec<PageModeChange> {
        sync::lock(&self.ctrl).trace.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::super::ordering::LrcEngine;
    use super::*;
    use crate::config::ImplKind;
    use crate::engine::ProtocolEngine;
    use dsm_mem::{BlockGranularity, RegionId, PAGE_SIZE};

    fn engine() -> LrcEngine<Adaptive> {
        let cfg = DsmConfig::with_procs(ImplKind::adaptive_diff(), 4);
        let regions = vec![RegionDesc::new(
            RegionId::new(0),
            "r",
            4 * PAGE_SIZE,
            BlockGranularity::Word,
        )];
        let init = vec![vec![0u8; 4 * PAGE_SIZE]];
        LrcEngine::new(&cfg, &regions, &init)
    }

    fn node(e: &LrcEngine<Adaptive>, idx: u32) -> NodeLocal {
        let (cfg, regions) = e.parts();
        NodeLocal::new(
            NodeId::new(idx),
            cfg.nprocs,
            regions,
            &[vec![0u8; 4 * PAGE_SIZE]],
        )
    }

    /// One write+publish by `writer` at byte `off`, then a barrier commit.
    fn write_and_commit(e: &LrcEngine<Adaptive>, writer: &mut NodeLocal, off: usize) {
        e.trap_write(writer, 0, off, 4);
        writer.regions[0].data[off..off + 4].copy_from_slice(&0xabu32.to_le_bytes());
        e.barrier_arrive(writer);
        e.barrier_commit(writer);
    }

    #[test]
    fn lone_writer_is_pinned_and_a_miss_breaks_the_pin() {
        let e = engine();
        let mut w = node(&e, 1);
        let policy = e.policy();

        write_and_commit(&e, &mut w, 0);
        assert_eq!(
            policy.mode(0, 0),
            PageMode::Homeless,
            "hysteresis: 1 window"
        );
        write_and_commit(&e, &mut w, 4);
        assert_eq!(policy.mode(0, 0), PageMode::Pinned(1));
        assert!(policy.suppress_publish(NodeId::new(1), 0, 0));
        assert!(!policy.charge_write_fault(NodeId::new(1), 0, 0));
        assert!(policy.charge_write_fault(NodeId::new(2), 0, 0));

        // While pinned, the owner's publishes charge nothing.
        let faults = w.stats.write_faults;
        let diffs = w.stats.diffs_created;
        write_and_commit(&e, &mut w, 8);
        assert_eq!(w.stats.write_faults, faults);
        assert_eq!(w.stats.diffs_created, diffs);

        // A reader's miss breaks the pin at the next commit.
        let mut r = node(&e, 2);
        r.vector
            .set_entry(NodeId::new(1), w.vector.entry(NodeId::new(1)));
        r.epoch += 1;
        e.ensure_read_fresh(&mut r, 0, 0);
        assert_eq!(r.stats.access_misses, 1);
        e.barrier_commit(&mut r);
        assert_ne!(
            policy.mode(0, 0),
            PageMode::Pinned(1),
            "pin must break after a foreign miss"
        );

        let trace = e.migration_trace();
        assert!(!trace.is_empty());
        assert_eq!(trace[0].mode, PageMode::Pinned(1));
    }

    #[test]
    fn contents_are_mode_independent_while_pinned() {
        let e = engine();
        let mut w = node(&e, 0);
        // Pin page 0 to node 0, then write while pinned: the master must
        // still receive the bytes (suppression is accounting-only).
        write_and_commit(&e, &mut w, 0);
        write_and_commit(&e, &mut w, 4);
        assert_eq!(e.policy().mode(0, 0), PageMode::Pinned(0));
        e.trap_write(&mut w, 0, 16, 4);
        w.regions[0].data[16..20].copy_from_slice(&77u32.to_le_bytes());
        e.barrier_arrive(&mut w);
        let mut out = [0u8; 4];
        e.read_master(0, 16, &mut out);
        assert_eq!(out, 77u32.to_le_bytes());
    }
}
