//! The ordering core of the LRC protocol family, generic over a
//! [`DataPolicy`].
//!
//! Execution is divided into intervals ended by releases and barrier
//! arrivals.  At the end of an interval the modifications to every dirty page
//! are recorded (a diff, or timestamped blocks) and announced through write
//! notices; an acquire merges the releaser's vector and receives the notices;
//! the data itself moves according to the policy — lazily at the access miss
//! that follows the invalidation (homeless), or eagerly to the page's home at
//! release with a one-node fetch at the miss (home-based).
//!
//! State is sharded: each region's published pages sit behind their own
//! `RwLock`, each node's interval-size log behind its own `RwLock` (one
//! writer — the owning node — many readers), and each lock's release vector
//! behind its own mutex.  Faults on one region never block publishes to
//! another.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

use dsm_mem::{pages_in, MemRange, PageModeChange, RegionDesc, VectorClock, WriteNotice};
use dsm_sim::{NodeId, RegionSharing};

use crate::config::{Collection, DsmConfig, Trapping};
use crate::engine::{ProtocolEngine, PublishRec};
use crate::ids::{LockId, LockMode};
use crate::local::{HeldLock, NodeLocal};
use crate::recovery::UndoRec;
use crate::sync::{self, SlotTable};

use super::policy::{DataPolicy, MissInfo};
use super::state::{pack_stamp, unpack_stamp, LrcLockState, LrcPageState, LrcRegionState};

/// Publishes one maximal run of changed words: copies the new bytes into the
/// master and stamps every word of the run.  `run` is in page-relative word
/// indices; the byte end is clamped to the page span (the last word of the
/// last page may be partial).
#[inline]
fn publish_run(
    master: &mut [u8],
    stamps: &mut [u64],
    data: &[u8],
    span: &std::ops::Range<usize>,
    base_word: usize,
    stamp: u64,
    run: std::ops::Range<usize>,
) {
    let sb = span.start + run.start * 4;
    let eb = (span.start + run.end * 4).min(span.end);
    master[sb..eb].copy_from_slice(&data[sb..eb]);
    stamps[base_word + run.start..base_word + run.end].fill(stamp);
}

/// The lazy-release-consistency [`ProtocolEngine`], parameterized by the
/// [`DataPolicy`] that decides where published data lives.
pub(crate) struct LrcEngine<P: DataPolicy> {
    cfg: DsmConfig,
    regions: Vec<RegionDesc>,
    /// Published master copies and write-notice indexes, one `RwLock` per
    /// region.
    region_state: Vec<RwLock<LrcRegionState>>,
    /// Per-region monotonic publish generation, bumped (while the region's
    /// write lock is held) every time an interval publishes modifications to
    /// the region.  Freshness checks compare it lock-free against each
    /// page's `checked_gen`: an unchanged generation proves no publish —
    /// entitled or not — has landed since the page was last verified fully
    /// caught up, so the O(nprocs) stale-source scan can be skipped.
    publish_gen: Vec<AtomicU64>,
    /// Per node, per interval (1-based): how many pages that interval
    /// published.  One `RwLock` per node: only the owner appends, anyone may
    /// read while counting write notices.
    interval_pages: Vec<RwLock<Vec<u32>>>,
    /// Per-lock release vectors, one mutex per lock, created on demand.
    lock_state: SlotTable<Mutex<LrcLockState>>,
    /// The data-movement policy.
    policy: P,
}

impl<P: DataPolicy> std::fmt::Debug for LrcEngine<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LrcEngine")
            .field("policy", &self.policy.label())
            .field("regions", &self.regions.len())
            .field("locks", &self.lock_state.len())
            .finish()
    }
}

impl<P: DataPolicy> LrcEngine<P> {
    /// Builds the engine for a run.
    pub fn new(cfg: &DsmConfig, regions: &[RegionDesc], init: &[Vec<u8>]) -> Self {
        let nprocs = cfg.nprocs;
        let region_state = regions
            .iter()
            .zip(init.iter())
            .map(|(d, init)| {
                RwLock::new(LrcRegionState {
                    master: init.clone(),
                    stamp: vec![0; d.len.div_ceil(4)],
                    pages: (0..pages_in(d.len).max(1))
                        .map(|_| LrcPageState::new(nprocs))
                        .collect(),
                })
            })
            .collect();
        LrcEngine {
            cfg: cfg.clone(),
            regions: regions.to_vec(),
            region_state,
            publish_gen: regions.iter().map(|_| AtomicU64::new(0)).collect(),
            interval_pages: (0..nprocs).map(|_| RwLock::new(Vec::new())).collect(),
            lock_state: SlotTable::new(move |_| {
                Mutex::new(LrcLockState {
                    release_vec: VectorClock::new(nprocs),
                })
            }),
            policy: P::build(cfg, regions),
        }
    }

    /// Number of write notices carried by a message that brings a node whose
    /// vector is `from` up to vector `to`: one notice per page published in
    /// every interval in between.
    fn notices_between(&self, from: &VectorClock, to: &VectorClock) -> u64 {
        let mut notices = 0u64;
        for (node_idx, cell) in self.interval_pages.iter().enumerate() {
            let counts = sync::read(cell);
            let node = NodeId::new(node_idx as u32);
            let lo = from.entry(node);
            let hi = to.entry(node);
            for interval in (lo + 1)..=hi {
                if let Some(&c) = counts.get(interval as usize - 1) {
                    notices += c as u64;
                }
            }
        }
        notices
    }

    /// Ends the current interval: for every page dirtied since the last
    /// release/barrier, record the modifications in the shared store,
    /// register a write notice, and let the policy move the data (a no-op for
    /// homeless LRC, an eager home flush for HLRC).
    fn publish_interval(&self, local: &mut NodeLocal) {
        if local.dirty_pages.is_empty() {
            return;
        }
        let cost = &self.cfg.cost;
        let trapping = self.cfg.kind.trapping();
        let collection = self.cfg.kind.collection();
        let hierarchical = self.cfg.hierarchical_dirty_bits;
        let diff_ring = self.cfg.diff_ring;
        let me = local.node;
        let me_idx = me.index();
        let next_interval = local.vector.entry(me) + 1;
        let total_region_pages: u64 = self.regions.iter().map(|d| d.num_pages() as u64).sum();

        // Swap in the spare list so the drained buffer keeps its capacity
        // for the next interval (taking it outright would surrender the
        // allocation every publish).
        let dirty = std::mem::replace(
            &mut local.dirty_pages,
            std::mem::take(&mut local.scratch_dirty),
        );
        let mut published_pages = 0u32;
        let mut total_compare_words = 0u64;
        let mut reprotects = 0u64;
        // Transport endpoint, taken out so `local` stays borrowable; every
        // path below puts it back.  Under the simulated backend this is None
        // and the loop stays branch-only.
        let mut wire = local.wire.take();

        // The publish-time vector every history record of this interval
        // stores: the current vector with our own entry already bumped.
        // Built once per interval in the node's scratch clock (returned
        // below) so the per-page loop stays allocation-free.
        let mut pub_clock = std::mem::take(&mut local.scratch_clock);
        pub_clock.copy_from(&local.vector);
        pub_clock.set_entry(me, next_interval);

        for &(ridx, page) in &dirty {
            // A pinned page's owner does no protocol work: its diff/twin
            // costs and statistics are suppressed below.  Only accounting is
            // affected — master updates, stamps, history records and replica
            // frames are emitted regardless, so contents stay
            // policy-independent.  (Always false for the static policies.)
            let suppress = self.policy.suppress_publish(me, ridx, page);
            let track = wire.is_some();
            let mut frame_runs = match wire.as_deref_mut() {
                Some(w) => std::mem::take(&mut w.scratch_runs),
                None => Vec::new(),
            };
            let local_region = &mut local.regions[ridx];
            let span = local_region.page_span(page);
            let mut rs = sync::write(&self.region_state[ridx]);
            let base_word = span.start / 4;
            let nwords = span.len().div_ceil(4);
            let stamp = pack_stamp(me, next_interval);

            let mut changed_words = 0usize;
            let mut runs = 0usize;
            let mut compare_words = 0usize;

            {
                let crate::local::LocalRegion { data, pages } = local_region;
                let lp = &mut pages[page];
                let rsd = &mut *rs;
                match trapping {
                    // The dirty bits already are the change set: walk their
                    // maximal runs directly (word-at-a-time trailing_zeros)
                    // instead of branching on every block of the page, and
                    // emit each run as one copy + one stamp fill.
                    Trapping::Instrumentation => {
                        for (first, len) in lp.written.iter().flat_map(|b| b.iter_runs()) {
                            if first >= nwords {
                                break;
                            }
                            let last = (first + len).min(nwords);
                            publish_run(
                                &mut rsd.master,
                                &mut rsd.stamp,
                                data,
                                &span,
                                base_word,
                                stamp,
                                first..last,
                            );
                            if track {
                                let sb = span.start + first * 4;
                                let eb = (span.start + last * 4).min(span.end);
                                frame_runs.push((sb as u32, (eb - sb) as u32));
                            }
                            changed_words += last - first;
                            runs += 1;
                        }
                    }
                    // Twinning has no dirty bits to trust: every word is
                    // compared against the twin (that comparison *is* the
                    // charged collection cost — `compare_words` counts every
                    // word of the page whatever the chunked scan skips).
                    // `changed_word_runs` compares eight bytes at a time and
                    // delivers each maximal changed run once, published with
                    // one copy and one stamp fill.
                    Trapping::Twinning => {
                        if let Some(twin) = &lp.twin {
                            compare_words = nwords;
                            let cur = &data[span.clone()];
                            dsm_mem::changed_word_runs(twin, cur, 0..nwords, |s, e| {
                                changed_words += e - s;
                                runs += 1;
                                publish_run(
                                    &mut rsd.master,
                                    &mut rsd.stamp,
                                    data,
                                    &span,
                                    base_word,
                                    stamp,
                                    s..e,
                                );
                                if track {
                                    let sb = span.start + s * 4;
                                    let eb = (span.start + e * 4).min(span.end);
                                    frame_runs.push((sb as u32, (eb - sb) as u32));
                                }
                            });
                        }
                    }
                }
                lp.applied[me_idx] = next_interval;
                if trapping == Trapping::Twinning {
                    if let Some(twin) = lp.twin.take() {
                        if !suppress {
                            reprotects += 1;
                        }
                        local.pool.put(twin);
                    }
                }
                lp.clear_interval_state();
            }

            if !suppress {
                total_compare_words += compare_words as u64;
            }

            if changed_words > 0 {
                if !suppress {
                    // A pinned page's owner broadcasts no write notice either
                    // (nobody else holds a copy to invalidate): the page does
                    // not count toward this interval's notice payload.  The
                    // history records below still carry the stamps, so a
                    // surprise reader's miss — which breaks the pin — is
                    // detected regardless.
                    published_pages += 1;
                    local.stats.diff_words += changed_words as u64;
                    if collection == Collection::Diffs {
                        local.stats.diffs_created += 1;
                    }
                }
                // Commit the publish to the region's generation while the
                // write lock is still held, so a concurrent freshness check
                // under the read lock sees a stable value.  The generation
                // doubles as the frame's per-region sequence number: it is
                // bumped exactly once per published page, always under this
                // write lock, so replaying frames in sequence order
                // reconstructs the master copies byte for byte.
                let gen = self.publish_gen[ridx].fetch_add(1, Ordering::Release) + 1;
                if let Some(w) = wire.as_deref_mut() {
                    w.publish(
                        ridx as u32,
                        gen,
                        local.vector.entries(),
                        &frame_runs,
                        &local.regions[ridx].data,
                    );
                }
                let ps = &mut rs.pages[page];
                // Sharing statistics for the adaptive controller, recorded
                // before the history append: the publish is *serial* if the
                // page's previous record is already covered by our vector
                // (the writers synchronized in between — migratory data), a
                // fact read off the entitlement-visible history alone.  The
                // unsuppressed encoded size is recorded so the controller's
                // signal does not depend on the page's current mode.
                let serial = ps
                    .history
                    .back()
                    .map_or(true, |r| r.interval <= local.vector.entry(r.node));
                let encoded_size = changed_words * 4 + runs * 8;
                ps.sharing.record_publish(me_idx, encoded_size, serial);
                ps.latest[me_idx] = next_interval;
                // New stamps landed: any cached flattened snapshot of this
                // page is now stale.
                ps.stamp_ver += 1;
                // Append to the page's publish history as a delta-chain
                // record (recycled buffers: steady-state publishes allocate
                // nothing).
                ps.push_pub(me, next_interval, &pub_clock, diff_ring);
                let mut rec = PublishRec {
                    stamp: next_interval as u64,
                    node: me,
                    encoded_size: if suppress { 0 } else { encoded_size },
                    compare_words: if suppress { 0 } else { compare_words },
                    creation_charged: suppress
                        || collection == Collection::Timestamps
                        || trapping == Trapping::Instrumentation,
                };
                if !suppress {
                    self.policy
                        .on_publish(&self.cfg, local, ridx, page, &mut rec);
                }
                let ps = &mut rs.pages[page];
                ps.diffs.push_back(rec);
                while ps.diffs.len() > diff_ring {
                    ps.diffs.pop_front();
                }
            }

            // Hand the run table back to the endpoint so the next page's
            // publish reuses its capacity.
            if let Some(w) = wire.as_deref_mut() {
                frame_runs.clear();
                w.scratch_runs = frame_runs;
            }
        }

        match trapping {
            Trapping::Twinning => {
                local.clock.advance(cost.mprotect().times(reprotects));
                if collection == Collection::Timestamps {
                    // Stamping the modified blocks requires the twin
                    // comparison at the end of the interval.
                    local.clock.advance(cost.diff_compare(total_compare_words));
                }
            }
            Trapping::Instrumentation => {
                if hierarchical {
                    // Finding the dirty pages means checking the page-level
                    // dirty bit of every page in the shared data set.
                    local.stats.page_bits_checked += total_region_pages;
                    local
                        .clock
                        .advance(cost.page_bit_checks(total_region_pages));
                }
            }
        }

        // Hand the drained list back as the spare for the next interval.
        let mut drained = dirty;
        drained.clear();
        local.scratch_dirty = drained;

        {
            // The interval log grows for the whole run; reserving it in
            // coarse chunks keeps steady-state publishes allocation-free
            // between (rare) growth steps.
            let mut log = sync::write(&self.interval_pages[me_idx]);
            if log.len() == log.capacity() {
                log.reserve(1024);
            }
            log.push(published_pages);
        }
        local.scratch_clock = pub_clock;
        local.vector.bump(me);
        // Epoch boundary: everything this interval published moves in one
        // batch per peer.
        if let Some(w) = wire.as_deref_mut() {
            w.flush();
        }
        local.wire = wire;
    }

    /// Which processors have published modifications to this page that the
    /// caller is entitled to see (their interval happens-before the caller's
    /// acquire) but has not yet applied?  Appends `(proc, from, upto)` per
    /// source to `out`, a scratch buffer owned by the caller's `NodeLocal`
    /// so the per-access path never allocates.
    ///
    /// The decision reads only *entitlement-visible* publish records: the
    /// newest history entry per source whose interval the caller's vector
    /// covers (plus the conservative evicted floor).  A concurrent publish
    /// the caller is not yet entitled to therefore cannot flip the outcome,
    /// which is what makes multi-processor miss counts deterministic for
    /// data-race-free programs.
    fn stale_sources_into(
        &self,
        rs: &LrcRegionState,
        local: &NodeLocal,
        ridx: usize,
        page: usize,
        upto_scratch: &mut Vec<u32>,
        out: &mut Vec<(usize, u32, u32)>,
    ) {
        let ps = &rs.pages[page];
        let lp = &local.regions[ridx].pages[page];
        // One forward pass over the retained history: a node's publish
        // intervals are strictly increasing along the ring, so the last
        // entitled record seen per node is its largest — the check stays
        // O(history + nprocs), not O(history * nprocs).
        upto_scratch.clear();
        upto_scratch.resize(local.nprocs, 0);
        for rec in ps.history.iter() {
            if rec.interval <= local.vector.entry(rec.node) {
                upto_scratch[rec.node.index()] = rec.interval;
            }
        }
        for (q, &ring_upto) in upto_scratch.iter().enumerate() {
            if q == local.node.index() {
                continue;
            }
            let qn = NodeId::new(q as u32);
            let v = local.vector.entry(qn);
            // Largest publish of `q` to this page that we are entitled to:
            // exact over the retained history, conservative below the
            // eviction mark.
            let upto = ring_upto.max(ps.evicted_latest[q].min(v));
            if upto > lp.applied[q] {
                out.push((q, lp.applied[q], upto));
            }
        }
    }

    /// Test-only view of the configuration and region table (the policy
    /// modules' unit tests build `NodeLocal`s against them).
    #[cfg(test)]
    pub(crate) fn parts(&self) -> (&DsmConfig, &[RegionDesc]) {
        (&self.cfg, &self.regions)
    }

    /// Test-only access to the data policy.
    #[cfg(test)]
    pub(crate) fn policy(&self) -> &P {
        &self.policy
    }

    /// True if the page has applied *every* publish made to it (not merely
    /// every publish the node is entitled to).  Such a page stays fresh
    /// across epochs for as long as the region's publish generation is
    /// unchanged, whatever the node's vector gains at later acquires.
    fn caught_up(ps: &LrcPageState, lp: &crate::local::LocalPage, me_idx: usize) -> bool {
        ps.latest
            .iter()
            .enumerate()
            .all(|(q, &latest)| q == me_idx || latest <= lp.applied[q])
    }
}

impl<P: DataPolicy> ProtocolEngine for LrcEngine<P> {
    fn bind(&self, _lock: LockId, _ranges: Vec<MemRange>) {
        // LRC has no notion of binding; the call is accepted so the same
        // setup code can serve both models.
    }

    fn rebind(&self, _lock: LockId, _ranges: Vec<MemRange>) {}

    fn validate_acquire(&self, _lock: LockId, mode: LockMode) {
        assert!(
            mode.is_exclusive(),
            "the LRC implementations provide exclusive locks only (no read-only locks are needed \
             for the application suite, Section 3.2)"
        );
    }

    /// Merge the releaser's vector and receive its write notices; returns the
    /// grant payload size in bytes.
    fn remote_grant(&self, local: &mut NodeLocal, lock: LockId) -> usize {
        // Copy the release vector into the node's scratch clock (reused
        // buffer, no allocation) so the lock mutex is not held across the
        // interval-log reads below.
        {
            let slot = self.lock_state.get(lock.index());
            let st = sync::lock(&slot);
            local.scratch_clock.copy_from(&st.release_vec);
        }
        let notices = self.notices_between(&local.vector, &local.scratch_clock);
        let payload = local.scratch_clock.wire_size() + notices as usize * WriteNotice::WIRE_SIZE;
        local.stats.write_notices_received += notices;
        let NodeLocal {
            vector,
            scratch_clock,
            ..
        } = local;
        vector.merge_max(scratch_clock);
        payload
    }

    fn after_acquire(&self, local: &mut NodeLocal, _lock: LockId, _held: &mut HeldLock) {
        local.epoch += 1;
    }

    /// End the current interval (publishing the modifications of its dirty
    /// pages) and record the release vector for the next acquirer.
    fn before_release(&self, local: &mut NodeLocal, lock: LockId, _held: &mut HeldLock) {
        self.publish_interval(local);
        let slot = self.lock_state.get(lock.index());
        sync::lock(&slot).release_vec.copy_from(&local.vector);
    }

    fn barrier_arrive(&self, local: &mut NodeLocal) -> usize {
        // Arriving at a barrier ends the current interval.
        self.publish_interval(local);
        let me = local.node;
        let prev = local.intervals_at_last_barrier;
        let cur = local.vector.entry(me);
        let mut pages = 0u64;
        {
            let counts = sync::read(&self.interval_pages[me.index()]);
            for interval in (prev + 1)..=cur {
                if let Some(&c) = counts.get(interval as usize - 1) {
                    pages += c as u64;
                }
            }
        }
        local.intervals_at_last_barrier = cur;
        local.vector.wire_size() + pages as usize * WriteNotice::WIRE_SIZE
    }

    fn barrier_depart(
        &self,
        local: &mut NodeLocal,
        old_vector: &VectorClock,
        released_vector: &VectorClock,
    ) -> usize {
        let notices = self.notices_between(old_vector, released_vector);
        local.stats.write_notices_received += notices;
        local.vector.merge_max(released_vector);
        released_vector.wire_size() + notices as usize * WriteNotice::WIRE_SIZE
    }

    /// Ensures the local copy of a page reflects every modification this node
    /// is entitled to see, taking an access miss (invalidate protocol) if it
    /// does not.  The freshness decision and the apply loop are shared by
    /// every policy; only the data-movement accounting of the miss differs.
    fn ensure_read_fresh(&self, local: &mut NodeLocal, ridx: usize, page: usize) {
        let epoch = local.epoch;
        {
            let lp = &local.regions[ridx].pages[page];
            if lp.checked_epoch == epoch {
                return;
            }
        }

        // Cross-epoch fast path, lock-free: if the page had applied *every*
        // publish when last verified (`checked_gen` is that generation + 1)
        // and the region's generation has not moved, then no modification we
        // could be entitled to exists — whatever our vector gained since.
        // Any publish we became entitled to at this epoch's acquire
        // happened-before the vector merge that entitled us (both orderings
        // run through the lock/barrier mutexes), so its generation bump is
        // guaranteed visible to this load.
        let gen = self.publish_gen[ridx].load(Ordering::Acquire);
        {
            let lp = &mut local.regions[ridx].pages[page];
            if lp.checked_gen == gen + 1 {
                lp.checked_epoch = epoch;
                return;
            }
        }

        let cost = &self.cfg.cost;
        let gran = self.regions[ridx].granularity;
        let me_idx = local.node.index();

        // The stale-source scan reuses the node's scratch buffers (taken out
        // of `local` so the borrows below stay disjoint; every return path
        // puts them back).
        let mut stale = std::mem::take(&mut local.scratch_stale);
        let mut upto_scratch = std::mem::take(&mut local.scratch_upto);
        stale.clear();

        // Fast path: a read lock suffices to discover the page is fresh.
        // Staleness is monotone while our vector is fixed (entitled publish
        // records only grow), so a page seen fresh here stays fresh for this
        // epoch.
        {
            let rs = sync::read(&self.region_state[ridx]);
            // Stable under the read lock: generations move only under the
            // region's write lock.
            let rgen = self.publish_gen[ridx].load(Ordering::Acquire);
            self.stale_sources_into(&rs, local, ridx, page, &mut upto_scratch, &mut stale);
            if stale.is_empty() {
                let caught_up =
                    Self::caught_up(&rs.pages[page], &local.regions[ridx].pages[page], me_idx);
                drop(rs);
                let lp = &mut local.regions[ridx].pages[page];
                lp.checked_epoch = epoch;
                lp.checked_gen = if caught_up { rgen + 1 } else { 0 };
                local.scratch_stale = stale;
                local.scratch_upto = upto_scratch;
                return;
            }
        }

        // Access miss: re-resolve under the write lock (more intervals may
        // have been published meanwhile; applying them too is within our
        // entitlement).
        let mut rs = sync::write(&self.region_state[ridx]);
        let rgen = self.publish_gen[ridx].load(Ordering::Acquire);
        stale.clear();
        self.stale_sources_into(&rs, local, ridx, page, &mut upto_scratch, &mut stale);
        if stale.is_empty() {
            let caught_up =
                Self::caught_up(&rs.pages[page], &local.regions[ridx].pages[page], me_idx);
            drop(rs);
            let lp = &mut local.regions[ridx].pages[page];
            lp.checked_epoch = epoch;
            lp.checked_gen = if caught_up { rgen + 1 } else { 0 };
            local.scratch_stale = stale;
            local.scratch_upto = upto_scratch;
            return;
        }

        local.stats.access_misses += 1;
        local.stats.pages_invalidated += 1;
        rs.pages[page].sharing.record_miss();
        local.undo(|| UndoRec::SharingMiss { ridx, page });
        local.clock.advance(cost.page_fault());

        let span = local.regions[ridx].page_span(page);
        let base_word = span.start / 4;
        let nwords = span.len().div_ceil(4);

        let mut applied_words = 0usize;
        let mut ts_runs = 0usize;

        {
            let local_region = &mut local.regions[ridx];
            let crate::local::LocalRegion { data, pages } = local_region;
            let lp = &mut pages[page];
            let LrcRegionState {
                master,
                stamp,
                pages: rpages,
            } = &mut *rs;
            let ps = &mut rpages[page];

            // Apply every block whose latest publish happens-before us and is
            // newer than what we have, skipping blocks we have dirty local
            // writes to (they belong to our current, unpublished interval).
            if lp.dirty {
                // The page holds unpublished local writes: walk word by word
                // so `was_written` can exclude them.
                let mut prev: Option<u64> = None;
                for w in 0..nwords {
                    let st = stamp[base_word + w];
                    let Some((qn, i)) = unpack_stamp(st) else {
                        prev = None;
                        continue;
                    };
                    let q = qn.index();
                    if q == me_idx {
                        prev = None;
                        continue;
                    }
                    let entitled = i <= local.vector.entry(qn) && i > lp.applied[q];
                    if entitled && !lp.was_written(w) {
                        let start = span.start + w * 4;
                        let end = (start + 4).min(data.len());
                        data[start..end].copy_from_slice(&master[start..end]);
                        applied_words += 1;
                        if prev != Some(st) {
                            ts_runs += 1;
                        }
                        prev = Some(st);
                    } else {
                        prev = None;
                    }
                }
            } else {
                // Clean page: apply through the flattened-diff snapshot —
                // one decision and (at most) one copy per maximal same-stamp
                // run instead of one per word.  The snapshot is built from
                // the same stamps the word walk reads, so the entitled set,
                // `applied_words` and `ts_runs` are identical: within a run
                // the stamp (and hence the per-word decision) is constant,
                // and adjacent runs never share a stamp, so the word walk's
                // run counting collapses to one count per applied run.  The
                // first faulting consumer after a publish pays the rebuild;
                // every later consumer reuses it, whatever its vector, since
                // entitlement is re-decided per consumer against the shared
                // runs.
                if ps.snap_ver != ps.stamp_ver {
                    ps.snap
                        .rebuild_from_stamps(&stamp[base_word..base_word + nwords]);
                    ps.snap_ver = ps.stamp_ver;
                }
                for run in ps.snap.runs() {
                    let Some((qn, i)) = unpack_stamp(run.stamp) else {
                        continue;
                    };
                    let q = qn.index();
                    if q == me_idx {
                        continue;
                    }
                    if i <= local.vector.entry(qn) && i > lp.applied[q] {
                        let sb = span.start + run.start * 4;
                        let eb = (span.start + (run.start + run.len) * 4).min(span.end);
                        data[sb..eb].copy_from_slice(&master[sb..eb]);
                        applied_words += run.len;
                        ts_runs += 1;
                    }
                }
            }

            for &(q, _, upto) in &stale {
                lp.applied[q] = lp.applied[q].max(upto);
            }
            lp.checked_epoch = epoch;
            lp.checked_gen = if Self::caught_up(ps, lp, me_idx) {
                rgen + 1
            } else {
                0
            };
        }

        // Data movement: responders, reply sizes, collection costs and
        // messages are the policy's concern.
        let miss = MissInfo {
            ridx,
            page,
            gran,
            nwords,
            applied_words,
            ts_runs,
            stale: &stale,
        };
        self.policy.on_miss(&self.cfg, local, &mut rs, &miss);
        drop(rs);
        local.scratch_stale = stale;
        local.scratch_upto = upto_scratch;
    }

    /// Write-trapping for LRC: ensure freshness, then record the span's
    /// writes in the current interval, touching each page's state once.
    fn trap_write_span(
        &self,
        local: &mut NodeLocal,
        ridx: usize,
        off: usize,
        len: usize,
        count: usize,
    ) {
        dsm_mem::for_each_page(off, len, |page, _| {
            self.ensure_read_fresh(local, ridx, page);
        });
        let cost = &self.cfg.cost;
        let trapping = self.cfg.kind.trapping();

        if trapping == Trapping::Instrumentation {
            let mut factor = if self.cfg.ci_loop_optimization { 1 } else { 2 };
            if self.cfg.hierarchical_dirty_bits {
                // The hierarchical scheme also sets a page-level dirty bit.
                factor += 1;
            }
            local.stats.instrumented_writes += count as u64;
            local
                .clock
                .advance(cost.instrumented_writes(factor).times(count as u64));
        }

        let me = local.node;
        let region = &mut local.regions[ridx];
        let region_len = region.data.len();
        dsm_mem::for_each_page(off, len, |page, bytes| {
            if trapping == Trapping::Twinning && region.pages[page].twin.is_none() {
                let span = dsm_mem::page_range(page, region_len);
                let words = span.len().div_ceil(4) as u64;
                let copy = local.pool.take_copy(&region.data[span]);
                region.pages[page].twin = Some(copy);
                // A pinned page's owner writes without protocol work: the
                // twin is still made (content mechanics are policy-free) but
                // the fault's costs and statistics are suppressed.
                if self.policy.charge_write_fault(me, ridx, page) {
                    local.stats.write_faults += 1;
                    local.stats.twins_created += 1;
                    local.stats.twin_words += words;
                    local
                        .clock
                        .advance(cost.page_fault() + cost.twin_copy(words) + cost.mprotect());
                }
            }
            let base_word = (page * dsm_mem::PAGE_SIZE) / 4;
            let lp = &mut region.pages[page];
            lp.written_mut()
                .set_range(bytes.start / 4 - base_word..bytes.end.div_ceil(4) - base_word);
            if !lp.dirty {
                lp.dirty = true;
                local.dirty_pages.push((ridx, page));
            }
        });
    }

    fn read_master(&self, ridx: usize, off: usize, out: &mut [u8]) {
        let rs = sync::read(&self.region_state[ridx]);
        out.copy_from_slice(&rs.master[off..off + out.len()]);
    }

    fn final_regions(&self) -> Vec<Vec<u8>> {
        self.region_state
            .iter()
            .map(|r| sync::read(r).master.clone())
            .collect()
    }

    fn barrier_commit(&self, local: &mut NodeLocal) -> usize {
        self.policy
            .barrier_commit(&self.cfg, &self.regions, &self.region_state, local)
    }

    fn migration_trace(&self) -> Vec<PageModeChange> {
        self.policy.migration_trace()
    }

    /// Per-region roll-up of the page sharing accumulators.  Shared by every
    /// LRC-family engine: the statistics are recorded by the ordering core,
    /// so the homeless and home-based engines report them too even though
    /// only the adaptive policy acts on them.
    fn sharing_report(&self) -> Vec<RegionSharing> {
        self.regions
            .iter()
            .enumerate()
            .map(|(ridx, d)| {
                let rs = sync::read(&self.region_state[ridx]);
                let mut out = RegionSharing {
                    region: d.name.clone(),
                    pages: rs.pages.len() as u64,
                    ..RegionSharing::default()
                };
                let mut wrote = vec![false; self.cfg.nprocs];
                for ps in &rs.pages {
                    out.publishes += ps.sharing.total_publishes;
                    out.misses += ps.sharing.total_misses;
                    out.diff_bytes += ps.sharing.total_diff_bytes;
                    for (q, &latest) in ps.latest.iter().enumerate() {
                        if latest > 0 {
                            wrote[q] = true;
                        }
                    }
                }
                out.distinct_writers = wrote.iter().filter(|&&w| w).count() as u32;
                out
            })
            .collect()
    }

    /// Unwinds the crash epoch's effects on the shared region state: sharing
    /// miss accumulators and homeless first-miss diff charges.  Crash-epoch
    /// *publishes* never happen — the injected crash fires before the
    /// barrier's interval publication — so the publish history, latest
    /// vectors and generations need no undo.
    fn rollback_undo(&self, _node: NodeId, undo: &[UndoRec]) {
        for rec in undo.iter().rev() {
            match *rec {
                UndoRec::SharingMiss { ridx, page } => {
                    let mut rs = sync::write(&self.region_state[ridx]);
                    rs.pages[page].sharing.unrecord_miss();
                }
                UndoRec::LrcDiffCharge {
                    ridx,
                    page,
                    node,
                    stamp,
                } => {
                    let mut rs = sync::write(&self.region_state[ridx]);
                    if let Some(d) = rs.pages[page]
                        .diffs
                        .iter_mut()
                        .find(|d| d.node == node && d.stamp == stamp)
                    {
                        d.creation_charged = false;
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::policy::{HomeBased, Homeless};
    use super::*;
    use crate::config::ImplKind;
    use dsm_mem::{BlockGranularity, RegionId};
    use dsm_sim::MsgKind;

    fn engine<P: DataPolicy>(kind: ImplKind) -> LrcEngine<P> {
        let cfg = DsmConfig::with_procs(kind, 4);
        let regions = vec![RegionDesc::new(
            RegionId::new(0),
            "r",
            8192,
            BlockGranularity::Word,
        )];
        let init = vec![vec![0u8; 8192]];
        LrcEngine::new(&cfg, &regions, &init)
    }

    fn node<P: DataPolicy>(e: &LrcEngine<P>, idx: u32) -> NodeLocal {
        let regions = e.regions.clone();
        let init = vec![vec![0u8; 8192]];
        NodeLocal::new(NodeId::new(idx), e.cfg.nprocs, &regions, &init)
    }

    #[test]
    fn notice_counting_over_sharded_interval_logs() {
        let e = engine::<Homeless>(ImplKind::lrc_diff());
        *sync::write(&e.interval_pages[0]) = vec![2, 3, 1]; // node 0: intervals 1..=3
        *sync::write(&e.interval_pages[1]) = vec![5];
        let mut from = VectorClock::new(4);
        let mut to = VectorClock::new(4);
        to.set_entry(NodeId::new(0), 3);
        to.set_entry(NodeId::new(1), 1);
        assert_eq!(e.notices_between(&from, &to), 2 + 3 + 1 + 5);
        from.set_entry(NodeId::new(0), 2);
        assert_eq!(e.notices_between(&from, &to), 1 + 5);
        assert_eq!(e.notices_between(&to, &to), 0);
    }

    #[test]
    #[should_panic(expected = "exclusive locks only")]
    fn read_only_acquire_is_rejected() {
        let e = engine::<Homeless>(ImplKind::lrc_time());
        e.validate_acquire(LockId::new(0), LockMode::ReadOnly);
    }

    #[test]
    #[should_panic(expected = "exclusive locks only")]
    fn read_only_acquire_is_rejected_under_hlrc() {
        let e = engine::<HomeBased>(ImplKind::hlrc_time());
        e.validate_acquire(LockId::new(0), LockMode::ReadOnly);
    }

    #[test]
    fn instrumented_publish_walks_dirty_bit_runs() {
        let e = engine::<Homeless>(ImplKind::lrc_ci());
        let mut local = node(&e, 0);
        // Two runs on page 0 (words 0..3 and word 100) and one on page 1.
        for word in [0usize, 1, 2, 100, 1024] {
            let off = word * 4;
            local.regions[0].data[off..off + 4].copy_from_slice(&(word as u32 + 9).to_le_bytes());
            e.trap_write(&mut local, 0, off, 4);
        }
        assert_eq!(local.dirty_pages, vec![(0, 0), (0, 1)]);
        e.barrier_arrive(&mut local);
        assert_eq!(local.stats.diff_words, 5);
        let rs = sync::read(&e.region_state[0]);
        for word in [0usize, 1, 2, 100, 1024] {
            assert_eq!(
                rs.master[word * 4..word * 4 + 4],
                (word as u32 + 9).to_le_bytes(),
                "word {word}"
            );
            assert_eq!(rs.stamp[word], pack_stamp(NodeId::new(0), 1), "word {word}");
        }
        assert_eq!(rs.stamp[3], 0, "untouched word must stay unstamped");
        drop(rs);
        // One generation bump per published page.
        assert_eq!(e.publish_gen[0].load(Ordering::Relaxed), 2);
    }

    #[test]
    fn generation_fast_path_tracks_publishes_across_epochs() {
        let e = engine::<Homeless>(ImplKind::lrc_diff());
        let mut reader = node(&e, 0);
        let mut writer = node(&e, 1);

        // Nothing published: the first check records a caught-up generation.
        e.ensure_read_fresh(&mut reader, 0, 0);
        assert_eq!(reader.regions[0].pages[0].checked_gen, 1);
        assert_eq!(reader.stats.access_misses, 0);

        // A publish the reader is *not yet* entitled to invalidates the
        // recorded generation (checked_gen = 0: not caught up).
        // Trap first, then store: the twin must snapshot the pre-write bytes.
        e.trap_write(&mut writer, 0, 0, 4);
        writer.regions[0].data[0..4].copy_from_slice(&42u32.to_le_bytes());
        e.barrier_arrive(&mut writer);
        reader.epoch += 1;
        e.ensure_read_fresh(&mut reader, 0, 0);
        assert_eq!(reader.stats.access_misses, 0, "not entitled: no miss");
        assert_eq!(reader.regions[0].pages[0].checked_gen, 0);

        // Becoming entitled takes the miss, applies, and is caught up again.
        reader.vector.set_entry(NodeId::new(1), 1);
        reader.epoch += 1;
        e.ensure_read_fresh(&mut reader, 0, 0);
        assert_eq!(reader.stats.access_misses, 1);
        assert_eq!(reader.regions[0].data[0..4], 42u32.to_le_bytes());
        let gen = e.publish_gen[0].load(Ordering::Relaxed);
        assert_eq!(reader.regions[0].pages[0].checked_gen, gen + 1);

        // Later epochs ride the lock-free fast path: no further misses.
        reader.epoch += 1;
        e.ensure_read_fresh(&mut reader, 0, 0);
        assert_eq!(reader.stats.access_misses, 1);
        assert_eq!(reader.regions[0].pages[0].checked_epoch, reader.epoch);
    }

    #[test]
    fn unentitled_publishes_do_not_flip_freshness_decisions() {
        let e = engine::<Homeless>(ImplKind::lrc_diff());
        let mut reader = node(&e, 0);
        let mut writer = node(&e, 1);

        // Interval 1: a publish the reader will become entitled to.
        e.trap_write(&mut writer, 0, 0, 4);
        writer.regions[0].data[0..4].copy_from_slice(&7u32.to_le_bytes());
        e.barrier_arrive(&mut writer);
        reader.vector.set_entry(NodeId::new(1), 1);
        reader.epoch += 1;
        e.ensure_read_fresh(&mut reader, 0, 0);
        assert_eq!(reader.stats.access_misses, 1);

        // Interval 2: a publish the reader is NOT entitled to lands before
        // its next check.  The raw `latest` mark moves, but the entitled
        // history still tops out at interval 1, which the reader has
        // applied — no spurious miss, deterministically.
        e.trap_write(&mut writer, 0, 8, 4);
        writer.regions[0].data[8..12].copy_from_slice(&8u32.to_le_bytes());
        e.barrier_arrive(&mut writer);
        reader.epoch += 1;
        e.ensure_read_fresh(&mut reader, 0, 0);
        assert_eq!(
            reader.stats.access_misses, 1,
            "an unentitled publish must not cause a spurious miss"
        );
    }

    #[test]
    fn home_based_miss_is_one_round_trip_from_the_home() {
        let e = engine::<HomeBased>(ImplKind::hlrc_diff());
        // Page 0's round-robin home is node 0; use readers 2 (remote) and a
        // writer 1 so the flush and the fetch are both visible.
        let mut writer = node(&e, 1);
        e.trap_write(&mut writer, 0, 0, 4);
        writer.regions[0].data[0..4].copy_from_slice(&5u32.to_le_bytes());
        e.barrier_arrive(&mut writer);
        // The flush to home 0 is one data-reply-class message at release.
        assert_eq!(writer.stats.messages_of(MsgKind::DataReply), 1);
        assert_eq!(writer.stats.messages_of(MsgKind::DataRequest), 0);

        let mut remote = node(&e, 2);
        remote.vector.set_entry(NodeId::new(1), 1);
        remote.epoch += 1;
        e.ensure_read_fresh(&mut remote, 0, 0);
        assert_eq!(remote.stats.access_misses, 1);
        assert_eq!(remote.stats.messages_of(MsgKind::DataRequest), 1);
        assert_eq!(remote.stats.messages_of(MsgKind::DataReply), 1);
        // The reply is the whole page, not the diff.
        assert_eq!(
            remote.stats.bytes_of(MsgKind::DataReply),
            dsm_mem::PAGE_SIZE as u64
        );
        assert_eq!(remote.regions[0].data[0..4], 5u32.to_le_bytes());

        // The home itself serves the fault locally: a miss, but no messages.
        let mut home = node(&e, 0);
        home.vector.set_entry(NodeId::new(1), 1);
        home.epoch += 1;
        e.ensure_read_fresh(&mut home, 0, 0);
        assert_eq!(home.stats.access_misses, 1);
        assert_eq!(home.stats.messages_of(MsgKind::DataRequest), 0);
        assert_eq!(home.stats.messages_of(MsgKind::DataReply), 0);
        assert_eq!(home.regions[0].data[0..4], 5u32.to_le_bytes());
    }

    #[test]
    fn home_writer_flushes_nothing_to_itself() {
        let e = engine::<HomeBased>(ImplKind::hlrc_diff());
        // Page 0's home is node 0: its own publishes stay local.
        let mut home = node(&e, 0);
        e.trap_write(&mut home, 0, 0, 4);
        home.regions[0].data[0..4].copy_from_slice(&9u32.to_le_bytes());
        e.barrier_arrive(&mut home);
        assert_eq!(home.stats.messages(), 0);
        // Page 1's home is node 1: the same write one page later flushes.
        e.trap_write(&mut home, 0, dsm_mem::PAGE_SIZE, 4);
        home.regions[0].data[dsm_mem::PAGE_SIZE..dsm_mem::PAGE_SIZE + 4]
            .copy_from_slice(&9u32.to_le_bytes());
        e.barrier_arrive(&mut home);
        assert_eq!(home.stats.messages_of(MsgKind::DataReply), 1);
    }
}
