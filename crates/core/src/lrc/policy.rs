//! The data-movement layer of the LRC protocol family.
//!
//! The ordering core (`ordering.rs`) decides *what* a node is entitled to see
//! — intervals, vector clocks, write notices, freshness generations.  A
//! [`DataPolicy`] decides *where published data lives* and what an access
//! miss fetches:
//!
//! * [`Homeless`] — TreadMarks behaviour.  Published modifications stay with
//!   their writers (conceptually); a miss collects diffs (or timestamped
//!   blocks) from every concurrent writer, with the most recent entitled
//!   publisher forwarding the older diffs its vector covers.
//! * [`HomeBased`] — Princeton-style home-based LRC (HLRC).  Every page has
//!   a statically assigned home (round-robin over the flat page index);
//!   releasers eagerly flush their diffs to the home at the end of each
//!   interval, and a miss fetches the whole up-to-date page from the home in
//!   exactly one round trip, however many writers raced on it.
//!
//! Policies only account *data movement* (messages, wire sizes, fetch/flush
//! costs).  Everything the ordering layer records — master contents, block
//! stamps, write-notice history, `applied`/`checked_gen` bookkeeping — is
//! policy-independent, which is what makes the two policies content-equivalent
//! by construction and lets the equivalence tests compare them byte for byte.

use std::sync::RwLock;

use dsm_mem::{BlockGranularity, IntervalId, PageModeChange, RegionDesc};
use dsm_sim::{MsgKind, NodeId};

use crate::config::{Collection, DsmConfig, Trapping};
use crate::engine::{PublishRec, CTRL_MSG_BYTES};
use crate::local::NodeLocal;

use super::state::LrcRegionState;

/// Everything the ordering core knows about one access miss by the time the
/// policy is asked to account its data movement.
pub(crate) struct MissInfo<'a> {
    /// Region index of the faulting page.
    pub ridx: usize,
    /// Page index within the region.
    pub page: usize,
    /// Block granularity of the region (timestamp-scan sizing).
    pub gran: BlockGranularity,
    /// Word blocks in the page (clamped at the region end).
    pub nwords: usize,
    /// Words the apply loop actually installed.
    pub applied_words: usize,
    /// Maximal same-stamp runs among the installed words.
    pub ts_runs: usize,
    /// Stale sources `(proc, from, upto)` the miss resolved.
    pub stale: &'a [(usize, u32, u32)],
}

/// Where published data lives and what a miss fetches.  See the module docs.
pub(crate) trait DataPolicy: Send + Sync + 'static {
    /// Builds the policy for a run.
    fn build(cfg: &DsmConfig, regions: &[RegionDesc]) -> Self;

    /// Short label shown in the engine's `Debug` output.
    fn label(&self) -> &'static str;

    /// Called once per page an interval published, with the master copy and
    /// the page's write-notice state already updated (the region write lock
    /// is held) and the publish record not yet pushed into the traffic ring.
    fn on_publish(
        &self,
        cfg: &DsmConfig,
        local: &mut NodeLocal,
        ridx: usize,
        page: usize,
        rec: &mut PublishRec,
    );

    /// Accounts the data movement of one access miss: responders, reply
    /// sizes, collection costs and messages.  Called after the apply loop,
    /// with the region write lock still held.
    fn on_miss(
        &self,
        cfg: &DsmConfig,
        local: &mut NodeLocal,
        rs: &mut LrcRegionState,
        miss: &MissInfo<'_>,
    );

    /// Whether `node`'s write fault on the page should be charged (twin
    /// creation cost and `write_faults`/`twins_created` statistics).  The
    /// adaptive policy answers `false` for a pinned page's owner — no
    /// protocol work until a second writer shows up — while *recording* the
    /// fault so the pin can be broken deterministically at the next barrier.
    /// The twin itself is still made either way: pinning suppresses costs,
    /// never content mechanics.
    fn charge_write_fault(&self, _node: NodeId, _ridx: usize, _page: usize) -> bool {
        true
    }

    /// Whether `node`'s publish of the page should skip the diff-creation
    /// accounting (`diffs_created`/`diff_words` statistics, encode sizes,
    /// compare costs).  `true` only for the pinned owner under the adaptive
    /// policy; master-copy updates, write-notice history and replica frames
    /// are emitted regardless, so contents stay policy-independent.
    fn suppress_publish(&self, _node: NodeId, _ridx: usize, _page: usize) -> bool {
        false
    }

    /// Barrier-commit hook, run exactly once per barrier episode by the last
    /// arriver while every node is blocked in the barrier.  The adaptive
    /// policy closes each page's observation window here and commits mode
    /// migrations; the return value is the extra per-departer payload (in
    /// bytes) the barrier release must carry to broadcast those decisions.
    fn barrier_commit(
        &self,
        _cfg: &DsmConfig,
        _regions: &[RegionDesc],
        _region_state: &[RwLock<LrcRegionState>],
        _local: &mut NodeLocal,
    ) -> usize {
        0
    }

    /// The committed migration decisions, in commit order (empty for the
    /// static policies).
    fn migration_trace(&self) -> Vec<PageModeChange> {
        Vec::new()
    }
}

/// Accounts a home-based eager flush of one published page: diff creation is
/// charged to the releaser and the encoded modifications travel to `home`
/// unless the releaser *is* the home.  Shared by [`HomeBased`] (static
/// round-robin homes) and the adaptive policy (homes follow the dominant
/// writer), so both account flushes identically.
pub(crate) fn home_publish(
    cfg: &DsmConfig,
    local: &mut NodeLocal,
    home: NodeId,
    rec: &mut PublishRec,
) {
    // Eager flush: the releaser ships the encoded modifications to the
    // page's home at the end of the interval, so diff creation is always
    // charged eagerly to the releaser (the homeless policy defers it to
    // the first fetch under diff collection).
    if !rec.creation_charged {
        rec.creation_charged = true;
        local
            .clock
            .advance(cfg.cost.diff_compare(rec.compare_words as u64));
    }
    if home != local.node {
        // Home flushes are data-reply-class traffic, paid at release time
        // instead of at the next reader's miss.
        local.stats.record_msg(MsgKind::DataReply, rec.encoded_size);
        local.clock.advance(cfg.cost.message(rec.encoded_size));
    }
}

/// Accounts a home-based miss: one whole-page round trip to `home` (free when
/// the faulting node is the home), however many writers raced on the page.
/// Shared by [`HomeBased`] and the adaptive policy.
pub(crate) fn home_miss(cfg: &DsmConfig, local: &mut NodeLocal, home: NodeId, m: &MissInfo<'_>) {
    local.stats.words_applied += m.applied_words as u64;
    local.clock.advance(cfg.cost.apply_words(m.nwords as u64));
    if home == local.node {
        // The home itself holds the authoritative copy: the fault is
        // served from local state without any message.
        return;
    }
    let req_bytes = local.vector.wire_size();
    let reply_bytes = m.nwords * 4;
    local.stats.record_msg(MsgKind::DataRequest, req_bytes);
    local.stats.record_msg(MsgKind::DataReply, reply_bytes);
    local
        .clock
        .advance(cfg.cost.round_trip(req_bytes, reply_bytes));
}

/// The homeless (TreadMarks) data policy: data moves lazily, from the
/// writers, at the access miss.
#[derive(Debug, Default)]
pub(crate) struct Homeless;

impl DataPolicy for Homeless {
    fn build(_cfg: &DsmConfig, _regions: &[RegionDesc]) -> Self {
        Homeless
    }

    fn label(&self) -> &'static str {
        "homeless"
    }

    fn on_publish(
        &self,
        _cfg: &DsmConfig,
        _local: &mut NodeLocal,
        _ridx: usize,
        _page: usize,
        _rec: &mut PublishRec,
    ) {
        // Nothing moves at a release: the writers keep their modifications
        // until an access miss asks for them.
    }

    fn on_miss(
        &self,
        cfg: &DsmConfig,
        local: &mut NodeLocal,
        rs: &mut LrcRegionState,
        m: &MissInfo<'_>,
    ) {
        let cost = &cfg.cost;
        let trapping = cfg.kind.trapping();
        let collection = cfg.kind.collection();
        let gran = m.gran;

        // How many processors must be asked?  The most recent publisher *we
        // are entitled to see* can forward every diff its publish-time vector
        // dominates (it saved them); intervals concurrent with its publish
        // require contacting the writer directly.  Like the staleness check,
        // the decision reads only entitlement-visible history records, so it
        // is independent of concurrent unentitled publishes.
        let responders = {
            let ps = &rs.pages[m.page];
            let mut extra = 0usize;
            let mut primary_used = false;
            match ps.last_entitled_pub(&local.vector) {
                Some(idx) => {
                    // The history stores delta-chain records; materialize
                    // the primary's publish-time vector once, into the
                    // node's scratch clock (no allocation in steady state).
                    ps.reconstruct_pub_clock(idx, &mut local.scratch_clock);
                    let pnode = ps.history[idx].node;
                    for &(q, _, upto) in m.stale {
                        let qn = NodeId::new(q as u32);
                        if pnode == qn || upto <= local.scratch_clock.entry(qn) {
                            primary_used = true;
                        } else {
                            extra += 1;
                        }
                    }
                }
                None => extra = m.stale.len(),
            }
            (usize::from(primary_used) + extra).max(1)
        };

        // Diff-mode traffic accounting: every pending diff of a stale source
        // is transferred (the overlapping-diff effect for migratory data).
        let mut diff_bytes = 0usize;
        let mut diff_count = 0u64;
        let mut creation_words = 0u64;
        if collection == Collection::Diffs {
            let ps = &mut rs.pages[m.page];
            for rec in ps.diffs.iter_mut() {
                let q = rec.node.index();
                let i = rec.stamp as u32;
                let needed = m
                    .stale
                    .iter()
                    .any(|&(sq, from, upto)| sq == q && i > from && i <= upto);
                if needed {
                    diff_bytes += rec.encoded_size;
                    diff_count += 1;
                    if !rec.creation_charged {
                        rec.creation_charged = true;
                        creation_words += rec.compare_words as u64;
                        let (ridx, page, node, stamp) = (m.ridx, m.page, rec.node, rec.stamp);
                        local.undo(move || crate::recovery::UndoRec::LrcDiffCharge {
                            ridx,
                            page,
                            node,
                            stamp,
                        });
                    }
                }
            }
        }

        let reply_bytes = match collection {
            Collection::Timestamps => {
                let gran_div = if trapping == Trapping::Instrumentation {
                    (gran.bytes() / 4).max(1)
                } else {
                    1
                };
                let scan = (m.nwords / gran_div) as u64;
                local.stats.ts_blocks_scanned += scan;
                local.clock.advance(cost.ts_scan(scan));
                m.applied_words * 4 + m.ts_runs * (IntervalId::WIRE_SIZE + 6)
            }
            Collection::Diffs => {
                local.stats.diffs_applied += diff_count;
                local.clock.advance(cost.diff_compare(creation_words));
                diff_bytes.max(m.applied_words * 4)
            }
        };
        local.stats.words_applied += m.applied_words as u64;
        local
            .clock
            .advance(cost.apply_words(m.applied_words as u64));

        let req_bytes = local.vector.wire_size();
        for r in 0..responders {
            let bytes = if r == 0 { reply_bytes } else { CTRL_MSG_BYTES };
            local.stats.record_msg(MsgKind::DataRequest, req_bytes);
            local.stats.record_msg(MsgKind::DataReply, bytes);
            local.clock.advance(cost.round_trip(req_bytes, bytes));
        }
    }
}

/// The home-based data policy (HLRC): every page has a statically assigned
/// home, releasers flush diffs to it eagerly, misses fetch the whole page
/// from it in one round trip.
#[derive(Debug)]
pub(crate) struct HomeBased {
    /// Flat page-index base of each region, so homes are assigned round-robin
    /// over the whole shared address space rather than per region.
    page_base: Vec<usize>,
    nprocs: usize,
}

impl HomeBased {
    /// The statically assigned home of a page (round-robin over the flat page
    /// index, the classic HLRC default assignment).
    pub fn home_of(&self, ridx: usize, page: usize) -> NodeId {
        NodeId::new(((self.page_base[ridx] + page) % self.nprocs) as u32)
    }
}

impl DataPolicy for HomeBased {
    fn build(cfg: &DsmConfig, regions: &[RegionDesc]) -> Self {
        let mut page_base = Vec::with_capacity(regions.len());
        let mut base = 0usize;
        for d in regions {
            page_base.push(base);
            base += d.num_pages().max(1);
        }
        HomeBased {
            page_base,
            nprocs: cfg.nprocs,
        }
    }

    fn label(&self) -> &'static str {
        "home-based"
    }

    fn on_publish(
        &self,
        cfg: &DsmConfig,
        local: &mut NodeLocal,
        ridx: usize,
        page: usize,
        rec: &mut PublishRec,
    ) {
        home_publish(cfg, local, self.home_of(ridx, page), rec);
    }

    fn on_miss(
        &self,
        cfg: &DsmConfig,
        local: &mut NodeLocal,
        _rs: &mut LrcRegionState,
        m: &MissInfo<'_>,
    ) {
        // The home has every flushed diff applied, so one whole-page round
        // trip to one node replaces the homeless per-writer diff collection —
        // however many writers raced on the page.
        home_miss(cfg, local, self.home_of(m.ridx, m.page), m);
    }
}
