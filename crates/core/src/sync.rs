//! Sharded synchronization state: one slot per lock and per barrier.
//!
//! The seed implementation kept the entire cluster state behind a single
//! `Mutex<Shared>` with one `Condvar`, so every acquire, release, barrier
//! arrival and page fault on every simulated processor serialized on one OS
//! lock, and every wakeup was a thundering herd.  This module replaces that
//! with *sharded* tables: each lock and each barrier lives in its own slot
//! with its own mutex and condition variable, so independent synchronization
//! objects never contend and waiters wake only when *their* object changes
//! state.  The model-specific protocol state is sharded separately by the
//! engines (see `DESIGN.md`, "Sharding layout").

use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use dsm_mem::VectorClock;
use dsm_sim::{NodeId, SimTime};

/// Locks a mutex, recovering the data if another worker panicked while
/// holding it.  The protocol state is plain data that stays structurally
/// valid across a panic, and the panic itself is re-raised when the runtime
/// joins the worker, so continuing here never masks a failure.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// [`lock`] for read-locking an `RwLock`.
pub(crate) fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// [`lock`] for write-locking an `RwLock`.
pub(crate) fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// [`lock`] for condition-variable waits.
pub(crate) fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A grow-on-demand table of `Arc`-shared slots, indexed densely.
///
/// Lookups of existing slots take only the table's read lock; the write lock
/// is taken once per slot, the first time its index is used.  Callers receive
/// an `Arc` so per-slot mutexes are acquired *after* the table lock has been
/// released — the table lock is never held across protocol work.
pub(crate) struct SlotTable<T> {
    slots: RwLock<Vec<Arc<T>>>,
    make: Box<dyn Fn(usize) -> T + Send + Sync>,
}

impl<T> SlotTable<T> {
    /// Creates an empty table whose slots are built by `make` (called with
    /// the slot index).
    pub fn new(make: impl Fn(usize) -> T + Send + Sync + 'static) -> Self {
        SlotTable {
            slots: RwLock::new(Vec::new()),
            make: Box::new(make),
        }
    }

    /// Returns the slot at `index`, creating it (and any gap before it) on
    /// first use.
    pub fn get(&self, index: usize) -> Arc<T> {
        if let Some(slot) = read(&self.slots).get(index) {
            return Arc::clone(slot);
        }
        let mut slots = write(&self.slots);
        while slots.len() <= index {
            let i = slots.len();
            slots.push(Arc::new((self.make)(i)));
        }
        Arc::clone(&slots[index])
    }

    /// Number of slots created so far.
    pub fn len(&self) -> usize {
        read(&self.slots).len()
    }

    /// A snapshot of every slot created so far (used for end-of-run stats
    /// aggregation).
    pub fn snapshot(&self) -> Vec<Arc<T>> {
        read(&self.slots).clone()
    }
}

impl<T> std::fmt::Debug for SlotTable<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotTable")
            .field("len", &self.len())
            .finish()
    }
}

/// Synchronization status of one lock (shared between EC and LRC).
#[derive(Debug, Clone)]
pub(crate) struct LockSync {
    /// The node currently holding the lock exclusively, if any.
    pub exclusive_holder: Option<NodeId>,
    /// Number of read-only holders.
    pub readers: usize,
    /// The node that last held the lock exclusively (the processor a request
    /// is forwarded to, and the grantor of the next acquire).
    pub last_owner: Option<NodeId>,
    /// Simulated time at which the lock last became available.
    pub free_time: SimTime,
    /// Number of times the lock has been transferred between processors.
    pub transfers: u64,
}

impl LockSync {
    fn new() -> Self {
        LockSync {
            exclusive_holder: None,
            readers: 0,
            last_owner: None,
            free_time: SimTime::ZERO,
            transfers: 0,
        }
    }

    /// True if an exclusive acquire can proceed.
    pub fn can_acquire_exclusive(&self) -> bool {
        self.exclusive_holder.is_none() && self.readers == 0
    }

    /// True if a read-only acquire can proceed.
    pub fn can_acquire_read(&self) -> bool {
        self.exclusive_holder.is_none()
    }
}

/// One lock's slot: its synchronization status plus the condition variable
/// its waiters block on.  Waiters of different locks never share a wakeup.
#[derive(Debug)]
pub(crate) struct LockSlot {
    /// The lock's synchronization status.
    pub sync: Mutex<LockSync>,
    /// Woken when the lock becomes available.
    pub cv: Condvar,
}

impl LockSlot {
    fn new() -> Self {
        LockSlot {
            sync: Mutex::new(LockSync::new()),
            cv: Condvar::new(),
        }
    }
}

/// Synchronization status of one barrier episode.
#[derive(Debug, Clone)]
pub(crate) struct BarrierSync {
    /// Nodes that have arrived in the current episode.
    pub arrived: usize,
    /// Episode counter; waiters block until it advances.
    pub generation: u64,
    /// Accumulated maximum of (arrival time + arrival-message latency) for
    /// the current episode.
    pub pending_max: SimTime,
    /// Accumulated vector-clock maximum over arrivals (LRC; stays zero under
    /// EC).
    pub pending_vector: VectorClock,
    /// Release time of the last completed episode.
    pub release_time: SimTime,
    /// Vector released by the last completed episode (LRC).
    pub released_vector: VectorClock,
    /// Extra release-payload bytes produced by the engine's barrier-commit
    /// hook for the last completed episode (adaptive LRC's migration
    /// broadcast; zero for every other engine).
    pub commit_payload: usize,
}

impl BarrierSync {
    fn new(nprocs: usize) -> Self {
        BarrierSync {
            arrived: 0,
            generation: 0,
            pending_max: SimTime::ZERO,
            pending_vector: VectorClock::new(nprocs),
            release_time: SimTime::ZERO,
            released_vector: VectorClock::new(nprocs),
            commit_payload: 0,
        }
    }
}

/// One barrier's slot: episode state plus its own condition variable.
#[derive(Debug)]
pub(crate) struct BarrierSlot {
    /// The barrier's episode state.
    pub sync: Mutex<BarrierSync>,
    /// Woken when the current episode completes.
    pub cv: Condvar,
}

impl BarrierSlot {
    fn new(nprocs: usize) -> Self {
        BarrierSlot {
            sync: Mutex::new(BarrierSync::new(nprocs)),
            cv: Condvar::new(),
        }
    }
}

/// The engine-agnostic synchronization tables of one run: one slot per lock
/// and per barrier, created on demand.
#[derive(Debug)]
pub(crate) struct SyncTables {
    locks: SlotTable<LockSlot>,
    barriers: SlotTable<BarrierSlot>,
}

impl SyncTables {
    /// Creates empty tables for a cluster of `nprocs` processors.
    pub fn new(nprocs: usize) -> Self {
        SyncTables {
            locks: SlotTable::new(|_| LockSlot::new()),
            barriers: SlotTable::new(move |_| BarrierSlot::new(nprocs)),
        }
    }

    /// The slot of lock `index`, created on first use.
    pub fn lock_slot(&self, index: usize) -> Arc<LockSlot> {
        self.locks.get(index)
    }

    /// The slot of barrier `index`, created on first use.
    pub fn barrier_slot(&self, index: usize) -> Arc<BarrierSlot> {
        self.barriers.get(index)
    }

    /// Number of lock slots created so far.
    #[cfg(test)]
    pub fn num_locks(&self) -> usize {
        self.locks.len()
    }

    /// Total lock ownership transfers across all lock slots (aggregated into
    /// the run's [`TrafficReport`](dsm_sim::TrafficReport)).
    pub fn total_lock_transfers(&self) -> u64 {
        self.locks
            .snapshot()
            .iter()
            .map(|slot| lock(&slot.sync).transfers)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_tables_grow_on_demand() {
        let tables = SyncTables::new(4);
        let slot = tables.lock_slot(5);
        assert!(lock(&slot.sync).can_acquire_exclusive());
        assert_eq!(tables.num_locks(), 6);
        let bar = tables.barrier_slot(2);
        assert_eq!(lock(&bar.sync).pending_vector.len(), 4);
    }

    #[test]
    fn slots_are_shared_not_recreated() {
        let tables = SyncTables::new(2);
        let a = tables.lock_slot(0);
        lock(&a.sync).transfers = 7;
        let b = tables.lock_slot(0);
        assert_eq!(lock(&b.sync).transfers, 7);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(tables.total_lock_transfers(), 7);
    }

    #[test]
    fn lock_sync_admission_rules() {
        let mut l = LockSync::new();
        assert!(l.can_acquire_exclusive());
        l.readers = 1;
        assert!(!l.can_acquire_exclusive());
        assert!(l.can_acquire_read());
        l.readers = 0;
        l.exclusive_holder = Some(NodeId::new(1));
        assert!(!l.can_acquire_read());
    }

    #[test]
    fn slot_table_creates_gaps_with_indices() {
        let t: SlotTable<usize> = SlotTable::new(|i| i * 10);
        assert_eq!(*t.get(3), 30);
        assert_eq!(t.len(), 4);
        assert_eq!(*t.get(1), 10);
        assert_eq!(t.snapshot().len(), 4);
    }
}
