//! The protocol-engine abstraction the two consistency models plug into.
//!
//! The runtime and [`ProcessContext`](crate::ProcessContext) are written
//! against [`ProtocolEngine`] alone: the common mechanics of lock hand-off,
//! barrier rendezvous and typed shared access live in `context.rs`, and every
//! model-specific action — what a grant carries, what a release publishes,
//! what a barrier exchanges, how writes are trapped and how stale pages are
//! refreshed — is a hook on this trait.  `EcEngine` (Midway-style entry
//! consistency) and the layered LRC family (one ordering core specialised by
//! a homeless or home-based data policy, see `lrc/`) are the
//! implementations; [`build_engine`] is the *only* place the consistency
//! model is matched on.
//!
//! Engines are shared by every worker thread (`&self` receivers) and shard
//! their own state internally — per-lock metadata behind per-slot mutexes and
//! per-region published state behind per-region `RwLock`s — so hooks for
//! independent locks and regions run concurrently.  See `DESIGN.md` for the
//! sharding layout and the lock-ordering rules.

use dsm_mem::{MemRange, PageModeChange, RegionDesc, VectorClock};
use dsm_sim::{NodeId, RegionSharing};

use crate::config::{DsmConfig, Model};
use crate::ec::EcEngine;
use crate::ids::{LockId, LockMode};
use crate::local::{HeldLock, NodeLocal};
use crate::lrc::{AdaptiveLrcEngine, HomeBasedLrcEngine, HomelessLrcEngine};

/// Size of a small control message payload (lock request/forward, barrier
/// bookkeeping) in bytes.
pub(crate) const CTRL_MSG_BYTES: usize = 16;

/// One publish record: the modifications one release (EC) or one interval
/// (LRC) made to a lock's bound data or to a page.  Retained in a bounded
/// ring for diff-collection traffic accounting.
#[derive(Debug, Clone)]
pub(crate) struct PublishRec {
    /// EC: global publish sequence number; LRC: interval index of the writer.
    pub stamp: u64,
    /// The writer (LRC; unused for EC where the lock identifies the chain).
    pub node: NodeId,
    /// Wire size of the run-length encoded diff for this publish.
    pub encoded_size: usize,
    /// Number of words that had to be compared against the twin to build the
    /// diff (charged lazily to the first requester under diff collection).
    pub compare_words: usize,
    /// Whether the lazy diff-creation cost has been charged yet.
    pub creation_charged: bool,
}

/// The hooks a consistency model implements to run on the sharded runtime.
///
/// Every hook takes `&self` — the engine is shared across worker threads and
/// guards its own state — plus the calling processor's private
/// [`NodeLocal`], whose clock and statistics the hook charges.
pub(crate) trait ProtocolEngine: Send + Sync + std::fmt::Debug {
    /// Declares the memory ranges bound to a lock during setup (EC; a no-op
    /// under LRC so the same setup code serves both models).
    fn bind(&self, lock: LockId, ranges: Vec<MemRange>);

    /// Rebinds a lock to new ranges mid-run (EC; no-op under LRC).
    fn rebind(&self, lock: LockId, ranges: Vec<MemRange>);

    /// Validates an acquire request before any state changes (LRC rejects
    /// read-only locks, as in the paper).
    fn validate_acquire(&self, lock: LockId, mode: LockMode);

    /// Called when a lock is granted from a remote owner: make the data the
    /// model promises consistent at this node and return the grant-message
    /// payload size in bytes.  The caller records the message and charges its
    /// latency.
    fn remote_grant(&self, local: &mut NodeLocal, lock: LockId) -> usize;

    /// Called after an acquire completes (local or remote): arm write
    /// trapping (EC exclusive) or open a new interval epoch (LRC).
    fn after_acquire(&self, local: &mut NodeLocal, lock: LockId, held: &mut HeldLock);

    /// Called before a released lock is made available: publish the
    /// modifications made while it was held.  The held-lock state is mutable
    /// so the hook can retire per-holding buffers (EC small-object twins)
    /// into the node's pool.
    fn before_release(&self, local: &mut NodeLocal, lock: LockId, held: &mut HeldLock);

    /// End-of-interval work at a barrier arrival; returns the arrival-message
    /// payload size in bytes.
    fn barrier_arrive(&self, local: &mut NodeLocal) -> usize;

    /// Departure-side barrier work (LRC: write notices and vector merge);
    /// returns the release-message payload size in bytes.
    fn barrier_depart(
        &self,
        local: &mut NodeLocal,
        old_vector: &VectorClock,
        released_vector: &VectorClock,
    ) -> usize;

    /// Ensures the local copy of a page is fresh before an access (LRC access
    /// miss; EC data is only made consistent at acquires, so this is a no-op
    /// there).
    fn ensure_read_fresh(&self, local: &mut NodeLocal, ridx: usize, page: usize);

    /// Traps a shared write according to the configured mechanism.
    fn trap_write(&self, local: &mut NodeLocal, ridx: usize, off: usize, size: usize) {
        self.trap_write_span(local, ridx, off, size, 1);
    }

    /// Bulk write trap behind [`write_slice`](crate::ProcessContext::write_slice):
    /// traps `count` contiguous scalar writes covering bytes `off..off + len`
    /// of region `ridx` in one call.
    ///
    /// Contract: the charged costs and statistics must be *identical* to
    /// `count` individual [`trap_write`](ProtocolEngine::trap_write) calls
    /// over the same span (per-access charges are linear in the access
    /// count), but each page's trapping state — twin creation, dirty
    /// arming, written bits — is touched once per page instead of once per
    /// word, by walking the span with [`dsm_mem::for_each_page`].
    fn trap_write_span(
        &self,
        local: &mut NodeLocal,
        ridx: usize,
        off: usize,
        len: usize,
        count: usize,
    );

    /// Reads the most recently published bytes at `off` into `out` without
    /// any consistency action or cost (the [`poll`](crate::ProcessContext::poll)
    /// fast path).
    fn read_master(&self, ridx: usize, off: usize, out: &mut [u8]);

    /// The final published contents of every region, in region order.
    fn final_regions(&self) -> Vec<Vec<u8>>;

    /// Commit-side barrier work, run exactly once per barrier episode by the
    /// last arriver while every other node is blocked in the rendezvous (the
    /// adaptive policy migrates page modes here); returns the extra payload
    /// (in bytes) every departer's release message must carry.  No-op for
    /// engines without a barrier-time controller.
    fn barrier_commit(&self, _local: &mut NodeLocal) -> usize {
        0
    }

    /// The committed page-mode migration decisions in commit order (empty
    /// for every engine without an adaptive controller).
    fn migration_trace(&self) -> Vec<PageModeChange> {
        Vec::new()
    }

    /// Per-region aggregates of the page sharing statistics the engine
    /// accumulated (empty for engines that do not track them, i.e. EC).
    fn sharing_report(&self) -> Vec<RegionSharing> {
        Vec::new()
    }

    /// Unwinds the crash-epoch mutations `node` made to this engine's shared
    /// state (publish rings, grant watermarks, sharing accumulators).  The
    /// records are in program order; implementations apply the variants they
    /// own **in reverse** and ignore the rest.  No-op for engines whose
    /// shared state the generic rollback already covers.
    fn rollback_undo(&self, _node: NodeId, _undo: &[crate::recovery::UndoRec]) {}
}

/// Builds the engine for a run.  This is the single place the consistency
/// model is dispatched on; everything downstream goes through the trait.
pub(crate) fn build_engine(
    cfg: &DsmConfig,
    regions: &[RegionDesc],
    init: &[Vec<u8>],
) -> Box<dyn ProtocolEngine> {
    match cfg.kind.model() {
        Model::Ec => Box::new(EcEngine::new(cfg, regions, init)),
        Model::Lrc => Box::new(HomelessLrcEngine::new(cfg, regions, init)),
        Model::Hlrc => Box::new(HomeBasedLrcEngine::new(cfg, regions, init)),
        Model::Adaptive => Box::new(AdaptiveLrcEngine::new(cfg, regions, init)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ImplKind;
    use dsm_mem::{BlockGranularity, RegionId};

    fn region_setup() -> (Vec<RegionDesc>, Vec<Vec<u8>>) {
        let regions = vec![RegionDesc::new(
            RegionId::new(0),
            "r",
            8192,
            BlockGranularity::Word,
        )];
        let init = vec![vec![0u8; 8192]];
        (regions, init)
    }

    #[test]
    fn build_engine_selects_by_model() {
        let (regions, init) = region_setup();
        for kind in ImplKind::all() {
            let cfg = DsmConfig::with_procs(kind, 4);
            let engine = build_engine(&cfg, &regions, &init);
            // Every engine starts from the initial contents.
            assert_eq!(engine.final_regions(), init);
            let name = format!("{engine:?}");
            assert_eq!(
                name.contains("EcEngine"),
                kind.model() == crate::config::Model::Ec,
                "{kind}: {name}"
            );
        }
    }

    #[test]
    fn read_master_returns_initial_bytes() {
        let (regions, mut init) = region_setup();
        init[0][100] = 42;
        for kind in [ImplKind::ec_time(), ImplKind::lrc_diff()] {
            let cfg = DsmConfig::with_procs(kind, 2);
            let engine = build_engine(&cfg, &regions, &init);
            let mut buf = [0u8; 4];
            engine.read_master(0, 100, &mut buf);
            assert_eq!(buf, [42, 0, 0, 0]);
        }
    }
}
