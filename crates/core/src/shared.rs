//! Cluster-wide shared protocol state.
//!
//! In the real systems this state is distributed across the nodes and kept
//! consistent by the protocol messages themselves; in the simulation it lives
//! behind a single mutex and the *cost* of every message that would have been
//! exchanged is charged through the cost model (see `DESIGN.md`, substitution
//! table).

use std::collections::VecDeque;

use dsm_mem::{pages_in, MemRange, RegionDesc, VectorClock};
use dsm_sim::{NodeId, SimTime};

use crate::config::{DsmConfig, Model};

/// Synchronization status of one lock (shared between EC and LRC).
#[derive(Debug, Clone)]
pub(crate) struct LockSync {
    /// The node currently holding the lock exclusively, if any.
    pub exclusive_holder: Option<NodeId>,
    /// Number of read-only holders.
    pub readers: usize,
    /// The node that last held the lock exclusively (the processor a request
    /// is forwarded to, and the grantor of the next acquire).
    pub last_owner: Option<NodeId>,
    /// Simulated time at which the lock last became available.
    pub free_time: SimTime,
    /// Number of times the lock has been transferred between processors.
    pub transfers: u64,
}

impl LockSync {
    fn new() -> Self {
        LockSync {
            exclusive_holder: None,
            readers: 0,
            last_owner: None,
            free_time: SimTime::ZERO,
            transfers: 0,
        }
    }

    /// True if an exclusive acquire can proceed.
    pub fn can_acquire_exclusive(&self) -> bool {
        self.exclusive_holder.is_none() && self.readers == 0
    }

    /// True if a read-only acquire can proceed.
    pub fn can_acquire_read(&self) -> bool {
        self.exclusive_holder.is_none()
    }
}

/// Synchronization status of one barrier.
#[derive(Debug, Clone)]
pub(crate) struct BarrierSync {
    /// Nodes that have arrived in the current episode.
    pub arrived: usize,
    /// Episode counter; waiters block until it advances.
    pub generation: u64,
    /// Accumulated maximum of (arrival time + arrival-message latency) for
    /// the current episode.
    pub pending_max: SimTime,
    /// Accumulated vector-clock maximum over arrivals (LRC).
    pub pending_vector: VectorClock,
    /// Release time of the last completed episode.
    pub release_time: SimTime,
    /// Vector released by the last completed episode (LRC).
    pub released_vector: VectorClock,
}

impl BarrierSync {
    fn new(nprocs: usize) -> Self {
        BarrierSync {
            arrived: 0,
            generation: 0,
            pending_max: SimTime::ZERO,
            pending_vector: VectorClock::new(nprocs),
            release_time: SimTime::ZERO,
            released_vector: VectorClock::new(nprocs),
        }
    }
}

/// One publish record: the modifications one release (EC) or one interval
/// (LRC) made to a lock's bound data or to a page.  Retained in a bounded
/// ring for diff-collection traffic accounting.
#[derive(Debug, Clone)]
pub(crate) struct PublishRec {
    /// EC: global publish sequence number; LRC: interval index of the writer.
    pub stamp: u64,
    /// The writer (LRC; unused for EC where the lock identifies the chain).
    pub node: NodeId,
    /// Wire size of the run-length encoded diff for this publish.
    pub encoded_size: usize,
    /// Number of words that had to be compared against the twin to build the
    /// diff (charged lazily to the first requester under diff collection).
    pub compare_words: usize,
    /// Whether the lazy diff-creation cost has been charged yet.
    pub creation_charged: bool,
}

/// Entry-consistency shared state for one lock.
#[derive(Debug, Clone, Default)]
pub(crate) struct EcLockShared {
    /// The memory ranges bound to the lock (possibly non-contiguous).
    pub bound: Vec<MemRange>,
    /// Incremented whenever the binding changes; a node whose `seen_epoch`
    /// lags must conservatively receive all bound data (Section 7.1,
    /// "Rebinding").
    pub rebind_epoch: u64,
    /// Lock incarnation number: incremented on every transfer.
    pub incarnation: u64,
    /// Ring of recent publish records for diff-mode traffic accounting.
    pub publishes: VecDeque<PublishRec>,
    /// Per node: the global publish sequence this node has applied through
    /// for this lock's data.
    pub seen_seq: Vec<u64>,
    /// Per node: the rebind epoch this node has seen.
    pub seen_epoch: Vec<u64>,
}

/// Entry-consistency shared state for one region: the published master copy
/// and per-word-block publish-sequence stamps.
#[derive(Debug)]
pub(crate) struct EcRegionShared {
    /// Latest published value of every byte.
    pub master: Vec<u8>,
    /// Per word block: the publish sequence number that last wrote it
    /// (0 = never published).
    pub stamp: Vec<u64>,
}

/// All EC shared state.
#[derive(Debug)]
pub(crate) struct EcShared {
    /// Per region published data.
    pub regions: Vec<EcRegionShared>,
    /// Per lock metadata, indexed by lock id.
    pub locks: Vec<EcLockShared>,
    /// Global publish sequence counter.
    pub publish_seq: u64,
}

impl EcShared {
    fn new(regions: &[RegionDesc], init: &[Vec<u8>]) -> Self {
        let regions = regions
            .iter()
            .zip(init.iter())
            .map(|(d, init)| EcRegionShared {
                master: init.clone(),
                stamp: vec![0; d.len.div_ceil(4)],
            })
            .collect();
        EcShared {
            regions,
            locks: Vec::new(),
            publish_seq: 0,
        }
    }

    /// Ensures per-lock metadata exists for `lock_index`.
    pub fn ensure_lock(&mut self, lock_index: usize, nprocs: usize) -> &mut EcLockShared {
        while self.locks.len() <= lock_index {
            self.locks.push(EcLockShared {
                seen_seq: vec![0; nprocs],
                seen_epoch: vec![0; nprocs],
                ..EcLockShared::default()
            });
        }
        &mut self.locks[lock_index]
    }
}

/// Lazy-release-consistency shared state for one page.
#[derive(Debug, Clone)]
pub(crate) struct LrcPageShared {
    /// Per node: the latest interval in which that node published
    /// modifications to this page (0 = never).
    pub latest: Vec<u32>,
    /// The node that published most recently.
    pub last_publisher: Option<NodeId>,
    /// The publisher's vector at the time of the most recent publish; used to
    /// decide how many processors a faulting node must contact.
    pub last_pub_vector: VectorClock,
    /// Ring of recent per-interval publish records for traffic accounting.
    pub diffs: VecDeque<PublishRec>,
}

/// Lazy-release-consistency shared state for one region.
#[derive(Debug)]
pub(crate) struct LrcRegionShared {
    /// Latest published value of every byte.
    pub master: Vec<u8>,
    /// Per word block: packed `(node, interval)` timestamp of the last
    /// publish (0 = never).  See [`pack_stamp`]/[`unpack_stamp`].
    pub stamp: Vec<u64>,
    /// Per page metadata.
    pub pages: Vec<LrcPageShared>,
}

/// All LRC shared state.
#[derive(Debug)]
pub(crate) struct LrcShared {
    /// Per region published data.
    pub regions: Vec<LrcRegionShared>,
    /// Per node, per interval (1-based): how many pages that interval
    /// published.  Used to size write-notice payloads.
    pub interval_pages: Vec<Vec<u32>>,
    /// Per lock: the releaser's vector at the last release of the lock.
    pub lock_release_vec: Vec<VectorClock>,
}

impl LrcShared {
    fn new(regions: &[RegionDesc], init: &[Vec<u8>], nprocs: usize) -> Self {
        let regions = regions
            .iter()
            .zip(init.iter())
            .map(|(d, init)| LrcRegionShared {
                master: init.clone(),
                stamp: vec![0; d.len.div_ceil(4)],
                pages: (0..pages_in(d.len).max(1))
                    .map(|_| LrcPageShared {
                        latest: vec![0; nprocs],
                        last_publisher: None,
                        last_pub_vector: VectorClock::new(nprocs),
                        diffs: VecDeque::new(),
                    })
                    .collect(),
            })
            .collect();
        LrcShared {
            regions,
            interval_pages: vec![Vec::new(); nprocs],
            lock_release_vec: Vec::new(),
        }
    }

    /// Ensures the per-lock release-vector table covers `lock_index`.
    pub fn ensure_lock(&mut self, lock_index: usize, nprocs: usize) {
        while self.lock_release_vec.len() <= lock_index {
            self.lock_release_vec.push(VectorClock::new(nprocs));
        }
    }

    /// Number of write notices carried by a message that brings a node whose
    /// vector is `from` up to vector `to`: one notice per page published in
    /// every interval in between.
    pub fn notices_between(&self, from: &VectorClock, to: &VectorClock) -> u64 {
        let mut notices = 0u64;
        for (node_idx, counts) in self.interval_pages.iter().enumerate() {
            let node = NodeId::new(node_idx as u32);
            let lo = from.entry(node);
            let hi = to.entry(node);
            for interval in (lo + 1)..=hi {
                if let Some(&c) = counts.get(interval as usize - 1) {
                    notices += c as u64;
                }
            }
        }
        notices
    }
}

/// Packs an LRC `(node, interval)` timestamp into a `u64` (0 = never written).
pub(crate) fn pack_stamp(node: NodeId, interval: u32) -> u64 {
    ((node.index() as u64 + 1) << 32) | interval as u64
}

/// Unpacks a stamp produced by [`pack_stamp`]; `None` for the never-written
/// sentinel.
pub(crate) fn unpack_stamp(stamp: u64) -> Option<(NodeId, u32)> {
    if stamp == 0 {
        None
    } else {
        Some((
            NodeId::new((stamp >> 32) as u32 - 1),
            (stamp & 0xffff_ffff) as u32,
        ))
    }
}

/// Model-specific shared state.
#[derive(Debug)]
pub(crate) enum ModelShared {
    /// Entry consistency.
    Ec(EcShared),
    /// Lazy release consistency.
    Lrc(LrcShared),
}

/// The complete shared state of one run.
#[derive(Debug)]
pub(crate) struct Shared {
    /// Lock synchronization status, indexed by lock id.
    pub locks: Vec<LockSync>,
    /// Barrier synchronization status, indexed by barrier id.
    pub barriers: Vec<BarrierSync>,
    /// Model-specific state.
    pub model: ModelShared,
    /// Number of processors.
    pub nprocs: usize,
}

impl Shared {
    /// Builds the shared state for a run.
    pub fn new(cfg: &DsmConfig, regions: &[RegionDesc], init: &[Vec<u8>]) -> Self {
        let model = match cfg.kind.model() {
            Model::Ec => ModelShared::Ec(EcShared::new(regions, init)),
            Model::Lrc => ModelShared::Lrc(LrcShared::new(regions, init, cfg.nprocs)),
        };
        Shared {
            locks: Vec::new(),
            barriers: Vec::new(),
            model,
            nprocs: cfg.nprocs,
        }
    }

    /// Ensures the lock table covers `lock_index` and returns the entry.
    pub fn ensure_lock(&mut self, lock_index: usize) -> &mut LockSync {
        while self.locks.len() <= lock_index {
            self.locks.push(LockSync::new());
        }
        match &mut self.model {
            ModelShared::Ec(ec) => {
                ec.ensure_lock(lock_index, self.nprocs);
            }
            ModelShared::Lrc(lrc) => {
                lrc.ensure_lock(lock_index, self.nprocs);
            }
        }
        &mut self.locks[lock_index]
    }

    /// Ensures the barrier table covers `barrier_index` and returns the entry.
    pub fn ensure_barrier(&mut self, barrier_index: usize) -> &mut BarrierSync {
        while self.barriers.len() <= barrier_index {
            self.barriers.push(BarrierSync::new(self.nprocs));
        }
        &mut self.barriers[barrier_index]
    }

    /// The EC state; panics if the run is configured for LRC.
    pub fn ec(&mut self) -> &mut EcShared {
        match &mut self.model {
            ModelShared::Ec(ec) => ec,
            ModelShared::Lrc(_) => panic!("EC operation invoked on an LRC-configured run"),
        }
    }

    /// The LRC state; panics if the run is configured for EC.
    pub fn lrc(&mut self) -> &mut LrcShared {
        match &mut self.model {
            ModelShared::Lrc(lrc) => lrc,
            ModelShared::Ec(_) => panic!("LRC operation invoked on an EC-configured run"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ImplKind;
    use dsm_mem::{BlockGranularity, RegionId};

    fn setup(kind: ImplKind) -> Shared {
        let cfg = DsmConfig::with_procs(kind, 4);
        let regions = vec![RegionDesc::new(
            RegionId::new(0),
            "r",
            8192,
            BlockGranularity::Word,
        )];
        let init = vec![vec![0u8; 8192]];
        Shared::new(&cfg, &regions, &init)
    }

    #[test]
    fn stamp_packing_roundtrips() {
        assert_eq!(unpack_stamp(0), None);
        let s = pack_stamp(NodeId::new(3), 17);
        assert_eq!(unpack_stamp(s), Some((NodeId::new(3), 17)));
        let s = pack_stamp(NodeId::new(0), 0);
        assert_ne!(s, 0, "node 0 interval 0 must not collide with the sentinel");
    }

    #[test]
    fn lock_and_barrier_tables_grow_on_demand() {
        let mut sh = setup(ImplKind::ec_time());
        sh.ensure_lock(5);
        assert_eq!(sh.locks.len(), 6);
        assert!(sh.locks[5].can_acquire_exclusive());
        sh.ensure_barrier(2);
        assert_eq!(sh.barriers.len(), 3);
        assert_eq!(sh.ec().locks.len(), 6);
    }

    #[test]
    fn lock_sync_admission_rules() {
        let mut l = LockSync::new();
        assert!(l.can_acquire_exclusive());
        l.readers = 1;
        assert!(!l.can_acquire_exclusive());
        assert!(l.can_acquire_read());
        l.readers = 0;
        l.exclusive_holder = Some(NodeId::new(1));
        assert!(!l.can_acquire_read());
    }

    #[test]
    fn lrc_notice_counting() {
        let mut sh = setup(ImplKind::lrc_diff());
        let lrc = sh.lrc();
        lrc.interval_pages[0] = vec![2, 3, 1]; // node 0: intervals 1..=3
        lrc.interval_pages[1] = vec![5];
        let mut from = VectorClock::new(4);
        let mut to = VectorClock::new(4);
        to.set_entry(NodeId::new(0), 3);
        to.set_entry(NodeId::new(1), 1);
        assert_eq!(lrc.notices_between(&from, &to), 2 + 3 + 1 + 5);
        from.set_entry(NodeId::new(0), 2);
        assert_eq!(lrc.notices_between(&from, &to), 1 + 5);
        assert_eq!(lrc.notices_between(&to, &to), 0);
    }

    #[test]
    #[should_panic(expected = "EC operation")]
    fn model_mismatch_panics() {
        let mut sh = setup(ImplKind::lrc_diff());
        let _ = sh.ec();
    }
}
