//! Typed access to shared memory.

/// A plain-old-data scalar that can be stored in shared memory.
///
/// The DSM stores shared regions as byte arrays (as a real DSM does); this
/// trait provides the little-endian encode/decode used by the typed accessors
/// on [`ProcessContext`](crate::ProcessContext) and
/// [`Dsm::init_region`](crate::Dsm::init_region).
pub trait Scalar: Copy + Default + PartialEq + std::fmt::Debug + Send + Sync + 'static {
    /// Size of the scalar in bytes.
    const SIZE: usize;

    /// Encodes the scalar into `out` (which is exactly `SIZE` bytes).
    fn write_le(self, out: &mut [u8]);

    /// Decodes the scalar from `bytes` (which is exactly `SIZE` bytes).
    fn read_le(bytes: &[u8]) -> Self;

    /// Decodes `out.len()` consecutive scalars from `bytes` (which is
    /// exactly `out.len() * SIZE` bytes).
    ///
    /// Semantically an element-wise [`read_le`](Scalar::read_le) loop, but
    /// walking both sides in exact chunks so the compiler drops the per
    /// element bounds checks and vectorises the copy — the bulk form the
    /// span accessors and [`RunResult::final_vec`](crate::RunResult::final_vec)
    /// lower onto.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not exactly `out.len() * SIZE` bytes.
    fn read_slice_le(bytes: &[u8], out: &mut [Self]) {
        assert_eq!(bytes.len(), out.len() * Self::SIZE, "slice byte width");
        for (slot, chunk) in out.iter_mut().zip(bytes.chunks_exact(Self::SIZE)) {
            *slot = Self::read_le(chunk);
        }
    }

    /// Encodes `values` into `out` (which is exactly `values.len() * SIZE`
    /// bytes); the bulk counterpart of [`write_le`](Scalar::write_le), with
    /// the same chunked shape as [`read_slice_le`](Scalar::read_slice_le).
    ///
    /// # Panics
    ///
    /// Panics if `out` is not exactly `values.len() * SIZE` bytes.
    fn write_slice_le(values: &[Self], out: &mut [u8]) {
        assert_eq!(out.len(), values.len() * Self::SIZE, "slice byte width");
        for (chunk, v) in out.chunks_exact_mut(Self::SIZE).zip(values) {
            v.write_le(chunk);
        }
    }
}

macro_rules! impl_scalar {
    ($($t:ty),*) => {
        $(
            impl Scalar for $t {
                const SIZE: usize = std::mem::size_of::<$t>();

                fn write_le(self, out: &mut [u8]) {
                    out.copy_from_slice(&self.to_le_bytes());
                }

                fn read_le(bytes: &[u8]) -> Self {
                    <$t>::from_le_bytes(bytes.try_into().expect("scalar byte width"))
                }
            }
        )*
    };
}

impl_scalar!(f32, f64, i32, u32, i64, u64);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Scalar>(v: T) {
        let mut buf = vec![0u8; T::SIZE];
        v.write_le(&mut buf);
        assert_eq!(T::read_le(&buf), v);
    }

    #[test]
    fn roundtrips() {
        roundtrip(3.25_f64);
        roundtrip(-7.5_f32);
        roundtrip(-42_i32);
        roundtrip(42_u32);
        roundtrip(-1_000_000_000_000_i64);
        roundtrip(u64::MAX);
    }

    #[test]
    fn slice_codecs_match_element_codecs() {
        let values: Vec<u32> = (0..37).map(|i| i * 0x01020304).collect();
        let mut bytes = vec![0u8; values.len() * 4];
        u32::write_slice_le(&values, &mut bytes);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(u32::read_le(&bytes[i * 4..i * 4 + 4]), *v);
        }
        let mut back = vec![0u32; values.len()];
        u32::read_slice_le(&bytes, &mut back);
        assert_eq!(back, values);

        let doubles = [1.5f64, -2.25, f64::MAX];
        let mut dbytes = vec![0u8; 24];
        f64::write_slice_le(&doubles, &mut dbytes);
        let mut dback = [0f64; 3];
        f64::read_slice_le(&dbytes, &mut dback);
        assert_eq!(dback, doubles);
    }

    #[test]
    #[should_panic(expected = "slice byte width")]
    fn read_slice_le_rejects_mismatched_lengths() {
        let mut out = [0u32; 2];
        u32::read_slice_le(&[0u8; 9], &mut out);
    }

    #[test]
    fn sizes() {
        assert_eq!(<f64 as Scalar>::SIZE, 8);
        assert_eq!(<f32 as Scalar>::SIZE, 4);
        assert_eq!(<i32 as Scalar>::SIZE, 4);
        assert_eq!(<u64 as Scalar>::SIZE, 8);
    }
}
