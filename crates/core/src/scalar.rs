//! Typed access to shared memory.

/// A plain-old-data scalar that can be stored in shared memory.
///
/// The DSM stores shared regions as byte arrays (as a real DSM does); this
/// trait provides the little-endian encode/decode used by the typed accessors
/// on [`ProcessContext`](crate::ProcessContext) and
/// [`Dsm::init_region`](crate::Dsm::init_region).
pub trait Scalar: Copy + Default + PartialEq + std::fmt::Debug + Send + Sync + 'static {
    /// Size of the scalar in bytes.
    const SIZE: usize;

    /// Encodes the scalar into `out` (which is exactly `SIZE` bytes).
    fn write_le(self, out: &mut [u8]);

    /// Decodes the scalar from `bytes` (which is exactly `SIZE` bytes).
    fn read_le(bytes: &[u8]) -> Self;
}

macro_rules! impl_scalar {
    ($($t:ty),*) => {
        $(
            impl Scalar for $t {
                const SIZE: usize = std::mem::size_of::<$t>();

                fn write_le(self, out: &mut [u8]) {
                    out.copy_from_slice(&self.to_le_bytes());
                }

                fn read_le(bytes: &[u8]) -> Self {
                    <$t>::from_le_bytes(bytes.try_into().expect("scalar byte width"))
                }
            }
        )*
    };
}

impl_scalar!(f32, f64, i32, u32, i64, u64);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Scalar>(v: T) {
        let mut buf = vec![0u8; T::SIZE];
        v.write_le(&mut buf);
        assert_eq!(T::read_le(&buf), v);
    }

    #[test]
    fn roundtrips() {
        roundtrip(3.25_f64);
        roundtrip(-7.5_f32);
        roundtrip(-42_i32);
        roundtrip(42_u32);
        roundtrip(-1_000_000_000_000_i64);
        roundtrip(u64::MAX);
    }

    #[test]
    fn sizes() {
        assert_eq!(<f64 as Scalar>::SIZE, 8);
        assert_eq!(<f32 as Scalar>::SIZE, 4);
        assert_eq!(<i32 as Scalar>::SIZE, 4);
        assert_eq!(<u64 as Scalar>::SIZE, 8);
    }
}
