//! Undo records: the target node's log of crash-epoch mutations to shared
//! state.
//!
//! Between its last clean barrier cut and the injected crash, the doomed
//! node keeps touching structures other nodes can observe: the lock table
//! (transfer counters, last-owner fields), the EC publish rings (incarnation
//! numbers, grant watermarks, publish records, first-miss diff charges) and
//! the LRC sharing accumulators (miss counts, homeless diff charges).  A
//! rollback must unwind those effects so the replayed epoch re-applies them
//! and the cluster-wide counters come out identical to a fault-free run.
//!
//! Records are appended in program order and applied **in reverse**; each
//! names the shared slot it touched so the engines can find it again under
//! the appropriate lock.  Everything the crash epoch publishes *by value*
//! (EC publish frames, flushed data) is either suppressed — the crash fires
//! before the barrier's interval publication — or idempotent on replay, so
//! only these counter-and-ring effects need explicit undo; the argument per
//! variant is spelled out in `DESIGN.md` §8.

use dsm_sim::NodeId;

/// One reversible crash-epoch mutation to shared state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum UndoRec {
    /// `LockSync::transfers` was incremented when the target acquired a
    /// lock it did not own.
    LockTransfer {
        /// Lock slot index.
        lock: usize,
    },
    /// `LockSync::last_owner` was overwritten by the target's exclusive
    /// acquire; restore `prev` (only if the target is still the recorded
    /// owner — a later legitimate acquire by a peer must win).
    LockOwner {
        /// Lock slot index.
        lock: usize,
        /// The owner before the target's acquire.
        prev: Option<NodeId>,
    },
    /// An EC grant to the target bumped the lock's incarnation and advanced
    /// the target's seen-sequence/seen-epoch watermarks.
    EcGrant {
        /// Lock slot index.
        lock: usize,
        /// `seen_seq[target]` before the grant.
        prev_seen_seq: u64,
        /// `seen_epoch[target]` before the grant.
        prev_seen_epoch: u64,
    },
    /// The target pushed a publish record with this stamp onto the EC ring.
    EcPublish {
        /// Lock slot index.
        lock: usize,
        /// `PublishRec::stamp` of the pushed record.
        stamp: u64,
    },
    /// The target's release published over a bound range: the per-word
    /// stamp array and the master copy of the range, captured *before* the
    /// publish overwrote them.  Restoring both makes a replayed first-ever
    /// acquire see exactly the stamps the original run saw — the grant scan
    /// treats `stamp == 0` ("never published") specially, so a retracted
    /// publish must not leave its stamps behind.
    EcRange {
        /// Region index.
        ridx: usize,
        /// First word-block of the captured span.
        start_block: usize,
        /// The stamps of the span before the publish.
        stamps: Box<[u64]>,
        /// The master bytes of the span before the publish.
        master: Box<[u8]>,
    },
    /// A first-miss grant to the target charged another node's EC publish
    /// record with its diff-creation cost.
    EcDiffCharge {
        /// Lock slot index.
        lock: usize,
        /// `PublishRec::stamp` of the charged record.
        stamp: u64,
    },
    /// A homeless-LRC miss by the target charged another node's diff record
    /// with its creation cost.
    LrcDiffCharge {
        /// Region index.
        ridx: usize,
        /// Page index within the region.
        page: usize,
        /// The node whose diff record was charged.
        node: NodeId,
        /// Stamp of the charged diff record.
        stamp: u64,
    },
    /// The target recorded an access miss in a page's sharing accumulator.
    SharingMiss {
        /// Region index.
        ridx: usize,
        /// Page index within the region.
        page: usize,
    },
}
