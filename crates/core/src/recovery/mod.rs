//! Crash injection, barrier-cut checkpoints, and rollback recovery.
//!
//! The paper's protocols are compared on failure-free executions; this
//! subsystem adds the classic DSM recovery experiment on top of them without
//! disturbing those executions: under the default [`FaultPlan::None`] not a
//! single branch of the protocol paths changes behaviour and every result
//! stays byte-identical.  With a plan armed, every node snapshots itself at
//! each barrier cut, a chosen node is killed deterministically at a chosen
//! barrier, and the runtime rolls it back to its last checkpoint and replays
//! it until it rejoins the peers blocked in the rendezvous.  See `DESIGN.md`
//! §8 ("Checkpoint & recovery") for the cut argument, the image format and
//! the re-admission protocol.
//!
//! The moving parts:
//!
//! * [`FaultPlan`] — the deterministic crash schedule carried by
//!   [`DsmConfig`](crate::DsmConfig).
//! * [`NodeCheckpoint`] — one node's in-memory barrier-cut snapshot (full
//!   region copies: restore is a `memcpy`).  Its compact wire form is
//!   [`dsm_mem::CkptImage`], a changed-run delta against the previous cut
//!   that travels to the transport replicas as a `Ckpt` frame.
//! * [`UndoRec`](undo::UndoRec) — the target node's log of crash-epoch
//!   mutations to *shared* state (lock table entries, publish rings, sharing
//!   accumulators), applied in reverse at rollback so the replayed epoch
//!   finds the cluster exactly as the checkpoint left it.
//! * [`RecoveryReport`] — checkpoint/rollback counters aggregated into
//!   [`RunResult::recovery`](crate::RunResult::recovery).
//!
//! Determinism contract (enforced by the recovery-equivalence suite): the
//! crash epoch's control flow must be a function of the node id and barrier
//! index alone, private state carried across barriers must not depend on
//! shared reads, and a lock the target touches in the crash epoch must not
//! be contended by another node in that same epoch.  All the paper's
//! barrier-structured kernels satisfy this; task-queue programs (Quicksort)
//! do not and are documented out of recovery scope.

use dsm_mem::{CkptImage, CkptRegion, VectorClock};
use dsm_sim::{CostModel, NodeStats, SimTime};

use crate::local::NodeLocal;

pub(crate) mod undo;

pub(crate) use undo::UndoRec;

/// Deterministic crash schedule for a run.
///
/// The default `None` disables the recovery subsystem entirely — no
/// checkpoints are taken, no undo is logged, and every protocol path is
/// byte-identical to a build without the subsystem.  `KillAt` arms it:
/// every node checkpoints at each barrier cut, and the named node panics at
/// the entry of its `barrier`-th barrier call (0-based, counting completed
/// barriers), to be rolled back and replayed by the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPlan {
    /// Fault-free execution (the default).
    #[default]
    None,
    /// Kill node `node` when it enters its `barrier`-th barrier call.
    KillAt {
        /// The node to kill (must be `< nprocs`).
        node: u32,
        /// How many barriers the node has completed when the crash fires
        /// (`0` kills it before its first barrier).
        barrier: u64,
    },
}

/// The panic payload of an injected crash.  The runtime's supervisor catches
/// exactly this type and turns it into a rollback; any other panic is
/// resumed and fails the run as before.
#[derive(Debug)]
pub(crate) struct InjectedCrash;

/// Installs (once per process) a panic hook that stays silent for
/// [`InjectedCrash`] payloads and delegates everything else to the previous
/// hook, so injected crashes do not spray backtraces over test output.
pub(crate) fn install_quiet_hook() {
    static QUIET: std::sync::Once = std::sync::Once::new();
    QUIET.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedCrash>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Checkpoint and rollback counters of one run, summed over all nodes.
///
/// All byte and word counts are logical (what a real implementation would
/// write); the `_ns` fields are simulated time charged to the node clocks
/// (checkpoint capture and state restore are modelled as memory-bandwidth
/// work, [`CostModel::twin_copy`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Checkpoint images captured (one per node per barrier cut, plus the
    /// initial cut of each node).
    pub checkpoints: u64,
    /// Total encoded size of every checkpoint image, in bytes (delta
    /// encoding: unchanged regions cost a few bytes).
    pub checkpoint_bytes: u64,
    /// Injected crashes recovered from.
    pub crashes: u64,
    /// Undo records applied while rolling shared state back.
    pub undo_applied: u64,
    /// Words of region data restored from checkpoints.
    pub restored_words: u64,
    /// Simulated time the crashed node lost (progress past the checkpoint
    /// that the rollback discarded), in nanoseconds.
    pub lost_ns: u64,
    /// Simulated time charged for restoring checkpointed state, in
    /// nanoseconds.
    pub restore_ns: u64,
    /// Simulated time charged for capturing checkpoints, in nanoseconds.
    pub ckpt_ns: u64,
}

impl RecoveryReport {
    /// Accumulates another node's counters into this report.
    pub(crate) fn merge(&mut self, other: &RecoveryReport) {
        self.checkpoints += other.checkpoints;
        self.checkpoint_bytes += other.checkpoint_bytes;
        self.crashes += other.crashes;
        self.undo_applied += other.undo_applied;
        self.restored_words += other.restored_words;
        self.lost_ns += other.lost_ns;
        self.restore_ns += other.restore_ns;
        self.ckpt_ns += other.ckpt_ns;
    }
}

/// Per-page state a checkpoint must carry: what the node has applied and the
/// freshness-cache marks that are only valid together with the saved vector.
/// Everything else in [`LocalPage`](crate::local::LocalPage) is per-interval
/// state that a clean barrier cut has already retired (twins, written bits,
/// dirty/armed flags), so restore resets it instead of saving it.
#[derive(Debug, Clone, Default)]
pub(crate) struct PageCkpt {
    /// `LocalPage::applied` at the cut.
    pub applied: Vec<u32>,
    /// `LocalPage::checked_epoch` at the cut.
    pub checked_epoch: u64,
    /// `LocalPage::checked_gen` at the cut.
    pub checked_gen: u64,
}

/// One region's checkpointed state: a full copy of the node's data (restore
/// is a `memcpy`) plus the per-page marks.
#[derive(Debug, Clone, Default)]
pub(crate) struct RegionCkpt {
    /// The node's copy of the region contents at the cut.
    pub data: Vec<u8>,
    /// Per-page saved state.
    pub pages: Vec<PageCkpt>,
}

/// One node's in-memory barrier-cut snapshot: everything `recover` needs to
/// put the node's private state back exactly as the cut left it.
#[derive(Debug, Clone)]
pub(crate) struct NodeCheckpoint {
    /// Barriers the node had completed at the cut.
    pub barriers: u64,
    /// The node's access epoch at the cut.
    pub epoch: u64,
    /// The node's simulated clock at the cut.
    pub time: SimTime,
    /// The node's vector clock at the cut.
    pub vector: VectorClock,
    /// The node's statistics counters at the cut.
    pub stats: NodeStats,
    /// `NodeLocal::intervals_at_last_barrier` at the cut.
    pub intervals_at_last_barrier: u32,
    /// Per-region data and page marks.
    pub regions: Vec<RegionCkpt>,
}

impl NodeCheckpoint {
    /// Snapshots the node's current state as a fresh checkpoint.
    fn capture(local: &NodeLocal) -> NodeCheckpoint {
        NodeCheckpoint {
            barriers: local.stats.barriers,
            epoch: local.epoch,
            time: local.clock.now(),
            vector: local.vector.clone(),
            stats: local.stats.clone(),
            intervals_at_last_barrier: local.intervals_at_last_barrier,
            regions: local
                .regions
                .iter()
                .map(|r| RegionCkpt {
                    data: r.data.clone(),
                    pages: r.pages.iter().map(page_ckpt).collect(),
                })
                .collect(),
        }
    }

    /// Re-snapshots into the existing buffers (no reallocation in steady
    /// state).
    fn recapture(&mut self, local: &NodeLocal) {
        self.barriers = local.stats.barriers;
        self.epoch = local.epoch;
        self.time = local.clock.now();
        self.vector.copy_from(&local.vector);
        self.stats = local.stats.clone();
        self.intervals_at_last_barrier = local.intervals_at_last_barrier;
        for (rc, r) in self.regions.iter_mut().zip(local.regions.iter()) {
            rc.data.copy_from_slice(&r.data);
            for (pc, p) in rc.pages.iter_mut().zip(r.pages.iter()) {
                pc.applied.copy_from_slice(&p.applied);
                pc.checked_epoch = p.checked_epoch;
                pc.checked_gen = p.checked_gen;
            }
        }
    }
}

fn page_ckpt(p: &crate::local::LocalPage) -> PageCkpt {
    PageCkpt {
        applied: p.applied.clone(),
        checked_epoch: p.checked_epoch,
        checked_gen: p.checked_gen,
    }
}

/// The recovery state a node carries while a fault plan is armed (boxed
/// behind an `Option` on [`NodeLocal`], `None` under [`FaultPlan::None`] so
/// the fault-free paths pay one pointer test at most).
#[derive(Debug)]
pub(crate) struct RecoveryState {
    /// The run's fault plan (never `None` here).
    pub plan: FaultPlan,
    /// Whether this node is the one the plan kills.
    pub is_target: bool,
    /// Whether the injected crash has fired already (it fires once).
    pub fired: bool,
    /// Barriers left to skip in replay mode: while positive, every
    /// `ProcessContext` operation is a no-op and each `barrier` call counts
    /// this down instead of synchronizing.
    pub skip: u64,
    /// Crash-epoch mutations to shared state, applied in reverse at
    /// rollback.  Recorded only on the target node, only until the crash
    /// fires, and cleared at every checkpoint.
    pub undo: Vec<UndoRec>,
    /// The node's last barrier-cut snapshot.
    pub ckpt: NodeCheckpoint,
    /// This node's share of the run's recovery counters.
    pub report: RecoveryReport,
}

/// Arms the recovery subsystem on one node before its worker starts: takes
/// the initial checkpoint (cut 0, an empty delta on the wire) and installs
/// the per-node state.
pub(crate) fn arm(local: &mut NodeLocal, plan: FaultPlan) {
    let is_target =
        matches!(plan, FaultPlan::KillAt { node, .. } if node == local.node.index() as u32);
    let mut state = Box::new(RecoveryState {
        plan,
        is_target,
        fired: false,
        skip: 0,
        undo: Vec::new(),
        ckpt: NodeCheckpoint::capture(local),
        report: RecoveryReport::default(),
    });
    // Cut 0: the initial contents, which every node already holds, encode as
    // an all-empty delta — the image is a few dozen bytes of header.
    let image = build_image(local, &state.ckpt.regions);
    state.report.checkpoints = 1;
    state.report.checkpoint_bytes = image.encoded_len() as u64;
    local.recovery = Some(state);
    send_image(local, &image);
}

/// Builds the wire image of the node's *current* state as a delta against
/// `prev` (the region copies of the previous checkpoint).
fn build_image(local: &NodeLocal, prev: &[RegionCkpt]) -> CkptImage {
    let stamp = local.stats.barriers;
    CkptImage {
        node: local.node.index() as u32,
        barriers: stamp,
        epoch: local.epoch,
        time_ns: local.clock.now().as_nanos(),
        clock: local.vector.clone(),
        regions: local
            .regions
            .iter()
            .zip(prev.iter())
            .map(|(r, p)| CkptRegion::delta(&p.data, &r.data, stamp))
            .collect(),
        locks: local.held.keys().copied().collect(),
    }
}

/// Ships a checkpoint image to the transport replicas, when a real backend
/// is attached (taken/put back around the send so `local` stays borrowable).
fn send_image(local: &mut NodeLocal, image: &CkptImage) {
    if local.wire.is_none() {
        return;
    }
    let mut bytes = Vec::with_capacity(image.encoded_len());
    image.encode_into(&mut bytes);
    let mut wire = local.wire.take();
    if let Some(w) = wire.as_deref_mut() {
        w.send_ckpt(&bytes);
    }
    local.wire = wire;
}

/// True while the node is replaying skipped barriers: every shared-memory
/// and synchronization operation must be a no-op.
#[inline]
pub(crate) fn skipping(local: &NodeLocal) -> bool {
    matches!(local.recovery.as_deref(), Some(r) if r.skip > 0)
}

/// Fires the injected crash if this barrier entry is the planned kill point.
/// Called at the top of every `barrier` before any cost or statistic is
/// charged, so the crash epoch never publishes its interval and the barrier
/// slot never sees the doomed arrival.
pub(crate) fn maybe_fire(local: &mut NodeLocal) {
    let target_barrier = match local.recovery.as_deref() {
        Some(r) if r.is_target && !r.fired && r.skip == 0 => match r.plan {
            FaultPlan::KillAt { barrier, .. } => barrier,
            FaultPlan::None => return,
        },
        _ => return,
    };
    if local.stats.barriers != target_barrier {
        return;
    }
    assert!(
        local.held.is_empty(),
        "fault plan kills {} at barrier {target_barrier} while it holds a lock; crashes are \
         injected only at clean cuts",
        local.node
    );
    local.recovery.as_deref_mut().expect("checked above").fired = true;
    std::panic::panic_any(InjectedCrash);
}

/// Takes a barrier-cut checkpoint if a plan is armed.  Called at the end of
/// every completed `barrier` call on every node; a node replaying skipped
/// barriers never reaches this (its `barrier` returns early).
///
/// Capture is charged to the node's clock as memory-bandwidth work over the
/// changed words ([`CostModel::twin_copy`]) — clock only, no statistics
/// counter and no message record, so a crashed-and-recovered run's traffic
/// and statistics stay comparable to the fault-free run.
pub(crate) fn checkpoint_if_armed(local: &mut NodeLocal, cost: &CostModel) {
    if local.recovery.is_none() {
        return;
    }
    if !local.held.is_empty() {
        // A mid-critical-section barrier is not a clean cut: keep the old
        // checkpoint and keep accumulating undo until the next clean one.
        return;
    }
    let image = {
        let state = local.recovery.as_deref().expect("checked above");
        build_image(local, &state.ckpt.regions)
    };
    let charge = cost.twin_copy(image.words() as u64);
    let state = local.recovery.as_deref_mut().expect("checked above");
    state.report.checkpoints += 1;
    state.report.checkpoint_bytes += image.encoded_len() as u64;
    state.report.ckpt_ns += charge.as_nanos();
    state.undo.clear();
    send_image(local, &image);
    // The capture cost lands on the clock before the snapshot freezes the
    // time, so restore resumes from after-capture time.
    local.clock.advance(charge);
    let mut state = local.recovery.take().expect("checked above");
    state.ckpt.recapture(local);
    local.recovery = Some(state);
}

/// Restores the node's private state from its last checkpoint.  The caller
/// (the `ProcessContext` rollback path) has already unwound the crash-epoch
/// mutations to shared state from the undo log.
///
/// Returns the number of undo records that were pending (for the report) —
/// the caller passes the drained log in.
pub(crate) fn restore(local: &mut NodeLocal, cost: &CostModel, undo_applied: usize) {
    let mut state = local
        .recovery
        .take()
        .expect("restore without an armed fault plan");
    let ckpt = &state.ckpt;
    let lost = local.clock.now().saturating_sub(ckpt.time);

    let mut words = 0u64;
    for (r, rc) in local.regions.iter_mut().zip(ckpt.regions.iter()) {
        r.data.copy_from_slice(&rc.data);
        words += (rc.data.len() / 4) as u64;
        for (p, pc) in r.pages.iter_mut().zip(rc.pages.iter()) {
            if let Some(twin) = p.twin.take() {
                local.pool.put(twin);
            }
            if let Some(w) = &mut p.written {
                w.clear_all();
            }
            p.dirty = false;
            p.armed = false;
            p.applied.copy_from_slice(&pc.applied);
            p.checked_epoch = pc.checked_epoch;
            p.checked_gen = pc.checked_gen;
        }
    }
    local.stats = ckpt.stats.clone();
    local.vector.copy_from(&ckpt.vector);
    local.epoch = ckpt.epoch;
    local.intervals_at_last_barrier = ckpt.intervals_at_last_barrier;
    local.held.clear();
    local.dirty_pages.clear();

    // The restore itself is memory-bandwidth work over the full restored
    // state, charged on top of the checkpoint's frozen time.
    local.clock.reset();
    local.clock.sync_to(ckpt.time);
    let charge = cost.twin_copy(words);
    local.clock.advance(charge);

    state.report.crashes += 1;
    state.report.undo_applied += undo_applied as u64;
    state.report.restored_words += words;
    state.report.lost_ns += lost.as_nanos();
    state.report.restore_ns += charge.as_nanos();
    state.skip = state.ckpt.barriers;
    local.recovery = Some(state);

    // A tiny rollback notice keeps the replica transcript honest about the
    // re-admission (replayed publish frames follow with fresh sequences).
    let node = local.node.index() as u32;
    let barriers = local.stats.barriers;
    if local.wire.is_some() {
        let mut payload = Vec::with_capacity(12);
        payload.extend_from_slice(&node.to_le_bytes());
        payload.extend_from_slice(&barriers.to_le_bytes());
        let mut wire = local.wire.take();
        if let Some(w) = wire.as_deref_mut() {
            w.send_rollback(&payload);
        }
        local.wire = wire;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_mem::{BlockGranularity, RegionDesc, RegionId};
    use dsm_sim::NodeId;

    fn local() -> NodeLocal {
        let regions = vec![RegionDesc::new(
            RegionId::new(0),
            "r",
            256,
            BlockGranularity::Word,
        )];
        let init = vec![vec![0u8; 256]];
        NodeLocal::new(NodeId::new(1), 2, &regions, &init)
    }

    #[test]
    fn arm_takes_an_empty_initial_cut() {
        let mut l = local();
        arm(
            &mut l,
            FaultPlan::KillAt {
                node: 1,
                barrier: 3,
            },
        );
        let r = l.recovery.as_deref().expect("armed");
        assert!(r.is_target && !r.fired && r.skip == 0);
        assert_eq!(r.report.checkpoints, 1);
        assert!(r.report.checkpoint_bytes > 0, "header bytes still count");
        assert_eq!(r.ckpt.barriers, 0);
    }

    #[test]
    fn capture_and_restore_round_trip_the_local_state() {
        let cost = CostModel::free();
        let mut l = local();
        arm(
            &mut l,
            FaultPlan::KillAt {
                node: 1,
                barrier: 1,
            },
        );

        // Progress to a cut: mutate data, stats and the clock, checkpoint.
        l.regions[0].data[0..4].copy_from_slice(&9u32.to_le_bytes());
        l.stats.barriers = 1;
        l.stats.shared_accesses = 42;
        l.epoch = 7;
        l.clock.advance(SimTime::from_nanos(1000));
        checkpoint_if_armed(&mut l, &cost);
        assert_eq!(l.recovery.as_deref().expect("armed").report.checkpoints, 2);

        // Diverge past the cut, then crash and restore.
        l.regions[0].data[0..4].copy_from_slice(&0xdeadu32.to_le_bytes());
        l.stats.shared_accesses = 99;
        l.epoch = 9;
        l.clock.advance(SimTime::from_nanos(500));
        restore(&mut l, &cost, 3);

        assert_eq!(l.regions[0].data[0..4], 9u32.to_le_bytes());
        assert_eq!(l.stats.shared_accesses, 42);
        assert_eq!(l.epoch, 7);
        assert_eq!(l.clock.now(), SimTime::from_nanos(1000));
        let r = l.recovery.as_deref().expect("still armed");
        assert_eq!(r.skip, 1, "replay skips the one completed barrier");
        assert_eq!(r.report.crashes, 1);
        assert_eq!(r.report.undo_applied, 3);
        assert_eq!(r.report.lost_ns, 500);
    }

    #[test]
    fn fire_panics_exactly_at_the_planned_barrier() {
        let mut l = local();
        arm(
            &mut l,
            FaultPlan::KillAt {
                node: 1,
                barrier: 2,
            },
        );
        maybe_fire(&mut l); // barriers == 0: no fire
        l.stats.barriers = 2;
        install_quiet_hook();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| maybe_fire(&mut l)))
            .expect_err("must fire");
        assert!(err.downcast_ref::<InjectedCrash>().is_some());
        assert!(l.recovery.as_deref().expect("armed").fired);
        // Fired once: never again.
        maybe_fire(&mut l);
    }

    #[test]
    fn report_merge_sums_every_field() {
        let a = RecoveryReport {
            checkpoints: 1,
            checkpoint_bytes: 2,
            crashes: 3,
            undo_applied: 4,
            restored_words: 5,
            lost_ns: 6,
            restore_ns: 7,
            ckpt_ns: 8,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.checkpoints, 2);
        assert_eq!(b.ckpt_ns, 16);
    }
}
