//! The lazy-release-consistency protocol (TreadMarks-style), Sections 3.2 /
//! 4 / 5 of the paper.
//!
//! Execution is divided into intervals ended by releases and barrier
//! arrivals.  At the end of an interval the modifications to every dirty page
//! are recorded (a diff, or timestamped blocks) and announced through write
//! notices; an acquire merges the releaser's vector and receives the notices;
//! the data itself moves lazily, at the access miss that follows the
//! invalidation (invalidate protocol, multiple-writer pages).

use dsm_mem::{IntervalId, WriteNotice};
use dsm_sim::{MsgKind, NodeId, SimTime};

use crate::config::{Collection, Trapping};
use crate::context::{ProcessContext, CTRL_MSG_BYTES};
use crate::ids::{LockId, LockMode};
use crate::local::HeldLock;
use crate::shared::{pack_stamp, unpack_stamp, PublishRec, Shared};

impl ProcessContext<'_> {
    /// LRC lock acquire: block until available, account for the lock
    /// messages, merge the releaser's vector and receive its write notices.
    pub(crate) fn lrc_acquire(&mut self, lock: LockId, mode: LockMode) {
        assert!(
            mode.is_exclusive(),
            "the LRC implementation provides exclusive locks only (no read-only locks are needed \
             for the application suite, Section 3.2)"
        );
        let cost = self.cost().clone();
        self.local.clock.advance(cost.lock_overhead());
        self.local.stats.lock_acquires += 1;
        let me = self.local.node;
        let nprocs = self.local.nprocs;
        let lidx = lock.index();
        let global = self.global;
        let mut shared = global.shared.lock();
        shared.ensure_lock(lidx);

        while !shared.locks[lidx].can_acquire_exclusive() {
            global.condvar.wait(&mut shared);
        }

        let manager = lock.manager(nprocs);
        let (local_grant, free_time, last_owner) = {
            let l = &shared.locks[lidx];
            (l.last_owner == Some(me), l.free_time, l.last_owner)
        };

        let mut arrival = self.local.clock.now();
        if local_grant {
            self.local.stats.local_lock_acquires += 1;
        } else {
            if me != manager {
                self.local
                    .stats
                    .record_msg(MsgKind::LockRequest, CTRL_MSG_BYTES);
                arrival += cost.message(CTRL_MSG_BYTES);
            }
            // Never-owned locks are granted by their manager; otherwise the
            // manager forwards the request to the last owner.
            let owner = last_owner.unwrap_or(manager);
            if manager != owner {
                self.local
                    .stats
                    .record_msg(MsgKind::LockForward, CTRL_MSG_BYTES);
                arrival += cost.message(CTRL_MSG_BYTES);
            }
        }
        let grant_time = arrival.max(free_time);
        self.local.clock.sync_to(grant_time);

        {
            let l = &mut shared.locks[lidx];
            if l.last_owner != Some(me) {
                l.transfers += 1;
            }
            l.exclusive_holder = Some(me);
            l.last_owner = Some(me);
        }

        if !local_grant {
            self.local
                .clock
                .advance(SimTime::from_nanos(cost.interrupt_ns));
            let lrc = shared.lrc();
            let relvec = lrc.lock_release_vec[lidx].clone();
            let notices = lrc.notices_between(&self.local.vector, &relvec);
            let payload = relvec.wire_size() + notices as usize * WriteNotice::WIRE_SIZE;
            self.local.stats.write_notices_received += notices;
            self.local.vector.merge_max(&relvec);
            self.local.stats.record_msg(MsgKind::LockGrant, payload);
            self.local.clock.advance(cost.message(payload));
        }
        drop(shared);

        self.local.held.insert(
            lock.0,
            HeldLock {
                mode,
                small_twins: None,
                armed_pages: Vec::new(),
            },
        );
        self.local.epoch += 1;
    }

    /// LRC lock release: end the current interval (publishing the
    /// modifications of its dirty pages) and make the lock available.
    pub(crate) fn lrc_release(&mut self, lock: LockId) {
        let cost = self.cost().clone();
        self.local.clock.advance(cost.lock_overhead());
        let _held = self
            .local
            .held
            .remove(&lock.0)
            .expect("release of a lock that is not held");
        let global = self.global;
        let mut shared = global.shared.lock();
        shared.ensure_lock(lock.index());
        self.lrc_publish_interval(&mut shared);
        {
            let lrc = shared.lrc();
            lrc.lock_release_vec[lock.index()] = self.local.vector.clone();
        }
        {
            let l = &mut shared.locks[lock.index()];
            l.exclusive_holder = None;
            l.free_time = l.free_time.max(self.local.clock.now());
        }
        drop(shared);
        global.condvar.notify_all();
    }

    /// Ends the current interval: for every page dirtied since the last
    /// release/barrier, record the modifications in the shared store and
    /// register a write notice.
    pub(crate) fn lrc_publish_interval(&mut self, shared: &mut Shared) {
        if self.local.dirty_pages.is_empty() {
            return;
        }
        let cost = self.global.cfg.cost.clone();
        let trapping = self.global.cfg.kind.trapping();
        let collection = self.global.cfg.kind.collection();
        let hierarchical = self.global.cfg.hierarchical_dirty_bits;
        let diff_ring = self.global.cfg.diff_ring;
        let me = self.local.node;
        let me_idx = me.index();
        let next_interval = self.local.vector.entry(me) + 1;
        let total_region_pages: u64 = self
            .global
            .regions
            .iter()
            .map(|d| d.num_pages() as u64)
            .sum();

        let dirty = std::mem::take(&mut self.local.dirty_pages);
        let lrc = shared.lrc();
        let mut published_pages = 0u32;
        let mut total_compare_words = 0u64;
        let mut reprotects = 0u64;

        for (ridx, page) in dirty {
            let local_region = &mut self.local.regions[ridx];
            let span = local_region.page_span(page);
            let rs = &mut lrc.regions[ridx];
            let base_word = span.start / 4;
            let nwords = span.len().div_ceil(4);

            let mut changed_words = 0usize;
            let mut runs = 0usize;
            let mut compare_words = 0usize;
            let mut prev_changed = false;

            {
                let crate::local::LocalRegion { data, pages } = local_region;
                let lp = &mut pages[page];
                for w in 0..nwords {
                    let start = span.start + w * 4;
                    let end = (start + 4).min(data.len());
                    let changed = match trapping {
                        Trapping::Instrumentation => lp.was_written(w),
                        Trapping::Twinning => match &lp.twin {
                            Some(twin) => {
                                compare_words += 1;
                                twin[start - span.start..end - span.start] != data[start..end]
                            }
                            None => false,
                        },
                    };
                    if changed {
                        rs.master[start..end].copy_from_slice(&data[start..end]);
                        rs.stamp[base_word + w] = pack_stamp(me, next_interval);
                        changed_words += 1;
                        if !prev_changed {
                            runs += 1;
                        }
                        prev_changed = true;
                    } else {
                        prev_changed = false;
                    }
                }
                lp.applied[me_idx] = next_interval;
                if trapping == Trapping::Twinning && lp.twin.is_some() {
                    reprotects += 1;
                }
                lp.clear_interval_state();
            }

            total_compare_words += compare_words as u64;

            if changed_words > 0 {
                published_pages += 1;
                self.local.stats.diff_words += changed_words as u64;
                if collection == Collection::Diffs {
                    self.local.stats.diffs_created += 1;
                }
                let ps = &mut rs.pages[page];
                ps.latest[me_idx] = next_interval;
                ps.last_publisher = Some(me);
                let mut pub_vec = self.local.vector.clone();
                pub_vec.set_entry(me, next_interval);
                ps.last_pub_vector = pub_vec;
                ps.diffs.push_back(PublishRec {
                    stamp: next_interval as u64,
                    node: me,
                    encoded_size: changed_words * 4 + runs * 8,
                    compare_words,
                    creation_charged: collection == Collection::Timestamps
                        || trapping == Trapping::Instrumentation,
                });
                while ps.diffs.len() > diff_ring {
                    ps.diffs.pop_front();
                }
            }
        }

        match trapping {
            Trapping::Twinning => {
                self.local.clock.advance(cost.mprotect().times(reprotects));
                if collection == Collection::Timestamps {
                    // Stamping the modified blocks requires the twin
                    // comparison at the end of the interval.
                    self.local
                        .clock
                        .advance(cost.diff_compare(total_compare_words));
                }
            }
            Trapping::Instrumentation => {
                if hierarchical {
                    // Finding the dirty pages means checking the page-level
                    // dirty bit of every page in the shared data set.
                    self.local.stats.page_bits_checked += total_region_pages;
                    self.local
                        .clock
                        .advance(cost.page_bit_checks(total_region_pages));
                }
            }
        }

        lrc.interval_pages[me_idx].push(published_pages);
        self.local.vector.bump(me);
    }

    /// Ensures the local copy of a page reflects every modification this node
    /// is entitled to see, taking an access miss (invalidate protocol) if it
    /// does not.
    pub(crate) fn lrc_ensure_fresh(&mut self, ridx: usize, page: usize) {
        {
            let lp = &self.local.regions[ridx].pages[page];
            if lp.checked_epoch == self.local.epoch {
                return;
            }
        }
        let cost = self.global.cfg.cost.clone();
        let trapping = self.global.cfg.kind.trapping();
        let collection = self.global.cfg.kind.collection();
        let gran = self.global.regions[ridx].granularity;
        let nprocs = self.local.nprocs;
        let me_idx = self.local.node.index();
        let epoch = self.local.epoch;

        let global = self.global;
        let mut shared = global.shared.lock();
        let lrc = shared.lrc();

        // Which processors have published modifications to this page that we
        // are entitled to see (their interval happens-before our acquire) but
        // have not yet applied?  `(proc, from, upto)` per stale source.
        let mut stale: Vec<(usize, u32, u32)> = Vec::new();
        {
            let ps = &lrc.regions[ridx].pages[page];
            let lp = &self.local.regions[ridx].pages[page];
            for q in 0..nprocs {
                if q == me_idx {
                    continue;
                }
                let qn = NodeId::new(q as u32);
                let upto = self.local.vector.entry(qn).min(ps.latest[q]);
                if upto > lp.applied[q] {
                    stale.push((q, lp.applied[q], upto));
                }
            }
        }
        if stale.is_empty() {
            drop(shared);
            self.local.regions[ridx].pages[page].checked_epoch = epoch;
            return;
        }

        // Access miss.
        self.local.stats.access_misses += 1;
        self.local.stats.pages_invalidated += 1;
        self.local.clock.advance(cost.page_fault());

        // How many processors must be asked?  The most recent publisher can
        // forward every diff its publish-time vector dominates (it saved
        // them); intervals concurrent with its publish require contacting the
        // writer directly.
        let responders = {
            let ps = &lrc.regions[ridx].pages[page];
            let last_pub = ps.last_publisher;
            let mut extra = 0usize;
            let mut primary = false;
            for &(q, _, upto) in &stale {
                let qn = NodeId::new(q as u32);
                if Some(qn) == last_pub || (last_pub.is_some() && upto <= ps.last_pub_vector.entry(qn))
                {
                    primary = true;
                } else {
                    extra += 1;
                }
            }
            (usize::from(primary) + extra).max(1)
        };

        let span = {
            let local_region = &self.local.regions[ridx];
            local_region.page_span(page)
        };
        let base_word = span.start / 4;
        let nwords = span.len().div_ceil(4);

        let mut applied_words = 0usize;
        let mut ts_runs = 0usize;
        let mut diff_bytes = 0usize;
        let mut diff_count = 0u64;
        let mut creation_words = 0u64;

        {
            let region_shared = &mut lrc.regions[ridx];
            let local_region = &mut self.local.regions[ridx];
            let crate::local::LocalRegion { data, pages } = local_region;
            let lp = &mut pages[page];

            // Apply every block whose latest publish happens-before us and is
            // newer than what we have, skipping blocks we have dirty local
            // writes to (they belong to our current, unpublished interval).
            let mut prev: Option<u64> = None;
            for w in 0..nwords {
                let block = base_word + w;
                let st = region_shared.stamp[block];
                let Some((qn, i)) = unpack_stamp(st) else {
                    prev = None;
                    continue;
                };
                let q = qn.index();
                if q == me_idx {
                    prev = None;
                    continue;
                }
                let entitled = i <= self.local.vector.entry(qn) && i > lp.applied[q];
                if entitled && !lp.was_written(w) {
                    let start = span.start + w * 4;
                    let end = (start + 4).min(data.len());
                    data[start..end].copy_from_slice(&region_shared.master[start..end]);
                    applied_words += 1;
                    if prev != Some(st) {
                        ts_runs += 1;
                    }
                    prev = Some(st);
                } else {
                    prev = None;
                }
            }

            // Diff-mode traffic accounting: every pending diff of a stale
            // source is transferred (the overlapping-diff effect for
            // migratory data).
            if collection == Collection::Diffs {
                let ps = &mut region_shared.pages[page];
                for rec in ps.diffs.iter_mut() {
                    let q = rec.node.index();
                    let i = rec.stamp as u32;
                    let needed = stale
                        .iter()
                        .any(|&(sq, from, upto)| sq == q && i > from && i <= upto);
                    if needed {
                        diff_bytes += rec.encoded_size;
                        diff_count += 1;
                        if !rec.creation_charged {
                            rec.creation_charged = true;
                            creation_words += rec.compare_words as u64;
                        }
                    }
                }
            }

            for &(q, _, upto) in &stale {
                lp.applied[q] = lp.applied[q].max(upto);
            }
            lp.checked_epoch = epoch;
        }

        let reply_bytes = match collection {
            Collection::Timestamps => {
                let gran_div = if trapping == Trapping::Instrumentation {
                    (gran.bytes() / 4).max(1)
                } else {
                    1
                };
                let scan = (nwords / gran_div) as u64;
                self.local.stats.ts_blocks_scanned += scan;
                self.local.clock.advance(cost.ts_scan(scan));
                applied_words * 4 + ts_runs * (IntervalId::WIRE_SIZE + 6)
            }
            Collection::Diffs => {
                self.local.stats.diffs_applied += diff_count;
                self.local.clock.advance(cost.diff_compare(creation_words));
                diff_bytes.max(applied_words * 4)
            }
        };
        self.local.stats.words_applied += applied_words as u64;
        self.local.clock.advance(cost.apply_words(applied_words as u64));

        let req_bytes = self.local.vector.wire_size();
        for r in 0..responders {
            let bytes = if r == 0 { reply_bytes } else { CTRL_MSG_BYTES };
            self.local.stats.record_msg(MsgKind::DataRequest, req_bytes);
            self.local.stats.record_msg(MsgKind::DataReply, bytes);
            self.local.clock.advance(cost.round_trip(req_bytes, bytes));
        }
        drop(shared);
    }
}
