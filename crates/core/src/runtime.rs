//! The DSM runtime: region allocation, initialisation, and SPMD execution.

use dsm_mem::{BlockGranularity, MemRange, PageModeChange, RegionDesc, RegionId};
use dsm_sim::{ClusterStats, RegionSharing, SimTime, TrafficReport};

use crate::api::SharedArray;
use crate::config::DsmConfig;
use crate::context::ProcessContext;
use crate::engine::{build_engine, ProtocolEngine};
use crate::error::DsmError;
use crate::ids::LockId;
use crate::local::NodeLocal;
use crate::recovery::{self, FaultPlan, RecoveryReport};
use crate::scalar::Scalar;
use crate::sync::SyncTables;
use crate::transport::{build_transport, TransportReport, WireEndpoint};

/// Handle to a shared-memory region.
///
/// Regions are allocated on the [`Dsm`] before the parallel section starts
/// (mirroring Midway/TreadMarks programs, which allocate shared data up
/// front), and accessed from worker code through the typed accessors on
/// [`ProcessContext`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    id: RegionId,
    len: usize,
    granularity: BlockGranularity,
}

impl Region {
    /// The region's identifier.
    pub fn id(&self) -> RegionId {
        self.id
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of elements of type `T` the region holds.
    pub fn elems<T: Scalar>(&self) -> usize {
        self.len / T::SIZE
    }

    /// The block granularity writes to this region are trapped at under
    /// compiler instrumentation.
    pub fn granularity(&self) -> BlockGranularity {
        self.granularity
    }

    /// A [`MemRange`] covering elements `start..start + count` of type `T`
    /// (used to bind data to EC locks).
    pub fn range_of<T: Scalar>(&self, start: usize, count: usize) -> MemRange {
        MemRange::new(self.id, start * T::SIZE, count * T::SIZE)
    }

    /// A [`MemRange`] covering the whole region.
    pub fn whole(&self) -> MemRange {
        MemRange::new(self.id, 0, self.len)
    }
}

/// Result of one DSM run: simulated execution time, per-node times, traffic
/// statistics, and the final contents of every shared region.
#[derive(Debug)]
pub struct RunResult {
    /// Simulated execution time (the slowest node's clock), the quantity
    /// reported in the paper's Tables 3-5.
    pub time: SimTime,
    /// Per-node simulated completion times.
    pub node_times: Vec<SimTime>,
    /// Per-node statistics.
    pub stats: ClusterStats,
    /// Aggregate traffic report (messages, bytes, misses, ...), including the
    /// lock-transfer totals aggregated from the sharded lock table.
    pub traffic: TrafficReport,
    /// Transport summary: which backend carried the run's publish frames,
    /// how many replicas were verified byte-identical to the master copies,
    /// and the frame/byte traffic on the real backends.
    pub wire: TransportReport,
    /// Per-region sharing profile (publishes, misses, diff bytes, distinct
    /// writers) under the LRC family; empty under EC.
    pub sharing: Vec<RegionSharing>,
    /// The adaptive policy's committed per-page mode changes, in commit
    /// order; empty for every static policy.
    pub migrations: Vec<PageModeChange>,
    /// Checkpoint and rollback counters, summed over all nodes; all zero
    /// under the default [`FaultPlan::None`](crate::FaultPlan::None).
    pub recovery: RecoveryReport,
    region_data: Vec<Vec<u8>>,
}

impl RunResult {
    /// Simulated execution time in seconds.
    pub fn seconds(&self) -> f64 {
        self.time.as_secs_f64()
    }

    /// Final contents of a region (the published master copy).
    ///
    /// For LRC runs the application must end with a barrier (all the paper's
    /// applications do) so that every node's last interval has been published.
    pub fn region_bytes(&self, region: Region) -> &[u8] {
        &self.region_data[region.id().index()]
    }

    /// Reads element `idx` of type `T` from the final contents of `region`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn read_final<T: Scalar>(&self, region: Region, idx: usize) -> T {
        let bytes = self.region_bytes(region);
        let off = idx * T::SIZE;
        T::read_le(&bytes[off..off + T::SIZE])
    }

    /// Copies the final contents of `region` out as a typed vector, decoding
    /// whole chunks at a time ([`Scalar::read_slice_le`]) rather than
    /// element by element.
    pub fn final_vec<T: Scalar>(&self, region: Region) -> Vec<T> {
        let bytes = self.region_bytes(region);
        let elems = region.elems::<T>();
        let mut out = vec![T::default(); elems];
        T::read_slice_le(&bytes[..elems * T::SIZE], &mut out);
        out
    }
}

/// Global state shared by all worker threads of one run: the engine-agnostic
/// sharded synchronization tables plus the consistency engine itself.
pub(crate) struct RunGlobal {
    pub cfg: DsmConfig,
    pub regions: Vec<RegionDesc>,
    pub sync: SyncTables,
    pub engine: Box<dyn ProtocolEngine>,
}

impl std::fmt::Debug for RunGlobal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunGlobal")
            .field("cfg", &self.cfg)
            .field("regions", &self.regions.len())
            .field("engine", &self.engine)
            .finish()
    }
}

/// The software distributed shared memory system.
///
/// A `Dsm` is configured with one of the nine implementations of the
/// protocol family ([`ImplKind`](crate::ImplKind)), populated with shared
/// regions, lock bindings (for EC) and initial data, and then executes an
/// SPMD worker closure on every simulated processor.
///
/// # Examples
///
/// ```
/// use dsm_core::{Dsm, DsmConfig, ImplKind, LockId, LockMode, BarrierId};
/// use dsm_mem::BlockGranularity;
/// use dsm_sim::Work;
///
/// let mut dsm = Dsm::new(DsmConfig::with_procs(ImplKind::lrc_diff(), 4))?;
/// let counter = dsm.alloc_scalar::<u32>("counter", BlockGranularity::Word);
///
/// let result = dsm.run(|ctx| {
///     // Every processor increments the shared counter under a lock; the
///     // guard releases it when dropped.
///     let mut guard = ctx.lock(LockId::new(0), LockMode::Exclusive);
///     guard.fetch_update(counter, |v| v + 1);
///     guard.compute(Work::ops(10));
///     drop(guard);
///     ctx.barrier(BarrierId::new(0));
/// });
///
/// assert_eq!(result.final_scalar(counter), 4);
/// assert!(result.seconds() > 0.0);
/// assert_eq!(result.traffic.lock_transfers, 4);
/// # Ok::<(), dsm_core::DsmError>(())
/// ```
#[derive(Debug)]
pub struct Dsm {
    cfg: DsmConfig,
    regions: Vec<RegionDesc>,
    init: Vec<Vec<u8>>,
    binds: Vec<(LockId, Vec<MemRange>)>,
}

impl Dsm {
    /// Creates a DSM with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn new(cfg: DsmConfig) -> Result<Self, DsmError> {
        cfg.validate()?;
        Ok(Dsm {
            cfg,
            regions: Vec::new(),
            init: Vec::new(),
            binds: Vec::new(),
        })
    }

    /// The configuration of this DSM.
    pub fn config(&self) -> &DsmConfig {
        &self.cfg
    }

    /// Allocates a shared region of `len` bytes, zero-initialised.
    pub fn alloc(
        &mut self,
        name: impl Into<String>,
        len: usize,
        granularity: BlockGranularity,
    ) -> Region {
        let id = RegionId::new(self.regions.len() as u32);
        self.regions
            .push(RegionDesc::new(id, name, len, granularity));
        self.init.push(vec![0; len]);
        Region {
            id,
            len,
            granularity,
        }
    }

    /// Allocates a shared region holding `count` elements of type `T` and
    /// returns a typed [`SharedArray`] handle (use [`Dsm::alloc`] for an
    /// untyped [`Region`]).
    pub fn alloc_array<T: Scalar>(
        &mut self,
        name: impl Into<String>,
        count: usize,
        granularity: BlockGranularity,
    ) -> SharedArray<T> {
        SharedArray::from_region(self.alloc(name, count * T::SIZE, granularity))
    }

    /// Initialises element `idx..` of `region` with values produced by `f`
    /// (called with each element index).  Initial data is distributed to all
    /// nodes before the run starts and is not charged any communication cost,
    /// mirroring the paper's practice of excluding input distribution from
    /// the timed section.
    ///
    /// # Panics
    ///
    /// Panics if the region does not belong to this DSM.
    pub fn init_region<T: Scalar>(&mut self, region: Region, f: impl Fn(usize) -> T) {
        let buf = &mut self.init[region.id().index()];
        for i in 0..region.elems::<T>() {
            f(i).write_le(&mut buf[i * T::SIZE..(i + 1) * T::SIZE]);
        }
    }

    /// Initialises a region from raw bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is longer than the region.
    pub fn init_bytes(&mut self, region: Region, bytes: &[u8]) {
        let buf = &mut self.init[region.id().index()];
        assert!(
            bytes.len() <= buf.len(),
            "initialisation data larger than region"
        );
        buf[..bytes.len()].copy_from_slice(bytes);
    }

    /// Binds shared data to a lock (EC only; ignored under LRC so that the
    /// same setup code can be reused).  The binding may list several
    /// non-contiguous ranges; binding the same lock again replaces its
    /// previous ranges.
    pub fn bind(&mut self, lock: LockId, ranges: impl IntoIterator<Item = MemRange>) {
        self.binds.push((lock, ranges.into_iter().collect()));
    }

    /// Runs `worker` on every simulated processor and returns the result.
    ///
    /// The closure is executed by `nprocs` OS threads, each with its own copy
    /// of the shared regions; it receives a [`ProcessContext`] identifying the
    /// processor and providing the shared-memory and synchronization API.
    pub fn run<F>(&self, worker: F) -> RunResult
    where
        F: Fn(&mut ProcessContext<'_>) + Sync,
    {
        let engine = build_engine(&self.cfg, &self.regions, &self.init);
        // Apply the bindings declared during setup (a no-op under LRC).
        for (lock, ranges) in &self.binds {
            engine.bind(*lock, ranges.clone());
        }

        let global = RunGlobal {
            cfg: self.cfg.clone(),
            regions: self.regions.clone(),
            sync: SyncTables::new(self.cfg.nprocs),
            engine,
        };

        let nprocs = self.cfg.nprocs;
        // The transport hands one endpoint to each worker (None under the
        // default simulated backend) and collects them back after the join
        // to drain and verify the replicas.
        let mut transport = build_transport(&self.cfg, &self.init);
        let mut endpoints: Vec<Option<Box<WireEndpoint>>> = (0..nprocs)
            .map(|p| transport.take_endpoint(dsm_sim::NodeId::new(p as u32)))
            .collect();
        let mut locals: Vec<Option<NodeLocal>> = Vec::with_capacity(nprocs);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(nprocs);
            for (p, endpoint) in endpoints.iter_mut().enumerate() {
                let global = &global;
                let worker = &worker;
                let regions = &self.regions;
                let init = &self.init;
                let endpoint = endpoint.take();
                handles.push(scope.spawn(move || {
                    let mut local =
                        NodeLocal::new(dsm_sim::NodeId::new(p as u32), nprocs, regions, init);
                    local.wire = endpoint;
                    let plan = global.cfg.fault;
                    let supervised = plan != FaultPlan::None;
                    if supervised {
                        recovery::install_quiet_hook();
                        recovery::arm(&mut local, plan);
                    }
                    let mut ctx = ProcessContext::new(global, local);
                    if supervised {
                        // Supervisor: run the worker, and when it dies of the
                        // *injected* crash, roll it back to its checkpoint and
                        // replay it.  Genuine panics propagate as before.
                        loop {
                            let run =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    worker(&mut ctx)
                                }));
                            match run {
                                Ok(()) => break,
                                Err(p) if p.is::<recovery::InjectedCrash>() => {
                                    ctx.recover_from_crash();
                                }
                                Err(p) => std::panic::resume_unwind(p),
                            }
                        }
                    } else {
                        worker(&mut ctx);
                    }
                    ctx.into_local()
                }));
            }
            for h in handles {
                locals.push(Some(h.join().expect("worker thread panicked")));
            }
        });

        let mut locals: Vec<NodeLocal> = locals.into_iter().map(|l| l.expect("joined")).collect();
        let node_times: Vec<SimTime> = locals.iter().map(|l| l.clock.now()).collect();
        let time = node_times.iter().copied().fold(SimTime::ZERO, SimTime::max);
        let wires: Vec<WireEndpoint> = locals
            .iter_mut()
            .filter_map(|l| l.wire.take())
            .map(|b| *b)
            .collect();
        for l in &mut locals {
            l.stats.pool_recycled = l.pool.recycled();
            l.stats.pool_allocated = l.pool.allocated();
        }
        let stats = ClusterStats::from_nodes(locals.iter().map(|l| l.stats.clone()).collect());
        let mut traffic = stats.traffic();
        traffic.lock_transfers = global.sync.total_lock_transfers();
        let sharing = global.engine.sharing_report();
        for r in &sharing {
            traffic.sharing.publishes += r.publishes;
            traffic.sharing.misses += r.misses;
            traffic.sharing.diff_bytes += r.diff_bytes;
            traffic.sharing.max_region_writers =
                traffic.sharing.max_region_writers.max(r.distinct_writers);
        }
        let mut recovery_report = RecoveryReport::default();
        for l in &locals {
            if let Some(r) = l.recovery.as_deref() {
                recovery_report.merge(&r.report);
            }
        }
        let migrations = global.engine.migration_trace();
        let region_data = global.engine.final_regions();
        let wire = transport.finish(wires, &region_data);

        RunResult {
            time,
            node_times,
            stats,
            traffic,
            wire,
            sharing,
            migrations,
            recovery: recovery_report,
            region_data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ImplKind;

    #[test]
    fn region_handles_and_ranges() {
        let mut dsm = Dsm::new(DsmConfig::with_procs(ImplKind::ec_time(), 2)).unwrap();
        let r = dsm
            .alloc_array::<f64>("m", 100, BlockGranularity::DoubleWord)
            .region();
        assert_eq!(r.len(), 800);
        assert_eq!(r.elems::<f64>(), 100);
        assert!(!r.is_empty());
        let range = r.range_of::<f64>(10, 5);
        assert_eq!(range.start, 80);
        assert_eq!(range.len, 40);
        assert_eq!(r.whole().len, 800);
    }

    #[test]
    fn init_region_fills_typed_values() {
        let mut dsm = Dsm::new(DsmConfig::with_procs(ImplKind::lrc_diff(), 1)).unwrap();
        let r = dsm
            .alloc_array::<u32>("a", 8, BlockGranularity::Word)
            .region();
        dsm.init_region::<u32>(r, |i| i as u32 * 10);
        let result = dsm.run(|ctx| {
            assert_eq!(ctx.read::<u32>(r, 3), 30);
            ctx.barrier(crate::BarrierId::new(0));
        });
        assert_eq!(result.read_final::<u32>(r, 7), 70);
        assert_eq!(result.final_vec::<u32>(r).len(), 8);
    }

    #[test]
    #[should_panic(expected = "larger than region")]
    fn oversized_init_panics() {
        let mut dsm = Dsm::new(DsmConfig::with_procs(ImplKind::lrc_diff(), 1)).unwrap();
        let r = dsm.alloc("a", 4, BlockGranularity::Word);
        dsm.init_bytes(r, &[0u8; 8]);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = DsmConfig::paper(ImplKind::ec_ci());
        cfg.nprocs = 0;
        assert!(Dsm::new(cfg).is_err());
    }

    #[test]
    fn sharing_report_reaches_the_run_result() {
        let mut dsm = Dsm::new(DsmConfig::with_procs(ImplKind::lrc_diff(), 2)).unwrap();
        let r = dsm
            .alloc_array::<u32>("shared", 4, BlockGranularity::Word)
            .region();
        let result = dsm.run(|ctx| {
            if ctx.node() == 0 {
                ctx.update::<u32>(r, 0, |v| v + 1);
            }
            ctx.barrier(crate::BarrierId::new(0));
            if ctx.node() == 1 {
                assert_eq!(ctx.read::<u32>(r, 0), 1);
            }
            ctx.barrier(crate::BarrierId::new(1));
        });
        assert_eq!(result.sharing.len(), 1);
        assert_eq!(result.sharing[0].region, "shared");
        assert!(result.sharing[0].publishes >= 1);
        assert!(result.sharing[0].distinct_writers >= 1);
        assert_eq!(
            result.traffic.sharing.publishes,
            result.sharing[0].publishes
        );
        assert!(
            result.migrations.is_empty(),
            "static policies never migrate"
        );
    }

    #[test]
    fn lock_transfers_are_aggregated_from_the_sharded_table() {
        let mut dsm = Dsm::new(DsmConfig::with_procs(ImplKind::lrc_diff(), 2)).unwrap();
        let r = dsm
            .alloc_array::<u32>("c", 1, BlockGranularity::Word)
            .region();
        let result = dsm.run(|ctx| {
            ctx.acquire(LockId::new(0), crate::LockMode::Exclusive);
            ctx.update::<u32>(r, 0, |v| v + 1);
            ctx.release(LockId::new(0));
            ctx.barrier(crate::BarrierId::new(0));
        });
        assert_eq!(result.read_final::<u32>(r, 0), 2);
        // Each node takes ownership once: two transfers in total.
        assert_eq!(result.traffic.lock_transfers, 2);
    }
}
