//! Configuration: consistency model, write trapping, write collection.

use std::fmt;

use dsm_sim::CostModel;

use crate::DsmError;

/// The consistency model (Section 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// Entry consistency (Midway): shared data is bound to locks, only the
    /// bound data is made consistent at an acquire, update protocol.
    Ec,
    /// Lazy release consistency (TreadMarks): no binding, all shared data is
    /// made consistent lazily, invalidate protocol with multiple writers.
    Lrc,
}

impl Model {
    /// Short label ("EC" / "LRC").
    pub fn label(self) -> &'static str {
        match self {
            Model::Ec => "EC",
            Model::Lrc => "LRC",
        }
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The write-trapping mechanism (Section 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trapping {
    /// Compiler instrumentation: every shared store also sets a software
    /// dirty bit (one word of memory per block).
    Instrumentation,
    /// Twinning: an unmodified copy of the object/page is made (at write-lock
    /// acquire for small EC objects, at a write-protection fault otherwise)
    /// and later compared against the current copy.
    Twinning,
}

impl Trapping {
    /// Short label used in implementation names ("ci" / "tw").
    pub fn label(self) -> &'static str {
        match self {
            Trapping::Instrumentation => "ci",
            Trapping::Twinning => "tw",
        }
    }
}

impl fmt::Display for Trapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The write-collection mechanism (Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Collection {
    /// Per-block timestamps (EC: lock incarnation numbers, LRC: `(processor,
    /// interval)` pairs); the responder scans timestamps and sends newer
    /// blocks plus run-length encoded timestamps.
    Timestamps,
    /// Run-length encoded diffs, created lazily and saved for future
    /// transmission.
    Diffs,
}

impl Collection {
    /// Short label used in implementation names ("time" / "diff").
    pub fn label(self) -> &'static str {
        match self {
            Collection::Timestamps => "time",
            Collection::Diffs => "diff",
        }
    }
}

impl fmt::Display for Collection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One of the implementations studied in the paper (Table 1): a consistency
/// model crossed with a write-trapping and a write-collection mechanism.
///
/// The combination of compiler instrumentation and diffing is rejected, as in
/// the paper, "because its memory requirements appear prohibitive" (it would
/// need both the software dirty bits and the diffs).
///
/// # Examples
///
/// ```
/// use dsm_core::{Collection, ImplKind, Model, Trapping};
///
/// let ec_ci = ImplKind::new(Model::Ec, Trapping::Instrumentation, Collection::Timestamps)?;
/// assert_eq!(ec_ci.name(), "EC-ci");
///
/// // The six implementations of Table 1:
/// assert_eq!(ImplKind::all().len(), 6);
/// # Ok::<(), dsm_core::DsmError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ImplKind {
    model: Model,
    trapping: Trapping,
    collection: Collection,
}

impl ImplKind {
    /// Creates an implementation descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`DsmError::UnsupportedCombination`] for compiler
    /// instrumentation combined with diffing.
    pub fn new(model: Model, trapping: Trapping, collection: Collection) -> Result<Self, DsmError> {
        if trapping == Trapping::Instrumentation && collection == Collection::Diffs {
            return Err(DsmError::UnsupportedCombination);
        }
        Ok(ImplKind {
            model,
            trapping,
            collection,
        })
    }

    /// EC with compiler instrumentation and timestamps (the Midway design).
    pub fn ec_ci() -> Self {
        ImplKind {
            model: Model::Ec,
            trapping: Trapping::Instrumentation,
            collection: Collection::Timestamps,
        }
    }

    /// EC with twinning and timestamps.
    pub fn ec_time() -> Self {
        ImplKind {
            model: Model::Ec,
            trapping: Trapping::Twinning,
            collection: Collection::Timestamps,
        }
    }

    /// EC with twinning and diffs (improves on the Midway VM implementation).
    pub fn ec_diff() -> Self {
        ImplKind {
            model: Model::Ec,
            trapping: Trapping::Twinning,
            collection: Collection::Diffs,
        }
    }

    /// LRC with compiler instrumentation and timestamps (hierarchical dirty
    /// bits).
    pub fn lrc_ci() -> Self {
        ImplKind {
            model: Model::Lrc,
            trapping: Trapping::Instrumentation,
            collection: Collection::Timestamps,
        }
    }

    /// LRC with twinning and timestamps.
    pub fn lrc_time() -> Self {
        ImplKind {
            model: Model::Lrc,
            trapping: Trapping::Twinning,
            collection: Collection::Timestamps,
        }
    }

    /// LRC with twinning and diffs (the TreadMarks design).
    pub fn lrc_diff() -> Self {
        ImplKind {
            model: Model::Lrc,
            trapping: Trapping::Twinning,
            collection: Collection::Diffs,
        }
    }

    /// All six implementations explored in the paper, in Table-1 order.
    pub fn all() -> [ImplKind; 6] {
        [
            Self::ec_ci(),
            Self::ec_time(),
            Self::ec_diff(),
            Self::lrc_ci(),
            Self::lrc_time(),
            Self::lrc_diff(),
        ]
    }

    /// The three EC implementations (Table 4 columns).
    pub fn ec_all() -> [ImplKind; 3] {
        [Self::ec_ci(), Self::ec_time(), Self::ec_diff()]
    }

    /// The three LRC implementations (Table 5 columns).
    pub fn lrc_all() -> [ImplKind; 3] {
        [Self::lrc_ci(), Self::lrc_time(), Self::lrc_diff()]
    }

    /// The consistency model.
    pub fn model(self) -> Model {
        self.model
    }

    /// The write-trapping mechanism.
    pub fn trapping(self) -> Trapping {
        self.trapping
    }

    /// The write-collection mechanism.
    pub fn collection(self) -> Collection {
        self.collection
    }

    /// The name used in the paper's tables: `EC-ci`, `EC-time`, `EC-diff`,
    /// `LRC-ci`, `LRC-time`, `LRC-diff`.
    pub fn name(self) -> String {
        let suffix = match (self.trapping, self.collection) {
            (Trapping::Instrumentation, _) => "ci",
            (Trapping::Twinning, Collection::Timestamps) => "time",
            (Trapping::Twinning, Collection::Diffs) => "diff",
        };
        format!("{}-{}", self.model.label(), suffix)
    }
}

impl fmt::Display for ImplKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// Configuration of one DSM run.
#[derive(Debug, Clone)]
pub struct DsmConfig {
    /// Number of simulated processors (the paper uses 8).
    pub nprocs: usize,
    /// Which of the six implementations to run.
    pub kind: ImplKind,
    /// The cost model converting protocol events into simulated time.
    pub cost: CostModel,
    /// Objects whose bound data is at most this many bytes are twinned
    /// eagerly at write-lock acquire instead of via copy-on-write protection
    /// faults (the EC twinning improvement over Midway, Section 4.2).  The
    /// paper draws the boundary at the page size.
    pub ec_small_object_limit: usize,
    /// Use the hierarchical (page-level + word-level) dirty-bit scheme for
    /// LRC with compiler instrumentation (Section 4.1).
    pub hierarchical_dirty_bits: bool,
    /// Apply the loop-splitting compiler optimisation of Section 4.1/8.1,
    /// which batches dirty-bit stores and reduces their per-write cost.
    pub ci_loop_optimization: bool,
    /// How many publish records (diffs) to retain per lock/page for traffic
    /// accounting.  Older records fall back to a merged-size estimate.
    pub diff_ring: usize,
}

impl DsmConfig {
    /// Configuration matching the paper's environment: 8 processors on the
    /// 1996 ATM-LAN cost model.
    ///
    /// Two environment variables let the ablation benches toggle design
    /// choices without changing application code: `DSM_NAIVE_CI=1` disables
    /// the dirty-bit loop-splitting optimisation (Section 8.1) and
    /// `DSM_NO_SMALL_OBJECTS=1` disables the eager small-object twinning
    /// improvement, falling back to Midway-style copy-on-write faults for
    /// every object (Section 4.2).
    pub fn paper(kind: ImplKind) -> Self {
        let naive_ci = std::env::var_os("DSM_NAIVE_CI").is_some();
        let no_small = std::env::var_os("DSM_NO_SMALL_OBJECTS").is_some();
        DsmConfig {
            nprocs: 8,
            kind,
            cost: CostModel::atm_lan_1996(),
            ec_small_object_limit: if no_small { 0 } else { dsm_mem::PAGE_SIZE },
            hierarchical_dirty_bits: true,
            ci_loop_optimization: !naive_ci,
            diff_ring: 64,
        }
    }

    /// Same as [`DsmConfig::paper`] but with an explicit processor count.
    pub fn with_procs(kind: ImplKind, nprocs: usize) -> Self {
        DsmConfig {
            nprocs,
            ..Self::paper(kind)
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if the processor count is zero.
    pub fn validate(&self) -> Result<(), DsmError> {
        if self.nprocs == 0 {
            return Err(DsmError::InvalidConfig("nprocs must be at least 1".into()));
        }
        if self.diff_ring == 0 {
            return Err(DsmError::InvalidConfig(
                "diff_ring must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_plus_diff_is_rejected() {
        let err = ImplKind::new(Model::Ec, Trapping::Instrumentation, Collection::Diffs);
        assert!(matches!(err, Err(DsmError::UnsupportedCombination)));
        let err = ImplKind::new(Model::Lrc, Trapping::Instrumentation, Collection::Diffs);
        assert!(matches!(err, Err(DsmError::UnsupportedCombination)));
    }

    #[test]
    fn table1_names() {
        let names: Vec<String> = ImplKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec!["EC-ci", "EC-time", "EC-diff", "LRC-ci", "LRC-time", "LRC-diff"]
        );
    }

    #[test]
    fn accessors_are_consistent() {
        let k = ImplKind::lrc_diff();
        assert_eq!(k.model(), Model::Lrc);
        assert_eq!(k.trapping(), Trapping::Twinning);
        assert_eq!(k.collection(), Collection::Diffs);
        assert_eq!(k.to_string(), "LRC-diff");
    }

    #[test]
    fn ec_and_lrc_subsets() {
        assert!(ImplKind::ec_all().iter().all(|k| k.model() == Model::Ec));
        assert!(ImplKind::lrc_all().iter().all(|k| k.model() == Model::Lrc));
    }

    #[test]
    fn paper_config_defaults() {
        let cfg = DsmConfig::paper(ImplKind::ec_time());
        assert_eq!(cfg.nprocs, 8);
        assert_eq!(cfg.ec_small_object_limit, dsm_mem::PAGE_SIZE);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = DsmConfig::paper(ImplKind::ec_time());
        cfg.nprocs = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = DsmConfig::paper(ImplKind::ec_time());
        cfg.diff_ring = 0;
        assert!(cfg.validate().is_err());
    }
}
