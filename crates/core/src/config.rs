//! Configuration: consistency model, write trapping, write collection.

use std::fmt;

use dsm_sim::CostModel;

use crate::recovery::FaultPlan;
use crate::transport::TransportKind;
use crate::DsmError;

/// The consistency model (Section 3 of the paper, plus home-based LRC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// Entry consistency (Midway): shared data is bound to locks, only the
    /// bound data is made consistent at an acquire, update protocol.
    Ec,
    /// Lazy release consistency (TreadMarks): no binding, all shared data is
    /// made consistent lazily, invalidate protocol with multiple writers,
    /// data collected from the writers at the miss (homeless).
    Lrc,
    /// Home-based lazy release consistency: same ordering layer as
    /// [`Model::Lrc`], but every page has a statically assigned home node;
    /// releasers eagerly flush their modifications to the home and an access
    /// miss fetches the whole page from the home in one round trip.
    Hlrc,
    /// Adaptive LRC: the [`Model::Lrc`] ordering layer under an online
    /// per-page data-policy controller that migrates each page between
    /// homeless diffing, home-based flush (home at the dominant writer) and
    /// single-writer pinning, driven by the page's observed sharing pattern.
    Adaptive,
}

impl Model {
    /// Short label ("EC" / "LRC" / "HLRC" / "ALRC").
    pub fn label(self) -> &'static str {
        match self {
            Model::Ec => "EC",
            Model::Lrc => "LRC",
            Model::Hlrc => "HLRC",
            Model::Adaptive => "ALRC",
        }
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The write-trapping mechanism (Section 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trapping {
    /// Compiler instrumentation: every shared store also sets a software
    /// dirty bit (one word of memory per block).
    Instrumentation,
    /// Twinning: an unmodified copy of the object/page is made (at write-lock
    /// acquire for small EC objects, at a write-protection fault otherwise)
    /// and later compared against the current copy.
    Twinning,
}

impl Trapping {
    /// Short label used in implementation names ("ci" / "tw").
    pub fn label(self) -> &'static str {
        match self {
            Trapping::Instrumentation => "ci",
            Trapping::Twinning => "tw",
        }
    }
}

impl fmt::Display for Trapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The write-collection mechanism (Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Collection {
    /// Per-block timestamps (EC: lock incarnation numbers, LRC: `(processor,
    /// interval)` pairs); the responder scans timestamps and sends newer
    /// blocks plus run-length encoded timestamps.
    Timestamps,
    /// Run-length encoded diffs, created lazily and saved for future
    /// transmission.
    Diffs,
}

impl Collection {
    /// Short label used in implementation names ("time" / "diff").
    pub fn label(self) -> &'static str {
        match self {
            Collection::Timestamps => "time",
            Collection::Diffs => "diff",
        }
    }
}

impl fmt::Display for Collection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One of the implementations of the study: a consistency model crossed with
/// a write-trapping and a write-collection mechanism.  The six combinations
/// of the paper's Table 1 (EC and homeless LRC) are extended with the three
/// home-based LRC variants and the three adaptive LRC variants, twelve
/// implementations in total.
///
/// The combination of compiler instrumentation and diffing is rejected, as in
/// the paper, "because its memory requirements appear prohibitive" (it would
/// need both the software dirty bits and the diffs).
///
/// # Examples
///
/// ```
/// use dsm_core::{Collection, ImplKind, Model, Trapping};
///
/// let ec_ci = ImplKind::new(Model::Ec, Trapping::Instrumentation, Collection::Timestamps)?;
/// assert_eq!(ec_ci.name(), "EC-ci");
///
/// // Table 1's six plus the three HLRC and three adaptive variants:
/// assert_eq!(ImplKind::all().len(), 12);
///
/// // Names round-trip through the parser used by the bench bins' --impls.
/// for kind in ImplKind::all() {
///     assert_eq!(ImplKind::from_name(&kind.name())?, kind);
/// }
/// # Ok::<(), dsm_core::DsmError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ImplKind {
    model: Model,
    trapping: Trapping,
    collection: Collection,
}

impl ImplKind {
    /// Creates an implementation descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`DsmError::UnsupportedCombination`] for compiler
    /// instrumentation combined with diffing.
    pub fn new(model: Model, trapping: Trapping, collection: Collection) -> Result<Self, DsmError> {
        if trapping == Trapping::Instrumentation && collection == Collection::Diffs {
            return Err(DsmError::UnsupportedCombination);
        }
        Ok(ImplKind {
            model,
            trapping,
            collection,
        })
    }

    /// EC with compiler instrumentation and timestamps (the Midway design).
    pub fn ec_ci() -> Self {
        ImplKind {
            model: Model::Ec,
            trapping: Trapping::Instrumentation,
            collection: Collection::Timestamps,
        }
    }

    /// EC with twinning and timestamps.
    pub fn ec_time() -> Self {
        ImplKind {
            model: Model::Ec,
            trapping: Trapping::Twinning,
            collection: Collection::Timestamps,
        }
    }

    /// EC with twinning and diffs (improves on the Midway VM implementation).
    pub fn ec_diff() -> Self {
        ImplKind {
            model: Model::Ec,
            trapping: Trapping::Twinning,
            collection: Collection::Diffs,
        }
    }

    /// LRC with compiler instrumentation and timestamps (hierarchical dirty
    /// bits).
    pub fn lrc_ci() -> Self {
        ImplKind {
            model: Model::Lrc,
            trapping: Trapping::Instrumentation,
            collection: Collection::Timestamps,
        }
    }

    /// LRC with twinning and timestamps.
    pub fn lrc_time() -> Self {
        ImplKind {
            model: Model::Lrc,
            trapping: Trapping::Twinning,
            collection: Collection::Timestamps,
        }
    }

    /// LRC with twinning and diffs (the TreadMarks design).
    pub fn lrc_diff() -> Self {
        ImplKind {
            model: Model::Lrc,
            trapping: Trapping::Twinning,
            collection: Collection::Diffs,
        }
    }

    /// Home-based LRC with compiler instrumentation and timestamps.
    pub fn hlrc_ci() -> Self {
        ImplKind {
            model: Model::Hlrc,
            trapping: Trapping::Instrumentation,
            collection: Collection::Timestamps,
        }
    }

    /// Home-based LRC with twinning and timestamps.
    pub fn hlrc_time() -> Self {
        ImplKind {
            model: Model::Hlrc,
            trapping: Trapping::Twinning,
            collection: Collection::Timestamps,
        }
    }

    /// Home-based LRC with twinning and diffs (the Princeton HLRC design).
    pub fn hlrc_diff() -> Self {
        ImplKind {
            model: Model::Hlrc,
            trapping: Trapping::Twinning,
            collection: Collection::Diffs,
        }
    }

    /// Adaptive LRC with compiler instrumentation and timestamps.
    pub fn adaptive_ci() -> Self {
        ImplKind {
            model: Model::Adaptive,
            trapping: Trapping::Instrumentation,
            collection: Collection::Timestamps,
        }
    }

    /// Adaptive LRC with twinning and timestamps.
    pub fn adaptive_time() -> Self {
        ImplKind {
            model: Model::Adaptive,
            trapping: Trapping::Twinning,
            collection: Collection::Timestamps,
        }
    }

    /// Adaptive LRC with twinning and diffs.
    pub fn adaptive_diff() -> Self {
        ImplKind {
            model: Model::Adaptive,
            trapping: Trapping::Twinning,
            collection: Collection::Diffs,
        }
    }

    /// All twelve implementations: the paper's six (Table-1 order) followed
    /// by the three home-based and the three adaptive LRC variants.
    pub fn all() -> [ImplKind; 12] {
        [
            Self::ec_ci(),
            Self::ec_time(),
            Self::ec_diff(),
            Self::lrc_ci(),
            Self::lrc_time(),
            Self::lrc_diff(),
            Self::hlrc_ci(),
            Self::hlrc_time(),
            Self::hlrc_diff(),
            Self::adaptive_ci(),
            Self::adaptive_time(),
            Self::adaptive_diff(),
        ]
    }

    /// The three EC implementations (Table 4 columns).
    pub fn ec_all() -> [ImplKind; 3] {
        [Self::ec_ci(), Self::ec_time(), Self::ec_diff()]
    }

    /// The three homeless LRC implementations (Table 5 columns).
    pub fn lrc_all() -> [ImplKind; 3] {
        [Self::lrc_ci(), Self::lrc_time(), Self::lrc_diff()]
    }

    /// The three home-based LRC implementations.
    pub fn hlrc_all() -> [ImplKind; 3] {
        [Self::hlrc_ci(), Self::hlrc_time(), Self::hlrc_diff()]
    }

    /// The three adaptive LRC implementations.
    pub fn adaptive_all() -> [ImplKind; 3] {
        [
            Self::adaptive_ci(),
            Self::adaptive_time(),
            Self::adaptive_diff(),
        ]
    }

    /// Parses an implementation from its table name (`EC-ci`, `LRC-diff`,
    /// `ALRC-time`, ...), the inverse of [`ImplKind::name`]/`Display`.  Used
    /// by the bench bins' `--impls` filter.  Matching is case-insensitive
    /// (`lrc-diff` and `HLRC-TIME` both parse), so shell users never trip
    /// over the tables' mixed-case spellings.
    ///
    /// # Errors
    ///
    /// Returns [`DsmError::InvalidConfig`] naming the valid spellings if
    /// `name` matches none of the twelve implementations.
    pub fn from_name(name: &str) -> Result<Self, DsmError> {
        Self::all()
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(name))
            .ok_or_else(|| {
                let valid: Vec<String> = Self::all().iter().map(|k| k.name()).collect();
                DsmError::InvalidConfig(format!(
                    "unknown implementation '{name}' (expected one of: {})",
                    valid.join(", ")
                ))
            })
    }

    /// The consistency model.
    pub fn model(self) -> Model {
        self.model
    }

    /// The write-trapping mechanism.
    pub fn trapping(self) -> Trapping {
        self.trapping
    }

    /// The write-collection mechanism.
    pub fn collection(self) -> Collection {
        self.collection
    }

    /// The name used in the paper's tables: `EC-ci`, `EC-time`, `EC-diff`,
    /// `LRC-ci`, `LRC-time`, `LRC-diff`, plus `HLRC-*` for the home-based
    /// family and `ALRC-*` for the adaptive family.
    pub fn name(self) -> String {
        let suffix = match (self.trapping, self.collection) {
            (Trapping::Instrumentation, _) => "ci",
            (Trapping::Twinning, Collection::Timestamps) => "time",
            (Trapping::Twinning, Collection::Diffs) => "diff",
        };
        format!("{}-{}", self.model.label(), suffix)
    }
}

impl fmt::Display for ImplKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// Configuration of one DSM run.
#[derive(Debug, Clone)]
pub struct DsmConfig {
    /// Number of simulated processors (the paper uses 8).
    pub nprocs: usize,
    /// Which of the twelve implementations to run.
    pub kind: ImplKind,
    /// The cost model converting protocol events into simulated time.
    pub cost: CostModel,
    /// Objects whose bound data is at most this many bytes are twinned
    /// eagerly at write-lock acquire instead of via copy-on-write protection
    /// faults (the EC twinning improvement over Midway, Section 4.2).  The
    /// paper draws the boundary at the page size.
    pub ec_small_object_limit: usize,
    /// Use the hierarchical (page-level + word-level) dirty-bit scheme for
    /// LRC with compiler instrumentation (Section 4.1).
    pub hierarchical_dirty_bits: bool,
    /// Apply the loop-splitting compiler optimisation of Section 4.1/8.1,
    /// which batches dirty-bit stores and reduces their per-write cost.
    pub ci_loop_optimization: bool,
    /// How many publish records (diffs) to retain per lock/page for traffic
    /// accounting.  Older records fall back to a merged-size estimate.
    pub diff_ring: usize,
    /// Which transport backend carries publish frames during the run.  The
    /// default [`TransportKind::Simulated`] replicates nothing and keeps
    /// every result byte-identical to the pre-transport runtime; the real
    /// backends additionally rebuild replicas over channels or sockets and
    /// verify them against the engines' master copies.
    pub transport: TransportKind,
    /// Deterministic crash schedule for the checkpoint/recovery subsystem
    /// (see `DESIGN.md` §8 "Checkpoint & recovery").  The default
    /// [`FaultPlan::None`] disables checkpointing entirely and keeps every
    /// result byte-identical to a fault-free build; any other plan makes
    /// every node checkpoint at each barrier cut and kills the named node at
    /// the named barrier, after which the runtime rolls it back to its last
    /// checkpoint and replays it to rejoin the waiting peers.
    pub fault: FaultPlan,
}

impl DsmConfig {
    /// Configuration matching the paper's environment: 8 processors on the
    /// 1996 ATM-LAN cost model.
    ///
    /// Two environment variables let the ablation benches toggle design
    /// choices without changing application code: `DSM_NAIVE_CI=1` disables
    /// the dirty-bit loop-splitting optimisation (Section 8.1) and
    /// `DSM_NO_SMALL_OBJECTS=1` disables the eager small-object twinning
    /// improvement, falling back to Midway-style copy-on-write faults for
    /// every object (Section 4.2).
    pub fn paper(kind: ImplKind) -> Self {
        let naive_ci = std::env::var_os("DSM_NAIVE_CI").is_some();
        let no_small = std::env::var_os("DSM_NO_SMALL_OBJECTS").is_some();
        DsmConfig {
            nprocs: 8,
            kind,
            cost: CostModel::atm_lan_1996(),
            ec_small_object_limit: if no_small { 0 } else { dsm_mem::PAGE_SIZE },
            hierarchical_dirty_bits: true,
            ci_loop_optimization: !naive_ci,
            diff_ring: 64,
            transport: TransportKind::Simulated,
            fault: FaultPlan::None,
        }
    }

    /// Same as [`DsmConfig::paper`] but with an explicit processor count.
    pub fn with_procs(kind: ImplKind, nprocs: usize) -> Self {
        DsmConfig {
            nprocs,
            ..Self::paper(kind)
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if the processor count is zero.
    pub fn validate(&self) -> Result<(), DsmError> {
        if self.nprocs == 0 {
            return Err(DsmError::InvalidConfig("nprocs must be at least 1".into()));
        }
        if self.diff_ring == 0 {
            return Err(DsmError::InvalidConfig(
                "diff_ring must be at least 1".into(),
            ));
        }
        if let FaultPlan::KillAt { node, .. } = self.fault {
            if node as usize >= self.nprocs {
                return Err(DsmError::InvalidConfig(format!(
                    "fault plan kills node {node} but the run has {} processors",
                    self.nprocs
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_plus_diff_is_rejected() {
        for model in [Model::Ec, Model::Lrc, Model::Hlrc, Model::Adaptive] {
            let err = ImplKind::new(model, Trapping::Instrumentation, Collection::Diffs);
            assert!(matches!(err, Err(DsmError::UnsupportedCombination)));
        }
    }

    #[test]
    fn family_names() {
        let names: Vec<String> = ImplKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec![
                "EC-ci",
                "EC-time",
                "EC-diff",
                "LRC-ci",
                "LRC-time",
                "LRC-diff",
                "HLRC-ci",
                "HLRC-time",
                "HLRC-diff",
                "ALRC-ci",
                "ALRC-time",
                "ALRC-diff"
            ]
        );
    }

    #[test]
    fn from_name_roundtrips_with_display() {
        for kind in ImplKind::all() {
            assert_eq!(ImplKind::from_name(&kind.to_string()).unwrap(), kind);
            // Case-insensitive: lowercase and uppercase spellings also parse.
            let lower = kind.to_string().to_ascii_lowercase();
            let upper = kind.to_string().to_ascii_uppercase();
            assert_eq!(ImplKind::from_name(&lower).unwrap(), kind);
            assert_eq!(ImplKind::from_name(&upper).unwrap(), kind);
        }
        assert!(ImplKind::from_name("").is_err());
        assert!(
            ImplKind::from_name("LRC").is_err(),
            "model alone is not an impl"
        );
        let msg = ImplKind::from_name("bogus").unwrap_err().to_string();
        assert!(msg.contains("HLRC-diff"), "error lists the valid names");
    }

    #[test]
    fn accessors_are_consistent() {
        let k = ImplKind::lrc_diff();
        assert_eq!(k.model(), Model::Lrc);
        assert_eq!(k.trapping(), Trapping::Twinning);
        assert_eq!(k.collection(), Collection::Diffs);
        assert_eq!(k.to_string(), "LRC-diff");
    }

    #[test]
    fn model_family_subsets() {
        assert!(ImplKind::ec_all().iter().all(|k| k.model() == Model::Ec));
        assert!(ImplKind::lrc_all().iter().all(|k| k.model() == Model::Lrc));
        assert!(ImplKind::hlrc_all()
            .iter()
            .all(|k| k.model() == Model::Hlrc));
        assert!(ImplKind::adaptive_all()
            .iter()
            .all(|k| k.model() == Model::Adaptive));
    }

    #[test]
    fn paper_config_defaults() {
        let cfg = DsmConfig::paper(ImplKind::ec_time());
        assert_eq!(cfg.nprocs, 8);
        assert_eq!(cfg.ec_small_object_limit, dsm_mem::PAGE_SIZE);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = DsmConfig::paper(ImplKind::ec_time());
        cfg.nprocs = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = DsmConfig::paper(ImplKind::ec_time());
        cfg.diff_ring = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn fault_plans_are_bounds_checked() {
        let mut cfg = DsmConfig::with_procs(ImplKind::ec_time(), 4);
        cfg.fault = FaultPlan::KillAt {
            node: 3,
            barrier: 1,
        };
        assert!(cfg.validate().is_ok());
        cfg.fault = FaultPlan::KillAt {
            node: 4,
            barrier: 1,
        };
        assert!(cfg.validate().is_err(), "victim must exist");
    }
}
