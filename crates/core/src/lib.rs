//! Software distributed shared memory with **entry consistency** (EC) and
//! **lazy release consistency** (LRC), reproducing the implementation study of
//! Adve, Cox, Dwarkadas, Rajamony and Zwaenepoel, *"A Comparison of Entry
//! Consistency and Lazy Release Consistency Implementations"* (HPCA 1996).
//!
//! The crate provides the six implementations of the paper's Table 1 — the
//! two consistency models crossed with two write-trapping mechanisms
//! (compiler instrumentation, twinning) and two write-collection mechanisms
//! (timestamps, diffs), minus the prohibitive instrumentation+diffs
//! combination — plus the three home-based LRC (HLRC) variants and the three
//! adaptive LRC (ALRC) variants, twelve implementations in total:
//!
//! | | compiler instrumentation | twinning |
//! |---|---|---|
//! | **timestamps** | `EC-ci`, `LRC-ci`, `HLRC-ci`, `ALRC-ci` | `EC-time`, `LRC-time`, `HLRC-time`, `ALRC-time` |
//! | **diffs** | — | `EC-diff`, `LRC-diff`, `HLRC-diff`, `ALRC-diff` |
//!
//! # Architecture
//!
//! All models plug into the runtime through an internal `ProtocolEngine`
//! trait: the runtime owns the mechanics the models share (lock hand-off,
//! barrier rendezvous, typed access) and calls model hooks for everything
//! else (grant payloads, publishes, write trapping, access misses).  The two
//! LRC models are one engine: a shared *ordering* core (intervals, vector
//! clocks, write notices, freshness generations) parameterized by a
//! *data policy* that decides where published data lives — homeless
//! (TreadMarks: data moves lazily, from the writers, at the miss) or
//! home-based (every page has a static home; releasers flush to it eagerly
//! and a miss is one whole-page round trip).  All cluster-wide state is
//! **sharded** — each lock and barrier has its own slot, mutex and condition
//! variable, and each region's published master copy sits behind its own
//! reader/writer lock — so simulated processors synchronising on independent
//! objects run truly in parallel on the host.  See `DESIGN.md` for the
//! sharding layout and the cost-substitution table.
//!
//! # Choosing a policy
//!
//! Prefer homeless LRC (`LRC-*`) when pages have few concurrent writers or
//! sharing is migratory: only the encoded modifications move, and only on
//! demand.  Prefer home-based LRC (`HLRC-*`) when pages are write-shared
//! (falsely or truly) by several processors between synchronizations: the
//! faulting node pays exactly one round trip to the page's home instead of
//! one per concurrent writer, at the price of an eager flush per remote
//! release and whole-page replies.  Entry consistency (`EC-*`) remains the
//! choice when the program can name its sharing — data bound to locks moves
//! on the grant, and nothing else moves at all.  When no single static
//! policy fits — the common case, per the paper's §5 — adaptive LRC
//! (`ALRC-*`) decides *per page, online*: it watches each page's publishes,
//! misses, diff bytes and writer set and migrates the page between homeless
//! diffing, a home at its dominant writer, and single-writer pinning (which
//! suppresses twin/diff work entirely until a second sharer appears).  The
//! LRC policies all share their ordering layer, so switching between them
//! never changes program results, only traffic and timing; see
//! [`RunResult::migrations`] and [`RunResult::sharing`] for the adaptive
//! controller's trace and the per-region sharing profile behind it.
//!
//! Applications are written SPMD-style against [`Dsm`] and
//! [`ProcessContext`]; the runtime executes them on simulated processors,
//! charging every protocol action (messages, page faults, twin copies, diff
//! creation, timestamp scans, instrumented stores) through the
//! [`CostModel`] of the `dsm-sim` crate, and reports
//! simulated execution time plus the traffic statistics the paper's tables
//! are built from.
//!
//! # Example
//!
//! ```
//! use dsm_core::{BarrierId, Dsm, DsmConfig, ImplKind, LockId, LockMode};
//! use dsm_mem::BlockGranularity;
//!
//! // A tiny producer/consumer program run under TreadMarks-style LRC.  The
//! // typed handle returned by `alloc_array` carries the element type, so
//! // access sites never spell it out.
//! let mut dsm = Dsm::new(DsmConfig::with_procs(ImplKind::lrc_diff(), 2))?;
//! let data = dsm.alloc_array::<f64>("data", 16, BlockGranularity::DoubleWord);
//!
//! // One barrier id per rendezvous keeps the program readable, although
//! // reusing an id is legal (each slot counts episodes by generation).
//! let produced = BarrierId::new(0);
//! let consumed = BarrierId::new(1);
//!
//! let result = dsm.run(|ctx| {
//!     if ctx.node() == 0 {
//!         let line: Vec<f64> = (0..16).map(|i| i as f64).collect();
//!         ctx.write_from(data, 0, &line); // one span write, page-batched
//!     }
//!     ctx.barrier(produced);
//!     if ctx.node() == 1 {
//!         assert_eq!(ctx.get(data, 7), 7.0);
//!     }
//!     ctx.barrier(consumed);
//! });
//! assert_eq!(result.final_at(data, 15), 15.0);
//! # Ok::<(), dsm_core::DsmError>(())
//! ```
//!
//! The same program runs unchanged under any [`ImplKind`]; EC programs
//! additionally bind their shared data to locks — in one step with
//! [`Dsm::alloc_bound`], or piecewise with [`Dsm::bind`] /
//! [`ProcessContext::rebind`] — and take RAII [`LockGuard`]s
//! ([`ProcessContext::lock`]), using read-only locks
//! ([`LockMode::ReadOnly`]) where LRC programs rely on barriers alone.  See
//! the [`api`-layer types](SharedArray) for the full typed surface; the raw
//! `Region`-based accessors on [`ProcessContext`] remain the documented
//! low-level escape hatch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod api;
mod config;
mod context;
mod ec;
mod engine;
mod error;
mod ids;
mod local;
mod lrc;
mod recovery;
mod runtime;
mod scalar;
mod sync;
mod transport;

pub use api::{ArrayView, ArrayViewMut, Binding, LockGuard, SharedArray, SharedScalar};
pub use config::{Collection, DsmConfig, ImplKind, Model, Trapping};
pub use context::ProcessContext;
pub use error::DsmError;
pub use ids::{BarrierId, LockId, LockMode};
pub use recovery::{FaultPlan, RecoveryReport};
pub use runtime::{Dsm, Region, RunResult};
pub use scalar::Scalar;
pub use transport::{serve_transport_peer, TransportKind, TransportReport};

// Re-export the vocabulary types callers need to use the API.
pub use dsm_mem::{BlockGranularity, MemRange, PageMode, PageModeChange};
pub use dsm_sim::{CostModel, RegionSharing, SharingSummary, SimTime, Work};
