//! The per-processor programming interface.
//!
//! All consistency-model behaviour is delegated to the run's
//! [`ProtocolEngine`](crate::engine::ProtocolEngine); this module owns only
//! the mechanics the models share — lock hand-off accounting, barrier
//! rendezvous, bounds checking and typed access — operating on the sharded
//! per-lock and per-barrier slots of [`SyncTables`](crate::sync::SyncTables).

use dsm_mem::{MemRange, VectorClock, PAGE_SIZE};
use dsm_sim::{CostModel, MsgKind, SimTime, Work};

use crate::config::DsmConfig;
use crate::engine::CTRL_MSG_BYTES;
use crate::ids::{BarrierId, LockId, LockMode};
use crate::local::{HeldLock, NodeLocal};
use crate::recovery::{self, UndoRec};
use crate::runtime::{Region, RunGlobal};
use crate::scalar::Scalar;
use crate::sync;

/// The interface a worker closure uses to access shared memory and
/// synchronize, playing the role of the TreadMarks/Midway runtime API
/// (`Tmk_malloc`, `Tmk_lock_acquire`, `Tmk_barrier`, ...).
///
/// One `ProcessContext` exists per simulated processor; it owns that
/// processor's copy of every shared region, its simulated clock and its
/// statistics.  All methods panic on protocol misuse (releasing a lock that is
/// not held, out-of-bounds accesses) because such misuse is a bug in the
/// application, not a runtime condition.
#[derive(Debug)]
pub struct ProcessContext<'a> {
    pub(crate) global: &'a RunGlobal,
    pub(crate) local: NodeLocal,
}

impl<'a> ProcessContext<'a> {
    pub(crate) fn new(global: &'a RunGlobal, local: NodeLocal) -> Self {
        ProcessContext { global, local }
    }

    pub(crate) fn into_local(self) -> NodeLocal {
        self.local
    }

    /// The index of this simulated processor (0-based).
    pub fn node(&self) -> usize {
        self.local.node.index()
    }

    /// The number of simulated processors in the run.
    pub fn nprocs(&self) -> usize {
        self.local.nprocs
    }

    /// The run configuration.
    pub fn config(&self) -> &DsmConfig {
        &self.global.cfg
    }

    /// The current simulated time of this processor.
    pub fn now(&self) -> SimTime {
        self.local.clock.now()
    }

    pub(crate) fn cost(&self) -> &CostModel {
        &self.global.cfg.cost
    }

    /// Charges `work` units of application computation to this processor's
    /// simulated clock.
    pub fn compute(&mut self, work: Work) {
        if recovery::skipping(&self.local) {
            return;
        }
        self.local.stats.work_units += work.units();
        let t = self.cost().work(work);
        self.local.clock.advance(t);
    }

    fn check_bounds(&self, region: Region, offset: usize, size: usize) {
        let len = self.global.regions[region.id().index()].len;
        // `checked_add`: an adversarial index near `usize::MAX` must fail the
        // bounds check, not wrap around it.
        assert!(
            offset.checked_add(size).is_some_and(|end| end <= len),
            "shared access at byte {offset}..{offset}+{size} is outside region {} of {len} bytes",
            self.global.regions[region.id().index()].name
        );
    }

    /// Reads element `idx` of type `T` from a shared region.
    ///
    /// Under LRC this may take an access miss (the page is invalid because a
    /// write notice arrived for it), in which case the modifications are
    /// fetched and the miss costs are charged.
    ///
    /// # Panics
    ///
    /// Panics if the access is out of bounds.
    pub fn read<T: Scalar>(&mut self, region: Region, idx: usize) -> T {
        let off = idx.saturating_mul(T::SIZE);
        self.check_bounds(region, off, T::SIZE);
        if recovery::skipping(&self.local) {
            // Replay of an already-checkpointed epoch: serve the restored
            // local copy with no cost, statistic or freshness action.
            let data = &self.local.regions[region.id().index()].data;
            return T::read_le(&data[off..off + T::SIZE]);
        }
        self.local.stats.shared_accesses += 1;
        self.local.clock.advance(self.cost().shared_access(1));
        let ridx = region.id().index();
        self.global
            .engine
            .ensure_read_fresh(&mut self.local, ridx, off / PAGE_SIZE);
        let data = &self.local.regions[ridx].data;
        T::read_le(&data[off..off + T::SIZE])
    }

    /// Writes element `idx` of type `T` to a shared region.
    ///
    /// The write is trapped according to the configured mechanism: a software
    /// dirty bit is set (compiler instrumentation) or a twin is created on the
    /// first write to the page/object (twinning).
    ///
    /// # Panics
    ///
    /// Panics if the access is out of bounds.
    pub fn write<T: Scalar>(&mut self, region: Region, idx: usize, value: T) {
        let off = idx.saturating_mul(T::SIZE);
        self.check_bounds(region, off, T::SIZE);
        if recovery::skipping(&self.local) {
            // Replay: the restored copy already holds this epoch's outcome
            // (it was checkpointed later); writing would clobber newer data.
            return;
        }
        self.local.stats.shared_accesses += 1;
        self.local.clock.advance(self.cost().shared_access(1));
        let ridx = region.id().index();
        self.global
            .engine
            .trap_write(&mut self.local, ridx, off, T::SIZE);
        let data = &mut self.local.regions[ridx].data;
        value.write_le(&mut data[off..off + T::SIZE]);
    }

    /// Reads `out.len()` consecutive elements of type `T` starting at element
    /// `start` from a shared region.
    ///
    /// Semantically identical to calling [`read`](ProcessContext::read) once
    /// per element — the simulated cost, statistics and any access misses are
    /// exactly those of the element-wise loop — but the bounds check,
    /// per-page freshness validation and engine dispatch run once per *page*
    /// instead of once per word, which is what makes this the preferred form
    /// for an application's inner loops.
    ///
    /// # Panics
    ///
    /// Panics if the span is out of bounds.
    pub fn read_slice<T: Scalar>(&mut self, region: Region, start: usize, out: &mut [T]) {
        if out.is_empty() {
            return;
        }
        let off = start.saturating_mul(T::SIZE);
        let len = out.len() * T::SIZE;
        self.check_bounds(region, off, len);
        if recovery::skipping(&self.local) {
            let data = &self.local.regions[region.id().index()].data;
            T::read_slice_le(&data[off..off + len], out);
            return;
        }
        self.local.stats.shared_accesses += out.len() as u64;
        self.local
            .clock
            .advance(self.cost().shared_access(out.len() as u64));
        let ridx = region.id().index();
        dsm_mem::for_each_page(off, len, |page, _| {
            self.global
                .engine
                .ensure_read_fresh(&mut self.local, ridx, page);
        });
        let data = &self.local.regions[ridx].data;
        T::read_slice_le(&data[off..off + len], out);
    }

    /// Writes `values.len()` consecutive elements of type `T` starting at
    /// element `start` of a shared region.
    ///
    /// Semantically identical to calling [`write`](ProcessContext::write)
    /// once per element — same simulated cost, statistics, dirty bits and
    /// twin creation — but the write trap runs once per *page* of the span
    /// (via the engine's bulk `trap_write_span` hook) instead of once per
    /// word.
    ///
    /// # Panics
    ///
    /// Panics if the span is out of bounds.
    pub fn write_slice<T: Scalar>(&mut self, region: Region, start: usize, values: &[T]) {
        if values.is_empty() {
            return;
        }
        let off = start.saturating_mul(T::SIZE);
        let len = values.len() * T::SIZE;
        self.check_bounds(region, off, len);
        if recovery::skipping(&self.local) {
            return;
        }
        self.local.stats.shared_accesses += values.len() as u64;
        self.local
            .clock
            .advance(self.cost().shared_access(values.len() as u64));
        let ridx = region.id().index();
        self.global
            .engine
            .trap_write_span(&mut self.local, ridx, off, len, values.len());
        let data = &mut self.local.regions[ridx].data;
        T::write_slice_le(values, &mut data[off..off + len]);
    }

    /// Read-modify-write convenience: applies `f` to the current value.
    pub fn update<T: Scalar>(&mut self, region: Region, idx: usize, f: impl FnOnce(T) -> T) {
        let v = self.read::<T>(region, idx);
        self.write(region, idx, f(v));
    }

    /// Reads the most recently *published* value of an element without any
    /// consistency action, message, or simulated cost.
    ///
    /// This is a simulation-only convenience used by applications that poll a
    /// flag or queue state while idle (e.g. Quicksort's task queue): in a real
    /// system the idle processor would block or poll cheaply, and charging a
    /// full protocol acquire per poll iteration would let host-scheduling
    /// noise leak into the simulated clock.  Never use it for data the
    /// algorithm actually consumes — follow it with a proper
    /// [`acquire`](ProcessContext::acquire)/[`read`](ProcessContext::read).
    ///
    /// # Panics
    ///
    /// Panics if the access is out of bounds.
    pub fn poll<T: Scalar>(&mut self, region: Region, idx: usize) -> T {
        let off = idx.saturating_mul(T::SIZE);
        self.check_bounds(region, off, T::SIZE);
        let mut buf = [0u8; 16];
        self.global
            .engine
            .read_master(region.id().index(), off, &mut buf[..T::SIZE]);
        T::read_le(&buf[..T::SIZE])
    }

    /// Acquires a lock.
    ///
    /// Under EC the acquire makes the data bound to the lock consistent (the
    /// update protocol piggybacks the modifications on the grant message);
    /// under LRC it merges the releaser's vector and receives write notices
    /// that invalidate stale pages.
    ///
    /// # Panics
    ///
    /// Panics if the lock is already held by this processor, or if a
    /// read-only acquire is attempted under LRC (which provides only
    /// exclusive locks, as in the paper).
    pub fn acquire(&mut self, lock: LockId, mode: LockMode) {
        if recovery::skipping(&self.local) {
            return;
        }
        assert!(
            !self.local.held.contains_key(&lock.0),
            "lock {lock} acquired twice by {}",
            self.local.node
        );
        self.global.engine.validate_acquire(lock, mode);
        let cost = self.cost().clone();
        self.local.clock.advance(cost.lock_overhead());
        self.local.stats.lock_acquires += 1;
        let me = self.local.node;
        let nprocs = self.local.nprocs;

        let slot = self.global.sync.lock_slot(lock.index());
        let local_grant;
        {
            let mut l = sync::lock(&slot.sync);
            loop {
                let ok = match mode {
                    LockMode::Exclusive => l.can_acquire_exclusive(),
                    LockMode::ReadOnly => l.can_acquire_read(),
                };
                if ok {
                    break;
                }
                l = sync::wait(&slot.cv, l);
            }

            let manager = lock.manager(nprocs);
            local_grant = l.last_owner == Some(me);
            let (free_time, last_owner) = (l.free_time, l.last_owner);

            let mut arrival = self.local.clock.now();
            if local_grant {
                self.local.stats.local_lock_acquires += 1;
            } else {
                if me != manager {
                    self.local
                        .stats
                        .record_msg(MsgKind::LockRequest, CTRL_MSG_BYTES);
                    arrival += cost.message(CTRL_MSG_BYTES);
                }
                // Never-owned locks are granted by their manager; otherwise the
                // manager forwards the request to the last owner.
                let owner = last_owner.unwrap_or(manager);
                if manager != owner {
                    self.local
                        .stats
                        .record_msg(MsgKind::LockForward, CTRL_MSG_BYTES);
                    arrival += cost.message(CTRL_MSG_BYTES);
                }
            }
            let grant_time = arrival.max(free_time);
            self.local.clock.sync_to(grant_time);

            if l.last_owner != Some(me) {
                l.transfers += 1;
                self.local
                    .undo(|| UndoRec::LockTransfer { lock: lock.index() });
            }
            match mode {
                LockMode::Exclusive => {
                    let prev = l.last_owner;
                    l.exclusive_holder = Some(me);
                    l.last_owner = Some(me);
                    if prev != Some(me) {
                        self.local.undo(|| UndoRec::LockOwner {
                            lock: lock.index(),
                            prev,
                        });
                    }
                }
                LockMode::ReadOnly => {
                    l.readers += 1;
                }
            }
        }
        // The lock is claimed in its slot; the grant-payload work below needs
        // only the engine's own (sharded) state, so the slot mutex is free
        // for other contenders' bookkeeping.

        if !local_grant {
            self.local
                .clock
                .advance(SimTime::from_nanos(cost.interrupt_ns));
            let payload = self.global.engine.remote_grant(&mut self.local, lock);
            self.local.stats.record_msg(MsgKind::LockGrant, payload);
            self.local.clock.advance(cost.message(payload));
        }

        let mut held = HeldLock {
            mode,
            small_twins: None,
            armed_pages: Vec::new(),
        };
        self.global
            .engine
            .after_acquire(&mut self.local, lock, &mut held);
        self.local.held.insert(lock.0, held);
    }

    /// Releases a lock previously acquired with [`ProcessContext::acquire`].
    ///
    /// Under EC an exclusive release publishes the modifications made to the
    /// bound data (to be shipped to the next acquirer); under LRC a release
    /// ends the current interval and creates write notices for the pages
    /// modified in it.
    ///
    /// # Panics
    ///
    /// Panics if the lock is not held.
    pub fn release(&mut self, lock: LockId) {
        if recovery::skipping(&self.local) {
            return;
        }
        assert!(
            self.local.held.contains_key(&lock.0),
            "release of lock {lock} that {} does not hold",
            self.local.node
        );
        let cost = self.cost().clone();
        self.local.clock.advance(cost.lock_overhead());
        let mut held = self
            .local
            .held
            .remove(&lock.0)
            .expect("release of a lock that is not held");
        // Publish before the lock becomes available so the next acquirer's
        // grant sees everything this holding modified.
        self.global
            .engine
            .before_release(&mut self.local, lock, &mut held);

        let slot = self.global.sync.lock_slot(lock.index());
        {
            let mut l = sync::lock(&slot.sync);
            match held.mode {
                LockMode::Exclusive => l.exclusive_holder = None,
                LockMode::ReadOnly => l.readers = l.readers.saturating_sub(1),
            }
            l.free_time = l.free_time.max(self.local.clock.now());
        }
        // Only contenders for *this* lock wake up.
        slot.cv.notify_all();
    }

    /// Rebinds a lock to a new set of memory ranges (EC only; a no-op under
    /// LRC, which has no notion of binding).
    ///
    /// After a rebind the next grant conservatively transfers all bound data,
    /// because neither side knows which part of it the acquirer already has
    /// (Section 7.1, "Rebinding").
    pub fn rebind(&mut self, lock: LockId, ranges: impl IntoIterator<Item = MemRange>) {
        if recovery::skipping(&self.local) {
            return;
        }
        self.global
            .engine
            .rebind(lock, ranges.into_iter().collect());
    }

    /// Waits at a barrier until every processor has arrived.
    ///
    /// Under LRC the barrier also exchanges write notices for every interval
    /// completed before it, and each node leaves with the global maximum
    /// vector.
    pub fn barrier(&mut self, barrier: BarrierId) {
        if let Some(r) = self.local.recovery.as_deref_mut() {
            if r.skip > 0 {
                // Replay: the restored statistics and epoch already count
                // this barrier, and the peers are past it (they block in the
                // rendezvous of the *crash* barrier) — just consume it.
                r.skip -= 1;
                return;
            }
        }
        // An injected crash fires before any cost, statistic or arrival is
        // recorded, so the crash epoch's interval is never published and the
        // barrier slot never counts the doomed arrival.
        recovery::maybe_fire(&mut self.local);
        let cost = self.cost().clone();
        self.local.clock.advance(cost.barrier_overhead());
        self.local.stats.barriers += 1;
        let me = self.local.node;
        let nprocs = self.local.nprocs;
        let is_mgr = barrier.manager(nprocs) == me;

        // Model-specific arrival work (LRC: end the current interval).
        let arrival_payload = self.global.engine.barrier_arrive(&mut self.local);
        let old_vector = self.local.vector.clone();

        let mut arrive_t = self.local.clock.now();
        if !is_mgr {
            self.local
                .stats
                .record_msg(MsgKind::BarrierArrival, arrival_payload);
            arrive_t += cost.message(arrival_payload);
        }

        let slot = self.global.sync.barrier_slot(barrier.index());
        let (release_time, released_vector, commit_payload) = {
            let mut b = sync::lock(&slot.sync);
            let my_gen = b.generation;
            b.pending_max = b.pending_max.max(arrive_t);
            b.pending_vector.merge_max(&self.local.vector);
            b.arrived += 1;

            if b.arrived == nprocs {
                // Commit point: every node has arrived (their intervals are
                // published and no region lock is held), so the engine's
                // barrier-time controller runs here, exactly once per
                // episode, on inputs that all happen-before this barrier —
                // which node ran it cannot matter.  Any broadcast bytes it
                // produces ride every departer's release message.
                b.commit_payload = self.global.engine.barrier_commit(&mut self.local);
                b.release_time = b.pending_max;
                b.released_vector = b.pending_vector.clone();
                b.generation = b.generation.wrapping_add(1);
                b.arrived = 0;
                b.pending_max = SimTime::ZERO;
                b.pending_vector = VectorClock::new(nprocs);
                slot.cv.notify_all();
            } else {
                while b.generation == my_gen {
                    b = sync::wait(&slot.cv, b);
                }
            }
            (b.release_time, b.released_vector.clone(), b.commit_payload)
        };
        self.local.clock.sync_to(release_time);

        let depart_payload = commit_payload
            + self
                .global
                .engine
                .barrier_depart(&mut self.local, &old_vector, &released_vector);
        if !is_mgr {
            self.local
                .stats
                .record_msg(MsgKind::BarrierRelease, depart_payload);
            self.local.clock.advance(cost.message(depart_payload));
        }
        self.local.epoch += 1;
        recovery::checkpoint_if_armed(&mut self.local, &cost);
    }

    /// Rolls this processor back to its last barrier-cut checkpoint after an
    /// injected crash: unwinds the crash epoch's mutations to shared state
    /// (lock table here, engine-owned rings and accumulators via the
    /// engine's hook), then restores the private state and enters replay
    /// mode.  Called by the runtime's supervisor between `catch_unwind` and
    /// the worker's re-invocation.
    pub(crate) fn recover_from_crash(&mut self) {
        let undo = {
            let state = self
                .local
                .recovery
                .as_deref_mut()
                .expect("injected crash without an armed fault plan");
            std::mem::take(&mut state.undo)
        };
        let me = self.local.node;
        for rec in undo.iter().rev() {
            match *rec {
                UndoRec::LockTransfer { lock } => {
                    let slot = self.global.sync.lock_slot(lock);
                    let mut l = sync::lock(&slot.sync);
                    l.transfers = l.transfers.saturating_sub(1);
                }
                UndoRec::LockOwner { lock, prev } => {
                    let slot = self.global.sync.lock_slot(lock);
                    let mut l = sync::lock(&slot.sync);
                    // A peer may have legitimately acquired the lock since;
                    // its ownership must survive the rollback.
                    if l.last_owner == Some(me) {
                        l.last_owner = prev;
                    }
                }
                _ => {} // engine-owned records, handled below
            }
        }
        self.global.engine.rollback_undo(me, &undo);
        recovery::restore(&mut self.local, &self.global.cfg.cost, undo.len());
    }
}
