//! The per-processor programming interface.

use dsm_mem::{MemRange, VectorClock, WriteNotice, PAGE_SIZE};
use dsm_sim::{CostModel, MsgKind, SimTime, Work};

use crate::config::{DsmConfig, Model, Trapping};
use crate::ids::{BarrierId, LockId, LockMode};
use crate::local::NodeLocal;
use crate::runtime::{Region, RunGlobal};
use crate::scalar::Scalar;

/// Size of a small control message payload (lock request/forward, barrier
/// bookkeeping) in bytes.
pub(crate) const CTRL_MSG_BYTES: usize = 16;

/// The interface a worker closure uses to access shared memory and
/// synchronize, playing the role of the TreadMarks/Midway runtime API
/// (`Tmk_malloc`, `Tmk_lock_acquire`, `Tmk_barrier`, ...).
///
/// One `ProcessContext` exists per simulated processor; it owns that
/// processor's copy of every shared region, its simulated clock and its
/// statistics.  All methods panic on protocol misuse (releasing a lock that is
/// not held, out-of-bounds accesses) because such misuse is a bug in the
/// application, not a runtime condition.
#[derive(Debug)]
pub struct ProcessContext<'a> {
    pub(crate) global: &'a RunGlobal,
    pub(crate) local: NodeLocal,
}

impl<'a> ProcessContext<'a> {
    pub(crate) fn new(global: &'a RunGlobal, local: NodeLocal) -> Self {
        ProcessContext { global, local }
    }

    pub(crate) fn into_local(self) -> NodeLocal {
        self.local
    }

    /// The index of this simulated processor (0-based).
    pub fn node(&self) -> usize {
        self.local.node.index()
    }

    /// The number of simulated processors in the run.
    pub fn nprocs(&self) -> usize {
        self.local.nprocs
    }

    /// The run configuration.
    pub fn config(&self) -> &DsmConfig {
        &self.global.cfg
    }

    /// The current simulated time of this processor.
    pub fn now(&self) -> SimTime {
        self.local.clock.now()
    }

    pub(crate) fn cost(&self) -> &CostModel {
        &self.global.cfg.cost
    }

    fn is_lrc(&self) -> bool {
        self.global.cfg.kind.model() == Model::Lrc
    }

    /// Charges `work` units of application computation to this processor's
    /// simulated clock.
    pub fn compute(&mut self, work: Work) {
        self.local.stats.work_units += work.units();
        let t = self.cost().work(work);
        self.local.clock.advance(t);
    }

    fn check_bounds(&self, region: Region, offset: usize, size: usize) {
        let len = self.global.regions[region.id().index()].len;
        assert!(
            offset + size <= len,
            "shared access at byte {offset}..{} is outside region {} of {len} bytes",
            offset + size,
            self.global.regions[region.id().index()].name
        );
    }

    /// Reads element `idx` of type `T` from a shared region.
    ///
    /// Under LRC this may take an access miss (the page is invalid because a
    /// write notice arrived for it), in which case the modifications are
    /// fetched and the miss costs are charged.
    ///
    /// # Panics
    ///
    /// Panics if the access is out of bounds.
    pub fn read<T: Scalar>(&mut self, region: Region, idx: usize) -> T {
        let off = idx * T::SIZE;
        self.check_bounds(region, off, T::SIZE);
        self.local.stats.shared_accesses += 1;
        self.local.clock.advance(self.cost().shared_access(1));
        let ridx = region.id().index();
        if self.is_lrc() {
            self.lrc_ensure_fresh(ridx, off / PAGE_SIZE);
        }
        let data = &self.local.regions[ridx].data;
        T::read_le(&data[off..off + T::SIZE])
    }

    /// Writes element `idx` of type `T` to a shared region.
    ///
    /// The write is trapped according to the configured mechanism: a software
    /// dirty bit is set (compiler instrumentation) or a twin is created on the
    /// first write to the page/object (twinning).
    ///
    /// # Panics
    ///
    /// Panics if the access is out of bounds.
    pub fn write<T: Scalar>(&mut self, region: Region, idx: usize, value: T) {
        let off = idx * T::SIZE;
        self.check_bounds(region, off, T::SIZE);
        self.local.stats.shared_accesses += 1;
        self.local.clock.advance(self.cost().shared_access(1));
        let ridx = region.id().index();
        if self.is_lrc() {
            self.lrc_ensure_fresh(ridx, off / PAGE_SIZE);
            self.lrc_trap_write(ridx, off, T::SIZE);
        } else {
            self.ec_trap_write(ridx, off, T::SIZE);
        }
        let data = &mut self.local.regions[ridx].data;
        value.write_le(&mut data[off..off + T::SIZE]);
    }

    /// Read-modify-write convenience: applies `f` to the current value.
    pub fn update<T: Scalar>(&mut self, region: Region, idx: usize, f: impl FnOnce(T) -> T) {
        let v = self.read::<T>(region, idx);
        self.write(region, idx, f(v));
    }

    /// Reads the most recently *published* value of an element without any
    /// consistency action, message, or simulated cost.
    ///
    /// This is a simulation-only convenience used by applications that poll a
    /// flag or queue state while idle (e.g. Quicksort's task queue): in a real
    /// system the idle processor would block or poll cheaply, and charging a
    /// full protocol acquire per poll iteration would let host-scheduling
    /// noise leak into the simulated clock.  Never use it for data the
    /// algorithm actually consumes — follow it with a proper
    /// [`acquire`](ProcessContext::acquire)/[`read`](ProcessContext::read).
    ///
    /// # Panics
    ///
    /// Panics if the access is out of bounds.
    pub fn poll<T: Scalar>(&mut self, region: Region, idx: usize) -> T {
        let off = idx * T::SIZE;
        self.check_bounds(region, off, T::SIZE);
        let global = self.global;
        let mut shared = global.shared.lock();
        let master: &[u8] = match &mut shared.model {
            crate::shared::ModelShared::Ec(ec) => &ec.regions[region.id().index()].master,
            crate::shared::ModelShared::Lrc(lrc) => &lrc.regions[region.id().index()].master,
        };
        T::read_le(&master[off..off + T::SIZE])
    }

    /// Acquires a lock.
    ///
    /// Under EC the acquire makes the data bound to the lock consistent (the
    /// update protocol piggybacks the modifications on the grant message);
    /// under LRC it merges the releaser's vector and receives write notices
    /// that invalidate stale pages.
    ///
    /// # Panics
    ///
    /// Panics if the lock is already held by this processor, or if a
    /// read-only acquire is attempted under LRC (which provides only
    /// exclusive locks, as in the paper).
    pub fn acquire(&mut self, lock: LockId, mode: LockMode) {
        assert!(
            !self.local.held.contains_key(&lock.0),
            "lock {lock} acquired twice by {}",
            self.local.node
        );
        match self.global.cfg.kind.model() {
            Model::Ec => self.ec_acquire(lock, mode),
            Model::Lrc => self.lrc_acquire(lock, mode),
        }
    }

    /// Releases a lock previously acquired with [`ProcessContext::acquire`].
    ///
    /// Under EC an exclusive release publishes the modifications made to the
    /// bound data (to be shipped to the next acquirer); under LRC a release
    /// ends the current interval and creates write notices for the pages
    /// modified in it.
    ///
    /// # Panics
    ///
    /// Panics if the lock is not held.
    pub fn release(&mut self, lock: LockId) {
        assert!(
            self.local.held.contains_key(&lock.0),
            "release of lock {lock} that {} does not hold",
            self.local.node
        );
        match self.global.cfg.kind.model() {
            Model::Ec => self.ec_release(lock),
            Model::Lrc => self.lrc_release(lock),
        }
    }

    /// Rebinds a lock to a new set of memory ranges (EC only; a no-op under
    /// LRC, which has no notion of binding).
    ///
    /// After a rebind the next grant conservatively transfers all bound data,
    /// because neither side knows which part of it the acquirer already has
    /// (Section 7.1, "Rebinding").
    pub fn rebind(&mut self, lock: LockId, ranges: Vec<MemRange>) {
        if self.global.cfg.kind.model() != Model::Ec {
            return;
        }
        let global = self.global;
        let mut shared = global.shared.lock();
        shared.ensure_lock(lock.index());
        let ec = shared.ec();
        let meta = &mut ec.locks[lock.index()];
        if meta.bound != ranges {
            meta.bound = ranges;
            meta.rebind_epoch += 1;
        }
    }

    /// Waits at a barrier until every processor has arrived.
    ///
    /// Under LRC the barrier also exchanges write notices for every interval
    /// completed before it, and each node leaves with the global maximum
    /// vector.
    pub fn barrier(&mut self, barrier: BarrierId) {
        let cost = self.cost().clone();
        self.local.clock.advance(cost.barrier_overhead());
        self.local.stats.barriers += 1;
        let me = self.local.node;
        let nprocs = self.local.nprocs;
        let is_mgr = barrier.manager(nprocs) == me;
        let lrc = self.is_lrc();

        let global = self.global;
        let mut shared = global.shared.lock();

        // Under LRC, arriving at a barrier ends the current interval.
        let arrival_payload = if lrc {
            self.lrc_publish_interval(&mut shared);
            let lrc_state = shared.lrc();
            let prev = self.local.intervals_at_last_barrier;
            let cur = self.local.vector.entry(me);
            let mut pages = 0u64;
            for interval in (prev + 1)..=cur {
                if let Some(&c) = lrc_state.interval_pages[me.index()].get(interval as usize - 1) {
                    pages += c as u64;
                }
            }
            self.local.intervals_at_last_barrier = cur;
            self.local.vector.wire_size() + pages as usize * WriteNotice::WIRE_SIZE
        } else {
            CTRL_MSG_BYTES
        };

        shared.ensure_barrier(barrier.index());
        let old_vector = self.local.vector.clone();

        let mut arrive_t = self.local.clock.now();
        if !is_mgr {
            self.local
                .stats
                .record_msg(MsgKind::BarrierArrival, arrival_payload);
            arrive_t += cost.message(arrival_payload);
        }

        let my_gen;
        {
            let bar = &mut shared.barriers[barrier.index()];
            my_gen = bar.generation;
            bar.pending_max = bar.pending_max.max(arrive_t);
            if lrc {
                bar.pending_vector.merge_max(&self.local.vector);
            }
            bar.arrived += 1;
        }

        if shared.barriers[barrier.index()].arrived == nprocs {
            let bar = &mut shared.barriers[barrier.index()];
            bar.release_time = bar.pending_max;
            bar.released_vector = bar.pending_vector.clone();
            bar.generation = bar.generation.wrapping_add(1);
            bar.arrived = 0;
            bar.pending_max = SimTime::ZERO;
            bar.pending_vector = VectorClock::new(nprocs);
            global.condvar.notify_all();
        } else {
            while shared.barriers[barrier.index()].generation == my_gen {
                global.condvar.wait(&mut shared);
            }
        }

        let (release_time, released_vector) = {
            let bar = &shared.barriers[barrier.index()];
            (bar.release_time, bar.released_vector.clone())
        };
        self.local.clock.sync_to(release_time);

        let depart_payload = if lrc {
            let lrc_state = shared.lrc();
            let notices = lrc_state.notices_between(&old_vector, &released_vector);
            self.local.stats.write_notices_received += notices;
            self.local.vector.merge_max(&released_vector);
            released_vector.wire_size() + notices as usize * WriteNotice::WIRE_SIZE
        } else {
            CTRL_MSG_BYTES
        };
        drop(shared);

        if !is_mgr {
            self.local
                .stats
                .record_msg(MsgKind::BarrierRelease, depart_payload);
            self.local.clock.advance(cost.message(depart_payload));
        }
        self.local.epoch += 1;
    }

    /// Write-trapping for EC (the bound data is writable only while the
    /// exclusive lock is held, so there is no freshness check).
    fn ec_trap_write(&mut self, ridx: usize, off: usize, size: usize) {
        let cost = self.cost().clone();
        let trapping = self.global.cfg.kind.trapping();
        let page = off / PAGE_SIZE;
        let region = &mut self.local.regions[ridx];
        match trapping {
            Trapping::Instrumentation => {
                let factor = if self.global.cfg.ci_loop_optimization {
                    1
                } else {
                    2
                };
                self.local.stats.instrumented_writes += 1;
                self.local
                    .clock
                    .advance(cost.instrumented_writes(factor));
                let base_word = page * (PAGE_SIZE / 4);
                let first_word = off / 4;
                let lp = &mut region.pages[page];
                for w in 0..size.div_ceil(4) {
                    lp.written_mut().set(first_word + w - base_word);
                }
            }
            Trapping::Twinning => {
                let needs_twin =
                    region.pages[page].armed && region.pages[page].twin.is_none();
                if needs_twin {
                    let span = dsm_mem::page_range(page, region.data.len());
                    let words = span.len().div_ceil(4) as u64;
                    let copy = region.data[span].to_vec();
                    region.pages[page].twin = Some(copy);
                    self.local.stats.write_faults += 1;
                    self.local.stats.twins_created += 1;
                    self.local.stats.twin_words += words;
                    self.local.clock.advance(
                        cost.page_fault() + cost.twin_copy(words) + cost.mprotect(),
                    );
                }
            }
        }
    }

    /// Write-trapping for LRC: record the write in the current interval.
    fn lrc_trap_write(&mut self, ridx: usize, off: usize, size: usize) {
        let cost = self.cost().clone();
        let trapping = self.global.cfg.kind.trapping();
        let hierarchical = self.global.cfg.hierarchical_dirty_bits;
        let page = off / PAGE_SIZE;
        let region = &mut self.local.regions[ridx];
        let span = dsm_mem::page_range(page, region.data.len());
        let base_word = span.start / 4;
        let first_word = off / 4;

        match trapping {
            Trapping::Instrumentation => {
                let mut factor = if self.global.cfg.ci_loop_optimization {
                    1
                } else {
                    2
                };
                if hierarchical {
                    // The hierarchical scheme also sets a page-level dirty bit.
                    factor += 1;
                }
                self.local.stats.instrumented_writes += 1;
                self.local
                    .clock
                    .advance(cost.instrumented_writes(factor));
            }
            Trapping::Twinning => {
                if region.pages[page].twin.is_none() {
                    let words = span.len().div_ceil(4) as u64;
                    let copy = region.data[span.clone()].to_vec();
                    region.pages[page].twin = Some(copy);
                    self.local.stats.write_faults += 1;
                    self.local.stats.twins_created += 1;
                    self.local.stats.twin_words += words;
                    self.local.clock.advance(
                        cost.page_fault() + cost.twin_copy(words) + cost.mprotect(),
                    );
                }
            }
        }

        let lp = &mut region.pages[page];
        for w in 0..size.div_ceil(4) {
            lp.written_mut().set(first_word + w - base_word);
        }
        if !lp.dirty {
            lp.dirty = true;
            self.local.dirty_pages.push((ridx, page));
        }
    }
}
