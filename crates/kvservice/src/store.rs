//! The sharded store: fixed-capacity open-addressed buckets living in
//! shared-memory regions, one region and one lock per shard.
//!
//! # Bucket layout
//!
//! A shard is one `SharedArray<u64>` of `slots × (1 + value_words)` words.
//! Slot `i` occupies words `i * stride .. (i + 1) * stride`:
//!
//! | word | content |
//! |---|---|
//! | 0 | key (`0` = never used, `u64::MAX` = tombstone) |
//! | `1 ..= value_words` | the value, inlined |
//!
//! Keys and values live *in shared memory*: an op is a handful of typed
//! reads/writes on the span hot path, no per-op allocation anywhere, and the
//! protocols replicate exactly the slots an op touched (EC moves them with
//! the shard lock's grant; the LRC family invalidates and fetches on the
//! next miss).
//!
//! # Shard → region → lock mapping
//!
//! The shard map is power-of-two: key `k` hashes to shard
//! `mix(k) >> (64 - shard_bits)` and probes linearly from home slot
//! `mix(k) & (slots - 1)` (the shard index reads the hash's high bits and
//! the home slot its low bits, so the two are decorrelated).  Shard `s` is
//! region `s` of the store and is bound — whole-array, entry-consistency
//! style — to `LockId(base_lock + s)`.  Striped locking falls out of the
//! map: ops on different shards take different locks and different region
//! `RwLock`s, so they proceed in parallel end to end.
//!
//! # Per-op consistency
//!
//! Writes (`put`/`cas`/`delete`) always run under the shard's exclusive
//! lock.  Reads choose per op (the RSC framing — pay for the ordering you
//! need, see `DESIGN.md` §12):
//!
//! * [`ReadConsistency::Lock`]: acquire the shard lock around the probe.
//!   Under EC a *read-only* acquire suffices (readers share; the grant pulls
//!   the bound shard up to date); the LRC family forbids read-only locks, so
//!   the same call takes the exclusive lock there.  Either way the read is
//!   sequentially consistent: it observes every write the lock chain ordered
//!   before it.
//! * [`ReadConsistency::Local`]: no lock at all.  Under the LRC family the
//!   probe still rides the ordinary access-miss path and its
//!   generation-counter freshness fast path — a quiesced shard costs one
//!   atomic load per touched page.  Under EC an unlocked read serves
//!   whatever the last grant installed locally.  This is the cache-style
//!   read: regular (never observes an unwritten value, since slots are only
//!   written under the exclusive lock) but not arbitrated — two nodes may
//!   disagree about *when* a concurrent put lands.

use dsm_core::{
    BlockGranularity, Dsm, LockId, LockMode, Model, ProcessContext, RunResult, SharedArray,
};
use dsm_mem::wire::fnv64_extend;

/// FNV-1a 64-bit offset basis — the seed of every fingerprint chain here,
/// matching [`dsm_mem::wire::fnv64`].
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Key word marking a slot that has never held an entry.  Probes stop here.
const EMPTY: u64 = 0;
/// Key word marking a deleted slot.  Probes continue past it; puts reuse it.
const TOMBSTONE: u64 = u64::MAX;

/// SplitMix64 finalizer: the store's one hash function.  Bijective, so
/// distinct keys never collide in the full 64-bit image; shard and home-slot
/// indices read disjoint bit ranges of the mix.
#[inline]
fn mix(mut k: u64) -> u64 {
    k = (k ^ (k >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    k = (k ^ (k >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    k ^ (k >> 31)
}

/// Shape of a [`KvStore`]: shard count, capacity and value width, plus where
/// its lock range starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvConfig {
    /// `2^shard_bits` shards (regions/locks).
    pub shard_bits: u32,
    /// `2^slot_bits` slots per shard.
    pub slot_bits: u32,
    /// Value size in 8-byte words (values are fixed-width, inlined).
    pub value_words: usize,
    /// First lock id of the store's stripe; shard `s` uses
    /// `LockId(base_lock + s)`.
    pub base_lock: u32,
}

impl KvConfig {
    /// A small default: 8 shards × 1024 slots × 4-word values.
    pub fn small() -> Self {
        KvConfig {
            shard_bits: 3,
            slot_bits: 10,
            value_words: 4,
            base_lock: 0,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        1 << self.shard_bits
    }

    /// Slots per shard.
    pub fn slots(&self) -> usize {
        1 << self.slot_bits
    }

    /// Words per slot (key word + value words).
    pub fn stride(&self) -> usize {
        1 + self.value_words
    }

    /// Total slots across all shards.
    pub fn capacity(&self) -> usize {
        self.shards() * self.slots()
    }
}

/// One key-value operation, replayable: values are carried as a seed and
/// materialized on apply (see [`fill_value`]), so traces stay compact and
/// byte-identical across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOp {
    /// Point lookup.
    Get { key: u64 },
    /// Insert-or-overwrite.
    Put { key: u64, seed: u64 },
    /// Compare-and-swap: replaces the value only if its first word equals
    /// `expect`.
    Cas { key: u64, expect: u64, seed: u64 },
    /// Remove the key (tombstones the slot).
    Delete { key: u64 },
}

impl KvOp {
    /// The key the op addresses.
    pub fn key(&self) -> u64 {
        match *self {
            KvOp::Get { key }
            | KvOp::Put { key, .. }
            | KvOp::Cas { key, .. }
            | KvOp::Delete { key } => key,
        }
    }

    /// True for `put`/`cas`/`delete` (needs the exclusive shard lock).
    pub fn is_write(&self) -> bool {
        !matches!(self, KvOp::Get { .. })
    }
}

/// Materializes the deterministic value a `(key, seed)` pair denotes: word
/// `i` is `mix(key ^ seed ^ i)`, except word 0 which carries `seed` verbatim
/// so [`KvOp::Cas`] can name its expectation without knowing the mix.
pub fn fill_value(key: u64, seed: u64, out: &mut [u64]) {
    if let Some(w0) = out.first_mut() {
        *w0 = seed;
    }
    for (i, w) in out.iter_mut().enumerate().skip(1) {
        *w = mix(key ^ seed ^ i as u64);
    }
}

/// What a [`KvStore::put`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutOutcome {
    /// The key was new (or its slot was a tombstone).
    Inserted,
    /// The key existed; its value was overwritten.
    Updated,
    /// The probe wrapped without finding the key or a free slot.
    Full,
}

/// What a [`KvStore::cas`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CasOutcome {
    /// The expectation held; the value was replaced.
    Swapped,
    /// The key exists but its first value word differed from `expect`.
    Mismatch,
    /// The key is absent.
    Absent,
}

/// How a read is ordered; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadConsistency {
    /// Sequentially consistent: probe under the shard lock (read-only under
    /// EC, exclusive under the LRC family).
    Lock,
    /// Local: no lock; serve the freshest locally-visible value.
    Local,
}

/// Counters one node accumulates while applying ops, plus the per-shard
/// get-result fingerprint chains the equivalence suites compare.
#[derive(Debug, Clone)]
pub struct KvStats {
    pub gets: u64,
    pub hits: u64,
    pub puts: u64,
    pub inserted: u64,
    pub updated: u64,
    pub cas_ok: u64,
    pub cas_miss: u64,
    pub cas_absent: u64,
    pub deletes: u64,
    pub deleted: u64,
    /// Per shard: an FNV-1a chain over every get result this node observed
    /// on that shard, in application order (a miss folds a marker byte, a
    /// hit folds the value bytes).  Shard-local order is deterministic
    /// whenever one node owns the shard, whatever the other shards are doing.
    pub get_fnv: Vec<u64>,
}

impl KvStats {
    /// Fresh counters for a store with `shards` shards.
    pub fn new(shards: usize) -> Self {
        KvStats {
            gets: 0,
            hits: 0,
            puts: 0,
            inserted: 0,
            updated: 0,
            cas_ok: 0,
            cas_miss: 0,
            cas_absent: 0,
            deletes: 0,
            deleted: 0,
            get_fnv: vec![FNV_OFFSET; shards],
        }
    }

    /// Total operations applied.
    pub fn ops(&self) -> u64 {
        self.gets + self.puts + self.cas_ok + self.cas_miss + self.cas_absent + self.deletes
    }

    /// Folds another worker's stats into this one: counters add, and the
    /// per-shard get chains combine with XOR so the result is independent of
    /// merge order.  The bench bins aggregate per-processor stats this way;
    /// the equivalence suites compare per-worker chains instead of merging,
    /// because a chain's application order is only meaningful within one
    /// worker.
    pub fn merge(&mut self, other: &KvStats) {
        self.gets += other.gets;
        self.hits += other.hits;
        self.puts += other.puts;
        self.inserted += other.inserted;
        self.updated += other.updated;
        self.cas_ok += other.cas_ok;
        self.cas_miss += other.cas_miss;
        self.cas_absent += other.cas_absent;
        self.deletes += other.deletes;
        self.deleted += other.deleted;
        for (a, b) in self.get_fnv.iter_mut().zip(&other.get_fnv) {
            *a ^= b;
        }
    }

    fn fold_hit(&mut self, shard: usize, value: &[u64]) {
        self.hits += 1;
        let mut h = self.get_fnv[shard];
        for w in value {
            h = fnv64_extend(h, &w.to_le_bytes());
        }
        self.get_fnv[shard] = h;
    }

    fn fold_miss(&mut self, shard: usize) {
        self.get_fnv[shard] = fnv64_extend(self.get_fnv[shard], &[0xff]);
    }
}

/// Reusable per-node scratch for [`KvStore::apply_batch`]: the shard index
/// and the value buffer.  Construct once per worker; steady-state batches
/// allocate nothing.
#[derive(Debug)]
pub struct KvScratch {
    /// Op indices of the current batch, bucketed by shard.
    by_shard: Vec<Vec<u32>>,
    /// Value materialization / readback buffer (`value_words` long).
    value: Vec<u64>,
}

impl KvScratch {
    /// Scratch sized for `cfg`.
    pub fn new(cfg: &KvConfig) -> Self {
        KvScratch {
            by_shard: (0..cfg.shards()).map(|_| Vec::new()).collect(),
            value: vec![0; cfg.value_words],
        }
    }
}

/// The sharded KV/cache tier.  Allocate once with [`KvStore::alloc`] during
/// setup; the handle is cheap to clone and is shared with every worker
/// closure.
#[derive(Debug, Clone)]
pub struct KvStore {
    cfg: KvConfig,
    /// The read-only lock mode [`ReadConsistency::Lock`] uses: `ReadOnly`
    /// under EC (readers share), `Exclusive` under the LRC family (which
    /// rejects read-only acquires, as in the paper).
    sc_read_mode: LockMode,
    shards: Vec<SharedArray<u64>>,
}

impl KvStore {
    /// Allocates the store's regions and binds each shard — whole-array — to
    /// its stripe lock.  The binding is what makes EC move exactly the
    /// shard's bytes with its lock grants; under LRC it is a no-op and the
    /// same setup serves every implementation.
    pub fn alloc(dsm: &mut Dsm, model: Model, cfg: KvConfig) -> Self {
        let shards = (0..cfg.shards())
            .map(|s| {
                let arr = dsm.alloc_array::<u64>(
                    format!("kv-shard{s}"),
                    cfg.slots() * cfg.stride(),
                    BlockGranularity::DoubleWord,
                );
                dsm.bind(LockId::new(cfg.base_lock + s as u32), [arr.whole()]);
                arr
            })
            .collect();
        KvStore {
            cfg,
            sc_read_mode: if model == Model::Ec {
                LockMode::ReadOnly
            } else {
                LockMode::Exclusive
            },
            shards,
        }
    }

    /// The store's shape.
    pub fn config(&self) -> &KvConfig {
        &self.cfg
    }

    /// The shard key `k` maps to.
    pub fn shard_of(&self, key: u64) -> usize {
        (mix(key) >> (64 - self.cfg.shard_bits)) as usize
    }

    /// The lock guarding shard `s`.
    pub fn shard_lock(&self, s: usize) -> LockId {
        LockId::new(self.cfg.base_lock + s as u32)
    }

    /// The region backing shard `s` (for fingerprinting final contents).
    pub fn shard_array(&self, s: usize) -> SharedArray<u64> {
        self.shards[s]
    }

    /// Probes shard `s` for `key`.  Returns `Ok(slot)` if found,
    /// `Err(free_slot)` with the first reusable slot if absent, or
    /// `Err(usize::MAX)` if the probe wrapped a full shard.
    fn probe(&self, ctx: &mut ProcessContext<'_>, s: usize, key: u64) -> Result<usize, usize> {
        let arr = self.shards[s];
        let slots = self.cfg.slots();
        let stride = self.cfg.stride();
        let mask = slots - 1;
        let mut slot = mix(key) as usize & mask;
        let mut free = usize::MAX;
        for _ in 0..slots {
            let k = ctx.get(arr, slot * stride);
            if k == key {
                return Ok(slot);
            }
            if k == EMPTY {
                return Err(if free != usize::MAX { free } else { slot });
            }
            if k == TOMBSTONE && free == usize::MAX {
                free = slot;
            }
            slot = (slot + 1) & mask;
        }
        Err(free)
    }

    /// Reads `key`'s value into `out` (exactly `value_words` long) under the
    /// chosen consistency.  Returns true on a hit.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != value_words`, or if `key` is one of the two
    /// reserved sentinels (`0`, `u64::MAX`).
    pub fn get_into(
        &self,
        ctx: &mut ProcessContext<'_>,
        key: u64,
        consistency: ReadConsistency,
        out: &mut [u64],
    ) -> bool {
        assert_eq!(out.len(), self.cfg.value_words, "value buffer size");
        assert!(key != EMPTY && key != TOMBSTONE, "reserved key");
        let s = self.shard_of(key);
        match consistency {
            ReadConsistency::Lock => {
                let mut g = ctx.lock(self.shard_lock(s), self.sc_read_mode);
                self.get_in_shard(&mut g, s, key, out)
            }
            ReadConsistency::Local => self.get_in_shard(ctx, s, key, out),
        }
    }

    fn get_in_shard(
        &self,
        ctx: &mut ProcessContext<'_>,
        s: usize,
        key: u64,
        out: &mut [u64],
    ) -> bool {
        match self.probe(ctx, s, key) {
            Ok(slot) => {
                ctx.read_into(self.shards[s], slot * self.cfg.stride() + 1, out);
                true
            }
            Err(_) => false,
        }
    }

    /// Inserts or overwrites `key` under the shard's exclusive lock.
    pub fn put(&self, ctx: &mut ProcessContext<'_>, key: u64, value: &[u64]) -> PutOutcome {
        assert!(key != EMPTY && key != TOMBSTONE, "reserved key");
        let s = self.shard_of(key);
        let mut g = ctx.lock(self.shard_lock(s), LockMode::Exclusive);
        self.put_in_shard(&mut g, s, key, value)
    }

    fn put_in_shard(
        &self,
        ctx: &mut ProcessContext<'_>,
        s: usize,
        key: u64,
        value: &[u64],
    ) -> PutOutcome {
        debug_assert_eq!(value.len(), self.cfg.value_words);
        let stride = self.cfg.stride();
        match self.probe(ctx, s, key) {
            Ok(slot) => {
                ctx.write_from(self.shards[s], slot * stride + 1, value);
                PutOutcome::Updated
            }
            Err(usize::MAX) => PutOutcome::Full,
            Err(slot) => {
                ctx.set(self.shards[s], slot * stride, key);
                ctx.write_from(self.shards[s], slot * stride + 1, value);
                PutOutcome::Inserted
            }
        }
    }

    /// Replaces `key`'s value with `value` only if the current first value
    /// word equals `expect`, under the shard's exclusive lock.
    pub fn cas(
        &self,
        ctx: &mut ProcessContext<'_>,
        key: u64,
        expect: u64,
        value: &[u64],
    ) -> CasOutcome {
        assert!(key != EMPTY && key != TOMBSTONE, "reserved key");
        let s = self.shard_of(key);
        let mut g = ctx.lock(self.shard_lock(s), LockMode::Exclusive);
        self.cas_in_shard(&mut g, s, key, expect, value)
    }

    fn cas_in_shard(
        &self,
        ctx: &mut ProcessContext<'_>,
        s: usize,
        key: u64,
        expect: u64,
        value: &[u64],
    ) -> CasOutcome {
        debug_assert_eq!(value.len(), self.cfg.value_words);
        let stride = self.cfg.stride();
        match self.probe(ctx, s, key) {
            Ok(slot) => {
                let cur = ctx.get(self.shards[s], slot * stride + 1);
                if cur == expect {
                    ctx.write_from(self.shards[s], slot * stride + 1, value);
                    CasOutcome::Swapped
                } else {
                    CasOutcome::Mismatch
                }
            }
            Err(_) => CasOutcome::Absent,
        }
    }

    /// Removes `key` (tombstones its slot) under the shard's exclusive lock.
    /// Returns true if the key was present.
    pub fn delete(&self, ctx: &mut ProcessContext<'_>, key: u64) -> bool {
        assert!(key != EMPTY && key != TOMBSTONE, "reserved key");
        let s = self.shard_of(key);
        let mut g = ctx.lock(self.shard_lock(s), LockMode::Exclusive);
        self.delete_in_shard(&mut g, s, key)
    }

    fn delete_in_shard(&self, ctx: &mut ProcessContext<'_>, s: usize, key: u64) -> bool {
        match self.probe(ctx, s, key) {
            Ok(slot) => {
                ctx.set(self.shards[s], slot * self.cfg.stride(), TOMBSTONE);
                true
            }
            Err(_) => false,
        }
    }

    /// Applies a batch of ops, grouped by shard so each touched shard's lock
    /// is taken **once** per batch (the batched-write-application fast path:
    /// under EC one grant/publish pair then covers every op on the shard,
    /// and under LRC one interval does).  Within a shard, ops apply in batch
    /// order; across shards, in shard order.  Shards reached only by `Get`s
    /// under [`ReadConsistency::Local`] are served without any lock.
    ///
    /// Outcomes and get results accumulate into `stats`; `scratch` is
    /// recycled, so steady-state batches allocate nothing.
    pub fn apply_batch(
        &self,
        ctx: &mut ProcessContext<'_>,
        ops: &[KvOp],
        reads: ReadConsistency,
        scratch: &mut KvScratch,
        stats: &mut KvStats,
    ) {
        for bucket in scratch.by_shard.iter_mut() {
            bucket.clear();
        }
        for (i, op) in ops.iter().enumerate() {
            scratch.by_shard[self.shard_of(op.key())].push(i as u32);
        }
        let mut value = std::mem::take(&mut scratch.value);
        for s in 0..self.cfg.shards() {
            let bucket = &scratch.by_shard[s];
            if bucket.is_empty() {
                continue;
            }
            let any_write = bucket.iter().any(|&i| ops[i as usize].is_write());
            if any_write || reads == ReadConsistency::Lock {
                let mode = if any_write {
                    LockMode::Exclusive
                } else {
                    self.sc_read_mode
                };
                let mut g = ctx.lock(self.shard_lock(s), mode);
                self.apply_shard(&mut g, s, ops, bucket, &mut value, stats);
            } else {
                self.apply_shard(ctx, s, ops, bucket, &mut value, stats);
            }
        }
        scratch.value = value;
    }

    /// Applies one shard's slice of a batch in order (the caller holds
    /// whatever lock the batch's consistency demands).
    fn apply_shard(
        &self,
        cx: &mut ProcessContext<'_>,
        s: usize,
        ops: &[KvOp],
        bucket: &[u32],
        value: &mut [u64],
        stats: &mut KvStats,
    ) {
        for &i in bucket {
            match ops[i as usize] {
                KvOp::Get { key } => {
                    stats.gets += 1;
                    if self.get_in_shard(cx, s, key, value) {
                        stats.fold_hit(s, value);
                    } else {
                        stats.fold_miss(s);
                    }
                }
                KvOp::Put { key, seed } => {
                    stats.puts += 1;
                    fill_value(key, seed, value);
                    match self.put_in_shard(cx, s, key, value) {
                        PutOutcome::Inserted => stats.inserted += 1,
                        PutOutcome::Updated => stats.updated += 1,
                        PutOutcome::Full => panic!("kv shard {s} overflowed"),
                    }
                }
                KvOp::Cas { key, expect, seed } => {
                    fill_value(key, seed, value);
                    match self.cas_in_shard(cx, s, key, expect, value) {
                        CasOutcome::Swapped => stats.cas_ok += 1,
                        CasOutcome::Mismatch => stats.cas_miss += 1,
                        CasOutcome::Absent => stats.cas_absent += 1,
                    }
                }
                KvOp::Delete { key } => {
                    stats.deletes += 1;
                    if self.delete_in_shard(cx, s, key) {
                        stats.deleted += 1;
                    }
                }
            }
        }
    }

    /// FNV-1a fingerprint of every shard's final contents, in shard order —
    /// the "identical final bucket contents" half of the equivalence suites.
    pub fn contents_fnv(&self, result: &RunResult) -> u64 {
        let mut h = FNV_OFFSET;
        for arr in &self.shards {
            for w in result.final_array(*arr) {
                h = fnv64_extend(h, &w.to_le_bytes());
            }
        }
        h
    }
}
