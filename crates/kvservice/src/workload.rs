//! Seeded, closed-loop workload generation for the KV tier: key samplers
//! (uniform and zipf), operation mixes, and replayable op traces.
//!
//! Everything here is deterministic from its seed — no global state, no
//! `std` randomness — so the same `(seed, sampler, mix, len)` tuple produces
//! the byte-identical op sequence on every run, host and OS.  That is what
//! lets the equivalence suites replay one trace across all twelve protocol
//! implementations and both transports and demand identical answers
//! (`dsm-tests/tests/kv_equivalence.rs`), and what pins the samplers'
//! distribution shape in property tests.

use crate::store::KvOp;

/// xorshift64* PRNG: 8 bytes of state, passes BigCrush's basic batteries,
/// and — the property the suites actually rely on — identical output for
/// identical seeds everywhere.  Zero seeds are remapped (the xorshift orbit
/// of 0 is 0).
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeds the generator (any value; 0 is remapped to a fixed non-zero).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw from `0..n` (n > 0) by 128-bit multiply, bias ≤ 2⁻⁶⁴.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A key distribution over the id space `1..=keys` (ids are raw keys; the
/// store's hash decorrelates them, so sampling ids *is* sampling slots).
#[derive(Debug, Clone)]
pub struct KeySampler {
    keys: u64,
    /// Zipf cumulative weight table (`cdf[r]` = P(rank ≤ r)), or `None` for
    /// the uniform sampler.  Rank `r` maps to key `r + 1`: rank 0 is the
    /// hottest key.
    cdf: Option<Vec<f64>>,
}

impl KeySampler {
    /// Uniform over `1..=keys`.
    pub fn uniform(keys: u64) -> Self {
        assert!(keys > 0, "empty key space");
        KeySampler { keys, cdf: None }
    }

    /// Zipf with exponent `theta` over `1..=keys` (θ = 0.99 is the YCSB
    /// default shape): P(key = r+1) ∝ 1/(r+1)^θ, materialized as a cumulative
    /// table binary-searched per draw.  Setup is O(keys), draws are
    /// O(log keys) and allocation-free.
    pub fn zipf(keys: u64, theta: f64) -> Self {
        assert!(keys > 0, "empty key space");
        assert!(theta > 0.0, "zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(keys as usize);
        let mut total = 0.0f64;
        for rank in 0..keys {
            total += 1.0 / ((rank + 1) as f64).powf(theta);
            cdf.push(total);
        }
        for w in cdf.iter_mut() {
            *w /= total;
        }
        KeySampler {
            keys,
            cdf: Some(cdf),
        }
    }

    /// Size of the key space.
    pub fn keys(&self) -> u64 {
        self.keys
    }

    /// Draws one key in `1..=keys`.
    pub fn sample(&self, rng: &mut XorShift64) -> u64 {
        match &self.cdf {
            None => 1 + rng.below(self.keys),
            Some(cdf) => {
                let u = rng.unit_f64();
                1 + cdf.partition_point(|&c| c < u) as u64
            }
        }
    }

    /// The smallest rank whose cumulative probability reaches `q` — the
    /// distribution's `q`-quantile in ranks.  Uniform: `q * keys`.  Property
    /// tests compare this against empirical counts.
    pub fn quantile_rank(&self, q: f64) -> u64 {
        match &self.cdf {
            None => ((q * self.keys as f64).ceil() as u64).clamp(1, self.keys) - 1,
            Some(cdf) => cdf.partition_point(|&c| c < q) as u64,
        }
    }
}

/// An operation mix: what fraction of ops read, and how the write side
/// splits between put, cas and delete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixSpec {
    /// Label used in bench rows and test names.
    pub name: &'static str,
    /// Reads per 100 ops; the rest are writes.
    pub read_pct: u32,
    /// Of 100 write ops: how many are puts (cas and delete split the rest
    /// 2:1; see [`MixSpec::op`]).
    pub put_share: u32,
}

impl MixSpec {
    /// The three mixes of the bench matrix: read-mostly 95/5, balanced
    /// 50/50 and write-heavy 10/90.
    pub const ALL: [MixSpec; 3] = [
        MixSpec {
            name: "read_mostly_95_5",
            read_pct: 95,
            put_share: 80,
        },
        MixSpec {
            name: "balanced_50_50",
            read_pct: 50,
            put_share: 80,
        },
        MixSpec {
            name: "write_heavy_10_90",
            read_pct: 10,
            put_share: 80,
        },
    ];

    /// Draws the next operation of this mix.  Value seeds come from a small
    /// window (0..16) and cas expectations from its lower half (0..8), both
    /// landing in the stored value's first word, so some cas ops genuinely
    /// succeed and some genuinely miss whatever the interleaving.
    pub fn op(&self, rng: &mut XorShift64, sampler: &KeySampler) -> KvOp {
        let key = sampler.sample(rng);
        let roll = rng.below(100) as u32;
        if roll < self.read_pct {
            return KvOp::Get { key };
        }
        let wroll = rng.below(100) as u32;
        let seed = rng.next_u64() & 0xf;
        if wroll < self.put_share {
            KvOp::Put { key, seed }
        } else if wroll < self.put_share + (100 - self.put_share) * 2 / 3 {
            KvOp::Cas {
                key,
                expect: seed & 0x7,
                seed,
            }
        } else {
            KvOp::Delete { key }
        }
    }
}

/// Generates a replayable trace: `len` ops drawn from `mix` over `sampler`,
/// deterministic from `seed` (byte-identical across runs and hosts).
pub fn gen_trace(seed: u64, len: usize, sampler: &KeySampler, mix: &MixSpec) -> Vec<KvOp> {
    let mut rng = XorShift64::new(seed);
    (0..len).map(|_| mix.op(&mut rng, sampler)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_nonzero() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..1000 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            assert_ne!(x, 0, "xorshift64* never yields 0 from a nonzero state");
        }
        assert_eq!(
            XorShift64::new(0).next_u64(),
            XorShift64::new(0).next_u64(),
            "zero seed is remapped, not absorbing"
        );
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = XorShift64::new(7);
        for n in [1u64, 2, 3, 10, 1000] {
            for _ in 0..100 {
                assert!(rng.below(n) < n);
            }
        }
    }

    #[test]
    fn samplers_stay_in_the_key_space() {
        let mut rng = XorShift64::new(9);
        for s in [KeySampler::uniform(100), KeySampler::zipf(100, 0.99)] {
            for _ in 0..1000 {
                let k = s.sample(&mut rng);
                assert!((1..=100).contains(&k));
            }
        }
    }

    #[test]
    fn zipf_cdf_is_monotone_and_normalized() {
        let s = KeySampler::zipf(1000, 0.99);
        let cdf = s.cdf.as_ref().expect("zipf has a table");
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert!((cdf.last().copied().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mixes_respect_read_fraction() {
        let sampler = KeySampler::uniform(1000);
        for mix in MixSpec::ALL {
            let trace = gen_trace(1, 20_000, &sampler, &mix);
            let reads = trace
                .iter()
                .filter(|o| matches!(o, KvOp::Get { .. }))
                .count() as f64;
            let frac = reads / trace.len() as f64;
            let want = mix.read_pct as f64 / 100.0;
            assert!(
                (frac - want).abs() < 0.02,
                "{}: read fraction {frac} != {want}",
                mix.name
            );
        }
    }
}
