//! A sharded key-value/cache tier served out of the DSM's shared regions —
//! the workspace's answer to "is this a servable system, or just an app
//! harness?".
//!
//! The store ([`KvStore`]) is a fixed-capacity open-addressed hash table
//! striped across power-of-two shards.  Each shard is one shared region
//! (`SharedArray<u64>`) bound — entry-consistency style — to its own lock,
//! so the paper's EC/LRC/HLRC/ALRC implementations all serve the same
//! service: under EC a shard's bytes travel with its lock grants and nothing
//! else moves; under the LRC family the same ops ride write notices,
//! invalidations and access misses.  Keys and values are inlined in shared
//! memory and every op lowers onto the typed span hot path, so steady-state
//! serving allocates nothing on any node.
//!
//! Reads choose their consistency per operation ([`ReadConsistency`]): the
//! default locked read is sequentially consistent, while the cheap local
//! read skips arbitration entirely — the Regular Sequential Consistency
//! observation (Helt et al.) that most read paths only need their ordering
//! guarantees *when someone is writing*, and the arbitration-free-consistency
//! bound (Attiya et al.) that tells us which ops can never skip the
//! round-trip (cas cannot; point reads can).  See `DESIGN.md` §12 for the
//! full contract.
//!
//! [`workload`] generates the closed-loop traffic: seeded xorshift64*
//! randomness, uniform and zipf key samplers, and the read-mostly /
//! balanced / write-heavy op mixes, all byte-deterministic per seed so
//! equivalence suites can replay one trace across every implementation and
//! transport and demand identical answers.
//!
//! # Example
//!
//! ```
//! use dsm_core::{Dsm, DsmConfig, ImplKind};
//! use dsm_kvservice::{KvConfig, KvStore, ReadConsistency};
//!
//! let kind = ImplKind::ec_time();
//! let mut dsm = Dsm::new(DsmConfig::with_procs(kind, 2))?;
//! let store = KvStore::alloc(&mut dsm, kind.model(), KvConfig::small());
//! let st = store.clone();
//! let result = dsm.run(move |ctx| {
//!     let mut value = [0u64; 4];
//!     if ctx.node() == 0 {
//!         st.put(ctx, 17, &[1, 2, 3, 4]);
//!     }
//!     ctx.barrier(dsm_core::BarrierId::new(0));
//!     // Sequentially consistent read: observes the put from node 0.
//!     assert!(st.get_into(ctx, 17, ReadConsistency::Lock, &mut value));
//!     assert_eq!(value, [1, 2, 3, 4]);
//!     ctx.barrier(dsm_core::BarrierId::new(1));
//! });
//! assert!(store.contents_fnv(&result) != 0);
//! # Ok::<(), dsm_core::DsmError>(())
//! ```

mod store;
pub mod workload;

pub use store::{
    fill_value, CasOutcome, KvConfig, KvOp, KvScratch, KvStats, KvStore, PutOutcome,
    ReadConsistency,
};

#[cfg(test)]
mod tests {
    use super::workload::{gen_trace, KeySampler, MixSpec};
    use super::*;
    use dsm_core::{BarrierId, Dsm, DsmConfig, ImplKind};

    fn store_run(kind: ImplKind, nprocs: usize) -> (KvStore, Dsm) {
        let mut dsm = Dsm::new(DsmConfig::with_procs(kind, nprocs)).expect("valid config");
        let store = KvStore::alloc(&mut dsm, kind.model(), KvConfig::small());
        (store, dsm)
    }

    #[test]
    fn single_node_crud_roundtrip() {
        for kind in [ImplKind::ec_time(), ImplKind::lrc_diff()] {
            let (store, dsm) = store_run(kind, 1);
            let st = store.clone();
            dsm.run(move |ctx| {
                let mut out = [0u64; 4];
                assert!(!st.get_into(ctx, 5, ReadConsistency::Lock, &mut out));
                assert_eq!(st.put(ctx, 5, &[9, 9, 9, 9]), PutOutcome::Inserted);
                assert!(st.get_into(ctx, 5, ReadConsistency::Lock, &mut out));
                assert_eq!(out, [9, 9, 9, 9]);
                assert_eq!(st.put(ctx, 5, &[1, 1, 1, 1]), PutOutcome::Updated);
                assert_eq!(st.cas(ctx, 5, 1, &[2, 2, 2, 2]), CasOutcome::Swapped);
                assert_eq!(st.cas(ctx, 5, 1, &[3, 3, 3, 3]), CasOutcome::Mismatch);
                assert_eq!(st.cas(ctx, 6, 0, &[3, 3, 3, 3]), CasOutcome::Absent);
                assert!(st.delete(ctx, 5));
                assert!(!st.delete(ctx, 5));
                assert!(!st.get_into(ctx, 5, ReadConsistency::Local, &mut out));
                ctx.barrier(BarrierId::new(0));
            });
        }
    }

    #[test]
    fn tombstones_keep_probe_chains_reachable() {
        // Force a probe collision chain, delete the middle entry, and
        // require the tail entry to stay reachable (probes continue past
        // tombstones) and the tombstone to be reused by the next insert.
        let (store, dsm) = store_run(ImplKind::lrc_diff(), 1);
        let st = store.clone();
        dsm.run(move |ctx| {
            // Find three keys in one shard (collisions guaranteed by filling
            // enough of the shard's slot space is overkill; same-shard keys
            // probing linearly already exercise chain traversal).
            let s0 = st.shard_of(1);
            let mut same: Vec<u64> = (1..5000).filter(|&k| st.shard_of(k) == s0).collect();
            same.truncate(64);
            let mut out = [0u64; 4];
            for &k in &same {
                assert_eq!(st.put(ctx, k, &[k, 0, 0, 0]), PutOutcome::Inserted);
            }
            let victim = same[same.len() / 2];
            assert!(st.delete(ctx, victim));
            for &k in &same {
                let hit = st.get_into(ctx, k, ReadConsistency::Lock, &mut out);
                if k == victim {
                    assert!(!hit, "deleted key resurfaced");
                } else {
                    assert!(hit, "key {k} lost after an unrelated delete");
                    assert_eq!(out[0], k);
                }
            }
            assert_eq!(st.put(ctx, victim, &[7, 0, 0, 0]), PutOutcome::Inserted);
            assert!(st.get_into(ctx, victim, ReadConsistency::Lock, &mut out));
            ctx.barrier(BarrierId::new(0));
        });
    }

    #[test]
    fn batch_apply_matches_per_op_application() {
        // One seeded trace applied two ways — op-at-a-time and batched —
        // must land on identical final contents and get streams.
        let sampler = KeySampler::zipf(500, 0.99);
        let trace = gen_trace(11, 2000, &sampler, &MixSpec::ALL[1]);
        let mut fnvs = Vec::new();
        let mut gets = Vec::new();
        for batched in [false, true] {
            let kind = ImplKind::ec_time();
            let (store, dsm) = store_run(kind, 1);
            let st = store.clone();
            let trace = trace.clone();
            let stats_out = std::sync::Mutex::new(None);
            let result = dsm.run(|ctx| {
                let mut scratch = KvScratch::new(st.config());
                let mut stats = KvStats::new(st.config().shards());
                if batched {
                    for chunk in trace.chunks(64) {
                        st.apply_batch(ctx, chunk, ReadConsistency::Lock, &mut scratch, &mut stats);
                    }
                } else {
                    for op in &trace {
                        st.apply_batch(
                            ctx,
                            std::slice::from_ref(op),
                            ReadConsistency::Lock,
                            &mut scratch,
                            &mut stats,
                        );
                    }
                }
                ctx.barrier(BarrierId::new(0));
                *stats_out.lock().unwrap() = Some(stats);
            });
            let stats = stats_out.into_inner().unwrap().expect("worker ran");
            assert_eq!(stats.ops(), trace.len() as u64);
            fnvs.push(store.contents_fnv(&result));
            gets.push(stats.get_fnv.clone());
        }
        assert_eq!(fnvs[0], fnvs[1], "batched apply changed the contents");
        assert_eq!(gets[0], gets[1], "batched apply changed the get stream");
    }

    #[test]
    fn local_reads_after_barrier_see_lrc_published_data() {
        // Under the LRC family a barrier orders everything before it, so an
        // unlocked Local read after the barrier must observe the put.
        for kind in [ImplKind::lrc_diff(), ImplKind::hlrc_diff()] {
            let (store, dsm) = store_run(kind, 2);
            let st = store.clone();
            dsm.run(move |ctx| {
                if ctx.node() == 0 {
                    st.put(ctx, 42, &[6, 6, 6, 6]);
                }
                ctx.barrier(BarrierId::new(0));
                let mut out = [0u64; 4];
                assert!(
                    st.get_into(ctx, 42, ReadConsistency::Local, &mut out),
                    "{kind}: local read missed a barrier-ordered put"
                );
                assert_eq!(out, [6, 6, 6, 6]);
                ctx.barrier(BarrierId::new(1));
            });
        }
    }
}
