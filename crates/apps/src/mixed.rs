//! A mixed-sharing workload for exercising the adaptive data policy.
//!
//! Unlike the paper's application suite, this program is *synthetic*: three
//! phases, each the textbook case for a different data-movement policy, run
//! back to back over three separate regions so no single static policy can
//! win overall (the situation §5 of the paper leaves open):
//!
//! 1. **False sharing** — every processor writes its own small chunk of every
//!    page of `mx-false` each window, then reads a neighbour's chunk.  Diffs
//!    are tiny and writers race, so homeless diffing wins; a home-based
//!    policy ships whole pages both ways.
//! 2. **Single writer** — each processor repeatedly rewrites its own private
//!    band of `mx-own` pages that nobody else ever touches.  The adaptive
//!    policy pins these pages to their writer, suppressing all twin/diff
//!    work; static policies keep paying for it.
//! 3. **Migratory lock** — all processors take deterministic round-robin
//!    turns (one barrier per turn) under one exclusive lock updating every
//!    word of every `mx-mig` page.  Writers serialize and modifications cover
//!    whole pages, so under diff collection a home at the dominant writer
//!    turns each miss into one whole-page round trip where homeless diffing
//!    ships one page-sized diff per unseen writer.
//!
//! The program is barriers-and-locks only (no EC bindings), so it runs under
//! the LRC family: `LRC-*`, `HLRC-*` and `ALRC-*`.  Every write is a
//! closed-form function of (window, page, writer), so [`expected`] reproduces
//! the exact final contents for verification at any processor count.

use dsm_core::{
    BarrierId, BlockGranularity, Dsm, DsmConfig, ImplKind, LockId, LockMode, Model, RunResult,
    TransportKind,
};
use dsm_mem::PAGE_SIZE;

/// Words per page (the regions hold `u32`s).
const WPP: usize = PAGE_SIZE / 4;
/// Words each processor writes per falsely-shared page per window.
const CHUNK: usize = 8;
/// Words each processor rewrites per owned page per window.
const OWN_WORDS: usize = 128;

/// Mixed-workload parameters.
#[derive(Debug, Clone)]
pub struct MixedParams {
    /// Pages in the falsely-shared and migratory regions (and pages *per
    /// processor* in the single-writer region).
    pub pages: usize,
    /// Windows (barrier episodes) per phase.
    pub iterations: usize,
}

impl MixedParams {
    /// Full-size instance for the adaptive benchmark.
    pub fn paper() -> Self {
        MixedParams {
            pages: 8,
            iterations: 16,
        }
    }

    /// A reduced instance for quick runs.
    pub fn small() -> Self {
        MixedParams {
            pages: 4,
            iterations: 8,
        }
    }

    /// A very small instance for tests.
    pub fn tiny() -> Self {
        MixedParams {
            pages: 2,
            iterations: 4,
        }
    }
}

/// Value processor `k` writes at word `w` of falsely-shared page `page` in
/// window `t`.  Varies with `t` so every window produces a non-empty diff.
fn aval(t: usize, page: usize, k: usize, w: usize) -> u32 {
    (t as u32).wrapping_mul(0x9e37_79b9)
        ^ (page as u32).wrapping_mul(97)
        ^ (k as u32).wrapping_mul(31)
        ^ (w as u32).wrapping_mul(7)
}

/// Value processor `k` writes at flat word `w` of its own band in window `t`.
fn bval(t: usize, k: usize, w: usize) -> u32 {
    (t as u32).wrapping_mul(0x85eb_ca6b) ^ (k as u32).wrapping_mul(113) ^ (w as u32)
}

/// The exact final contents of the three regions — `(mx-false, mx-own,
/// mx-mig)` — for a run at `nprocs` processors.
pub fn expected(p: &MixedParams, nprocs: usize) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let last = p.iterations - 1;
    let mut fs = vec![0u32; p.pages * WPP];
    for pg in 0..p.pages {
        for k in 0..nprocs {
            for c in 0..CHUNK {
                let w = k * CHUNK + c;
                fs[pg * WPP + w] = aval(last, pg, k, w);
            }
        }
    }
    let mut own = vec![0u32; nprocs * p.pages * WPP];
    for k in 0..nprocs {
        for pg in 0..p.pages {
            for i in 0..OWN_WORDS {
                let flat = (k * p.pages + pg) * WPP + i;
                own[flat] = bval(last, k, pg * WPP + i);
            }
        }
    }
    // Every window, every processor adds its `node + 1` to every word.
    let per_window = (nprocs * (nprocs + 1) / 2) as u32;
    let mig = vec![(p.iterations as u32).wrapping_mul(per_window); p.pages * WPP];
    (fs, own, mig)
}

/// Runs the mixed workload under the given implementation and processor
/// count.  Returns the run result and whether all three regions' final
/// contents match [`expected`] exactly.
///
/// # Panics
///
/// Panics for EC implementations (the program has no lock bindings) and when
/// `nprocs` chunks do not fit in one page.
pub fn run(kind: ImplKind, nprocs: usize, p: &MixedParams) -> (RunResult, bool) {
    run_on(kind, nprocs, p, TransportKind::Simulated)
}

/// Like [`run`], but with an explicit transport backend carrying the publish
/// stream (the simulated default leaves the run byte-identical to [`run`]).
pub fn run_on(
    kind: ImplKind,
    nprocs: usize,
    p: &MixedParams,
    transport: TransportKind,
) -> (RunResult, bool) {
    assert!(
        kind.model() != Model::Ec,
        "the mixed workload is barriers-and-locks only (LRC family)"
    );
    assert!(
        nprocs * CHUNK <= WPP,
        "processor chunks must fit in one falsely-shared page"
    );
    let p = p.clone();
    let mut cfg = DsmConfig::with_procs(kind, nprocs);
    cfg.transport = transport;
    let mut dsm = Dsm::new(cfg).expect("valid config");
    let fs = dsm.alloc_array::<u32>("mx-false", p.pages * WPP, BlockGranularity::Word);
    let own = dsm.alloc_array::<u32>("mx-own", nprocs * p.pages * WPP, BlockGranularity::Word);
    let mig = dsm.alloc_array::<u32>("mx-mig", p.pages * WPP, BlockGranularity::Word);
    let bar = BarrierId::new(0);
    let lock = LockId::new(0);

    let result = dsm.run(|ctx| {
        let me = ctx.node();
        let n = ctx.nprocs();

        // Phase 1 — false sharing: every processor writes its own chunk of
        // every page, then (one barrier later, so the reads are data-race
        // free) checks the right-hand neighbour's chunk.
        let mut vals = vec![0u32; CHUNK];
        let mut peek = vec![0u32; CHUNK];
        for t in 0..p.iterations {
            for pg in 0..p.pages {
                for (c, v) in vals.iter_mut().enumerate() {
                    *v = aval(t, pg, me, me * CHUNK + c);
                }
                ctx.write_from(fs, pg * WPP + me * CHUNK, &vals);
            }
            ctx.barrier(bar);
            let nb = (me + 1) % n;
            for pg in 0..p.pages {
                ctx.read_into(fs, pg * WPP + nb * CHUNK, &mut peek);
                for (c, v) in peek.iter().enumerate() {
                    assert_eq!(*v, aval(t, pg, nb, nb * CHUNK + c), "stale neighbour chunk");
                }
            }
            ctx.barrier(bar);
        }

        // Phase 2 — single writer: each processor rewrites the head of its
        // own pages every window.  Nobody else ever touches them.
        let mut band = vec![0u32; OWN_WORDS];
        for t in 0..p.iterations {
            for pg in 0..p.pages {
                for (i, v) in band.iter_mut().enumerate() {
                    *v = bval(t, me, pg * WPP + i);
                }
                ctx.write_from(own, (me * p.pages + pg) * WPP, &band);
            }
            ctx.barrier(bar);
        }

        // Phase 3 — migratory data: each window, every processor in a fixed
        // round-robin order (one barrier per turn, so the turn order — and
        // with it every lock transfer and miss — is a function of the
        // program, not of thread timing) takes the exclusive lock, reads
        // every page and adds its increment to every word.
        let mut page = vec![0u32; WPP];
        for _ in 0..p.iterations {
            for turn in 0..n {
                if turn == me {
                    ctx.acquire(lock, LockMode::Exclusive);
                    for pg in 0..p.pages {
                        ctx.read_into(mig, pg * WPP, &mut page);
                        for v in page.iter_mut() {
                            *v = v.wrapping_add(me as u32 + 1);
                        }
                        ctx.write_from(mig, pg * WPP, &page);
                    }
                    ctx.release(lock);
                }
                ctx.barrier(bar);
            }
        }
    });

    let (efs, eown, emig) = expected(&p, nprocs);
    let ok = result.final_array(fs) == efs
        && result.final_array(own) == eown
        && result.final_array(mig) == emig;
    (result, ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_core::PageMode;

    #[test]
    fn every_lrc_policy_matches_the_reference() {
        let p = MixedParams::tiny();
        for kind in [
            ImplKind::lrc_diff(),
            ImplKind::hlrc_diff(),
            ImplKind::adaptive_diff(),
            ImplKind::adaptive_time(),
        ] {
            let (r, ok) = run(kind, 2, &p);
            assert!(ok, "{kind} mixed-workload output mismatch");
            assert!(r.time.as_nanos() > 0);
        }
    }

    #[test]
    fn adaptive_pins_owned_pages_and_homes_migratory_pages() {
        // 4 processors: with fewer, the migratory pages (rightly) stay
        // homeless — two writers never accumulate more than one pending
        // diff, so a home would not pay off.
        let p = MixedParams::tiny();
        let (r, ok) = run(ImplKind::adaptive_diff(), 4, &p);
        assert!(ok);
        assert!(
            r.migrations
                .iter()
                .any(|m| matches!(m.mode, PageMode::Pinned(_))),
            "single-writer pages should pin: {:?}",
            r.migrations
        );
        assert!(
            r.migrations
                .iter()
                .any(|m| matches!(m.mode, PageMode::Home(_))),
            "migratory pages should be homed at the dominant writer: {:?}",
            r.migrations
        );
    }

    #[test]
    fn sharing_rows_cover_all_three_regions() {
        let p = MixedParams::tiny();
        let (r, ok) = run(ImplKind::lrc_diff(), 2, &p);
        assert!(ok);
        let names: Vec<&str> = r.sharing.iter().map(|s| s.region.as_str()).collect();
        assert_eq!(names, ["mx-false", "mx-own", "mx-mig"]);
        assert!(r.sharing.iter().all(|s| s.publishes > 0));
        assert_eq!(r.traffic.sharing.max_region_writers, 2);
    }

    #[test]
    #[should_panic(expected = "LRC family")]
    fn ec_is_rejected() {
        run(ImplKind::ec_diff(), 2, &MixedParams::tiny());
    }
}
