//! A uniform entry point over the application suite, used by the benchmark
//! harness, the examples and the integration tests.

use std::fmt;

use dsm_core::{
    CostModel, FaultPlan, ImplKind, RecoveryReport, SimTime, TransportKind, TransportReport,
};
use dsm_sim::{ClusterStats, RegionSharing, TrafficReport};

use crate::params::{AppParams, Scale};
use crate::{barnes_hut, fft, is, quicksort, sor, water};

/// The applications of the study (Table 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// Red-Black Successive Over-Relaxation.
    Sor,
    /// SOR with only the boundary rows shared.
    SorPlus,
    /// Task-queue Quicksort.
    Quicksort,
    /// Water molecular dynamics.
    Water,
    /// Barnes-Hut N-body simulation.
    BarnesHut,
    /// NAS Integer Sort.
    IntegerSort,
    /// NAS 3D-FFT.
    Fft3d,
}

impl App {
    /// All applications in the order the paper's tables list them.
    pub const ALL: [App; 7] = [
        App::Sor,
        App::SorPlus,
        App::Quicksort,
        App::Water,
        App::BarnesHut,
        App::IntegerSort,
        App::Fft3d,
    ];

    /// The name used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            App::Sor => "SOR",
            App::SorPlus => "SOR+",
            App::Quicksort => "QS",
            App::Water => "Water",
            App::BarnesHut => "Barnes-Hut",
            App::IntegerSort => "IS",
            App::Fft3d => "3D-FFT",
        }
    }
}

impl fmt::Display for App {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Optional knobs for an application run beyond implementation, scale and
/// processor count.
///
/// The default (`RunOpts::default()`) is the simulated transport with no
/// fault plan, which leaves every run byte-identical to the plain
/// [`run_app`] path.
#[derive(Debug, Clone, Default)]
pub struct RunOpts {
    /// Transport backend carrying the publish stream.
    pub transport: TransportKind,
    /// Deterministic crash-injection plan (see `DESIGN.md` §8); recovery
    /// statistics come back in [`AppReport::recovery`].
    pub fault: FaultPlan,
}

impl RunOpts {
    /// Options selecting only a transport backend (no fault plan).
    pub fn on(transport: TransportKind) -> Self {
        RunOpts {
            transport,
            fault: FaultPlan::None,
        }
    }
}

/// The outcome of one application run under one implementation.
#[derive(Debug, Clone)]
pub struct AppReport {
    /// Which application ran.
    pub app: App,
    /// Which implementation ran it.
    pub kind: ImplKind,
    /// Number of simulated processors.
    pub nprocs: usize,
    /// Simulated parallel execution time.
    pub time: SimTime,
    /// Simulated single-processor time of the sequential program.
    pub seq_time: SimTime,
    /// Traffic statistics (messages, bytes, misses, ...).
    pub traffic: TrafficReport,
    /// Per-region page-sharing aggregates (publishes, misses, diff bytes,
    /// distinct writers) — the adaptive policy's decision inputs, surfaced
    /// for the bench bins' JSON rows.  Empty under the EC engines, which
    /// track sharing per bound object rather than per page.
    pub sharing: Vec<RegionSharing>,
    /// Full per-node statistics.
    pub stats: ClusterStats,
    /// Whether the parallel output matched the sequential version.
    pub verified: bool,
    /// Transport-backend report: the FNV-1a fingerprint of the final shared
    /// memory contents and, for the channel/socket backends, how many replicas
    /// independently reconstructed those contents from the publish stream.
    pub wire: TransportReport,
    /// Checkpoint/recovery statistics (all zero unless a
    /// [`FaultPlan`] was armed via [`RunOpts::fault`]).
    pub recovery: RecoveryReport,
}

impl AppReport {
    /// Speedup over the sequential version.
    pub fn speedup(&self) -> f64 {
        if self.time.as_nanos() == 0 {
            return 0.0;
        }
        self.seq_time.as_secs_f64() / self.time.as_secs_f64()
    }
}

/// Simulated single-processor execution time of the sequential version of an
/// application at the given scale.
pub fn sequential_time(app: App, scale: Scale, cost: &CostModel) -> SimTime {
    let p = AppParams::at(scale);
    match app {
        App::Sor | App::SorPlus => sor::sequential_time(&p.sor, cost),
        App::Quicksort => quicksort::sequential_time(&p.quicksort, cost),
        App::Water => water::sequential_time(&p.water, cost),
        App::BarnesHut => barnes_hut::sequential_time(&p.barnes, cost),
        App::IntegerSort => is::sequential_time(&p.is, cost),
        App::Fft3d => fft::sequential_time(&p.fft, cost),
    }
}

/// Runs one application under one implementation at the given scale and
/// processor count, over the default simulated transport.
pub fn run_app(app: App, kind: ImplKind, nprocs: usize, scale: Scale) -> AppReport {
    run_app_on(app, kind, nprocs, scale, TransportKind::Simulated)
}

/// Like [`run_app`], but with an explicit transport backend carrying the
/// publish stream.  The simulated default leaves the run byte-identical to
/// [`run_app`]; the channel and socket backends additionally replicate the
/// final memory contents on real threads or sockets and verify them against
/// the engines' master copies (see `AppReport::wire`).
pub fn run_app_on(
    app: App,
    kind: ImplKind,
    nprocs: usize,
    scale: Scale,
    transport: TransportKind,
) -> AppReport {
    run_app_opts(app, kind, nprocs, scale, RunOpts::on(transport))
}

/// Like [`run_app_on`], but with the full option set — in particular a
/// [`FaultPlan`] that kills one node at a chosen barrier and recovers it
/// from its last checkpoint (the crash/checkpoint/recover subsystem of
/// `DESIGN.md` §8).  With `RunOpts::default()` this is exactly [`run_app`].
pub fn run_app_opts(
    app: App,
    kind: ImplKind,
    nprocs: usize,
    scale: Scale,
    opts: RunOpts,
) -> AppReport {
    let p = AppParams::at(scale);
    let cost = dsm_core::DsmConfig::paper(kind).cost;
    let seq_time = sequential_time(app, scale, &cost);
    let (result, verified) = match app {
        App::Sor => sor::run_opts(kind, nprocs, &p.sor, false, opts),
        App::SorPlus => sor::run_opts(kind, nprocs, &p.sor, true, opts),
        App::Quicksort => quicksort::run_opts(kind, nprocs, &p.quicksort, opts),
        App::Water => water::run_opts(kind, nprocs, &p.water, opts),
        App::BarnesHut => barnes_hut::run_opts(kind, nprocs, &p.barnes, opts),
        App::IntegerSort => is::run_opts(kind, nprocs, &p.is, opts),
        App::Fft3d => fft::run_opts(kind, nprocs, &p.fft, opts),
    };
    AppReport {
        app,
        kind,
        nprocs,
        time: result.time,
        seq_time,
        traffic: result.traffic,
        sharing: result.sharing,
        stats: result.stats,
        verified,
        wire: result.wire,
        recovery: result.recovery,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_names_match_the_paper() {
        let names: Vec<&str> = App::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec!["SOR", "SOR+", "QS", "Water", "Barnes-Hut", "IS", "3D-FFT"]
        );
    }

    #[test]
    fn run_app_produces_a_verified_report() {
        let report = run_app(App::IntegerSort, ImplKind::lrc_diff(), 2, Scale::Tiny);
        assert!(report.verified);
        assert!(report.time.as_nanos() > 0);
        assert!(report.seq_time.as_nanos() > 0);
        assert!(report.speedup() > 0.0);
        assert!(report.traffic.messages > 0);
    }

    #[test]
    fn sequential_times_are_positive_for_every_app() {
        let cost = dsm_sim::CostModel::atm_lan_1996();
        for app in App::ALL {
            assert!(
                sequential_time(app, Scale::Tiny, &cost).as_nanos() > 0,
                "{app}"
            );
        }
    }
}
