//! Water: a molecular-dynamics simulation (SPLASH), simplified to the
//! sharing structure the paper analyses.
//!
//! Molecules are distributed evenly over the processors.  Each timestep has a
//! **force computation phase** — every processor computes pairwise
//! interactions between its molecules and the molecules of half of the other
//! processors, accumulating force contributions in private memory and then
//! applying them to the shared per-molecule force records under per-molecule
//! locks (migratory data) — and a **displacement computation phase**, where
//! each processor updates the positions of its own molecules from their
//! forces.  Barriers separate the phases.
//!
//! * LRC version: per-molecule exclusive locks only for the force updates;
//!   barriers provide all other ordering.
//! * EC version: additionally, per-molecule *read-only* locks on the
//!   displacements read during the force phase and on the forces read during
//!   the displacement phase (Section 3.3).
//! * Restructured version (Section 7.2): displacements and forces live in two
//!   separate arrays and a *per-processor* lock is bound to the contiguous
//!   block of displacements owned by each processor, giving EC a prefetch
//!   effect comparable to LRC's.

use dsm_core::{
    BarrierId, BlockGranularity, Dsm, DsmConfig, ImplKind, LockId, LockMode, Model, ProcessContext,
    RunResult, SharedArray, TransportKind,
};
use dsm_sim::Work;

/// Number of `f64` slots in a molecule's displacement (position) record:
/// three atoms with three coordinates each.
pub const POS_SLOTS: usize = 9;
/// Number of `f64` slots in a molecule's force record.
pub const FORCE_SLOTS: usize = 9;
/// Number of `f64` slots per molecule record (positions, forces, velocities).
pub const MOL_SLOTS: usize = POS_SLOTS + FORCE_SLOTS + 9;

/// Water problem parameters.
#[derive(Debug, Clone)]
pub struct WaterParams {
    /// Number of molecules (the paper uses 343).
    pub molecules: usize,
    /// Timesteps (the paper uses 5).
    pub steps: usize,
    /// Work units charged per pairwise interaction.
    pub work_per_pair: u64,
    /// Interaction cutoff: molecule `i` interacts with the next
    /// `molecules / 2` molecules in a circular order, as in SPLASH Water.
    pub half_range: bool,
    /// Use the restructured layout of Section 7.2 (separate displacement and
    /// force arrays with per-processor displacement locks).
    pub restructured: bool,
}

impl WaterParams {
    /// Table 2 parameters: 343 molecules, 5 timesteps.
    pub fn paper() -> Self {
        WaterParams {
            molecules: 343,
            steps: 5,
            work_per_pair: 1000,
            half_range: true,
            restructured: false,
        }
    }

    /// A reduced instance.
    pub fn small() -> Self {
        WaterParams {
            molecules: 125,
            steps: 3,
            work_per_pair: 1000,
            half_range: true,
            restructured: false,
        }
    }

    /// A very small instance for tests.
    pub fn tiny() -> Self {
        WaterParams {
            molecules: 27,
            steps: 2,
            work_per_pair: 1000,
            half_range: true,
            restructured: false,
        }
    }

    /// The same parameters with the restructured data layout.
    pub fn restructured(mut self) -> Self {
        self.restructured = true;
        self
    }

    fn partners(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        let n = self.molecules;
        let count = if self.half_range { n / 2 } else { n - 1 };
        (1..=count).map(move |d| (i + d) % n)
    }

    fn initial_pos(&self, m: usize, slot: usize) -> f64 {
        // Deterministic pseudo-random positions in a cube.
        let x = (m as u64 * 9 + slot as u64)
            .wrapping_mul(0xA24B_AED4_963E_E407)
            .rotate_left(23);
        (x % 1000) as f64 / 100.0
    }
}

/// Plain-Rust model of the computation, shared by the sequential version and
/// by the verification step.
#[derive(Debug, Clone)]
pub struct WaterState {
    /// Per-molecule positions (9 slots each).
    pub pos: Vec<f64>,
    /// Per-molecule forces (9 slots each).
    pub force: Vec<f64>,
}

/// Runs the sequential version and returns the final state plus the work.
pub fn sequential(p: &WaterParams) -> (WaterState, Work) {
    let n = p.molecules;
    let mut st = WaterState {
        pos: (0..n * POS_SLOTS)
            .map(|k| p.initial_pos(k / POS_SLOTS, k % POS_SLOTS))
            .collect(),
        force: vec![0.0; n * FORCE_SLOTS],
    };
    let mut work = Work::ZERO;
    for _ in 0..p.steps {
        // Force phase.
        st.force.iter_mut().for_each(|f| *f = 0.0);
        for i in 0..n {
            for j in p.partners(i) {
                for s in 0..3 {
                    let a = st.pos[i * POS_SLOTS + s];
                    let b = st.pos[j * POS_SLOTS + s];
                    let d = a - b;
                    let f = d / (1.0 + d * d);
                    st.force[i * FORCE_SLOTS + s] += f;
                    st.force[j * FORCE_SLOTS + s] -= f;
                }
                work += Work::flops(p.work_per_pair);
            }
        }
        // Displacement phase.
        for i in 0..n {
            for s in 0..3 {
                st.pos[i * POS_SLOTS + s] += 0.01 * st.force[i * FORCE_SLOTS + s];
            }
            work += Work::flops(50);
        }
    }
    (st, work)
}

fn owner(n: usize, nprocs: usize, molecule: usize) -> usize {
    (molecule * nprocs) / n
}

fn my_molecules(n: usize, nprocs: usize, me: usize) -> std::ops::Range<usize> {
    let lo = (0..n).find(|&m| owner(n, nprocs, m) == me).unwrap_or(n);
    let hi = (lo..n).find(|&m| owner(n, nprocs, m) != me).unwrap_or(n);
    lo..hi
}

/// Lock id of molecule `m`'s displacement record.
fn pos_lock(m: usize) -> LockId {
    LockId::new((2 * m) as u32)
}

/// Lock id of molecule `m`'s force record.
fn force_lock(m: usize) -> LockId {
    LockId::new((2 * m + 1) as u32)
}

/// Lock id of processor `p`'s displacement block (restructured layout).
fn proc_pos_lock(n_molecules: usize, p: usize) -> LockId {
    LockId::new((2 * n_molecules + p) as u32)
}

struct Layout {
    mol: SharedArray<f64>,
    pos_region: SharedArray<f64>,
    force_region: SharedArray<f64>,
    restructured: bool,
}

impl Layout {
    fn pos_index(&self, m: usize, s: usize) -> (SharedArray<f64>, usize) {
        if self.restructured {
            (self.pos_region, m * POS_SLOTS + s)
        } else {
            (self.mol, m * MOL_SLOTS + s)
        }
    }

    fn force_index(&self, m: usize, s: usize) -> (SharedArray<f64>, usize) {
        if self.restructured {
            (self.force_region, m * FORCE_SLOTS + s)
        } else {
            (self.mol, m * MOL_SLOTS + POS_SLOTS + s)
        }
    }

    fn read_pos(&self, ctx: &mut ProcessContext<'_>, m: usize, s: usize) -> f64 {
        let (r, i) = self.pos_index(m, s);
        ctx.get(r, i)
    }

    fn write_pos(&self, ctx: &mut ProcessContext<'_>, m: usize, s: usize, v: f64) {
        let (r, i) = self.pos_index(m, s);
        ctx.set(r, i, v);
    }

    fn read_force(&self, ctx: &mut ProcessContext<'_>, m: usize, s: usize) -> f64 {
        let (r, i) = self.force_index(m, s);
        ctx.get(r, i)
    }

    fn write_force(&self, ctx: &mut ProcessContext<'_>, m: usize, s: usize, v: f64) {
        let (r, i) = self.force_index(m, s);
        ctx.set(r, i, v);
    }
}

/// Runs Water under the given implementation.  Returns the run result and
/// whether the final positions match the sequential version within a small
/// relative tolerance (force contributions are summed in a different order in
/// parallel).
pub fn run(kind: ImplKind, nprocs: usize, p: &WaterParams) -> (RunResult, bool) {
    run_on(kind, nprocs, p, TransportKind::Simulated)
}

/// Like [`run`], but with an explicit transport backend carrying the publish
/// stream (the simulated default leaves the run byte-identical to [`run`]).
pub fn run_on(
    kind: ImplKind,
    nprocs: usize,
    p: &WaterParams,
    transport: TransportKind,
) -> (RunResult, bool) {
    run_opts(kind, nprocs, p, crate::runner::RunOpts::on(transport))
}

/// Like [`run_on`], but with the full option set, including a fault plan
/// for crash-injection/recovery runs.
pub fn run_opts(
    kind: ImplKind,
    nprocs: usize,
    p: &WaterParams,
    opts: crate::runner::RunOpts,
) -> (RunResult, bool) {
    let p = p.clone();
    let n = p.molecules;
    let mut cfg = DsmConfig::with_procs(kind, nprocs);
    cfg.transport = opts.transport;
    cfg.fault = opts.fault;
    let mut dsm = Dsm::new(cfg).expect("valid config");

    let (mol, pos_region, force_region) = if p.restructured {
        let pos = dsm.alloc_array::<f64>("water-pos", n * POS_SLOTS, BlockGranularity::DoubleWord);
        let force =
            dsm.alloc_array::<f64>("water-force", n * FORCE_SLOTS, BlockGranularity::DoubleWord);
        let mol = dsm.alloc_array::<f64>("water-unused", 1, BlockGranularity::DoubleWord);
        (mol, pos, force)
    } else {
        let mol = dsm.alloc_array::<f64>("water-mol", n * MOL_SLOTS, BlockGranularity::DoubleWord);
        let pos = dsm.alloc_array::<f64>("water-unused-a", 1, BlockGranularity::DoubleWord);
        let force = dsm.alloc_array::<f64>("water-unused-b", 1, BlockGranularity::DoubleWord);
        (mol, pos, force)
    };
    let layout = Layout {
        mol,
        pos_region,
        force_region,
        restructured: p.restructured,
    };

    // Initial positions.
    if p.restructured {
        dsm.init_array(pos_region, |k| p.initial_pos(k / POS_SLOTS, k % POS_SLOTS));
    } else {
        dsm.init_array(mol, |k| {
            let (m, s) = (k / MOL_SLOTS, k % MOL_SLOTS);
            if s < POS_SLOTS {
                p.initial_pos(m, s)
            } else {
                0.0
            }
        });
    }

    // EC bindings.
    if kind.model() == Model::Ec {
        for m in 0..n {
            let (pr, pi) = layout.pos_index(m, 0);
            let (fr, fi) = layout.force_index(m, 0);
            dsm.bind(pos_lock(m), [pr.range(pi, POS_SLOTS)]);
            dsm.bind(force_lock(m), [fr.range(fi, FORCE_SLOTS)]);
        }
        if p.restructured {
            for proc in 0..nprocs {
                let mine = my_molecules(n, nprocs, proc);
                if mine.is_empty() {
                    continue;
                }
                let (pr, pi) = layout.pos_index(mine.start, 0);
                dsm.bind(
                    proc_pos_lock(n, proc),
                    [pr.range(pi, mine.len() * POS_SLOTS)],
                );
            }
        }
    }

    let ec = kind.model() == Model::Ec;
    let barrier = BarrierId::new(0);

    let result = dsm.run(|ctx| {
        let me = ctx.node();
        let nproc = ctx.nprocs();
        let mine = my_molecules(n, nproc, me);

        for _step in 0..p.steps {
            // Zero the forces of our own molecules (they were consumed in the
            // previous displacement phase).  EC annotates the writes with the
            // molecule's force lock; under LRC the guard holds nothing.
            for m in mine.clone() {
                let mut g = ctx.lock_if(ec, force_lock(m), LockMode::Exclusive);
                for s in 0..FORCE_SLOTS {
                    layout.write_force(&mut g, m, s, 0.0);
                }
            }
            ctx.barrier(barrier);

            // Force phase: accumulate contributions privately.
            let mut acc: Vec<f64> = vec![0.0; n * 3];
            let mut pos_cache: Vec<Option<[f64; 3]>> = vec![None; n];
            let mut fetched_proc = vec![false; nproc];
            for i in mine.clone() {
                for j in p.partners(i) {
                    // Read the displacements of both molecules, caching them
                    // for the rest of the phase.
                    for &m in &[i, j] {
                        if pos_cache[m].is_none() {
                            let foreign = !mine.contains(&m);
                            if ec && foreign && p.restructured {
                                let own = owner(n, nproc, m);
                                if !fetched_proc[own] {
                                    // One per-processor read-lock pulse
                                    // fetches every displacement that
                                    // processor produced (the prefetch
                                    // effect).
                                    ctx.lock(proc_pos_lock(n, own), LockMode::ReadOnly).unlock();
                                    fetched_proc[own] = true;
                                }
                            }
                            let mut g = ctx.lock_if(
                                ec && foreign && !p.restructured,
                                pos_lock(m),
                                LockMode::ReadOnly,
                            );
                            let v = [
                                layout.read_pos(&mut g, m, 0),
                                layout.read_pos(&mut g, m, 1),
                                layout.read_pos(&mut g, m, 2),
                            ];
                            drop(g);
                            pos_cache[m] = Some(v);
                        }
                    }
                    let pi = pos_cache[i].expect("cached");
                    let pj = pos_cache[j].expect("cached");
                    for s in 0..3 {
                        let d = pi[s] - pj[s];
                        let f = d / (1.0 + d * d);
                        acc[i * 3 + s] += f;
                        acc[j * 3 + s] -= f;
                    }
                    ctx.compute(Work::flops(p.work_per_pair));
                }
            }
            // Apply the accumulated updates under per-molecule locks
            // (migratory force records).
            for m in 0..n {
                let touched = (0..3).any(|s| acc[m * 3 + s] != 0.0);
                if !touched {
                    continue;
                }
                let mut g = ctx.lock(force_lock(m), LockMode::Exclusive);
                for s in 0..3 {
                    let cur = layout.read_force(&mut g, m, s);
                    layout.write_force(&mut g, m, s, cur + acc[m * 3 + s]);
                }
            }
            ctx.barrier(barrier);

            // Displacement phase: each processor updates its own molecules.
            // The restructured layout holds one per-processor displacement
            // lock across the loop; per-molecule guards nest inside it and
            // the borrow checker enforces the LIFO release order.
            let mut gproc = ctx.lock_if(
                ec && p.restructured,
                proc_pos_lock(n, me),
                LockMode::Exclusive,
            );
            for m in mine.clone() {
                let mut gforce = gproc.lock_if(ec, force_lock(m), LockMode::ReadOnly);
                let mut gpos =
                    gforce.lock_if(ec && !p.restructured, pos_lock(m), LockMode::Exclusive);
                for s in 0..3 {
                    let f = layout.read_force(&mut gpos, m, s);
                    let cur = layout.read_pos(&mut gpos, m, s);
                    layout.write_pos(&mut gpos, m, s, cur + 0.01 * f);
                }
                gpos.compute(Work::flops(50));
            }
            drop(gproc);
            ctx.barrier(barrier);
        }
    });

    // Verify against the sequential version.
    let (expected, _) = sequential(&p);
    let ok = (0..n).all(|m| {
        (0..3).all(|s| {
            let (r, i) = layout.pos_index(m, s);
            let got = result.final_at(r, i);
            let want = expected.pos[m * POS_SLOTS + s];
            (got - want).abs() <= 1e-6 * want.abs().max(1.0)
        })
    });
    (result, ok)
}

/// Simulated single-processor execution time of the sequential program.
pub fn sequential_time(p: &WaterParams, cost: &dsm_sim::CostModel) -> dsm_sim::SimTime {
    let (_, work) = sequential(p);
    cost.work(work)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_partitions_molecules() {
        let n = 343;
        let mut count = 0;
        for me in 0..8 {
            let r = my_molecules(n, 8, me);
            count += r.len();
            for m in r {
                assert_eq!(owner(n, 8, m), me);
            }
        }
        assert_eq!(count, n);
    }

    #[test]
    fn sequential_moves_molecules() {
        let p = WaterParams::tiny();
        let (st, work) = sequential(&p);
        assert!(work.units() > 0);
        let moved = (0..p.molecules)
            .filter(|&m| (st.pos[m * POS_SLOTS] - p.initial_pos(m, 0)).abs() > 1e-12)
            .count();
        assert!(moved > p.molecules / 2);
    }

    #[test]
    fn parallel_matches_sequential() {
        let p = WaterParams::tiny();
        for kind in [ImplKind::lrc_diff(), ImplKind::ec_ci(), ImplKind::ec_time()] {
            let (result, ok) = run(kind, 3, &p);
            assert!(ok, "{kind} water positions mismatch");
            assert!(result.traffic.lock_acquires > 0);
        }
    }

    #[test]
    fn restructured_layout_matches_sequential_too() {
        let p = WaterParams::tiny().restructured();
        let (_, ok) = run(ImplKind::ec_ci(), 3, &p);
        assert!(ok, "restructured EC water mismatch");
        let (_, ok) = run(ImplKind::lrc_diff(), 3, &p);
        assert!(ok, "restructured LRC water mismatch");
    }
}
