//! Barnes-Hut: hierarchical N-body simulation (SPLASH).
//!
//! Space is represented by an oct-tree whose internal nodes (cells) carry
//! centre-of-mass summaries and whose leaves are bodies.  Each timestep the
//! tree is rebuilt, every processor selects the bodies it will own this step
//! (the load-balancing phase), computes forces on them by traversing the tree
//! with the theta opening criterion (the force-computation phase), and
//! advances their positions (the position-computation phase).  Barriers
//! separate the phases; within a phase at most one processor updates any data
//! item, so the LRC program needs no locks at all.
//!
//! * LRC version: barriers only; traversal reads fault page by page and pick
//!   up every cell/body on the page (the prefetch effect) but also drag in
//!   data the processor never reads (false sharing).
//! * EC version: the whole cell structure is bound to one tree lock (rebuilt
//!   by processor 0, pulled with a read-only acquire by everyone else), each
//!   body's position fields and state fields are bound to two separate
//!   per-body locks (the split that avoids nested-lock deadlock, Section
//!   3.3), and foreign body positions are fetched with read-only locks during
//!   the traversal phases.

use dsm_core::{
    BarrierId, BlockGranularity, Dsm, DsmConfig, ImplKind, LockId, LockMode, Model, ProcessContext,
    RunResult, SharedArray, TransportKind,
};
use dsm_sim::Work;

/// `f64` slots per body: position (3), mass, velocity (3), force (3), padding.
pub const BODY_SLOTS: usize = 12;
/// `f64` slots per cell: centre of mass (3), mass, size, padding.
pub const CELL_F_SLOTS: usize = 6;
/// Child slots per cell.
pub const CELL_CHILDREN: usize = 8;

/// Barnes-Hut problem parameters.
#[derive(Debug, Clone)]
pub struct BarnesParams {
    /// Number of bodies (the paper uses 8,192).
    pub bodies: usize,
    /// Timesteps (the paper uses 5).
    pub steps: usize,
    /// Opening criterion theta.
    pub theta: f64,
    /// Integration timestep.
    pub dt: f64,
    /// Work units charged per body-cell interaction during force computation.
    pub work_per_interaction: u64,
}

impl BarnesParams {
    /// Table 2 parameters: 8,192 bodies, 5 timesteps.
    pub fn paper() -> Self {
        BarnesParams {
            bodies: 8192,
            steps: 5,
            theta: 0.6,
            dt: 0.025,
            work_per_interaction: 60,
        }
    }

    /// A reduced instance.
    pub fn small() -> Self {
        BarnesParams {
            bodies: 1024,
            steps: 3,
            theta: 0.6,
            dt: 0.025,
            work_per_interaction: 60,
        }
    }

    /// A very small instance for tests.
    pub fn tiny() -> Self {
        BarnesParams {
            bodies: 96,
            steps: 2,
            theta: 0.6,
            dt: 0.025,
            work_per_interaction: 60,
        }
    }

    /// Deterministic pseudo-random initial coordinate `axis` of body `b`.
    fn initial_pos(&self, b: usize, axis: usize) -> f64 {
        let x = (b as u64 * 3 + axis as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(31);
        (x % 100_000) as f64 / 100_000.0
    }

    fn initial_mass(&self, b: usize) -> f64 {
        1.0 + (b % 7) as f64 * 0.1
    }

    fn max_cells(&self) -> usize {
        self.bodies * 2 + 64
    }
}

/// A plain-Rust oct-tree used by the sequential version and by processor 0 to
/// build the shared tree.
#[derive(Debug, Clone, Default)]
struct Cell {
    com: [f64; 3],
    mass: f64,
    size: f64,
    centre: [f64; 3],
    children: [i64; CELL_CHILDREN], // 0 = empty, >0 = cell idx + 1, <0 = -(body+1)
}

#[derive(Debug, Default)]
struct Tree {
    cells: Vec<Cell>,
}

impl Tree {
    fn build(pos: &[[f64; 3]], mass: &[f64]) -> (Tree, Work) {
        let n = pos.len();
        let mut lo = [f64::MAX; 3];
        let mut hi = [f64::MIN; 3];
        for p in pos {
            for a in 0..3 {
                lo[a] = lo[a].min(p[a]);
                hi[a] = hi[a].max(p[a]);
            }
        }
        let size = (0..3).map(|a| hi[a] - lo[a]).fold(1e-9_f64, f64::max) * 1.001;
        let centre = [
            (lo[0] + hi[0]) / 2.0,
            (lo[1] + hi[1]) / 2.0,
            (lo[2] + hi[2]) / 2.0,
        ];
        let mut t = Tree {
            cells: vec![Cell {
                size,
                centre,
                ..Cell::default()
            }],
        };
        let mut work = 0u64;
        for b in 0..n {
            work += t.insert(0, b, pos, 20);
        }
        t.summarise(0, pos, mass);
        (t, Work::ops(work))
    }

    fn octant(cell: &Cell, p: &[f64; 3]) -> usize {
        (0..3).fold(0, |acc, a| acc | (usize::from(p[a] > cell.centre[a]) << a))
    }

    fn child_centre(cell: &Cell, oct: usize) -> ([f64; 3], f64) {
        let q = cell.size / 4.0;
        let mut c = cell.centre;
        for (a, v) in c.iter_mut().enumerate() {
            *v += if oct & (1 << a) != 0 { q } else { -q };
        }
        (c, cell.size / 2.0)
    }

    fn insert(&mut self, cell: usize, body: usize, pos: &[[f64; 3]], work_per_level: u64) -> u64 {
        let oct = Self::octant(&self.cells[cell], &pos[body]);
        match self.cells[cell].children[oct] {
            0 => {
                self.cells[cell].children[oct] = -(body as i64 + 1);
                work_per_level
            }
            c if c > 0 => work_per_level + self.insert(c as usize - 1, body, pos, work_per_level),
            other => {
                // Split: replace the body leaf with a new cell holding both.
                let existing = (-other - 1) as usize;
                let (centre, size) = Self::child_centre(&self.cells[cell], oct);
                let new_idx = self.cells.len();
                self.cells.push(Cell {
                    centre,
                    size,
                    ..Cell::default()
                });
                self.cells[cell].children[oct] = new_idx as i64 + 1;
                let mut w = work_per_level;
                w += self.insert(new_idx, existing, pos, work_per_level);
                w += self.insert(new_idx, body, pos, work_per_level);
                w
            }
        }
    }

    fn summarise(&mut self, cell: usize, pos: &[[f64; 3]], mass: &[f64]) -> (f64, [f64; 3]) {
        let children = self.cells[cell].children;
        let mut m = 0.0;
        let mut com = [0.0; 3];
        for c in children {
            let (cm, ccom) = match c {
                0 => continue,
                c if c > 0 => self.summarise(c as usize - 1, pos, mass),
                other => {
                    let b = (-other - 1) as usize;
                    (mass[b], pos[b])
                }
            };
            m += cm;
            for a in 0..3 {
                com[a] += cm * ccom[a];
            }
        }
        if m > 0.0 {
            for v in &mut com {
                *v /= m;
            }
        }
        self.cells[cell].mass = m;
        self.cells[cell].com = com;
        (m, com)
    }
}

/// Force on body `b` from the tree, counting interactions.
fn force_on(
    tree: &Tree,
    cell: usize,
    b: usize,
    pos: &[[f64; 3]],
    mass: &[f64],
    theta: f64,
    interactions: &mut u64,
) -> [f64; 3] {
    let mut f = [0.0; 3];
    let c = &tree.cells[cell];
    for child in c.children {
        match child {
            0 => {}
            ch if ch > 0 => {
                let ci = ch as usize - 1;
                let cc = &tree.cells[ci];
                let d = dist(&pos[b], &cc.com);
                if cc.size / d < theta {
                    *interactions += 1;
                    add_grav(&mut f, &pos[b], &cc.com, cc.mass, d);
                } else {
                    let sub = force_on(tree, ci, b, pos, mass, theta, interactions);
                    for a in 0..3 {
                        f[a] += sub[a];
                    }
                }
            }
            other => {
                let ob = (-other - 1) as usize;
                if ob != b {
                    *interactions += 1;
                    let d = dist(&pos[b], &pos[ob]);
                    add_grav(&mut f, &pos[b], &pos[ob], mass[ob], d);
                }
            }
        }
    }
    f
}

fn dist(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt() + 1e-9
}

fn add_grav(f: &mut [f64; 3], p: &[f64; 3], q: &[f64; 3], m: f64, d: f64) {
    let inv = m / (d * d * d + 1e-9);
    for a in 0..3 {
        f[a] += (q[a] - p[a]) * inv;
    }
}

/// Sequential simulation: returns final positions and total work.
pub fn sequential(p: &BarnesParams) -> (Vec<[f64; 3]>, Work) {
    let n = p.bodies;
    let mut pos: Vec<[f64; 3]> = (0..n)
        .map(|b| {
            [
                p.initial_pos(b, 0),
                p.initial_pos(b, 1),
                p.initial_pos(b, 2),
            ]
        })
        .collect();
    let mass: Vec<f64> = (0..n).map(|b| p.initial_mass(b)).collect();
    let mut vel = vec![[0.0f64; 3]; n];
    let mut work = Work::ZERO;
    for _ in 0..p.steps {
        let (tree, w) = Tree::build(&pos, &mass);
        work += w;
        let mut forces = vec![[0.0f64; 3]; n];
        for (b, fb) in forces.iter_mut().enumerate() {
            let mut inter = 0u64;
            *fb = force_on(&tree, 0, b, &pos, &mass, p.theta, &mut inter);
            work += Work::flops(inter * p.work_per_interaction);
        }
        for b in 0..n {
            for a in 0..3 {
                vel[b][a] += forces[b][a] * p.dt / mass[b];
                pos[b][a] += vel[b][a] * p.dt;
            }
            work += Work::flops(20);
        }
    }
    (pos, work)
}

const TREE_LOCK: LockId = LockId(0);

fn body_pos_lock(b: usize) -> LockId {
    LockId::new((1 + 2 * b) as u32)
}

fn body_state_lock(b: usize) -> LockId {
    LockId::new((2 + 2 * b) as u32)
}

/// Slot index of body `b`'s field `s` in the bodies region.
fn body_slot(b: usize, s: usize) -> usize {
    b * BODY_SLOTS + s
}

struct SharedTree {
    cells_f: SharedArray<f64>,
    cells_c: SharedArray<i32>,
    meta: SharedArray<u32>,
}

impl SharedTree {
    /// Writes the locally built tree into the shared regions.
    fn store(&self, ctx: &mut ProcessContext<'_>, tree: &Tree) {
        ctx.set(self.meta, 0, tree.cells.len() as u32);
        for (i, c) in tree.cells.iter().enumerate() {
            ctx.set(self.cells_f, i * CELL_F_SLOTS, c.com[0]);
            ctx.set(self.cells_f, i * CELL_F_SLOTS + 1, c.com[1]);
            ctx.set(self.cells_f, i * CELL_F_SLOTS + 2, c.com[2]);
            ctx.set(self.cells_f, i * CELL_F_SLOTS + 3, c.mass);
            ctx.set(self.cells_f, i * CELL_F_SLOTS + 4, c.size);
            for (k, ch) in c.children.iter().enumerate() {
                ctx.set(self.cells_c, i * CELL_CHILDREN + k, *ch as i32);
            }
        }
    }

    /// Reads the shared tree back into a private structure (used by the
    /// traversal phases; every read goes through the DSM).
    fn load(&self, ctx: &mut ProcessContext<'_>) -> Tree {
        let ncells = ctx.get(self.meta, 0) as usize;
        let mut cells = Vec::with_capacity(ncells);
        for i in 0..ncells {
            let mut c = Cell {
                com: [
                    ctx.get(self.cells_f, i * CELL_F_SLOTS),
                    ctx.get(self.cells_f, i * CELL_F_SLOTS + 1),
                    ctx.get(self.cells_f, i * CELL_F_SLOTS + 2),
                ],
                mass: ctx.get(self.cells_f, i * CELL_F_SLOTS + 3),
                size: ctx.get(self.cells_f, i * CELL_F_SLOTS + 4),
                ..Cell::default()
            };
            for k in 0..CELL_CHILDREN {
                c.children[k] = ctx.get(self.cells_c, i * CELL_CHILDREN + k) as i64;
            }
            cells.push(c);
        }
        Tree { cells }
    }
}

/// Runs Barnes-Hut under the given implementation.  Returns the run result
/// and whether the final positions match the sequential version.
pub fn run(kind: ImplKind, nprocs: usize, p: &BarnesParams) -> (RunResult, bool) {
    run_on(kind, nprocs, p, TransportKind::Simulated)
}

/// Like [`run`], but with an explicit transport backend carrying the publish
/// stream (the simulated default leaves the run byte-identical to [`run`]).
pub fn run_on(
    kind: ImplKind,
    nprocs: usize,
    p: &BarnesParams,
    transport: TransportKind,
) -> (RunResult, bool) {
    run_opts(kind, nprocs, p, crate::runner::RunOpts::on(transport))
}

/// Like [`run_on`], but with the full option set, including a fault plan
/// for crash-injection/recovery runs.
pub fn run_opts(
    kind: ImplKind,
    nprocs: usize,
    p: &BarnesParams,
    opts: crate::runner::RunOpts,
) -> (RunResult, bool) {
    let p = p.clone();
    let n = p.bodies;
    let mut cfg = DsmConfig::with_procs(kind, nprocs);
    cfg.transport = opts.transport;
    cfg.fault = opts.fault;
    let mut dsm = Dsm::new(cfg).expect("valid config");

    let bodies = dsm.alloc_array::<f64>("bh-bodies", n * BODY_SLOTS, BlockGranularity::DoubleWord);
    let cells_f = dsm.alloc_array::<f64>(
        "bh-cells",
        p.max_cells() * CELL_F_SLOTS,
        BlockGranularity::DoubleWord,
    );
    let cells_c = dsm.alloc_array::<i32>(
        "bh-children",
        p.max_cells() * CELL_CHILDREN,
        BlockGranularity::Word,
    );
    let meta = dsm.alloc_array::<u32>("bh-meta", 4, BlockGranularity::Word);
    dsm.init_array(bodies, |slot| {
        let (b, s) = (slot / BODY_SLOTS, slot % BODY_SLOTS);
        match s {
            0..=2 => p.initial_pos(b, s),
            3 => p.initial_mass(b),
            _ => 0.0,
        }
    });

    let ec = kind.model() == Model::Ec;
    if ec {
        dsm.bind(TREE_LOCK, [cells_f.whole(), cells_c.whole(), meta.whole()]);
        for b in 0..n {
            // Position + mass fields under one lock, velocity + force fields
            // under another (the two-set split of Section 3.3).
            dsm.bind(body_pos_lock(b), [bodies.range(body_slot(b, 0), 4)]);
            dsm.bind(body_state_lock(b), [bodies.range(body_slot(b, 4), 8)]);
        }
    }
    let shared_tree = SharedTree {
        cells_f,
        cells_c,
        meta,
    };
    let barrier = BarrierId::new(0);

    let result = dsm.run(|ctx| {
        let me = ctx.node();
        let nproc = ctx.nprocs();
        let per = n.div_ceil(nproc);
        let lo = (me * per).min(n);
        let hi = ((me + 1) * per).min(n);
        let mass: Vec<f64> = (0..n).map(|b| p.initial_mass(b)).collect();
        let mut vel = vec![[0.0f64; 3]; hi - lo];

        for _step in 0..p.steps {
            // --- Tree-build (processor 0 rebuilds the shared oct-tree). ---
            if me == 0 {
                // Read every body's position; foreign positions need
                // read-only locks under EC.
                let mut pos = vec![[0.0f64; 3]; n];
                for (b, pb) in pos.iter_mut().enumerate() {
                    let foreign = !(lo..hi).contains(&b);
                    let mut g = ctx.lock_if(ec && foreign, body_pos_lock(b), LockMode::ReadOnly);
                    for (a, pv) in pb.iter_mut().enumerate() {
                        *pv = g.get(bodies, body_slot(b, a));
                    }
                }
                let (tree, w) = Tree::build(&pos, &mass);
                ctx.compute(w);
                let mut g = ctx.lock_if(ec, TREE_LOCK, LockMode::Exclusive);
                shared_tree.store(&mut g, &tree);
            }
            ctx.barrier(barrier);

            // --- Load-balancing phase: every processor walks the tree once
            // to decide which bodies it owns this step (we keep the static
            // contiguous assignment, but the traversal reads are real). ---
            let tree = {
                let mut g = ctx.lock_if(ec, TREE_LOCK, LockMode::ReadOnly);
                let tree = shared_tree.load(&mut g);
                g.compute(Work::ops(tree.cells.len() as u64 * 5));
                tree
            };
            ctx.barrier(barrier);

            // --- Force-computation phase.  EC holds the tree's read lock
            // across the whole phase; per-body locks nest inside it through
            // the guard. ---
            let mut gtree = ctx.lock_if(ec, TREE_LOCK, LockMode::ReadOnly);
            // Body positions are read lazily, with per-body read locks under
            // EC, and cached for the rest of the phase.
            let mut pos_cache: Vec<Option<[f64; 3]>> = vec![None; n];
            let mut forces = vec![[0.0f64; 3]; hi - lo];
            for b in lo..hi {
                let mut stack = vec![0usize];
                let mut f = [0.0f64; 3];
                let mut interactions = 0u64;
                let my_pos = read_body_pos(&mut gtree, bodies, b, lo..hi, ec, &mut pos_cache);
                while let Some(ci) = stack.pop() {
                    for child in tree.cells[ci].children {
                        match child {
                            0 => {}
                            ch if ch > 0 => {
                                let cc = &tree.cells[ch as usize - 1];
                                let d = dist(&my_pos, &cc.com);
                                if cc.size / d < p.theta {
                                    interactions += 1;
                                    add_grav(&mut f, &my_pos, &cc.com, cc.mass, d);
                                } else {
                                    stack.push(ch as usize - 1);
                                }
                            }
                            other => {
                                let ob = (-other - 1) as usize;
                                if ob != b {
                                    interactions += 1;
                                    let op = read_body_pos(
                                        &mut gtree,
                                        bodies,
                                        ob,
                                        lo..hi,
                                        ec,
                                        &mut pos_cache,
                                    );
                                    let d = dist(&my_pos, &op);
                                    add_grav(&mut f, &my_pos, &op, mass[ob], d);
                                }
                            }
                        }
                    }
                }
                gtree.compute(Work::flops(interactions * p.work_per_interaction));
                forces[b - lo] = f;
            }
            // Write the forces of our own bodies (one writer per body).
            for b in lo..hi {
                let mut g = gtree.lock_if(ec, body_state_lock(b), LockMode::Exclusive);
                for (a, &f) in forces[b - lo].iter().enumerate() {
                    g.set(bodies, body_slot(b, 7 + a), f);
                }
            }
            drop(gtree);
            ctx.barrier(barrier);

            // --- Position-computation phase. ---
            for b in lo..hi {
                let mut gstate = ctx.lock_if(ec, body_state_lock(b), LockMode::Exclusive);
                let mut gpos = gstate.lock_if(ec, body_pos_lock(b), LockMode::Exclusive);
                for (a, v) in vel[b - lo].iter_mut().enumerate() {
                    let f = gpos.get(bodies, body_slot(b, 7 + a));
                    *v += f * p.dt / mass[b];
                    let cur = gpos.get(bodies, body_slot(b, a));
                    gpos.set(bodies, body_slot(b, a), cur + *v * p.dt);
                    gpos.set(bodies, body_slot(b, 4 + a), *v);
                }
                gpos.compute(Work::flops(20));
            }
            ctx.barrier(barrier);
        }
    });

    let (expected, _) = sequential(&p);
    let ok = (0..n).all(|b| {
        (0..3).all(|a| {
            let got = result.final_at(bodies, body_slot(b, a));
            (got - expected[b][a]).abs() <= 1e-6 * expected[b][a].abs().max(1.0)
        })
    });
    (result, ok)
}

/// Reads a body's position through the DSM, taking a read-only lock for
/// foreign bodies under EC, and caching the value for the rest of the phase.
fn read_body_pos(
    ctx: &mut ProcessContext<'_>,
    bodies: SharedArray<f64>,
    b: usize,
    mine: std::ops::Range<usize>,
    ec: bool,
    cache: &mut [Option<[f64; 3]>],
) -> [f64; 3] {
    if let Some(v) = cache[b] {
        return v;
    }
    let foreign = !mine.contains(&b);
    let mut g = ctx.lock_if(ec && foreign, body_pos_lock(b), LockMode::ReadOnly);
    let v = [
        g.get(bodies, body_slot(b, 0)),
        g.get(bodies, body_slot(b, 1)),
        g.get(bodies, body_slot(b, 2)),
    ];
    drop(g);
    cache[b] = Some(v);
    v
}

/// Simulated single-processor execution time of the sequential program.
pub fn sequential_time(p: &BarnesParams, cost: &dsm_sim::CostModel) -> dsm_sim::SimTime {
    let (_, work) = sequential(p);
    cost.work(work)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_build_covers_all_bodies() {
        let p = BarnesParams::tiny();
        let pos: Vec<[f64; 3]> = (0..p.bodies)
            .map(|b| {
                [
                    p.initial_pos(b, 0),
                    p.initial_pos(b, 1),
                    p.initial_pos(b, 2),
                ]
            })
            .collect();
        let mass: Vec<f64> = (0..p.bodies).map(|b| p.initial_mass(b)).collect();
        let (tree, work) = Tree::build(&pos, &mass);
        assert!(work.units() > 0);
        let total_mass: f64 = mass.iter().sum();
        assert!((tree.cells[0].mass - total_mass).abs() < 1e-9);
        assert!(tree.cells.len() < p.max_cells());
    }

    #[test]
    fn sequential_moves_bodies() {
        let p = BarnesParams::tiny();
        let (pos, work) = sequential(&p);
        assert!(work.units() > 0);
        let moved = (0..p.bodies)
            .filter(|&b| (pos[b][0] - p.initial_pos(b, 0)).abs() > 1e-12)
            .count();
        assert!(moved > p.bodies / 2);
    }

    #[test]
    fn parallel_matches_sequential() {
        let p = BarnesParams::tiny();
        for kind in [ImplKind::lrc_diff(), ImplKind::ec_time()] {
            let (result, ok) = run(kind, 2, &p);
            assert!(ok, "{kind} Barnes-Hut positions mismatch");
            assert!(result.time.as_nanos() > 0);
        }
    }
}
