//! Quicksort (QS) with a centralised task queue.
//!
//! The array to sort lives in shared memory.  A processor dequeues a
//! sub-array, partitions it around a pivot, enqueues the smaller partition
//! and keeps working on the larger one; partitions below a threshold are
//! sorted in place with bubblesort.
//!
//! * LRC version: the queue lock alone orders both the queue *and* the task
//!   data (the dequeuer sees the data the enqueuer produced).
//! * EC version: the queue lock is bound to the queue only, so the program
//!   additionally associates a lock with every queue entry and **rebinds** it
//!   to the sub-array of the task placed in that entry (Sections 3.3 and
//!   7.2); the task data is read and written under that lock.

use dsm_core::{
    BarrierId, BlockGranularity, Dsm, DsmConfig, ImplKind, LockId, LockMode, Model, RunResult,
    TransportKind,
};
use dsm_sim::Work;

/// Quicksort problem parameters.
#[derive(Debug, Clone)]
pub struct QsParams {
    /// Number of integers to sort (the paper uses 262,144).
    pub n: usize,
    /// Partitions at or below this size are bubble-sorted (the paper uses
    /// 1024).
    pub threshold: usize,
    /// Work units charged per element visited during partitioning.
    pub work_partition: u64,
    /// Work units charged per comparison during bubblesort.
    pub work_bubble: u64,
}

impl QsParams {
    /// Table 2 parameters.
    pub fn paper() -> Self {
        QsParams {
            n: 262_144,
            threshold: 1024,
            work_partition: 4,
            work_bubble: 1,
        }
    }

    /// A reduced instance.
    pub fn small() -> Self {
        QsParams {
            n: 32_768,
            threshold: 512,
            work_partition: 4,
            work_bubble: 1,
        }
    }

    /// A very small instance for tests.
    pub fn tiny() -> Self {
        QsParams {
            n: 2048,
            threshold: 128,
            work_partition: 4,
            work_bubble: 1,
        }
    }

    /// Deterministic pseudo-random initial value of element `i`.
    fn value(&self, i: usize) -> i32 {
        let x = (i as u64)
            .wrapping_mul(0xD134_2543_DE82_EF95)
            .rotate_left(29)
            .wrapping_add(0x9E37_79B9);
        (x % (self.n as u64 * 4)) as i32
    }
}

/// Sequential sort of the same input, plus the work a sequential quicksort
/// with the same threshold/bubblesort structure performs.
pub fn sequential(p: &QsParams) -> (Vec<i32>, Work) {
    let mut v: Vec<i32> = (0..p.n).map(|i| p.value(i)).collect();
    let mut work = 0u64;
    seq_qsort(&mut v, p, &mut work);
    (v, Work::ops(work))
}

fn seq_qsort(v: &mut [i32], p: &QsParams, work: &mut u64) {
    if v.len() <= p.threshold {
        *work += bubble_work(v.len(), p);
        v.sort_unstable();
        return;
    }
    let pivot = v[v.len() / 2];
    *work += v.len() as u64 * p.work_partition;
    let (mut i, mut j) = (0usize, v.len() - 1);
    loop {
        while v[i] < pivot {
            i += 1;
        }
        while v[j] > pivot {
            j -= 1;
        }
        if i >= j {
            break;
        }
        v.swap(i, j);
        i += 1;
        j = j.saturating_sub(1);
    }
    let (a, b) = v.split_at_mut(i.max(1).min(v.len() - 1));
    seq_qsort(a, p, work);
    seq_qsort(b, p, work);
}

fn bubble_work(len: usize, p: &QsParams) -> u64 {
    (len as u64 * len.saturating_sub(1) as u64 / 2) * p.work_bubble
}

/// Queue slot layout inside the shared queue region (all `u32` words):
/// `[head, tail, pending, _pad, entry0.start, entry0.len, entry1.start, ...]`.
const Q_HEAD: usize = 0;
const Q_TAIL: usize = 1;
const Q_PENDING: usize = 2;
const Q_ENTRIES: usize = 4;

const QUEUE_LOCK: LockId = LockId(0);

fn entry_lock(slot: usize) -> LockId {
    LockId::new(1 + slot as u32)
}

/// Runs Quicksort under the given implementation.  Returns the run result and
/// whether the final array is correctly sorted.
pub fn run(kind: ImplKind, nprocs: usize, p: &QsParams) -> (RunResult, bool) {
    run_on(kind, nprocs, p, TransportKind::Simulated)
}

/// Like [`run`], but with an explicit transport backend carrying the publish
/// stream (the simulated default leaves the run byte-identical to [`run`]).
pub fn run_on(
    kind: ImplKind,
    nprocs: usize,
    p: &QsParams,
    transport: TransportKind,
) -> (RunResult, bool) {
    run_opts(kind, nprocs, p, crate::runner::RunOpts::on(transport))
}

/// Like [`run_on`], but with the full option set.  Note that the task-queue
/// program is *outside* the crash-recovery determinism contract (its control
/// flow depends on lock-ordered shared reads), so a fault plan targeting
/// Quicksort is plumbed through for API uniformity but not supported by the
/// recovery equivalence guarantees (`DESIGN.md` §8).
pub fn run_opts(
    kind: ImplKind,
    nprocs: usize,
    p: &QsParams,
    opts: crate::runner::RunOpts,
) -> (RunResult, bool) {
    let p = p.clone();
    let mut cfg = DsmConfig::with_procs(kind, nprocs);
    cfg.transport = opts.transport;
    cfg.fault = opts.fault;
    let mut dsm = Dsm::new(cfg).expect("valid config");
    let array = dsm.alloc_array::<i32>("qs-array", p.n, BlockGranularity::Word);
    dsm.init_array(array, |i| p.value(i));

    // Enough queue entries for the worst case: every leaf task plus the
    // partition chain.
    let capacity = (p.n / p.threshold).max(8) * 4;
    // The queue is bound to its lock in one step; under LRC the binding is a
    // no-op and the lock alone orders both queue and task data.
    let queue = dsm.alloc_bound::<u32>(
        "qs-queue",
        Q_ENTRIES + capacity * 2,
        BlockGranularity::Word,
        QUEUE_LOCK,
    );
    // The whole array is initially one task in the queue.
    dsm.init_array(queue, |i| match i {
        x if x == Q_HEAD => 0,
        x if x == Q_TAIL => 1,
        x if x == Q_PENDING => 1,
        x if x == Q_ENTRIES => 0,              // entry 0: start
        x if x == Q_ENTRIES + 1 => p.n as u32, // entry 0: len
        _ => 0,
    });

    let ec = kind.model() == Model::Ec;
    if ec {
        // Entry 0 initially holds the whole array; the entry locks are
        // *rebound* to their task's sub-array as tasks are created.
        dsm.bind(entry_lock(0), [array.whole()]);
    }
    let barrier = BarrierId::new(0);

    let result = dsm.run(|ctx| {
        loop {
            // Try to dequeue a task.
            let (task, tail, pending) = {
                let mut q = ctx.lock(queue.lock(), LockMode::Exclusive);
                let head = q.get(queue, Q_HEAD) as usize;
                let tail = q.get(queue, Q_TAIL) as usize;
                let pending = q.get(queue, Q_PENDING);
                let task = if head < tail {
                    let slot = head % capacity;
                    let start = q.get(queue, Q_ENTRIES + slot * 2) as usize;
                    let len = q.get(queue, Q_ENTRIES + slot * 2 + 1) as usize;
                    q.set(queue, Q_HEAD, (head + 1) as u32);
                    Some((slot, start, len))
                } else {
                    None
                };
                (task, tail, pending)
            };

            let (slot, mut start, mut len) = match task {
                Some(t) => t,
                None if pending == 0 => break,
                None => {
                    // Wait (without charging protocol traffic) until another
                    // processor enqueues a task or everything is done; the
                    // simulated clock is synchronised by the dequeue that
                    // follows.
                    let tail_seen = tail as u32;
                    while ctx.peek(queue, Q_TAIL) == tail_seen && ctx.peek(queue, Q_PENDING) != 0 {
                        std::thread::yield_now();
                    }
                    continue;
                }
            };

            // The entry lock stays held across the queue-lock critical
            // sections below (and is released/rebound/reacquired mid-task),
            // so it uses the raw acquire/release escape hatch.
            if ec {
                ctx.acquire(entry_lock(slot), LockMode::Exclusive);
            }

            // Keep splitting the larger partition until it is small enough.
            while len > p.threshold {
                // Partition [start, start+len) around a pivot using a local
                // buffer (one read and one write of each element, page-batched
                // through the span API).
                let mut buf = vec![0i32; len];
                ctx.read_into(array, start, &mut buf);
                ctx.compute(Work::ops(len as u64 * p.work_partition));
                let pivot = buf[len / 2];
                let mut lower: Vec<i32> = Vec::with_capacity(len);
                let mut upper: Vec<i32> = Vec::with_capacity(len);
                let mut equal = 0usize;
                for &x in &buf {
                    if x < pivot {
                        lower.push(x);
                    } else if x > pivot {
                        upper.push(x);
                    } else {
                        equal += 1;
                    }
                }
                buf.clear();
                buf.extend_from_slice(&lower);
                buf.extend(std::iter::repeat(pivot).take(equal));
                buf.extend_from_slice(&upper);
                ctx.write_from(array, start, &buf);
                let split = lower.len() + equal / 2 + 1;
                let split = split.clamp(1, len - 1);
                // Smaller partition goes to the queue, larger stays with us.
                let (small_start, small_len, large_start, large_len) = if split <= len / 2 {
                    (start, split, start + split, len - split)
                } else {
                    (start + split, len - split, start, split)
                };

                if ec {
                    // Publish the writes made so far and narrow the binding
                    // of our entry lock to the partition we keep.
                    ctx.release(entry_lock(slot));
                    ctx.rebind(entry_lock(slot), [array.range(large_start, large_len)]);
                    ctx.acquire(entry_lock(slot), LockMode::Exclusive);
                }

                // Enqueue the smaller partition.
                {
                    let mut q = ctx.lock(queue.lock(), LockMode::Exclusive);
                    let tail = q.get(queue, Q_TAIL) as usize;
                    let new_slot = tail % capacity;
                    q.set(queue, Q_ENTRIES + new_slot * 2, small_start as u32);
                    q.set(queue, Q_ENTRIES + new_slot * 2 + 1, small_len as u32);
                    q.set(queue, Q_TAIL, (tail + 1) as u32);
                    q.modify(queue, Q_PENDING, |pending: u32| pending + 1);
                    if ec {
                        q.rebind(entry_lock(new_slot), [array.range(small_start, small_len)]);
                    }
                }

                // The entry lock we hold (slot) now covers [start, len).
                start = large_start;
                len = large_len;
            }

            // Leaf: bubblesort the remaining partition in a local buffer.
            let mut buf = vec![0i32; len];
            ctx.read_into(array, start, &mut buf);
            ctx.compute(Work::ops(bubble_work(len, &p)));
            for i in 0..buf.len() {
                for j in 0..buf.len().saturating_sub(1 + i) {
                    if buf[j] > buf[j + 1] {
                        buf.swap(j, j + 1);
                    }
                }
            }
            ctx.write_from(array, start, &buf);
            if ec {
                ctx.release(entry_lock(slot));
            }

            // Mark the task done.
            ctx.lock(queue.lock(), LockMode::Exclusive)
                .modify(queue, Q_PENDING, |pending: u32| pending - 1);
        }
        ctx.barrier(barrier);
    });

    let (expected, _) = sequential(&p);
    let got = result.final_array(array);
    let mut got_sorted_check = got.clone();
    got_sorted_check.sort_unstable();
    let ok = got == expected && got == got_sorted_check;
    (result, ok)
}

/// Simulated single-processor execution time of the sequential program.
pub fn sequential_time(p: &QsParams, cost: &dsm_sim::CostModel) -> dsm_sim::SimTime {
    let (_, work) = sequential(p);
    cost.work(work)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_sorts() {
        let p = QsParams::tiny();
        let (v, work) = sequential(&p);
        assert!(work.units() > 0);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(v.len(), p.n);
    }

    #[test]
    fn parallel_sorts_under_lrc_and_ec() {
        let p = QsParams::tiny();
        for kind in [
            ImplKind::lrc_diff(),
            ImplKind::lrc_time(),
            ImplKind::ec_diff(),
        ] {
            let (result, ok) = run(kind, 4, &p);
            assert!(ok, "{kind} quicksort output mismatch");
            assert!(result.traffic.lock_acquires > 0);
        }
    }

    #[test]
    fn ec_ci_also_sorts() {
        let p = QsParams::tiny();
        let (_, ok) = run(ImplKind::ec_ci(), 2, &p);
        assert!(ok, "EC-ci quicksort output mismatch");
    }
}
