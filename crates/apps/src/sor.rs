//! Red-Black Successive Over-Relaxation (SOR) and its SOR+ variant.
//!
//! The matrix is divided into bands of consecutive rows, one band per
//! processor; each iteration has a red phase and a black phase separated by
//! barriers, and communication happens only across band boundaries.  Each row
//! is laid out with its red elements first and its black elements next, as in
//! the paper, so that both colours of a row share a page (the source of LRC's
//! prefetch effect and of the false sharing at band boundaries).
//!
//! * LRC version: barriers only.
//! * EC version: one lock per (row, colour) half-row; a processor takes
//!   exclusive locks on the half-rows it updates and read-only locks on the
//!   boundary half-rows it reads (Section 3.3).
//! * SOR+: only the boundary rows are shared; interior rows live in private
//!   memory.

use dsm_core::{
    BarrierId, BlockGranularity, Dsm, DsmConfig, ImplKind, LockId, LockMode, Model, RunResult,
    TransportKind,
};
use dsm_sim::Work;

/// SOR problem parameters.
#[derive(Debug, Clone)]
pub struct SorParams {
    /// Interior rows (the paper uses 1000).
    pub rows: usize,
    /// Interior columns (the paper uses 1000).
    pub cols: usize,
    /// Red/black iterations.
    pub iterations: usize,
    /// Work units charged per element update.
    pub work_per_element: u64,
}

impl SorParams {
    /// Table 2 parameters: 1000x1000 floats.
    pub fn paper() -> Self {
        SorParams {
            rows: 1000,
            cols: 1000,
            iterations: 48,
            work_per_element: 9,
        }
    }

    /// A reduced instance for quick runs.
    pub fn small() -> Self {
        SorParams {
            rows: 256,
            cols: 256,
            iterations: 12,
            work_per_element: 9,
        }
    }

    /// A very small instance for tests.
    pub fn tiny() -> Self {
        SorParams {
            rows: 32,
            cols: 32,
            iterations: 4,
            work_per_element: 9,
        }
    }

    fn total_cols(&self) -> usize {
        self.cols + 2
    }

    fn total_rows(&self) -> usize {
        self.rows + 2
    }

    /// Element index of `(i, j)` in the red-first/black-next row layout.
    fn idx(&self, i: usize, j: usize) -> usize {
        let c = self.total_cols();
        let base = i * c;
        if (i + j) % 2 == 0 {
            base + j / 2
        } else {
            base + c / 2 + j / 2
        }
    }

    /// Initial value of element `(i, j)`: non-zero interior values chosen so
    /// that every element changes on every iteration (the paper initialises
    /// the matrix this way to make the compiler-instrumentation vs. diffing
    /// comparison fair).
    fn initial(&self, i: usize, j: usize) -> f32 {
        if i == 0 || j == 0 || i == self.total_rows() - 1 || j == self.total_cols() - 1 {
            ((i * 31 + j * 17) % 100) as f32 + 1.0
        } else {
            ((i * 7 + j * 13) % 50) as f32 + 1.0
        }
    }
}

/// The initial matrix in the red-first/black-next layout.
fn initial_layout(p: &SorParams) -> Vec<f32> {
    let (tr, tc) = (p.total_rows(), p.total_cols());
    let mut m = vec![0.0f32; tr * tc];
    for i in 0..tr {
        for j in 0..tc {
            m[p.idx(i, j)] = p.initial(i, j);
        }
    }
    m
}

/// Runs the sequential version: returns the final matrix (in the same layout
/// as the shared region) and the work performed.
pub fn sequential(p: &SorParams) -> (Vec<f32>, Work) {
    let (tr, tc) = (p.total_rows(), p.total_cols());
    let mut m = initial_layout(p);
    let mut work = Work::ZERO;
    for _ in 0..p.iterations {
        for colour in 0..2usize {
            for i in 1..tr - 1 {
                for j in 1..tc - 1 {
                    if (i + j) % 2 == colour {
                        let v = 0.25
                            * (m[p.idx(i - 1, j)]
                                + m[p.idx(i + 1, j)]
                                + m[p.idx(i, j - 1)]
                                + m[p.idx(i, j + 1)]);
                        m[p.idx(i, j)] = v;
                        work += Work::flops(p.work_per_element);
                    }
                }
            }
        }
    }
    (m, work)
}

fn band(p: &SorParams, nprocs: usize, me: usize) -> (usize, usize) {
    // Interior rows 1..=rows split into nprocs roughly equal bands.
    let per = p.rows / nprocs;
    let extra = p.rows % nprocs;
    let lo = 1 + me * per + me.min(extra);
    let hi = lo + per + usize::from(me < extra);
    (lo, hi)
}

/// Lock id of the red (`colour == 0`) or black half of row `i`.
fn row_lock(i: usize, colour: usize) -> LockId {
    LockId::new((2 * i + colour) as u32)
}

/// Runs SOR (or SOR+ when `plus` is true) under the given implementation and
/// processor count.  Returns the run result and whether the parallel output
/// matches the sequential version exactly.
pub fn run(kind: ImplKind, nprocs: usize, p: &SorParams, plus: bool) -> (RunResult, bool) {
    run_on(kind, nprocs, p, plus, TransportKind::Simulated)
}

/// Like [`run`], but with an explicit transport backend carrying the publish
/// stream (the simulated default leaves the run byte-identical to [`run`]).
pub fn run_on(
    kind: ImplKind,
    nprocs: usize,
    p: &SorParams,
    plus: bool,
    transport: TransportKind,
) -> (RunResult, bool) {
    run_opts(kind, nprocs, p, plus, crate::runner::RunOpts::on(transport))
}

/// Like [`run_on`], but with the full option set, including a fault plan
/// for crash-injection/recovery runs.
pub fn run_opts(
    kind: ImplKind,
    nprocs: usize,
    p: &SorParams,
    plus: bool,
    opts: crate::runner::RunOpts,
) -> (RunResult, bool) {
    let p = p.clone();
    let (tr, tc) = (p.total_rows(), p.total_cols());
    let mut cfg = DsmConfig::with_procs(kind, nprocs);
    cfg.transport = opts.transport;
    cfg.fault = opts.fault;
    let mut dsm = Dsm::new(cfg).expect("valid config");
    let matrix = dsm.alloc_array::<f32>("sor-matrix", tr * tc, BlockGranularity::Word);
    {
        let init = initial_layout(&p);
        dsm.init_array(matrix, |flat| init[flat]);
    }

    // EC: bind each half-row to its lock.
    if kind.model() == Model::Ec {
        let half = tc / 2;
        for i in 0..tr {
            dsm.bind(row_lock(i, 0), [matrix.range(i * tc, half)]);
            dsm.bind(row_lock(i, 1), [matrix.range(i * tc + half, tc - half)]);
        }
    }

    let barrier = BarrierId::new(0);
    let ec = kind.model() == Model::Ec;
    let result = dsm.run(|ctx| {
        let me = ctx.node();
        let n = ctx.nprocs();
        let (lo, hi) = band(&p, n, me);
        // SOR+ keeps interior rows private; only boundary rows go through the
        // shared region.
        let mut private: Vec<f32> = if plus { initial_layout(&p) } else { Vec::new() };

        // Scratch half-rows for the span-API stencil: the four neighbour
        // sources of one (row, colour) sweep and its output.  In the
        // red-first/black-next layout each source is one contiguous span.
        let max_m = tc / 2;
        let mut up = vec![0.0f32; max_m];
        let mut down = vec![0.0f32; max_m];
        let mut left = vec![0.0f32; max_m];
        let mut right = vec![0.0f32; max_m];
        let mut out = vec![0.0f32; max_m];

        // Copies `m` elements starting at flat index `start` from the shared
        // matrix (a span read) or from the private copy (SOR+ interior).
        let fetch = |ctx: &mut dsm_core::ProcessContext<'_>,
                     private: &[f32],
                     buf: &mut [f32],
                     shared: bool,
                     start: usize| {
            if shared {
                ctx.read_into(matrix, start, buf);
            } else {
                buf.copy_from_slice(&private[start..start + buf.len()]);
            }
        };

        for _ in 0..p.iterations {
            for colour in 0..2usize {
                // EC: read-only locks on the boundary half-rows we read.
                // Two independent locks are held across the whole row loop,
                // so this uses the raw acquire/release escape hatch rather
                // than nested guards.
                if ec {
                    let read_colour = 1 - colour;
                    if lo > 1 {
                        ctx.acquire(row_lock(lo - 1, read_colour), LockMode::ReadOnly);
                    }
                    if hi < tr - 1 {
                        ctx.acquire(row_lock(hi, read_colour), LockMode::ReadOnly);
                    }
                }
                for i in lo..hi {
                    let boundary_row = i == lo || i == hi - 1;
                    // EC: exclusive lock on the half-row we update (SOR+
                    // only shares the boundary rows); released when the
                    // guard drops at the end of the row.
                    let mut row = ctx.lock_if(
                        ec && (!plus || boundary_row),
                        row_lock(i, colour),
                        LockMode::Exclusive,
                    );
                    // Interior columns of this colour in row i: j runs over
                    // first_j, first_j + 2, ..; each neighbour source maps to
                    // m consecutive elements of a (1-colour) half-row.
                    let first_j = if (colour + i) % 2 == 1 { 1 } else { 2 };
                    let m = (tc - 1).saturating_sub(first_j).div_ceil(2);
                    if m > 0 {
                        // In SOR+, only the rows adjacent to a band edge are
                        // read from the shared region; everything else (and
                        // the row's own sideways neighbours) is private.
                        let up_shared = !plus || i == lo;
                        let down_shared = !plus || i == hi - 1;
                        fetch(
                            &mut row,
                            &private,
                            &mut up[..m],
                            up_shared,
                            p.idx(i - 1, first_j),
                        );
                        fetch(
                            &mut row,
                            &private,
                            &mut down[..m],
                            down_shared,
                            p.idx(i + 1, first_j),
                        );
                        fetch(
                            &mut row,
                            &private,
                            &mut left[..m],
                            !plus,
                            p.idx(i, first_j - 1),
                        );
                        fetch(
                            &mut row,
                            &private,
                            &mut right[..m],
                            !plus,
                            p.idx(i, first_j + 1),
                        );
                        for t in 0..m {
                            out[t] = 0.25 * (up[t] + down[t] + left[t] + right[t]);
                        }
                        row.compute(Work::flops(p.work_per_element * m as u64));
                        let out_start = p.idx(i, first_j);
                        if plus {
                            private[out_start..out_start + m].copy_from_slice(&out[..m]);
                            if boundary_row {
                                row.write_from(matrix, out_start, &out[..m]);
                            }
                        } else {
                            row.write_from(matrix, out_start, &out[..m]);
                        }
                    }
                }
                if ec {
                    let read_colour = 1 - colour;
                    if lo > 1 {
                        ctx.release(row_lock(lo - 1, read_colour));
                    }
                    if hi < tr - 1 {
                        ctx.release(row_lock(hi, read_colour));
                    }
                }
                ctx.barrier(barrier);
            }
        }
        // SOR+ publishes nothing for interior rows; copy the final band into
        // the shared region so the result can be verified uniformly.  The
        // whole band's locks are held at once, so this also stays on the raw
        // acquire/release escape hatch.
        if plus {
            if ec {
                for i in lo..hi {
                    ctx.acquire(row_lock(i, 0), LockMode::Exclusive);
                    ctx.acquire(row_lock(i, 1), LockMode::Exclusive);
                }
            }
            for i in lo..hi {
                // One span per colour: in this layout the interior elements
                // of one colour are contiguous (and so is the private copy).
                for colour in 0..2usize {
                    let first_j = if (colour + i) % 2 == 1 { 1 } else { 2 };
                    let m = (tc - 1).saturating_sub(first_j).div_ceil(2);
                    let start = p.idx(i, first_j);
                    ctx.write_from(matrix, start, &private[start..start + m]);
                }
            }
            if ec {
                for i in lo..hi {
                    ctx.release(row_lock(i, 0));
                    ctx.release(row_lock(i, 1));
                }
            }
            ctx.barrier(barrier);
        }
        ctx.barrier(barrier);
    });

    let (expected, _) = sequential(&p);
    let got = result.final_array(matrix);
    let ok = expected
        .iter()
        .zip(got.iter())
        .all(|(a, b)| (a - b).abs() <= 1e-4 * a.abs().max(1.0));
    (result, ok)
}

/// Simulated single-processor execution time of the sequential program.
pub fn sequential_time(p: &SorParams, cost: &dsm_sim::CostModel) -> dsm_sim::SimTime {
    let (_, work) = sequential(p);
    cost.work(work)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_index_is_a_bijection_per_row() {
        let p = SorParams::tiny();
        let tc = p.total_cols();
        for i in 0..4 {
            let mut seen = vec![false; tc];
            for j in 0..tc {
                let idx = p.idx(i, j) - i * tc;
                assert!(idx < tc);
                assert!(!seen[idx], "collision at ({i},{j})");
                seen[idx] = true;
            }
        }
    }

    #[test]
    fn sequential_changes_every_interior_element() {
        let p = SorParams::tiny();
        let (m, work) = sequential(&p);
        assert!(work.units() > 0);
        // Interior elements should have been relaxed away from their initial
        // integer-ish values.
        let changed = (1..p.total_rows() - 1)
            .flat_map(|i| (1..p.total_cols() - 1).map(move |j| (i, j)))
            .filter(|&(i, j)| (m[p.idx(i, j)] - p.initial(i, j)).abs() > 1e-6)
            .count();
        assert!(changed > (p.rows * p.cols) / 2);
    }

    #[test]
    fn bands_partition_the_interior_rows() {
        let p = SorParams::paper();
        let mut covered = 0;
        for me in 0..8 {
            let (lo, hi) = band(&p, 8, me);
            covered += hi - lo;
            assert!(lo >= 1 && hi <= p.rows + 1);
        }
        assert_eq!(covered, p.rows);
    }

    #[test]
    fn lrc_and_ec_match_sequential() {
        let p = SorParams::tiny();
        for kind in [ImplKind::lrc_diff(), ImplKind::ec_time()] {
            let (result, ok) = run(kind, 2, &p, false);
            assert!(ok, "{kind} SOR output mismatch");
            assert!(result.time.as_nanos() > 0);
        }
    }

    #[test]
    fn sor_plus_matches_sequential() {
        let p = SorParams::tiny();
        let (_, ok) = run(ImplKind::lrc_diff(), 2, &p, true);
        assert!(ok, "SOR+ LRC output mismatch");
        let (_, ok) = run(ImplKind::ec_diff(), 2, &p, true);
        assert!(ok, "SOR+ EC output mismatch");
    }
}
