//! The application suite of the EC/LRC comparison study.
//!
//! Six applications (plus the SOR+ variant), each written three times:
//!
//! * a **sequential** version used for verification and for the paper's
//!   "1 proc." column,
//! * an **LRC-style** parallel version (barriers and exclusive locks only, no
//!   binding — the program a TreadMarks user would write),
//! * an **EC-style** parallel version (every shared object bound to a lock,
//!   read-only locks for data read across barriers, extra synchronization for
//!   task queues, lock rebinding, per-object granularity decisions — the
//!   program a Midway user would write, Section 3.3 of the paper).
//!
//! The [`runner`] module provides a uniform entry point used by the benchmark
//! harness and the integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barnes_hut;
pub mod fft;
pub mod is;
pub mod params;
pub mod quicksort;
pub mod runner;
pub mod sor;
pub mod water;

pub use params::{AppParams, Scale};
pub use runner::{run_app, sequential_time, App, AppReport};
