//! The application suite of the EC/LRC comparison study.
//!
//! Six applications (plus the SOR+ variant), each written three times:
//!
//! * a **sequential** version used for verification and for the paper's
//!   "1 proc." column,
//! * an **LRC-style** parallel version (barriers and exclusive locks only, no
//!   binding — the program a TreadMarks user would write),
//! * an **EC-style** parallel version (every shared object bound to a lock,
//!   read-only locks for data read across barriers, extra synchronization for
//!   task queues, lock rebinding, per-object granularity decisions — the
//!   program a Midway user would write, Section 3.3 of the paper).
//!
//! The suite is written against the typed API of `dsm-core` —
//! `SharedArray<T>`/`Binding<T>` handles, RAII lock guards
//! (`ctx.lock`/`ctx.lock_if`, whose conditional form carries the EC-only
//! annotations), and typed element/span accessors — with the raw
//! `acquire`/`release` escape hatch where a program holds a dynamic set of
//! locks at once (3D-FFT's transpose chunks, SOR's boundary read locks).
//! `tests/tests/typed_api_equivalence.rs` pins that this surface costs
//! nothing: reports are byte-identical to the pre-redesign raw-API programs.
//!
//! The [`runner`] module provides a uniform entry point used by the benchmark
//! harness and the integration tests.
//!
//! Beyond the paper's suite, the [`mixed`] module provides a synthetic
//! three-phase mixed-sharing workload (false sharing, single writer,
//! migratory lock) built to exercise the adaptive LRC data policy; it is not
//! part of [`App`] and is driven directly by the `adaptive` benchmark and the
//! adaptive determinism tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barnes_hut;
pub mod fft;
pub mod is;
pub mod mixed;
pub mod params;
pub mod quicksort;
pub mod runner;
pub mod sor;
pub mod water;

pub use params::{AppParams, Scale};
pub use runner::{run_app, run_app_on, run_app_opts, sequential_time, App, AppReport, RunOpts};
