//! Integer Sort (IS), from the NAS parallel benchmarks.
//!
//! Each processor ranks its block of keys into a private histogram, then adds
//! its counts to a shared bucket array inside a critical section (the bucket
//! array is *migratory* data), and after a barrier reads the final bucket
//! array to compute the global ranks of its keys.  The shared array (Bmax
//! buckets) is smaller than a page.
//!
//! * LRC version: one exclusive lock around the bucket update; barriers.
//! * EC version: the bucket array is bound to the lock; the second phase
//!   additionally takes a read-only lock on the bucket array (Section 3.3).

use dsm_core::{
    BarrierId, BlockGranularity, Dsm, DsmConfig, ImplKind, LockId, LockMode, Model, RunResult,
    TransportKind,
};
use dsm_sim::Work;

/// IS problem parameters.
#[derive(Debug, Clone)]
pub struct IsParams {
    /// Number of keys (the paper uses 2^20).
    pub keys: usize,
    /// Number of buckets / maximum key value (the paper uses 2^9).
    pub buckets: usize,
    /// Number of ranking repetitions (the paper uses 10).
    pub rankings: usize,
    /// Work units charged per key per ranking.
    pub work_per_key: u64,
}

impl IsParams {
    /// Table 2 parameters: N = 2^20, Bmax = 2^9, 10 rankings.
    pub fn paper() -> Self {
        IsParams {
            keys: 1 << 20,
            buckets: 1 << 9,
            rankings: 10,
            work_per_key: 5,
        }
    }

    /// A reduced instance.
    pub fn small() -> Self {
        IsParams {
            keys: 1 << 16,
            buckets: 1 << 9,
            rankings: 4,
            work_per_key: 5,
        }
    }

    /// A very small instance for tests.
    pub fn tiny() -> Self {
        IsParams {
            keys: 1 << 10,
            buckets: 1 << 6,
            rankings: 2,
            work_per_key: 5,
        }
    }

    /// Deterministic pseudo-random key `i`.
    fn key(&self, i: usize) -> u32 {
        // A small multiplicative hash keeps generation deterministic and
        // independent of any RNG crate version.
        let x = (i as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(17);
        (x % self.buckets as u64) as u32
    }
}

/// Sequential bucket counts after one ranking (identical for every
/// repetition) plus the total work of all repetitions.
pub fn sequential(p: &IsParams) -> (Vec<u32>, Work) {
    let mut counts = vec![0u32; p.buckets];
    for i in 0..p.keys {
        counts[p.key(i) as usize] += 1;
    }
    let work = Work::ops(p.work_per_key * p.keys as u64 * p.rankings as u64);
    (counts, work)
}

const BUCKET_LOCK: LockId = LockId(0);

/// Runs IS under the given implementation.  Returns the run result and
/// whether the final shared bucket counts match the sequential version.
pub fn run(kind: ImplKind, nprocs: usize, p: &IsParams) -> (RunResult, bool) {
    run_on(kind, nprocs, p, TransportKind::Simulated)
}

/// Like [`run`], but with an explicit transport backend carrying the publish
/// stream (the simulated default leaves the run byte-identical to [`run`]).
pub fn run_on(
    kind: ImplKind,
    nprocs: usize,
    p: &IsParams,
    transport: TransportKind,
) -> (RunResult, bool) {
    run_opts(kind, nprocs, p, crate::runner::RunOpts::on(transport))
}

/// Like [`run_on`], but with the full option set, including a fault plan
/// for crash-injection/recovery runs.
pub fn run_opts(
    kind: ImplKind,
    nprocs: usize,
    p: &IsParams,
    opts: crate::runner::RunOpts,
) -> (RunResult, bool) {
    let p = p.clone();
    let mut cfg = DsmConfig::with_procs(kind, nprocs);
    cfg.transport = opts.transport;
    cfg.fault = opts.fault;
    let mut dsm = Dsm::new(cfg).expect("valid config");
    // The lock→data association is constructed in one place: under EC every
    // acquire of BUCKET_LOCK makes the bucket array consistent, under LRC
    // the binding is a no-op.
    let buckets =
        dsm.alloc_bound::<u32>("is-buckets", p.buckets, BlockGranularity::Word, BUCKET_LOCK);
    let barrier = BarrierId::new(0);
    let ec = kind.model() == Model::Ec;

    let result = dsm.run(|ctx| {
        let me = ctx.node();
        let n = ctx.nprocs();
        let per = p.keys / n;
        let lo = me * per;
        let hi = if me == n - 1 { p.keys } else { lo + per };
        let zeros = vec![0u32; p.buckets];
        let mut counts = vec![0u32; p.buckets];

        for rep in 0..p.rankings {
            // Phase 0 (first repetition excluded): processor 0 clears the
            // shared array under the lock so every ranking starts fresh.
            if rep > 0 {
                if me == 0 {
                    let mut g = ctx.lock(buckets.lock(), LockMode::Exclusive);
                    g.view_mut(buckets).fill_from(&zeros);
                }
                ctx.barrier(barrier);
            }

            // Phase 1: rank local keys privately, then add the counts to the
            // shared array inside the critical section (migratory data).
            let mut local = vec![0u32; p.buckets];
            for i in lo..hi {
                local[p.key(i) as usize] += 1;
            }
            ctx.compute(Work::ops(p.work_per_key * (hi - lo) as u64));

            {
                let mut g = ctx.lock(buckets.lock(), LockMode::Exclusive);
                for (b, &c) in local.iter().enumerate() {
                    if c != 0 {
                        g.modify(buckets, b, |cur: u32| cur + c);
                    }
                }
            }
            ctx.barrier(barrier);

            // Phase 2: read the final counts to compute global ranks of the
            // local keys (the reads themselves are what matters to the DSM).
            // EC takes a read-only lock (Section 3.3); LRC relies on the
            // barrier alone.
            {
                let mut g = ctx.lock_if(ec, buckets.lock(), LockMode::ReadOnly);
                g.view(buckets).read_into(0, &mut counts);
                let checksum: u64 = counts.iter().map(|&c| c as u64).sum();
                assert_eq!(checksum, p.keys as u64, "bucket counts must sum to N");
            }
            ctx.barrier(barrier);
        }
    });

    let (expected, _) = sequential(&p);
    let got = result.final_array(buckets);
    let ok = expected == got;
    (result, ok)
}

/// Simulated single-processor execution time of the sequential program.
pub fn sequential_time(p: &IsParams, cost: &dsm_sim::CostModel) -> dsm_sim::SimTime {
    let (_, work) = sequential(p);
    cost.work(work)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_in_range_and_spread() {
        let p = IsParams::tiny();
        let (counts, _) = sequential(&p);
        assert_eq!(counts.iter().map(|&c| c as usize).sum::<usize>(), p.keys);
        let nonempty = counts.iter().filter(|&&c| c > 0).count();
        assert!(
            nonempty > p.buckets / 2,
            "keys should spread across buckets"
        );
    }

    #[test]
    fn parallel_matches_sequential_for_all_models() {
        let p = IsParams::tiny();
        for kind in [
            ImplKind::ec_time(),
            ImplKind::ec_diff(),
            ImplKind::lrc_time(),
            ImplKind::lrc_diff(),
        ] {
            let (result, ok) = run(kind, 4, &p);
            assert!(ok, "{kind} IS bucket counts mismatch");
            assert!(result.traffic.lock_acquires > 0);
        }
    }

    #[test]
    fn migratory_data_makes_diffing_send_more_than_timestamping() {
        // The key write-collection result for IS (Section 8.2): the diffing
        // version sends multiple overlapping diffs of the bucket array while
        // timestamping sends each block once.
        let p = IsParams::tiny();
        let (ec_time, _) = run(ImplKind::ec_time(), 4, &p);
        let (ec_diff, _) = run(ImplKind::ec_diff(), 4, &p);
        assert!(
            ec_diff.traffic.bytes > ec_time.traffic.bytes,
            "EC-diff ({} B) should transfer more than EC-time ({} B) for migratory data",
            ec_diff.traffic.bytes,
            ec_time.traffic.bytes
        );
    }
}
