//! Application parameters (Table 2 of the paper) and scaled-down variants.

use crate::{barnes_hut, fft, is, quicksort, sor, water};

/// How large a problem instance to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// The data-set sizes of Table 2 (SOR 1000x1000, QS 262,144 integers,
    /// Water 343 molecules / 5 steps, Barnes-Hut 8,192 bodies / 5 steps,
    /// IS N=2^20 / Bmax=2^9 / 10 rankings, 3D-FFT 64x64x32).
    Paper,
    /// Reduced sizes for quick runs and Criterion benchmarks.
    Small,
    /// Very small sizes for unit/integration tests.
    Tiny,
}

/// The per-application parameter bundle for one scale.
#[derive(Debug, Clone)]
pub struct AppParams {
    /// Red-Black SOR parameters (also used for SOR+).
    pub sor: sor::SorParams,
    /// Quicksort parameters.
    pub quicksort: quicksort::QsParams,
    /// Water parameters.
    pub water: water::WaterParams,
    /// Barnes-Hut parameters.
    pub barnes: barnes_hut::BarnesParams,
    /// Integer Sort parameters.
    pub is: is::IsParams,
    /// 3D-FFT parameters.
    pub fft: fft::FftParams,
}

impl AppParams {
    /// Parameters for the given scale.
    pub fn at(scale: Scale) -> Self {
        match scale {
            Scale::Paper => AppParams {
                sor: sor::SorParams::paper(),
                quicksort: quicksort::QsParams::paper(),
                water: water::WaterParams::paper(),
                barnes: barnes_hut::BarnesParams::paper(),
                is: is::IsParams::paper(),
                fft: fft::FftParams::paper(),
            },
            Scale::Small => AppParams {
                sor: sor::SorParams::small(),
                quicksort: quicksort::QsParams::small(),
                water: water::WaterParams::small(),
                barnes: barnes_hut::BarnesParams::small(),
                is: is::IsParams::small(),
                fft: fft::FftParams::small(),
            },
            Scale::Tiny => AppParams {
                sor: sor::SorParams::tiny(),
                quicksort: quicksort::QsParams::tiny(),
                water: water::WaterParams::tiny(),
                barnes: barnes_hut::BarnesParams::tiny(),
                is: is::IsParams::tiny(),
                fft: fft::FftParams::tiny(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_table2() {
        let p = AppParams::at(Scale::Paper);
        assert_eq!(p.sor.rows, 1000);
        assert_eq!(p.sor.cols, 1000);
        assert_eq!(p.quicksort.n, 262_144);
        assert_eq!(p.quicksort.threshold, 1024);
        assert_eq!(p.water.molecules, 343);
        assert_eq!(p.water.steps, 5);
        assert_eq!(p.barnes.bodies, 8192);
        assert_eq!(p.barnes.steps, 5);
        assert_eq!(p.is.keys, 1 << 20);
        assert_eq!(p.is.buckets, 1 << 9);
        assert_eq!(p.is.rankings, 10);
        assert_eq!((p.fft.n1, p.fft.n2, p.fft.n3), (64, 64, 32));
    }

    #[test]
    fn smaller_scales_are_smaller() {
        let paper = AppParams::at(Scale::Paper);
        let small = AppParams::at(Scale::Small);
        let tiny = AppParams::at(Scale::Tiny);
        assert!(small.sor.rows < paper.sor.rows);
        assert!(tiny.sor.rows <= small.sor.rows);
        assert!(tiny.quicksort.n <= small.quicksort.n);
        assert!(tiny.barnes.bodies <= small.barnes.bodies);
    }
}
