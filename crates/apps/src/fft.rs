//! 3D-FFT, from the NAS parallel benchmarks.
//!
//! An `n1 x n2 x n3` complex array is distributed along its first dimension.
//! Each iteration performs 1-D FFTs along the third and second dimensions
//! (entirely local to a processor's planes), then a transpose followed by 1-D
//! FFTs along the first dimension; during the transpose each processor reads
//! `1/n` of its data from every other processor.  The result is written to a
//! second array — memory is duplicated instead of rebinding locks, as the
//! paper's EC version chooses to do (Section 3.3).
//!
//! * LRC version: barriers only; the transpose reads fault page by page
//!   (invalidate protocol), eight pages per chunk.
//! * EC version: one lock per (owner, reader) transpose chunk, bound to the
//!   eight non-contiguous 4-KiB pieces of that chunk; the chunk arrives in a
//!   single grant message (update protocol).

use dsm_core::{
    BarrierId, BlockGranularity, Dsm, DsmConfig, ImplKind, LockId, LockMode, Model, RunResult,
    TransportKind,
};
use dsm_sim::Work;

/// 3D-FFT problem parameters.
#[derive(Debug, Clone)]
pub struct FftParams {
    /// First dimension (the paper uses 64); must be divisible by the
    /// processor count.
    pub n1: usize,
    /// Second dimension (the paper uses 64).
    pub n2: usize,
    /// Third dimension (the paper uses 32).
    pub n3: usize,
    /// Number of transform iterations.
    pub iterations: usize,
    /// Work units charged per butterfly.
    pub work_per_butterfly: u64,
}

impl FftParams {
    /// Table 2 parameters: 64 x 64 x 32.
    pub fn paper() -> Self {
        FftParams {
            n1: 64,
            n2: 64,
            n3: 32,
            iterations: 6,
            work_per_butterfly: 30,
        }
    }

    /// A reduced instance.
    pub fn small() -> Self {
        FftParams {
            n1: 32,
            n2: 32,
            n3: 16,
            iterations: 3,
            work_per_butterfly: 30,
        }
    }

    /// A very small instance for tests.
    pub fn tiny() -> Self {
        FftParams {
            n1: 8,
            n2: 8,
            n3: 8,
            iterations: 2,
            work_per_butterfly: 30,
        }
    }

    fn points(&self) -> usize {
        self.n1 * self.n2 * self.n3
    }

    /// Flat complex index of `(i, j, k)` in row-major order.
    fn at(&self, i: usize, j: usize, k: usize) -> usize {
        (i * self.n2 + j) * self.n3 + k
    }

    /// Initial value (real, imaginary) of point `(i, j, k)`.
    fn initial(&self, idx: usize) -> (f64, f64) {
        let x = (idx as u64)
            .wrapping_mul(0x2545_F491_4F6C_DD1D)
            .rotate_left(13);
        let re = ((x & 0xffff) as f64) / 65536.0;
        let im = (((x >> 16) & 0xffff) as f64) / 65536.0;
        (re, im)
    }
}

/// An in-place iterative radix-2 FFT over `data` (pairs of re/im), applied to
/// a strided 1-D line.  Returns the number of butterflies.
fn fft_line(re: &mut [f64], im: &mut [f64]) -> u64 {
    let n = re.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let mut butterflies = 0u64;
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for j in 0..len / 2 {
                let (ur, ui) = (re[i + j], im[i + j]);
                let (vr, vi) = (
                    re[i + j + len / 2] * cr - im[i + j + len / 2] * ci,
                    re[i + j + len / 2] * ci + im[i + j + len / 2] * cr,
                );
                re[i + j] = ur + vr;
                im[i + j] = ui + vi;
                re[i + j + len / 2] = ur - vr;
                im[i + j + len / 2] = ui - vi;
                let (ncr, nci) = (cr * wr - ci * wi, cr * wi + ci * wr);
                cr = ncr;
                ci = nci;
                butterflies += 1;
            }
            i += len;
        }
        len *= 2;
    }
    butterflies
}

/// Sequential 3D FFT pipeline over `iterations` iterations; returns the final
/// transposed array (as `(re, im)` vectors indexed `(j, k, i)` row-major) and
/// the total work.
pub fn sequential(p: &FftParams) -> (Vec<f64>, Vec<f64>, Work) {
    let n = p.points();
    let mut re: Vec<f64> = (0..n).map(|i| p.initial(i).0).collect();
    let mut im: Vec<f64> = (0..n).map(|i| p.initial(i).1).collect();
    let mut tre = vec![0.0; n];
    let mut tim = vec![0.0; n];
    let mut work = 0u64;
    for it in 0..p.iterations {
        // Evolve: a cheap pointwise scaling keeps iterations from being
        // identical (the NAS benchmark multiplies by exponential factors).
        let scale = 1.0 / (1.0 + it as f64);
        re.iter_mut().for_each(|v| *v *= scale);
        im.iter_mut().for_each(|v| *v *= scale);
        // Dim-3 FFTs then dim-2 FFTs (local), then transpose + dim-1 FFTs.
        for i in 0..p.n1 {
            for j in 0..p.n2 {
                let mut lr: Vec<f64> = (0..p.n3).map(|k| re[p.at(i, j, k)]).collect();
                let mut li: Vec<f64> = (0..p.n3).map(|k| im[p.at(i, j, k)]).collect();
                work += fft_line(&mut lr, &mut li) * p.work_per_butterfly;
                for k in 0..p.n3 {
                    re[p.at(i, j, k)] = lr[k];
                    im[p.at(i, j, k)] = li[k];
                }
            }
            for k in 0..p.n3 {
                let mut lr: Vec<f64> = (0..p.n2).map(|j| re[p.at(i, j, k)]).collect();
                let mut li: Vec<f64> = (0..p.n2).map(|j| im[p.at(i, j, k)]).collect();
                work += fft_line(&mut lr, &mut li) * p.work_per_butterfly;
                for j in 0..p.n2 {
                    re[p.at(i, j, k)] = lr[j];
                    im[p.at(i, j, k)] = li[j];
                }
            }
        }
        // Transposed array indexed (j, k, i).
        for j in 0..p.n2 {
            for k in 0..p.n3 {
                let mut lr: Vec<f64> = (0..p.n1).map(|i| re[p.at(i, j, k)]).collect();
                let mut li: Vec<f64> = (0..p.n1).map(|i| im[p.at(i, j, k)]).collect();
                work += fft_line(&mut lr, &mut li) * p.work_per_butterfly;
                for i in 0..p.n1 {
                    let t = (j * p.n3 + k) * p.n1 + i;
                    tre[t] = lr[i];
                    tim[t] = li[i];
                }
            }
        }
        // Feed the transposed result back as the next iteration's input,
        // transposing it back into (i, j, k) order — exactly what the
        // parallel version's copy-back phase does.
        for i in 0..p.n1 {
            for j in 0..p.n2 {
                for k in 0..p.n3 {
                    let t = (j * p.n3 + k) * p.n1 + i;
                    re[p.at(i, j, k)] = tre[t];
                    im[p.at(i, j, k)] = tim[t];
                }
            }
        }
    }
    (tre, tim, Work::flops(work))
}

/// Lock id of the transpose chunk written by `owner` and read by `reader`.
fn chunk_lock(nprocs: usize, owner: usize, reader: usize) -> LockId {
    LockId::new((owner * nprocs + reader) as u32)
}

/// Lock id of processor `p`'s slab of the transposed (destination) array.
fn dst_lock(nprocs: usize, p: usize) -> LockId {
    LockId::new((nprocs * nprocs + p) as u32)
}

/// Runs 3D-FFT under the given implementation.  Returns the run result and
/// whether the final transposed array matches the sequential version.
pub fn run(kind: ImplKind, nprocs: usize, p: &FftParams) -> (RunResult, bool) {
    run_on(kind, nprocs, p, TransportKind::Simulated)
}

/// Like [`run`], but with an explicit transport backend carrying the publish
/// stream (the simulated default leaves the run byte-identical to [`run`]).
pub fn run_on(
    kind: ImplKind,
    nprocs: usize,
    p: &FftParams,
    transport: TransportKind,
) -> (RunResult, bool) {
    run_opts(kind, nprocs, p, crate::runner::RunOpts::on(transport))
}

/// Like [`run_on`], but with the full option set, including a fault plan
/// for crash-injection/recovery runs.
pub fn run_opts(
    kind: ImplKind,
    nprocs: usize,
    p: &FftParams,
    opts: crate::runner::RunOpts,
) -> (RunResult, bool) {
    let p = p.clone();
    assert!(
        p.n1 % nprocs == 0 && p.n2 % nprocs == 0,
        "n1 ({}) and n2 ({}) must be divisible by the processor count ({nprocs})",
        p.n1,
        p.n2
    );
    let n = p.points();
    let mut cfg = DsmConfig::with_procs(kind, nprocs);
    cfg.transport = opts.transport;
    cfg.fault = opts.fault;
    let mut dsm = Dsm::new(cfg).expect("valid config");
    // Interleaved complex layout: element e occupies slots 2e (re) and 2e+1 (im).
    let src = dsm.alloc_array::<f64>("fft-src", 2 * n, BlockGranularity::DoubleWord);
    let dst = dsm.alloc_array::<f64>("fft-dst", 2 * n, BlockGranularity::DoubleWord);
    dsm.init_array(src, |slot| {
        let (re, im) = p.initial(slot / 2);
        if slot % 2 == 0 {
            re
        } else {
            im
        }
    });

    let ec = kind.model() == Model::Ec;
    let planes_per_proc = p.n1 / nprocs;
    if ec {
        // Bind each (owner, reader) transpose chunk: for every plane i owned
        // by `owner`, the j-range of `reader`, all k — one contiguous piece
        // per plane, several pieces per lock (non-contiguous binding).
        let j_per_proc = p.n2 / nprocs;
        for owner in 0..nprocs {
            for reader in 0..nprocs {
                let mut ranges = Vec::new();
                for i in owner * planes_per_proc..(owner + 1) * planes_per_proc {
                    let j0 = reader * j_per_proc;
                    let start = p.at(i, j0, 0) * 2;
                    let len = j_per_proc * p.n3 * 2;
                    ranges.push(src.range(start, len));
                }
                dsm.bind(chunk_lock(nprocs, owner, reader), ranges);
            }
        }
        // Each processor's slab of the transposed array (rows j in its
        // j-range) is bound to one lock for its exclusive writes.
        for proc in 0..nprocs {
            let start = proc * j_per_proc * p.n3 * p.n1 * 2;
            let len = j_per_proc * p.n3 * p.n1 * 2;
            dsm.bind(dst_lock(nprocs, proc), [dst.range(start, len)]);
        }
    }
    let barrier = BarrierId::new(0);

    let result = dsm.run(|ctx| {
        let me = ctx.node();
        let nproc = ctx.nprocs();
        let my_planes = me * planes_per_proc..(me + 1) * planes_per_proc;
        let j_per_proc = p.n2 / nproc;
        let my_js = me * j_per_proc..(me + 1) * j_per_proc;

        // Reused scratch: one interleaved complex line plus its split
        // re/im halves, sized for the longest dimension.
        let max_n = p.n1.max(p.n2).max(p.n3);
        let mut line = vec![0.0f64; 2 * max_n];
        let mut lr = vec![0.0f64; max_n];
        let mut li = vec![0.0f64; max_n];

        for it in 0..p.iterations {
            let scale = 1.0 / (1.0 + it as f64);

            // Local phases: dim-3 and dim-2 FFTs on our planes of `src`.
            // EC holds a *dynamic* set of chunk locks (one per reader) at
            // once, which RAII guards cannot express, so the FFT stays on
            // the raw acquire/release escape hatch for its locking.
            if ec {
                for reader in 0..nproc {
                    ctx.acquire(chunk_lock(nproc, me, reader), LockMode::Exclusive);
                }
            }
            for i in my_planes.clone() {
                for j in 0..p.n2 {
                    // The k-line is contiguous: one span read, one span write.
                    let base = p.at(i, j, 0) * 2;
                    ctx.read_into(src, base, &mut line[..2 * p.n3]);
                    for k in 0..p.n3 {
                        lr[k] = line[2 * k] * scale;
                        li[k] = line[2 * k + 1] * scale;
                    }
                    let b = fft_line(&mut lr[..p.n3], &mut li[..p.n3]);
                    ctx.compute(Work::flops(b * p.work_per_butterfly));
                    for k in 0..p.n3 {
                        line[2 * k] = lr[k];
                        line[2 * k + 1] = li[k];
                    }
                    ctx.write_from(src, base, &line[..2 * p.n3]);
                }
                for k in 0..p.n3 {
                    // The j-line is strided by n3: element-wise access.
                    for j in 0..p.n2 {
                        lr[j] = ctx.get(src, p.at(i, j, k) * 2);
                        li[j] = ctx.get(src, p.at(i, j, k) * 2 + 1);
                    }
                    let b = fft_line(&mut lr[..p.n2], &mut li[..p.n2]);
                    ctx.compute(Work::flops(b * p.work_per_butterfly));
                    for j in 0..p.n2 {
                        ctx.set(src, p.at(i, j, k) * 2, lr[j]);
                        ctx.set(src, p.at(i, j, k) * 2 + 1, li[j]);
                    }
                }
            }
            if ec {
                for reader in 0..nproc {
                    ctx.release(chunk_lock(nproc, me, reader));
                }
            }
            ctx.barrier(barrier);

            // Transpose + dim-1 FFTs: we produce rows (j, k, *) for our j-range,
            // reading one chunk from every other processor.
            if ec {
                for owner in 0..nproc {
                    if owner != me {
                        ctx.acquire(chunk_lock(nproc, owner, me), LockMode::ReadOnly);
                    }
                }
                ctx.acquire(dst_lock(nproc, me), LockMode::Exclusive);
            }
            for j in my_js.clone() {
                for k in 0..p.n3 {
                    // Gather is strided (one element per source plane); the
                    // transposed output line is contiguous in i.
                    for i in 0..p.n1 {
                        lr[i] = ctx.get(src, p.at(i, j, k) * 2);
                        li[i] = ctx.get(src, p.at(i, j, k) * 2 + 1);
                    }
                    let b = fft_line(&mut lr[..p.n1], &mut li[..p.n1]);
                    ctx.compute(Work::flops(b * p.work_per_butterfly));
                    for i in 0..p.n1 {
                        line[2 * i] = lr[i];
                        line[2 * i + 1] = li[i];
                    }
                    ctx.write_from(dst, (j * p.n3 + k) * p.n1 * 2, &line[..2 * p.n1]);
                }
            }
            if ec {
                ctx.release(dst_lock(nproc, me));
                for owner in 0..nproc {
                    if owner != me {
                        ctx.release(chunk_lock(nproc, owner, me));
                    }
                }
            }
            ctx.barrier(barrier);

            // Copy the transposed result back into our planes of `src` for
            // the next iteration ((j,k,i) -> (i,j,k) for i in our planes).
            if it + 1 < p.iterations {
                // The rows we copy back were produced by every processor, so
                // under EC we also take read-only locks on the other
                // processors' slabs of the transposed array.
                if ec {
                    for other in 0..nproc {
                        if other != me {
                            ctx.acquire(dst_lock(nproc, other), LockMode::ReadOnly);
                        }
                    }
                    for reader in 0..nproc {
                        ctx.acquire(chunk_lock(nproc, me, reader), LockMode::Exclusive);
                    }
                }
                for i in my_planes.clone() {
                    for j in 0..p.n2 {
                        // Strided gather from the transposed array, one
                        // contiguous span write back into our plane.
                        for k in 0..p.n3 {
                            let t = (j * p.n3 + k) * p.n1 + i;
                            line[2 * k] = ctx.get(dst, t * 2);
                            line[2 * k + 1] = ctx.get(dst, t * 2 + 1);
                        }
                        ctx.write_from(src, p.at(i, j, 0) * 2, &line[..2 * p.n3]);
                    }
                }
                if ec {
                    for reader in 0..nproc {
                        ctx.release(chunk_lock(nproc, me, reader));
                    }
                    for other in 0..nproc {
                        if other != me {
                            ctx.release(dst_lock(nproc, other));
                        }
                    }
                }
                ctx.barrier(barrier);
            }
        }
    });

    // Verify the final transposed array.
    let (tre, tim, _) = sequential(&p);
    let ok = (0..n).all(|t| {
        let gre = result.final_at(dst, t * 2);
        let gim = result.final_at(dst, t * 2 + 1);
        (gre - tre[t]).abs() <= 1e-6 * tre[t].abs().max(1.0)
            && (gim - tim[t]).abs() <= 1e-6 * tim[t].abs().max(1.0)
    });
    (result, ok)
}

/// Simulated single-processor execution time of the sequential program.
pub fn sequential_time(p: &FftParams, cost: &dsm_sim::CostModel) -> dsm_sim::SimTime {
    let (_, _, work) = sequential(p);
    cost.work(work)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_line_recovers_constant_signal_spectrum() {
        // FFT of an impulse is flat; FFT of a constant is an impulse at 0.
        let mut re = vec![1.0; 8];
        let mut im = vec![0.0; 8];
        let b = fft_line(&mut re, &mut im);
        assert!(b > 0);
        assert!((re[0] - 8.0).abs() < 1e-9);
        assert!(re[1..].iter().all(|v| v.abs() < 1e-9));
    }

    #[test]
    fn sequential_produces_work() {
        let p = FftParams::tiny();
        let (tre, _tim, work) = sequential(&p);
        assert_eq!(tre.len(), p.points());
        assert!(work.units() > 0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let p = FftParams::tiny();
        for kind in [ImplKind::lrc_diff(), ImplKind::ec_ci(), ImplKind::ec_diff()] {
            let (result, ok) = run(kind, 2, &p);
            assert!(ok, "{kind} 3D-FFT output mismatch");
            assert!(result.time.as_nanos() > 0);
        }
    }

    #[test]
    fn ec_sends_fewer_messages_than_lrc_for_the_transpose() {
        // The paper's 3D-FFT result: the object bound to a lock spans several
        // pages, so EC's update protocol needs far fewer messages than LRC's
        // per-page invalidate protocol (Section 7.2).
        let p = FftParams::small();
        let (ec, ok_ec) = run(ImplKind::ec_ci(), 4, &p);
        let (lrc, ok_lrc) = run(ImplKind::lrc_diff(), 4, &p);
        assert!(ok_ec && ok_lrc);
        assert!(
            ec.traffic.messages < lrc.traffic.messages,
            "EC ({}) should need fewer messages than LRC ({})",
            ec.traffic.messages,
            lrc.traffic.messages
        );
    }
}
