//! Shared harness code for the table-regeneration binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that re-runs the corresponding experiment on the simulated
//! cluster and prints the same rows the paper reports:
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table 1 — the trapping x collection combinations |
//! | `table2` | Table 2 — application parameters |
//! | `table3` | Table 3 — best EC vs best LRC execution times (+ 1 proc.) |
//! | `table4` | Table 4 — EC-ci / EC-time / EC-diff execution times |
//! | `table5` | Table 5 — LRC-ci / LRC-time / LRC-diff execution times |
//! | `traffic` | Section 7.2 — message counts and megabytes per application |
//! | `scaling` | host wall-clock vs simulated time at 8/16/32 processors (JSON) |
//! | `water_restructured` | Section 7.2 — the restructured Water experiment |
//! | `ablation_ci_opt` | Section 8.1 — the dirty-bit loop-splitting optimisation |
//! | `ablation_small_objects` | Section 4.2 — eager small-object twins vs page faults |
//!
//! All binaries accept `--scale tiny|small|paper` (default `small`) and
//! `--procs N` (default 8).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dsm_apps::{run_app, App, AppReport, Scale};
use dsm_core::ImplKind;

/// Command-line options shared by the table binaries.
#[derive(Debug, Clone, Copy)]
pub struct HarnessOpts {
    /// Problem scale.
    pub scale: Scale,
    /// Number of simulated processors.
    pub nprocs: usize,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts {
            scale: Scale::Small,
            nprocs: 8,
        }
    }
}

impl HarnessOpts {
    /// Parses `--scale` and `--procs` from the process arguments.
    pub fn from_args() -> Self {
        let mut opts = HarnessOpts::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" if i + 1 < args.len() => {
                    opts.scale = match args[i + 1].as_str() {
                        "tiny" => Scale::Tiny,
                        "small" => Scale::Small,
                        "paper" => Scale::Paper,
                        other => panic!("unknown scale '{other}' (use tiny|small|paper)"),
                    };
                    i += 2;
                }
                "--procs" if i + 1 < args.len() => {
                    opts.nprocs = args[i + 1].parse().expect("--procs takes a number");
                    i += 2;
                }
                other => panic!("unknown argument '{other}'"),
            }
        }
        opts
    }

    /// A short human-readable description of the options.
    pub fn describe(&self) -> String {
        format!("{:?} scale, {} processors", self.scale, self.nprocs)
    }
}

/// The applications in the order the paper's tables use.
pub fn table_apps() -> Vec<App> {
    App::ALL.to_vec()
}

/// Runs one application under every implementation of one model family and
/// returns the reports in the same order.
pub fn run_family(app: App, kinds: &[ImplKind], opts: HarnessOpts) -> Vec<AppReport> {
    kinds
        .iter()
        .map(|&kind| run_app(app, kind, opts.nprocs, opts.scale))
        .collect()
}

/// Picks the report with the lowest simulated time.
pub fn best(reports: &[AppReport]) -> &AppReport {
    reports
        .iter()
        .min_by(|a, b| a.time.cmp(&b.time))
        .expect("at least one report")
}

/// Formats a simulated time in seconds with two decimals, like the paper.
pub fn secs(t: dsm_core::SimTime) -> String {
    format!("{:.2}", t.as_secs_f64())
}

/// Prints a table header followed by aligned rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n{title}");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Warns (loudly) if a run failed verification against the sequential output.
pub fn check(report: &AppReport) {
    if !report.verified {
        eprintln!(
            "WARNING: {} under {} did not match the sequential output",
            report.app, report.kind
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_picks_the_fastest() {
        let opts = HarnessOpts {
            scale: Scale::Tiny,
            nprocs: 2,
        };
        let reports = run_family(App::IntegerSort, &ImplKind::ec_all(), opts);
        let b = best(&reports);
        assert!(reports.iter().all(|r| r.time >= b.time));
    }

    #[test]
    fn secs_formats_two_decimals() {
        assert_eq!(secs(dsm_core::SimTime::from_millis(1500)), "1.50");
    }
}
