//! Shared harness code for the table-regeneration binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that re-runs the corresponding experiment on the simulated
//! cluster and prints the same rows the paper reports:
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table 1 — the trapping x collection combinations |
//! | `table2` | Table 2 — application parameters |
//! | `table3` | Table 3 — best EC vs best LRC vs best HLRC execution times (+ 1 proc.) |
//! | `table4` | Table 4 — EC-ci / EC-time / EC-diff execution times |
//! | `table5` | Table 5 — LRC-ci / LRC-time / LRC-diff execution times |
//! | `table6` | beyond the paper — HLRC and ALRC per-combination execution times |
//! | `traffic` | Section 7.2 — message counts and megabytes per application |
//! | `scaling` | host wall-clock vs simulated time at 8/16/32 processors (JSON) |
//! | `adaptive` | beyond the paper — mixed-sharing workload, static vs adaptive policies (JSON) |
//! | `kv` | beyond the paper — closed-loop sharded KV/cache tier, throughput + p50/p99/p999 (JSON) |
//! | `matrix_smoke` | CI smoke — SOR under all 12 implementations + golden diffs |
//! | `water_restructured` | Section 7.2 — the restructured Water experiment |
//! | `ablation_ci_opt` | Section 8.1 — the dirty-bit loop-splitting optimisation |
//! | `ablation_small_objects` | Section 4.2 — eager small-object twins vs page faults |
//!
//! All binaries accept `--scale tiny|small|paper` (default `small`) and
//! `--procs N` (default 8).  The binaries that sweep implementations —
//! `table3`–`table6`, `traffic`, `scaling`, `hotpath`, `adaptive`,
//! `matrix_smoke`, the transport bins — also honor `--impls NAME[,NAME...]`
//! (a comma-separated subset of the twelve implementation names, e.g.
//! `--impls EC-time,HLRC-diff,ALRC-diff`; default: all); the parameter
//! tables (`table1`, `table2`) and the fixed-pair experiments
//! (`water_restructured`, the ablations) ignore it.
//!
//! The JSON-emitting binaries all start their output with the standard
//! header line from [`print_json_header`], so the `BENCH_*.json` trajectory
//! files at the repo root carry a `date` and `host_note` alongside the data
//! rows regardless of which binary produced them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;

pub use hist::LatencyHistogram;

use dsm_apps::{run_app, App, AppReport, Scale};
use dsm_core::ImplKind;

/// Command-line options shared by the table binaries.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Problem scale.
    pub scale: Scale,
    /// Number of simulated processors.
    pub nprocs: usize,
    /// Implementations to run (`--impls`); `None` means every implementation
    /// a binary would normally run.
    pub impls: Option<Vec<ImplKind>>,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts {
            scale: Scale::Small,
            nprocs: 8,
            impls: None,
        }
    }
}

impl HarnessOpts {
    /// Parses `--scale`, `--procs` and `--impls` from the process arguments.
    pub fn from_args() -> Self {
        let mut opts = HarnessOpts::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" if i + 1 < args.len() => {
                    opts.scale = match args[i + 1].as_str() {
                        "tiny" => Scale::Tiny,
                        "small" => Scale::Small,
                        "paper" => Scale::Paper,
                        other => panic!("unknown scale '{other}' (use tiny|small|paper)"),
                    };
                    i += 2;
                }
                "--procs" if i + 1 < args.len() => {
                    opts.nprocs = args[i + 1].parse().expect("--procs takes a number");
                    i += 2;
                }
                "--impls" if i + 1 < args.len() => {
                    let kinds: Vec<ImplKind> = args[i + 1]
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(|name| {
                            ImplKind::from_name(name.trim()).unwrap_or_else(|e| panic!("{e}"))
                        })
                        .collect();
                    assert!(!kinds.is_empty(), "--impls takes at least one name");
                    opts.impls = Some(kinds);
                    i += 2;
                }
                other => panic!("unknown argument '{other}'"),
            }
        }
        opts
    }

    /// Restricts `kinds` to the `--impls` selection, preserving order.  With
    /// no `--impls` the input is returned unchanged; the result may be empty
    /// (the caller skips that family).
    pub fn filter(&self, kinds: &[ImplKind]) -> Vec<ImplKind> {
        match &self.impls {
            None => kinds.to_vec(),
            Some(sel) => kinds.iter().copied().filter(|k| sel.contains(k)).collect(),
        }
    }

    /// [`HarnessOpts::filter`] for bins that sweep a fixed implementation
    /// list: panics when `--impls` matches none of them, because a silent
    /// empty sweep would look like a green run to CI.
    pub fn filter_nonempty(&self, kinds: &[ImplKind]) -> Vec<ImplKind> {
        let filtered = self.filter(kinds);
        assert!(
            !filtered.is_empty(),
            "--impls matched none of the implementations this bin offers ({})",
            kinds
                .iter()
                .map(|k| k.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        filtered
    }

    /// A short human-readable description of the options.
    pub fn describe(&self) -> String {
        let mut s = format!("{:?} scale, {} processors", self.scale, self.nprocs);
        if let Some(sel) = &self.impls {
            let names: Vec<String> = sel.iter().map(|k| k.name()).collect();
            s.push_str(&format!(", impls {}", names.join(",")));
        }
        s
    }
}

/// The applications in the order the paper's tables use.
pub fn table_apps() -> Vec<App> {
    App::ALL.to_vec()
}

/// Prints the standard one-line JSON metadata header every JSON-emitting
/// bench binary starts with, so the rows collected into the `BENCH_*.json`
/// trajectory files are self-describing: which bench produced them, on what
/// date, and under what conditions.
pub fn print_json_header(bench: &str, host_note: &str) {
    println!(
        "{{\"bench\":\"{bench}\",\"row\":\"header\",\"date\":\"{}\",\"host_note\":\"{host_note}\"}}",
        today_utc()
    );
}

/// Today's UTC date as `YYYY-MM-DD`, from the system clock alone (the
/// harness takes no date-handling dependency).
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    civil_from_days((secs / 86_400) as i64)
}

/// Converts days since 1970-01-01 to a civil `YYYY-MM-DD` date (the
/// era-decomposition algorithm commonly used for proleptic-Gregorian
/// conversions).
fn civil_from_days(days: i64) -> String {
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Runs one application under every implementation of one model family
/// (restricted by `--impls`) and returns the reports in the same order.  An
/// empty result means the whole family was filtered out.
pub fn run_family(app: App, kinds: &[ImplKind], opts: &HarnessOpts) -> Vec<AppReport> {
    opts.filter(kinds)
        .into_iter()
        .map(|kind| run_app(app, kind, opts.nprocs, opts.scale))
        .collect()
}

/// Picks the report with the lowest simulated time, if any survived the
/// `--impls` filter.
pub fn best(reports: &[AppReport]) -> Option<&AppReport> {
    reports.iter().min_by(|a, b| a.time.cmp(&b.time))
}

/// Formats a simulated time in seconds with two decimals, like the paper.
pub fn secs(t: dsm_core::SimTime) -> String {
    format!("{:.2}", t.as_secs_f64())
}

/// Prints a table header followed by aligned rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n{title}");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats one table cell from a family's best report, or the `-`
/// placeholder when the whole family was filtered out by `--impls`.
pub fn opt_col(report: Option<&AppReport>, f: impl Fn(&AppReport) -> String) -> String {
    report.map_or_else(|| "-".to_string(), f)
}

/// Prints one family table (tables 4, 5 and 6): one row per application, one
/// execution-time column per implementation of the family that survived the
/// `--impls` filter.  `check` is called on every report (the bins pass
/// [`check`]; tests can pass a recording closure).
pub fn print_family_times(
    title: &str,
    family: &[ImplKind],
    apps: &[App],
    opts: &HarnessOpts,
    check: impl Fn(&AppReport),
) {
    let kinds = opts.filter(family);
    if kinds.is_empty() {
        println!("\n{title}: every implementation filtered out by --impls");
        return;
    }
    let mut rows = Vec::new();
    for &app in apps {
        let reports = run_family(app, &kinds, opts);
        for r in &reports {
            check(r);
        }
        let mut row = vec![app.name().to_string()];
        row.extend(reports.iter().map(|r| secs(r.time)));
        rows.push(row);
    }
    let mut header = vec!["Application".to_string()];
    header.extend(kinds.iter().map(|k| k.name()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table(
        &format!("{title} ({})", opts.describe()),
        &header_refs,
        &rows,
    );
}

/// Warns (loudly) if a run failed verification against the sequential output.
pub fn check(report: &AppReport) {
    if !report.verified {
        eprintln!(
            "WARNING: {} under {} did not match the sequential output",
            report.app, report.kind
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_picks_the_fastest() {
        let opts = HarnessOpts {
            scale: Scale::Tiny,
            nprocs: 2,
            impls: None,
        };
        let reports = run_family(App::IntegerSort, &ImplKind::ec_all(), &opts);
        let b = best(&reports).expect("unfiltered family is non-empty");
        assert!(reports.iter().all(|r| r.time >= b.time));
    }

    #[test]
    fn impls_filter_restricts_families() {
        let opts = HarnessOpts {
            scale: Scale::Tiny,
            nprocs: 2,
            impls: Some(vec![ImplKind::lrc_diff(), ImplKind::hlrc_diff()]),
        };
        assert_eq!(opts.filter(&ImplKind::ec_all()), vec![]);
        assert_eq!(
            opts.filter(&ImplKind::lrc_all()),
            vec![ImplKind::lrc_diff()]
        );
        assert_eq!(
            opts.filter(&ImplKind::hlrc_all()),
            vec![ImplKind::hlrc_diff()]
        );
        let reports = run_family(App::IntegerSort, &ImplKind::ec_all(), &opts);
        assert!(reports.is_empty());
        assert!(best(&reports).is_none());
        assert!(opts.describe().contains("LRC-diff,HLRC-diff"));
    }

    #[test]
    fn secs_formats_two_decimals() {
        assert_eq!(secs(dsm_core::SimTime::from_millis(1500)), "1.50");
    }

    #[test]
    fn civil_dates_match_known_days() {
        assert_eq!(civil_from_days(0), "1970-01-01");
        assert_eq!(civil_from_days(10_957), "2000-01-01");
        assert_eq!(civil_from_days(19_782), "2024-02-29");
        assert_eq!(civil_from_days(-1), "1969-12-31");
    }

    #[test]
    fn today_is_a_plausible_iso_date() {
        let d = today_utc();
        assert_eq!(d.len(), 10);
        assert_eq!(d.as_bytes()[4], b'-');
        assert_eq!(d.as_bytes()[7], b'-');
        assert!(d[..4].parse::<i32>().expect("year") >= 2024);
    }
}
