//! Table 5: execution times for the three homeless LRC implementations
//! (LRC-ci, LRC-time, LRC-diff).

use dsm_bench::{check, print_family_times, table_apps, HarnessOpts};
use dsm_core::ImplKind;

fn main() {
    let opts = HarnessOpts::from_args();
    print_family_times(
        "Table 5: Execution Times for Write Trapping / Collection Combinations in LRC",
        &ImplKind::lrc_all(),
        &table_apps(),
        &opts,
        check,
    );
}
