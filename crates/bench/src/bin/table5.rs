//! Table 5: execution times for the three LRC implementations
//! (LRC-ci, LRC-time, LRC-diff).

use dsm_bench::{check, print_table, run_family, secs, table_apps, HarnessOpts};
use dsm_core::ImplKind;

fn main() {
    let opts = HarnessOpts::from_args();
    let mut rows = Vec::new();
    for app in table_apps() {
        let reports = run_family(app, &ImplKind::lrc_all(), opts);
        for r in &reports {
            check(r);
        }
        let mut row = vec![app.name().to_string()];
        row.extend(reports.iter().map(|r| secs(r.time)));
        rows.push(row);
    }
    print_table(
        &format!(
            "Table 5: Execution Times for Write Trapping / Collection Combinations in LRC ({})",
            opts.describe()
        ),
        &["Application", "LRC-ci", "LRC-time", "LRC-diff"],
        &rows,
    );
}
